//! `hat-engine` — the HTAP engines under test.
//!
//! Each engine implements the [`api::HtapEngine`] trait and represents one
//! of the paper's design categories (§2.2):
//!
//! * [`shared::ShdEngine`] — *shared design* (PostgreSQL-like): one MVCC row
//!   store serves both workloads.
//! * [`isolated::IsoEngine`] — *isolated design* (PostgreSQL streaming
//!   replication): a primary row store ships its WAL to a replica over a
//!   simulated link; analytics read the replica.
//! * [`hybrid::DualEngine`] — *hybrid design* (System-X-like): OCC row store
//!   plus a columnar copy; every analytical query synchronously folds the
//!   delta tail up to its start timestamp.
//! * [`hybrid::LearnerEngine`] — *hybrid design* (TiDB-like): consensus
//!   commit on the transactional path and an asynchronous columnar learner
//!   with read-index waits on the analytical path.
//! * [`cow::CowEngine`] — *shared design*, HyPer-like: analytics read
//!   periodic copy-on-write snapshots; staleness is bounded by the
//!   snapshot interval.
//!
//! ```
//! use hat_engine::{EngineConfig, HtapEngine, NamedIndex, ShdEngine};
//! use hat_common::ids::TableId;
//! use hat_common::value::row_from;
//! use hat_common::Value;
//!
//! let engine = ShdEngine::new(EngineConfig::default());
//! let rows = vec![row_from([Value::U32(0), Value::U64(0)])];
//! engine.load(TableId::Freshness, &mut rows.into_iter()).unwrap();
//! engine.finish_load().unwrap();
//!
//! // One transaction: bump the freshness row and commit.
//! let mut session = engine.begin();
//! session
//!     .update(TableId::Freshness, 0, row_from([Value::U32(0), Value::U64(7)]))
//!     .unwrap();
//! let receipt = session.commit().unwrap();
//! assert!(receipt.is_acked() && receipt.ts > 0);
//! assert_eq!(engine.stats().commits, 1);
//! ```

pub mod admission;
pub mod analytics;
pub mod api;
pub mod budget;
pub mod cow;
pub mod durability;
pub mod hybrid;
pub mod isolated;
pub mod kernel;
pub mod netsim;
pub mod shared;

pub use admission::{AdmissionConfig, AdmissionController, AdmitPermit};
pub use api::{
    CommitDurability, CommitReceipt, DesignCategory, DurabilityMode, EngineConfig,
    EngineConfigBuilder, EngineStats, HtapEngine, InDoubtCause, IndexProfile, NamedIndex,
    Session, TxnHandle,
};
pub use budget::CoreBudget;
pub use hat_query::exec::{ExecStats, QueryOpts, ScanMode, WorkerCap};
pub use durability::DurabilityLayer;
pub use hat_storage::dwal::{
    DiskFault, DiskFaultKind, DiskFaultPlan, HealthState, KillPoint, WalConfig,
};
pub use cow::{CowConfig, CowEngine};
pub use hybrid::{DualConfig, DualEngine, LearnerConfig, LearnerEngine, LearnerProfile};
pub use isolated::{IsoConfig, IsoEngine, ReplicationMode};
pub use netsim::{
    FaultInjector, FaultKind, FaultPlan, FaultPlanConfig, FaultWindow, NetworkLink,
};
pub use shared::ShdEngine;
pub use hat_txn::LockPolicy;
