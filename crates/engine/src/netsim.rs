//! Simulated network links.
//!
//! The paper's isolated and distributed systems pay real network latency on
//! their commit and replication paths (PostgreSQL-SR's synchronous_commit
//! acknowledgements; TiDB's Raft rounds, whose "high CPU-overhead of the
//! TCP/IP stack and limited network bandwidth" §6.5.2 explain its
//! distributed-mode T-throughput drop). This reproduction models a link as
//! a latency distribution applied with a *parking* sleep: the waiting
//! client thread yields the CPU, exactly as a thread blocked on a socket
//! would — which is what lets the analytical workload use the freed
//! resources, the effect the distributed-TiDB experiment shows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A point-to-point link with fixed one-way latency plus bounded uniform
/// jitter.
#[derive(Debug)]
pub struct NetworkLink {
    one_way: Duration,
    jitter: Duration,
    /// Cheap xorshift state for jitter; contention here is irrelevant.
    seed: AtomicU64,
    transmissions: AtomicU64,
}

impl NetworkLink {
    /// A link with the given one-way latency and jitter bound.
    pub fn new(one_way: Duration, jitter: Duration) -> Self {
        NetworkLink {
            one_way,
            jitter,
            seed: AtomicU64::new(0x9E3779B97F4A7C15),
            transmissions: AtomicU64::new(0),
        }
    }

    /// A zero-latency link (same-process "network"; transmit is free).
    pub fn loopback() -> Self {
        NetworkLink::new(Duration::ZERO, Duration::ZERO)
    }

    /// The configured one-way latency.
    pub fn one_way(&self) -> Duration {
        self.one_way
    }

    /// Whether transmits actually sleep.
    pub fn is_loopback(&self) -> bool {
        self.one_way.is_zero() && self.jitter.is_zero()
    }

    /// Number of transmissions so far.
    pub fn transmissions(&self) -> u64 {
        self.transmissions.load(Ordering::Relaxed)
    }

    fn sample_jitter(&self) -> Duration {
        if self.jitter.is_zero() {
            return Duration::ZERO;
        }
        let mut x = self.seed.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.seed.store(x, Ordering::Relaxed);
        Duration::from_nanos(x % self.jitter.as_nanos() as u64)
    }

    /// Blocks the calling thread for one one-way traversal.
    pub fn transmit(&self) {
        self.delay(1);
    }

    /// Blocks for a full round trip (request + acknowledgement).
    pub fn round_trip(&self) {
        self.delay(2);
    }

    /// Blocks for `traversals` one-way traversals in a single sleep.
    ///
    /// Coalescing matters on small machines: each `sleep` costs a timer
    /// programming + wakeup, and tens of thousands of them per second are
    /// real CPU. One sleep per logical wait keeps the simulation's
    /// overhead out of the measurement.
    pub fn delay(&self, traversals: u32) {
        self.transmissions.fetch_add(traversals as u64, Ordering::Relaxed);
        if self.is_loopback() || traversals == 0 {
            return;
        }
        let mut total = self.one_way * traversals;
        for _ in 0..traversals {
            total += self.sample_jitter();
        }
        std::thread::sleep(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn loopback_is_free() {
        let link = NetworkLink::loopback();
        assert!(link.is_loopback());
        let start = Instant::now();
        for _ in 0..10_000 {
            link.transmit();
        }
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(link.transmissions(), 10_000);
    }

    #[test]
    fn latency_is_applied() {
        let link = NetworkLink::new(Duration::from_millis(2), Duration::ZERO);
        let start = Instant::now();
        link.round_trip();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(4), "two one-way traversals");
        assert_eq!(link.transmissions(), 2);
    }

    #[test]
    fn jitter_stays_bounded() {
        let link =
            NetworkLink::new(Duration::from_micros(100), Duration::from_micros(200));
        for _ in 0..100 {
            let j = link.sample_jitter();
            assert!(j < Duration::from_micros(200));
        }
    }
}
