//! Simulated network links with fault injection.
//!
//! The paper's isolated and distributed systems pay real network latency on
//! their commit and replication paths (PostgreSQL-SR's synchronous_commit
//! acknowledgements; TiDB's Raft rounds, whose "high CPU-overhead of the
//! TCP/IP stack and limited network bandwidth" §6.5.2 explain its
//! distributed-mode T-throughput drop). This reproduction models a link as
//! a latency distribution applied with a *parking* sleep: the waiting
//! client thread yields the CPU, exactly as a thread blocked on a socket
//! would — which is what lets the analytical workload use the freed
//! resources, the effect the distributed-TiDB experiment shows.
//!
//! On top of the latency model sits a fault state machine:
//!
//! * **Partition** — transmits block until the link is healed or the
//!   caller's timeout fires ([`NetworkLink::try_delay`] surfaces the
//!   timeout; [`NetworkLink::delay`] waits for the heal).
//! * **Brownout** — a latency multiplier modeling congestion or a
//!   saturated NIC; transmits still complete, just slower.
//!
//! Faults can be driven by hand (chaos tests) or by a [`FaultPlan`]: a
//! deterministic schedule of fault windows derived from a SplitMix64 seed,
//! applied against the benchmark clock by a [`FaultInjector`] thread. Same
//! seed, same plan — chaos runs are reproducible.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hat_common::rng::{split_seed, HatRng};
use hat_common::{HatError, Result};
use parking_lot::{Condvar, Mutex};

/// Mutable fault state of a link.
#[derive(Debug, Clone, Copy)]
struct FaultState {
    partitioned: bool,
    /// Latency multiplier; 1 = healthy.
    brownout: u32,
}

/// A point-to-point link with fixed one-way latency plus bounded uniform
/// jitter, and an injectable fault state.
#[derive(Debug)]
pub struct NetworkLink {
    one_way: Duration,
    jitter: Duration,
    /// Jitter is hashed from a per-call counter: `fetch_add` never loses
    /// an increment under concurrent callers, so every transmit gets a
    /// distinct position in the jitter stream. (The previous
    /// load/xorshift/store scheme dropped updates under contention,
    /// collapsing concurrent transmits onto identical jitter.)
    jitter_counter: AtomicU64,
    jitter_salt: u64,
    transmissions: AtomicU64,
    faults: Mutex<FaultState>,
    healed: Condvar,
}

impl NetworkLink {
    /// A link with the given one-way latency and jitter bound.
    pub fn new(one_way: Duration, jitter: Duration) -> Self {
        NetworkLink {
            one_way,
            jitter,
            jitter_counter: AtomicU64::new(0),
            jitter_salt: 0x9E3779B97F4A7C15,
            transmissions: AtomicU64::new(0),
            faults: Mutex::new(FaultState { partitioned: false, brownout: 1 }),
            healed: Condvar::new(),
        }
    }

    /// A zero-latency link (same-process "network"; transmit is free).
    pub fn loopback() -> Self {
        NetworkLink::new(Duration::ZERO, Duration::ZERO)
    }

    /// The configured one-way latency.
    pub fn one_way(&self) -> Duration {
        self.one_way
    }

    /// Whether transmits actually sleep (fault-free case).
    pub fn is_loopback(&self) -> bool {
        self.one_way.is_zero() && self.jitter.is_zero()
    }

    /// Number of transmissions so far.
    pub fn transmissions(&self) -> u64 {
        self.transmissions.load(Ordering::Relaxed)
    }

    // -- fault state machine ------------------------------------------------

    /// Cuts the link: subsequent transmits block until [`heal`] or their
    /// timeout. Idempotent.
    ///
    /// [`heal`]: NetworkLink::heal
    pub fn partition(&self) {
        self.faults.lock().partitioned = true;
    }

    /// Restores a partitioned link and wakes blocked transmitters.
    pub fn heal(&self) {
        let mut st = self.faults.lock();
        st.partitioned = false;
        drop(st);
        self.healed.notify_all();
    }

    /// Degrades the link: latency is multiplied by `multiplier` (clamped
    /// to at least 1) until [`clear_brownout`].
    ///
    /// [`clear_brownout`]: NetworkLink::clear_brownout
    pub fn set_brownout(&self, multiplier: u32) {
        self.faults.lock().brownout = multiplier.max(1);
    }

    /// Restores full link speed.
    pub fn clear_brownout(&self) {
        self.faults.lock().brownout = 1;
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.faults.lock().partitioned
    }

    /// The current latency multiplier (1 = healthy).
    pub fn brownout(&self) -> u32 {
        self.faults.lock().brownout
    }

    /// Blocks until the link is not partitioned (no latency is charged).
    /// Receiver-side gate: a consumer thread parks here while records
    /// cannot cross the link.
    pub fn wait_healthy(&self) {
        let mut st = self.faults.lock();
        while st.partitioned {
            self.healed.wait(&mut st);
        }
    }

    /// Like [`NetworkLink::wait_healthy`] but gives up at `deadline`,
    /// returning false if still partitioned.
    pub fn wait_healthy_until(&self, deadline: Instant) -> bool {
        let mut st = self.faults.lock();
        while st.partitioned {
            if self.healed.wait_until(&mut st, deadline).timed_out() && st.partitioned {
                return false;
            }
        }
        true
    }

    // -- transmission -------------------------------------------------------

    fn sample_jitter(&self) -> Duration {
        if self.jitter.is_zero() {
            return Duration::ZERO;
        }
        let n = self.jitter_counter.fetch_add(1, Ordering::Relaxed);
        let x = split_seed(self.jitter_salt, n);
        Duration::from_nanos(x % self.jitter.as_nanos() as u64)
    }

    /// Blocks the calling thread for one one-way traversal.
    pub fn transmit(&self) {
        self.delay(1);
    }

    /// Blocks for a full round trip (request + acknowledgement).
    pub fn round_trip(&self) {
        self.delay(2);
    }

    /// Blocks for `traversals` one-way traversals in a single sleep.
    ///
    /// Coalescing matters on small machines: each `sleep` costs a timer
    /// programming + wakeup, and tens of thousands of them per second are
    /// real CPU. One sleep per logical wait keeps the simulation's
    /// overhead out of the measurement.
    ///
    /// If the link is partitioned, blocks until it is healed. Callers on
    /// a bounded path (sync commits) should use [`NetworkLink::try_delay`].
    pub fn delay(&self, traversals: u32) {
        let mult = {
            let mut st = self.faults.lock();
            while st.partitioned {
                self.healed.wait(&mut st);
            }
            st.brownout
        };
        self.sleep_traversals(traversals, mult);
    }

    /// Like [`NetworkLink::delay`], but gives up after `timeout` if the
    /// link is partitioned, returning [`HatError::ReplicationTimeout`].
    ///
    /// The timeout bounds only the partition wait; a healthy (or
    /// browned-out) link always transmits. This mirrors how a TCP peer
    /// behaves: slow links deliver late, dead links trip the timer.
    pub fn try_delay(&self, traversals: u32, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mult = {
            let mut st = self.faults.lock();
            while st.partitioned {
                if self.healed.wait_until(&mut st, deadline).timed_out() && st.partitioned {
                    return Err(HatError::ReplicationTimeout);
                }
            }
            st.brownout
        };
        self.sleep_traversals(traversals, mult);
        Ok(())
    }

    fn sleep_traversals(&self, traversals: u32, mult: u32) {
        self.transmissions.fetch_add(traversals as u64, Ordering::Relaxed);
        if self.is_loopback() || traversals == 0 {
            return;
        }
        let mut total = self.one_way * traversals;
        for _ in 0..traversals {
            total += self.sample_jitter();
        }
        if mult > 1 {
            total *= mult;
        }
        std::thread::sleep(total);
    }
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// What a scheduled fault window does to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transmits block for the window's duration.
    Partition,
    /// Latency is multiplied for the window's duration.
    Brownout { multiplier: u32 },
}

/// One scheduled fault: `[start, start + duration)` relative to the
/// injector's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    pub start: Duration,
    pub duration: Duration,
    pub kind: FaultKind,
}

impl FaultWindow {
    /// End offset of the window.
    pub fn end(&self) -> Duration {
        self.start + self.duration
    }
}

/// Knobs for [`FaultPlan::generate`].
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Mean healthy gap between consecutive fault windows.
    pub mean_gap: Duration,
    /// Fault window length bounds (uniform).
    pub min_duration: Duration,
    pub max_duration: Duration,
    /// Probability that a window is a partition (vs a brownout).
    pub partition_weight: f64,
    /// Brownout multipliers are drawn uniformly from `2..=max`.
    pub max_brownout: u32,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            mean_gap: Duration::from_millis(200),
            min_duration: Duration::from_millis(20),
            max_duration: Duration::from_millis(80),
            partition_weight: 0.5,
            max_brownout: 8,
        }
    }
}

/// A deterministic, seeded schedule of fault windows over a horizon.
///
/// Derived with SplitMix64 from `(seed, stream)` pairs: the same seed
/// always yields the same plan, so chaos runs replay bit-identically, and
/// plans for different links can be derived from one base seed without
/// correlation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// Generates a plan covering `[0, horizon)` with the given knobs.
    pub fn generate(seed: u64, horizon: Duration, cfg: &FaultPlanConfig) -> Self {
        let mut rng = HatRng::seeded(split_seed(seed, 0xFA07));
        let mut windows = Vec::new();
        let mut cursor = Duration::ZERO;
        let gap_lo = (cfg.mean_gap / 2).as_nanos() as u64;
        let gap_hi = ((cfg.mean_gap * 3 / 2).as_nanos() as u64).max(gap_lo + 1);
        loop {
            cursor += Duration::from_nanos(rng.range_u64(gap_lo, gap_hi));
            if cursor >= horizon {
                break;
            }
            let dur_lo = cfg.min_duration.as_nanos() as u64;
            let dur_hi = cfg.max_duration.as_nanos() as u64;
            let duration = Duration::from_nanos(rng.range_u64(dur_lo, dur_hi.max(dur_lo)));
            let kind = if rng.chance(cfg.partition_weight) {
                FaultKind::Partition
            } else {
                FaultKind::Brownout {
                    multiplier: rng.range_u32(2, cfg.max_brownout.max(2)),
                }
            };
            windows.push(FaultWindow { start: cursor, duration, kind });
            cursor += duration;
        }
        FaultPlan { windows }
    }

    /// An explicit plan (tests, hand-scripted scenarios). Windows must be
    /// sorted by start and non-overlapping.
    pub fn from_windows(windows: Vec<FaultWindow>) -> Self {
        debug_assert!(
            windows.windows(2).all(|w| w[0].end() <= w[1].start),
            "fault windows must be sorted and disjoint"
        );
        FaultPlan { windows }
    }

    /// The scheduled windows, sorted by start offset.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }
}

/// Background thread that walks a [`FaultPlan`], applying each window to a
/// link at its scheduled offset and clearing it at the window's end.
pub struct FaultInjector {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl FaultInjector {
    /// Spawns the injector; windows are interpreted relative to now.
    pub fn spawn(plan: FaultPlan, link: Arc<NetworkLink>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fault-injector".into())
            .spawn(move || {
                let t0 = Instant::now();
                for w in plan.windows() {
                    if !sleep_until(t0 + w.start, &stop2) {
                        break;
                    }
                    match w.kind {
                        FaultKind::Partition => link.partition(),
                        FaultKind::Brownout { multiplier } => link.set_brownout(multiplier),
                    }
                    let survived = sleep_until(t0 + w.end(), &stop2);
                    match w.kind {
                        FaultKind::Partition => link.heal(),
                        FaultKind::Brownout { .. } => link.clear_brownout(),
                    }
                    if !survived {
                        break;
                    }
                }
                // Whatever happens, leave the link healthy.
                link.heal();
                link.clear_brownout();
            })
            .expect("spawn fault injector");
        FaultInjector { stop, handle: Some(handle) }
    }

    /// Stops the injector, healing the link. Called automatically on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultInjector {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sleeps until `deadline` in short slices, returning false if `stop` was
/// raised before the deadline.
fn sleep_until(deadline: Instant, stop: &AtomicBool) -> bool {
    loop {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(2)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn loopback_is_free() {
        let link = NetworkLink::loopback();
        assert!(link.is_loopback());
        let start = Instant::now();
        for _ in 0..10_000 {
            link.transmit();
        }
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(link.transmissions(), 10_000);
    }

    #[test]
    fn latency_is_applied() {
        let link = NetworkLink::new(Duration::from_millis(2), Duration::ZERO);
        let start = Instant::now();
        link.round_trip();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(4), "two one-way traversals");
        assert_eq!(link.transmissions(), 2);
    }

    #[test]
    fn jitter_stays_bounded() {
        let link =
            NetworkLink::new(Duration::from_micros(100), Duration::from_micros(200));
        for _ in 0..100 {
            let j = link.sample_jitter();
            assert!(j < Duration::from_micros(200));
        }
    }

    #[test]
    fn concurrent_jitter_streams_do_not_collapse() {
        // Regression for the racy load/xorshift/store: concurrent callers
        // must consume distinct counter values, so across threads the
        // total number of samples equals the counter advance.
        let link = Arc::new(NetworkLink::new(
            Duration::from_nanos(1),
            Duration::from_micros(50),
        ));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let link = Arc::clone(&link);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _ = link.sample_jitter();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(link.jitter_counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn partitioned_link_times_out_then_heals() {
        let link = Arc::new(NetworkLink::new(Duration::from_micros(10), Duration::ZERO));
        link.partition();
        assert!(link.is_partitioned());
        let start = Instant::now();
        let err = link.try_delay(2, Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, HatError::ReplicationTimeout);
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert!(start.elapsed() < Duration::from_secs(2), "bounded wait");

        // A waiter blocked on the partition is released by heal().
        let link2 = Arc::clone(&link);
        let waiter = std::thread::spawn(move || link2.try_delay(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        link.heal();
        assert!(waiter.join().unwrap().is_ok());
        assert!(!link.is_partitioned());
    }

    #[test]
    fn brownout_multiplies_latency() {
        let link = NetworkLink::new(Duration::from_millis(1), Duration::ZERO);
        link.set_brownout(5);
        assert_eq!(link.brownout(), 5);
        let start = Instant::now();
        link.transmit();
        assert!(start.elapsed() >= Duration::from_millis(5));
        link.clear_brownout();
        assert_eq!(link.brownout(), 1);
        let start = Instant::now();
        link.transmit();
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn fault_plans_are_deterministic_per_seed() {
        let cfg = FaultPlanConfig::default();
        let horizon = Duration::from_secs(5);
        let a = FaultPlan::generate(0xC0FFEE, horizon, &cfg);
        let b = FaultPlan::generate(0xC0FFEE, horizon, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.windows().is_empty(), "5s horizon yields windows");
        let c = FaultPlan::generate(0xDECAF, horizon, &cfg);
        assert_ne!(a, c, "different seed, different schedule");
        // Windows are sorted, disjoint, and inside the horizon.
        for w in a.windows().windows(2) {
            assert!(w[0].end() <= w[1].start);
        }
        for w in a.windows() {
            assert!(w.start < horizon);
            assert!(w.duration >= cfg.min_duration);
            assert!(w.duration <= cfg.max_duration);
        }
    }

    #[test]
    fn injector_applies_and_clears_windows() {
        let link = Arc::new(NetworkLink::new(Duration::from_micros(10), Duration::ZERO));
        let plan = FaultPlan::from_windows(vec![FaultWindow {
            start: Duration::from_millis(5),
            duration: Duration::from_millis(30),
            kind: FaultKind::Partition,
        }]);
        let mut injector = FaultInjector::spawn(plan, Arc::clone(&link));
        std::thread::sleep(Duration::from_millis(15));
        assert!(link.is_partitioned(), "inside the window");
        std::thread::sleep(Duration::from_millis(40));
        assert!(!link.is_partitioned(), "window expired");
        injector.stop();
    }

    #[test]
    fn injector_stop_heals_immediately() {
        let link = Arc::new(NetworkLink::loopback());
        let plan = FaultPlan::from_windows(vec![FaultWindow {
            start: Duration::ZERO,
            duration: Duration::from_secs(60),
            kind: FaultKind::Partition,
        }]);
        let mut injector = FaultInjector::spawn(plan, Arc::clone(&link));
        std::thread::sleep(Duration::from_millis(10));
        assert!(link.is_partitioned());
        injector.stop();
        assert!(!link.is_partitioned(), "stop() must not leave the link cut");
    }
}
