//! The elastic core budget: one knob that resizes both worker
//! populations at runtime.
//!
//! The paper's frontier is measured with a *static* split of cores
//! between the transactional and analytical side. "Adaptive HTAP through
//! Elastic Resource Scheduling" shows that moving cores between engines
//! at fine granularity dominates any static split; [`CoreBudget`] is the
//! mechanism half of that idea (the policy half — deciding *when* to
//! move — lives in `hat-core::sched`, which stays engine-agnostic).
//!
//! A budget of `total` cores is split `t_cores + a_cores = total`.
//! Applying a split moves both levers atomically from the caller's point
//! of view:
//!
//! - **Analytical side**: a shared [`WorkerCap`] gauge. Query drivers
//!   clone it into their [`QueryOpts`](crate::QueryOpts) once; every
//!   subsequent `ExecContext::run` clamps its probe-worker pool to the
//!   gauge's current value, so a narrowed cap applies from the next
//!   query without replumbing options through callers.
//! - **Transactional side**: [`HtapEngine::set_txn_cores`] scales the
//!   engine's admission `ClassGate` in-flight bounds proportionally
//!   (per shard, ceil, ≥ 1), so commit concurrency drains to the new
//!   bound instead of being preempted mid-commit. Harness-level commit
//!   workers additionally park/unpark on the same split (see
//!   `Harness::run_open_loop`).
//!
//! Neither lever evicts in-flight work: a split change is a *bound*
//! change, taking effect as requests complete — which is what keeps
//! byte-identical query results and clean commit semantics across
//! reassignments.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::api::HtapEngine;
use hat_query::exec::WorkerCap;

/// A fixed budget of cores elastically split between the transactional
/// and analytical worker populations. Cheap to clone-by-`Arc` and safe
/// to update from a scheduler thread while workers run.
#[derive(Debug)]
pub struct CoreBudget {
    /// The fixed total. Splits always satisfy `t + a = total`.
    total: u32,
    t_cores: AtomicU32,
    a_cores: AtomicU32,
    /// The analytical lever: live ceiling on probe workers.
    cap: WorkerCap,
}

impl CoreBudget {
    /// A budget of `total` cores (min 2 — each side always keeps at
    /// least one), initially split as evenly as possible with the extra
    /// core on the transactional side.
    pub fn new(total: u32) -> Self {
        let total = total.max(2);
        let a = total / 2;
        let t = total - a;
        let budget = CoreBudget {
            total,
            t_cores: AtomicU32::new(t),
            a_cores: AtomicU32::new(a),
            cap: WorkerCap::unlimited(),
        };
        budget.cap.set(a as usize);
        budget
    }

    /// The fixed total.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The current `(t_cores, a_cores)` split.
    pub fn split(&self) -> (u32, u32) {
        (self.t_cores.load(Ordering::Relaxed), self.a_cores.load(Ordering::Relaxed))
    }

    /// The analytical worker-cap gauge. Clone it into the
    /// [`QueryOpts`](crate::QueryOpts) of every analytical driver that
    /// should obey this budget.
    pub fn worker_cap(&self) -> &WorkerCap {
        &self.cap
    }

    /// Applies a new split to this budget *and* to `engine`'s admission
    /// bounds. `t_cores` is clamped to `1..total` and `a_cores` is
    /// derived as the remainder, so both populations always keep at
    /// least one core (an empty side cannot drain its queue and the
    /// controller could never observe it recover).
    pub fn apply(&self, engine: &dyn HtapEngine, t_cores: u32) -> (u32, u32) {
        let t = t_cores.clamp(1, self.total - 1);
        let a = self.total - t;
        self.t_cores.store(t, Ordering::Relaxed);
        self.a_cores.store(a, Ordering::Relaxed);
        self.cap.set(a as usize);
        engine.set_txn_cores(t, self.total);
        (t, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_budget_splits_evenly_with_t_bias() {
        let b = CoreBudget::new(5);
        assert_eq!(b.total(), 5);
        assert_eq!(b.split(), (3, 2));
        assert_eq!(b.worker_cap().get(), Some(2));
        // Degenerate totals are lifted to 2 so both sides exist.
        let b = CoreBudget::new(0);
        assert_eq!(b.total(), 2);
        assert_eq!(b.split(), (1, 1));
    }

    #[test]
    fn apply_clamps_and_moves_the_worker_cap() {
        use crate::api::EngineConfig;
        use crate::shared::ShdEngine;
        let engine = ShdEngine::new(EngineConfig::default());
        let b = CoreBudget::new(4);
        assert_eq!(b.apply(&engine, 3), (3, 1));
        assert_eq!(b.worker_cap().get(), Some(1));
        // t is clamped into 1..total so analytics never starves to zero.
        assert_eq!(b.apply(&engine, 99), (3, 1));
        assert_eq!(b.apply(&engine, 0), (1, 3));
        assert_eq!(b.worker_cap().get(), Some(3));
        assert_eq!(b.split(), (1, 3));
    }
}
