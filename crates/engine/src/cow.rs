//! A copy-on-write snapshot engine ("HyPer-like").
//!
//! The paper's shared-design taxonomy (§2.2) includes systems that isolate
//! analytics by *snapshotting* the operational data — HyPer's fork-based
//! virtual-memory snapshots being the canonical example, and the system
//! whose freshness trade-offs the CH-benCHmark studied. This engine models
//! that design:
//!
//! * Transactions run on the shared row kernel, exactly like
//!   [`crate::shared::ShdEngine`].
//! * Analytical queries do **not** read the current visibility horizon;
//!   they read the latest *snapshot*, refreshed every
//!   [`CowConfig::snapshot_interval`] by a background thread.
//! * Taking a snapshot briefly stalls commits for
//!   [`CowConfig::fork_pause`] — the fork's page-table copy happens while
//!   the OLTP process is quiesced in HyPer.
//!
//! The result is the third freshness behaviour in this workspace: not
//! always-fresh (shared/hybrid) and not load-dependent (isolated ON), but
//! *bounded* staleness — every query is at most one snapshot interval
//! old, regardless of the update rate. The interval knob exposes the
//! CH-benCHmark trade-off between snapshot frequency and performance.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hat_common::telemetry::{MetricsSnapshot, SpanTimer};
use hat_common::{Result, Row, TableId};
use hat_query::exec::{execute_with, QueryOpts, QueryOutput};
use hat_query::spec::QuerySpec;
use hat_query::view::MixedView;
use hat_txn::{SnapshotGuard, LOAD_TS};
use parking_lot::{Mutex, RwLock};

use crate::api::{DesignCategory, EngineConfig, HtapEngine, Session};
use crate::kernel::{spawn_vacuum, RowKernel};

/// Configuration of the snapshot engine.
#[derive(Debug, Clone)]
pub struct CowConfig {
    pub engine: EngineConfig,
    /// How often analytics get a fresh snapshot. HyPer forks on demand or
    /// periodically; the CH-benCHmark calls this the freshness
    /// configuration.
    pub snapshot_interval: Duration,
    /// Commit stall while the snapshot is taken (page-table copy of a
    /// fork; grows with the process's memory in the real system).
    pub fork_pause: Duration,
}

impl Default for CowConfig {
    fn default() -> Self {
        CowConfig {
            engine: EngineConfig::default(),
            snapshot_interval: Duration::from_millis(50),
            fork_pause: Duration::from_micros(300),
        }
    }
}

/// A single-node engine whose analytics read periodic CoW snapshots.
pub struct CowEngine {
    kernel: Arc<RowKernel>,
    config: CowConfig,
    /// Timestamp of the snapshot analytics currently read.
    snapshot_ts: Arc<AtomicU64>,
    /// Standing registration of [`Self::snapshot_ts`] in the kernel's
    /// snapshot registry: it clamps the vacuum horizon at the published
    /// snapshot so stale analytical reads stay safe between refreshes.
    /// `None` while the snapshot is `LOAD_TS` (load-time base versions
    /// are never reclaimed, so no pin is needed).
    pin: Arc<Mutex<Option<SnapshotGuard>>>,
    snapshots_taken: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    refresher: RwLock<Option<JoinHandle<()>>>,
    vacuum: RwLock<Option<JoinHandle<()>>>,
}

/// Takes a snapshot: burns a commit timestamp while commits are stalled,
/// re-pins the snapshot registry at it, and publishes it to analytics.
/// Shared by [`CowEngine::refresh_snapshot`] and the refresher thread.
fn take_snapshot(
    kernel: &Arc<RowKernel>,
    pin: &Mutex<Option<SnapshotGuard>>,
    snapshot_ts: &AtomicU64,
    snapshots_taken: &AtomicU64,
    fork_pause: Duration,
) {
    // Enter the commit critical section: no commit can install while
    // the "fork" happens, exactly like HyPer quiescing OLTP. The
    // allocated timestamp is burned (no versions installed), which the
    // oracle handles by advancing the horizon.
    let guard = kernel.oracle.begin_commit();
    if !fork_pause.is_zero() {
        std::thread::sleep(fork_pause);
    }
    // Everything strictly before the burned ts is installed; make the
    // snapshot exactly that prefix.
    let ts = guard.ts() - 1;
    // Re-pin the vacuum horizon at the new snapshot while still inside
    // the commit critical section: the visibility frontier (and hence
    // any advertised prune horizon) cannot pass `ts` until the commit
    // lock is released, so this registration never retries, and swapping
    // new-before-old keeps the coverage chain unbroken.
    let new_pin = kernel.snapshots.register_with(|| ts);
    *pin.lock() = Some(new_pin);
    drop(guard);
    snapshot_ts.store(ts, Ordering::Release);
    snapshots_taken.fetch_add(1, Ordering::Relaxed);
}

impl CowEngine {
    /// Builds the engine; the snapshot thread starts at `finish_load`.
    pub fn new(config: CowConfig) -> Self {
        let kernel = Arc::new(RowKernel::new(config.engine.clone()));
        CowEngine {
            kernel,
            config,
            snapshot_ts: Arc::new(AtomicU64::new(LOAD_TS)),
            pin: Arc::new(Mutex::new(None)),
            snapshots_taken: Arc::new(AtomicU64::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
            refresher: RwLock::new(None),
            vacuum: RwLock::new(None),
        }
    }

    /// The timestamp analytics currently read (tests/diagnostics).
    pub fn snapshot_ts(&self) -> u64 {
        self.snapshot_ts.load(Ordering::Acquire)
    }

    /// Number of snapshots taken so far.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken.load(Ordering::Relaxed)
    }

    /// Takes a snapshot right now (also used by the background thread).
    /// Commits are stalled for the configured fork pause while the
    /// snapshot point is chosen.
    pub fn refresh_snapshot(&self) {
        take_snapshot(
            &self.kernel,
            &self.pin,
            &self.snapshot_ts,
            &self.snapshots_taken,
            self.config.fork_pause,
        );
    }

    fn spawn_refresher(&self) {
        let stop = Arc::clone(&self.stop);
        let interval = self.config.snapshot_interval;
        let engine_ptr = SelfPtr {
            kernel: Arc::clone(&self.kernel),
            snapshot_ts: Arc::clone(&self.snapshot_ts),
            pin: Arc::clone(&self.pin),
            snapshots_taken: Arc::clone(&self.snapshots_taken),
            fork_pause: self.config.fork_pause,
        };
        let handle = std::thread::Builder::new()
            .name("cow-refresher".into())
            .spawn(move || {
                // Sleep in short slices so a long snapshot interval does
                // not wedge shutdown: Drop joins this thread.
                'refresh: while !stop.load(Ordering::Relaxed) {
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if stop.load(Ordering::Relaxed) {
                            break 'refresh;
                        }
                        let slice = (interval - slept).min(Duration::from_millis(5));
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    engine_ptr.refresh();
                }
            })
            .expect("spawn snapshot refresher");
        *self.refresher.write() = Some(handle);
    }
}

/// The refresher thread's view of the engine (avoids a self-Arc cycle).
struct SelfPtr {
    kernel: Arc<RowKernel>,
    snapshot_ts: Arc<AtomicU64>,
    pin: Arc<Mutex<Option<SnapshotGuard>>>,
    snapshots_taken: Arc<AtomicU64>,
    fork_pause: Duration,
}

impl SelfPtr {
    fn refresh(&self) {
        take_snapshot(
            &self.kernel,
            &self.pin,
            &self.snapshot_ts,
            &self.snapshots_taken,
            self.fork_pause,
        );
    }
}

impl HtapEngine for CowEngine {
    fn name(&self) -> String {
        format!(
            "cow-snapshot[{}ms]",
            self.config.snapshot_interval.as_millis()
        )
    }

    fn design(&self) -> DesignCategory {
        DesignCategory::Shared
    }

    fn set_txn_cores(&self, t_cores: u32, total: u32) {
        self.kernel.set_txn_core_fraction(t_cores, total);
    }

    fn load(&self, table: TableId, rows: &mut dyn Iterator<Item = Row>) -> Result<()> {
        self.kernel.load(table, rows)
    }

    fn finish_load(&self) -> Result<()> {
        self.kernel.finish_load();
        self.spawn_refresher();
        // The standing pin clamps the kernel's vacuum at the published
        // snapshot, so the background pass needs no extra work here.
        *self.vacuum.write() = spawn_vacuum(&self.kernel, &self.stop, || {});
        Ok(())
    }

    fn begin(&self) -> Box<dyn Session + '_> {
        Box::new(self.kernel.begin_session())
    }

    fn query(&self, spec: &QuerySpec, opts: &QueryOpts) -> Result<QueryOutput> {
        // A-class overload gate: a no-op unless admission is enabled, a
        // bounded sojourn-deadline-shed queue when it is. Shed queries
        // never execute and are not counted as executed.
        let _admit = self.kernel.admission.admit_query()?;
        self.kernel.stats.queries.inc();
        // Analytics read the last snapshot, not the current horizon:
        // bounded staleness, no interference with in-flight commits'
        // version installation.
        let span = SpanTimer::start();
        // Registering at the published snapshot never spins: the standing
        // pin keeps the prune horizon at or below it, and during the
        // instant a refresh moves the pin before publishing the new
        // timestamp, a retry simply re-reads `snapshot_ts`.
        let _guard = self
            .kernel
            .snapshots
            .register_with(|| self.snapshot_ts.load(Ordering::Acquire));
        let ts = _guard.ts();
        span.finish(&self.kernel.stats.snapshot_span);
        let view = MixedView::rows(&self.kernel.db, ts);
        let out = execute_with(spec, &view, opts);
        self.kernel.stats.record_exec(&out.stats);
        Ok(out)
    }

    fn reset(&self) -> Result<()> {
        self.kernel.reset()?;
        // Re-point analytics at the loaded state until the next refresh.
        // The standing pin is dropped rather than moved: a snapshot at
        // `LOAD_TS` needs no pin because the store never reclaims
        // load-time base versions (the same rule that makes the revert
        // in `kernel.reset()` possible at all).
        *self.pin.lock() = None;
        self.snapshot_ts.store(LOAD_TS, Ordering::Release);
        Ok(())
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.kernel.metrics()
    }
}

impl Drop for CowEngine {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for slot in [&self.refresher, &self.vacuum] {
            if let Some(handle) = slot.write().take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;
    use hat_query::predicate::Predicate;
    use hat_query::spec::{AggExpr, QueryId, QuerySpec};

    fn freshness_row(client: u32, txn: u64) -> Row {
        row_from([Value::U32(client), Value::U64(txn)])
    }

    fn count_spec() -> QuerySpec {
        QuerySpec {
            id: QueryId::Q1_1,
            fact: TableId::Freshness,
            fact_filter: Predicate::all(),
            joins: vec![],
            group_by: vec![],
            agg: AggExpr::CountRows,
        }
    }

    fn loaded(interval: Duration) -> CowEngine {
        let engine = CowEngine::new(CowConfig {
            engine: EngineConfig::default().without_durability(),
            snapshot_interval: interval,
            fork_pause: Duration::from_micros(50),
        });
        let rows: Vec<Row> = (0..2).map(|c| freshness_row(c, 0)).collect();
        engine.load(TableId::Freshness, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
        engine
    }

    #[test]
    fn analytics_lag_until_snapshot_refresh() {
        // Long interval: commits are invisible to analytics until an
        // explicit refresh.
        let engine = loaded(Duration::from_secs(3600));
        let mut s = engine.begin();
        s.update(TableId::Freshness, 0, freshness_row(0, 9)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        let out = engine.query(&count_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.freshness, vec![(0, 0), (1, 0)], "stale before refresh");
        engine.refresh_snapshot();
        let out = engine.query(&count_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.freshness, vec![(0, 9), (1, 0)], "fresh after refresh");
        assert!(engine.snapshots_taken() >= 1);
    }

    #[test]
    fn background_refresher_catches_up() {
        let engine = loaded(Duration::from_millis(10));
        let mut s = engine.begin();
        s.update(TableId::Freshness, 1, freshness_row(1, 4)).unwrap();
        let commit_ts = s.commit().unwrap().ts;
        // Within a few intervals the snapshot passes the commit.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while engine.snapshot_ts() < commit_ts {
            assert!(std::time::Instant::now() < deadline, "refresher stalled");
            std::thread::sleep(Duration::from_millis(5));
        }
        let out = engine.query(&count_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.freshness.iter().find(|(c, _)| *c == 1).unwrap().1, 4);
    }

    #[test]
    fn commits_proceed_despite_refresher() {
        // Aggressive snapshotting must stall, not break, the commit path.
        let engine = loaded(Duration::from_millis(1));
        for n in 1..=50u64 {
            let mut s = engine.begin();
            s.update(TableId::Freshness, 0, freshness_row(0, n)).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        assert_eq!(engine.stats().commits, 50);
    }

    #[test]
    fn reset_rewinds_snapshot() {
        let engine = loaded(Duration::from_secs(3600));
        let mut s = engine.begin();
        s.update(TableId::Freshness, 0, freshness_row(0, 5)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        engine.refresh_snapshot();
        engine.reset().unwrap();
        let out = engine.query(&count_spec(), &QueryOpts::default()).unwrap();
        assert!(out.freshness.iter().all(|&(_, t)| t == 0));
    }

    #[test]
    fn pinned_snapshot_holds_the_vacuum_horizon_until_refresh() {
        let engine = CowEngine::new(CowConfig {
            engine: EngineConfig {
                vacuum_interval: Some(Duration::from_millis(1)),
                ..EngineConfig::default().without_durability()
            },
            snapshot_interval: Duration::from_secs(3600),
            fork_pause: Duration::from_micros(50),
        });
        let rows: Vec<Row> = (0..2).map(|c| freshness_row(c, 0)).collect();
        engine.load(TableId::Freshness, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
        // Commit once so the snapshot pin lands above the load timestamp,
        // then pin and bury row 0 under 40 more committed updates while
        // the vacuum thread runs aggressively.
        let mut s = engine.begin();
        s.update(TableId::Freshness, 1, freshness_row(1, 7)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        engine.refresh_snapshot();
        for n in 1..=40u64 {
            let mut s = engine.begin();
            s.update(TableId::Freshness, 0, freshness_row(0, n)).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        std::thread::sleep(Duration::from_millis(20));
        // 2 base versions + row 1's update + row 0's 40 updates: the pin
        // keeps the horizon below all of them, so nothing is reclaimed.
        assert_eq!(engine.kernel.db.live_versions(), 43, "pin holds the horizon");
        let out = engine.query(&count_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.freshness, vec![(0, 0), (1, 7)], "snapshot stays consistent");
        // Moving the snapshot forward releases the buried versions: each
        // chain converges to its newest version plus the immortal base.
        engine.refresh_snapshot();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while engine.kernel.db.live_versions() > 4 {
            assert!(std::time::Instant::now() < deadline, "vacuum never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }
        let out = engine.query(&count_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.freshness, vec![(0, 40), (1, 7)]);
    }

    #[test]
    fn name_and_design() {
        let engine = loaded(Duration::from_secs(1));
        assert!(engine.name().contains("cow-snapshot"));
        assert_eq!(engine.design(), DesignCategory::Shared);
    }
}
