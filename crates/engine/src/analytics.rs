//! Row-store analytical helpers: the date-index prefilter.
//!
//! PostgreSQL's "all indexes" physical schema helps the analytical queries
//! because the optimizer picks index plans (§6.2, Figure 6b). The row-store
//! engines reproduce that effect: when a query's date-dimension filter
//! implies a contiguous `lo_orderdate` range and the `All` index profile
//! provides the orderdate index, the engine prefilters fact row-ids through
//! the index instead of scanning the whole fact table.

use hat_common::{Row, TableId};
use hat_query::batch::ScanBatch;
use hat_query::hint::ScanPruner;
use hat_query::view::{Morsel, MorselSource, RowRef, SnapshotView, MORSEL_ROWS};
use hat_storage::rowstore::RowDb;
use hat_txn::Ts;

/// Re-exported from [`hat_query::hint`], where the executor's morsel
/// pruner shares it; the engines keep importing it from here.
pub use hat_query::hint::date_range_hint;

/// A row-store view whose fact-table scan is restricted to a prefetched
/// row set (the index prefilter result). All other tables scan normally.
pub struct PrefilteredView<'a> {
    ts: Ts,
    row_db: &'a RowDb,
    fact: TableId,
    fact_rows: Vec<Row>,
}

impl<'a> PrefilteredView<'a> {
    /// Builds the view by reading each hinted rid at the snapshot; rids
    /// whose rows are not yet visible are dropped.
    pub fn new(row_db: &'a RowDb, ts: Ts, fact: TableId, rids: &[u64]) -> Self {
        let store = row_db.store(fact);
        let mut fact_rows = Vec::with_capacity(rids.len());
        for &rid in rids {
            if let Some(row) = store.read(rid, ts) {
                fact_rows.push(row);
            }
        }
        PrefilteredView { ts, row_db, fact, fact_rows }
    }

    /// Number of prefiltered fact rows (diagnostics).
    pub fn fact_rows(&self) -> usize {
        self.fact_rows.len()
    }
}

impl SnapshotView for PrefilteredView<'_> {
    fn ts(&self) -> Ts {
        self.ts
    }

    fn scan(&self, table: TableId, visit: &mut dyn FnMut(&RowRef<'_>)) {
        if table == self.fact {
            for row in &self.fact_rows {
                visit(&RowRef::Row(row));
            }
        } else {
            self.row_db.store(table).scan(self.ts, |_, row| visit(&RowRef::Row(row)));
        }
    }

    fn morsels(&self, table: TableId, _pruner: &ScanPruner) -> Vec<Morsel> {
        if table != self.fact {
            return vec![Morsel::whole()];
        }
        // The index prefilter already pruned by date; chunk the surviving
        // rows so the probe phase still parallelizes.
        let n = self.fact_rows.len();
        let mut out = Vec::with_capacity(n.div_ceil(MORSEL_ROWS.max(1)));
        let mut lo = 0;
        while lo < n {
            let hi = (lo + MORSEL_ROWS).min(n);
            out.push(Morsel { source: MorselSource::RowSlice { lo, hi }, zones: Vec::new() });
            lo = hi;
        }
        out
    }

    fn scan_morsel(
        &self,
        table: TableId,
        morsel: &Morsel,
        visit: &mut dyn FnMut(&RowRef<'_>),
    ) {
        match morsel.source {
            MorselSource::Whole => self.scan(table, visit),
            MorselSource::RowSlice { lo, hi } if table == self.fact => {
                for row in &self.fact_rows[lo..hi] {
                    visit(&RowRef::Row(row));
                }
            }
            ref other => panic!("unexpected morsel {other:?} for prefiltered view"),
        }
    }

    fn scan_batches(
        &self,
        table: TableId,
        morsel: &Morsel,
        emit: &mut dyn FnMut(&ScanBatch<'_>),
    ) {
        match morsel.source {
            // The prefiltered row list is already resident row-format:
            // hand the slice over zero-copy.
            MorselSource::RowSlice { lo, hi } if table == self.fact => {
                emit(&ScanBatch::Rows(&self.fact_rows[lo..hi]));
            }
            _ => hat_query::view::scalar_batch_adapter(self, table, morsel, emit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_query::spec::QueryId;
    use hat_query::ssb;

    #[test]
    fn hint_still_reachable_through_reexport() {
        // The extraction lives in hat_query::hint (tested there); this
        // guards the engines' import path.
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_1)),
            Some((19930101, 19931231))
        );
    }

    #[test]
    fn prefiltered_view_scans_only_given_rows() {
        use hat_common::value::row_from;
        use hat_common::{Money, Value};
        let db = RowDb::new();
        let store = db.store(TableId::History);
        let mut rids = Vec::new();
        for i in 0..10u64 {
            rids.push(store.install_insert(
                row_from([
                    Value::U64(i),
                    Value::U32(0),
                    Value::Money(Money::ZERO),
                ]),
                2 + i, // increasing commit ts
            ));
        }
        // Hint rows 2,4,6; row 6 committed at ts 8 > snapshot 7 -> dropped.
        let view = PrefilteredView::new(&db, 7, TableId::History, &[2, 4, 6]);
        assert_eq!(view.fact_rows(), 2);
        let mut seen = Vec::new();
        view.scan(TableId::History, &mut |r| seen.push(r.u64(0)));
        assert_eq!(seen, vec![2, 4]);
        // Non-fact tables scan the row db normally.
        let mut n = 0;
        view.scan(TableId::Customer, &mut |_| n += 1);
        assert_eq!(n, 0);

        // Morsels chunk the prefiltered row list and cover exactly it.
        let morsels = view.morsels(TableId::History, &ScanPruner::none());
        assert_eq!(morsels.len(), 1);
        let mut seen = Vec::new();
        view.scan_morsel(TableId::History, &morsels[0], &mut |r| seen.push(r.u64(0)));
        assert_eq!(seen, vec![2, 4]);
        // Batches cover the same rows, zero-copy from the row list.
        let mut batched = Vec::new();
        view.scan_batches(TableId::History, &morsels[0], &mut |b| {
            for i in 0..b.len() {
                batched.push(b.row_ref(i).u64(0));
            }
        });
        assert_eq!(batched, vec![2, 4]);
        // Non-fact tables stay whole-table morsels.
        assert_eq!(view.morsels(TableId::Customer, &ScanPruner::none()), vec![Morsel::whole()]);
    }
}
