//! Row-store analytical helpers: the date-index prefilter.
//!
//! PostgreSQL's "all indexes" physical schema helps the analytical queries
//! because the optimizer picks index plans (§6.2, Figure 6b). The row-store
//! engines reproduce that effect: when a query's date-dimension filter
//! implies a contiguous `lo_orderdate` range and the `All` index profile
//! provides the orderdate index, the engine prefilters fact row-ids through
//! the index instead of scanning the whole fact table.

use hat_common::dates;
use hat_common::ids::{date, lineorder};
use hat_common::{Row, TableId};
use hat_query::predicate::ColPredicate;
use hat_query::spec::QuerySpec;
use hat_query::view::{RowRef, SnapshotView};
use hat_storage::rowstore::RowDb;
use hat_txn::Ts;

/// If `spec`'s date join restricts orders to one contiguous, selective
/// date-key range, returns `(lo, hi)` inclusive.
///
/// Recognized filters: `d_year = y` and `d_yearmonthnum = yyyymm`, plus the
/// string form `d_yearmonth = "MonYYYY"`. Ranges wider than a year (the
/// flight-3 `d_year between` filters) are not worth an index pass and
/// return `None`. The hint may be a superset of the true filter (e.g. the
/// week-level Q1.3 hints its whole year) — the date join re-applies the
/// exact predicate, so correctness never depends on hint tightness.
pub fn date_range_hint(spec: &QuerySpec) -> Option<(u32, u32)> {
    let join = spec
        .joins
        .iter()
        .find(|j| j.dim == TableId::Date && j.fact_key == lineorder::ORDERDATE)?;
    for pred in &join.dim_filter.conjuncts {
        match pred {
            ColPredicate::U32Eq(col, y) if *col == date::YEAR => {
                return Some((y * 10000 + 101, y * 10000 + 1231));
            }
            ColPredicate::U32Eq(col, ym) if *col == date::YEARMONTHNUM => {
                let (y, m) = (ym / 100, ym % 100);
                let last = dates::days_in_month(y, m);
                return Some((ym * 100 + 1, ym * 100 + last));
            }
            ColPredicate::StrEq(col, s) if *col == date::YEARMONTH => {
                return parse_yearmonth(s).map(|(y, m)| {
                    let ym = y * 100 + m;
                    (ym * 100 + 1, ym * 100 + dates::days_in_month(y, m))
                });
            }
            _ => {}
        }
    }
    None
}

fn parse_yearmonth(s: &str) -> Option<(u32, u32)> {
    if s.len() != 7 {
        return None;
    }
    let month = match &s[..3] {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    s[3..].parse::<u32>().ok().map(|y| (y, month))
}

/// A row-store view whose fact-table scan is restricted to a prefetched
/// row set (the index prefilter result). All other tables scan normally.
pub struct PrefilteredView<'a> {
    ts: Ts,
    row_db: &'a RowDb,
    fact: TableId,
    fact_rows: Vec<Row>,
}

impl<'a> PrefilteredView<'a> {
    /// Builds the view by reading each hinted rid at the snapshot; rids
    /// whose rows are not yet visible are dropped.
    pub fn new(row_db: &'a RowDb, ts: Ts, fact: TableId, rids: &[u64]) -> Self {
        let store = row_db.store(fact);
        let mut fact_rows = Vec::with_capacity(rids.len());
        for &rid in rids {
            if let Some(row) = store.read(rid, ts) {
                fact_rows.push(row);
            }
        }
        PrefilteredView { ts, row_db, fact, fact_rows }
    }

    /// Number of prefiltered fact rows (diagnostics).
    pub fn fact_rows(&self) -> usize {
        self.fact_rows.len()
    }
}

impl SnapshotView for PrefilteredView<'_> {
    fn ts(&self) -> Ts {
        self.ts
    }

    fn scan(&self, table: TableId, visit: &mut dyn FnMut(&RowRef<'_>)) {
        if table == self.fact {
            for row in &self.fact_rows {
                visit(&RowRef::Row(row));
            }
        } else {
            self.row_db.store(table).scan(self.ts, |_, row| visit(&RowRef::Row(row)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_query::spec::QueryId;
    use hat_query::ssb;

    #[test]
    fn hints_for_flight1_and_q34() {
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_1)),
            Some((19930101, 19931231))
        );
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_2)),
            Some((19940101, 19940131))
        );
        // Week-level filter: the year conjunct still yields a (superset)
        // year range — the join re-applies the exact filter.
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_3)),
            Some((19940101, 19941231))
        );
        // Q3.4 filters d_yearmonth = Dec1997.
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q3_4)),
            Some((19971201, 19971231))
        );
    }

    #[test]
    fn no_hint_for_wide_or_absent_filters() {
        for id in [QueryId::Q2_1, QueryId::Q3_1, QueryId::Q4_1] {
            assert_eq!(date_range_hint(&ssb::query(id)), None, "{}", id.label());
        }
    }

    #[test]
    fn parse_yearmonth_cases() {
        assert_eq!(parse_yearmonth("Dec1997"), Some((1997, 12)));
        assert_eq!(parse_yearmonth("Jan1992"), Some((1992, 1)));
        assert_eq!(parse_yearmonth("xyz1997"), None);
        assert_eq!(parse_yearmonth("Dec97"), None);
    }

    #[test]
    fn prefiltered_view_scans_only_given_rows() {
        use hat_common::value::row_from;
        use hat_common::{Money, Value};
        let db = RowDb::new();
        let store = db.store(TableId::History);
        let mut rids = Vec::new();
        for i in 0..10u64 {
            rids.push(store.install_insert(
                row_from([
                    Value::U64(i),
                    Value::U32(0),
                    Value::Money(Money::ZERO),
                ]),
                2 + i, // increasing commit ts
            ));
        }
        // Hint rows 2,4,6; row 6 committed at ts 8 > snapshot 7 -> dropped.
        let view = PrefilteredView::new(&db, 7, TableId::History, &[2, 4, 6]);
        assert_eq!(view.fact_rows(), 2);
        let mut seen = Vec::new();
        view.scan(TableId::History, &mut |r| seen.push(r.u64(0)));
        assert_eq!(seen, vec![2, 4]);
        // Non-fact tables scan the row db normally.
        let mut n = 0;
        view.scan(TableId::Customer, &mut |_| n += 1);
        assert_eq!(n, 0);
    }
}
