//! Per-class overload admission control in front of the kernel.
//!
//! A closed-loop benchmark can never offer more load than its clients can
//! wait out; an open-loop one can, and then the only question is *where*
//! the excess dies. Without a gate it dies inside the engine: every
//! arriving request takes locks, allocates, queues on the WAL, and the
//! system congestion-collapses — classic metastable overload. The
//! [`AdmissionController`] moves that death to the front door.
//!
//! Two [`ClassGate`]s (transactional vs analytical) each enforce an
//! in-flight concurrency bound with a bounded wait queue behind it.
//! Shedding is CoDel-flavored: a queued request is shed when *its own
//! queue sojourn* exceeds the configured deadline budget — latency-aware,
//! unlike naive tail-drop which happily holds a standing queue at exactly
//! the cap forever. (Queue-full is kept only as a backstop so memory stays
//! bounded under any arrival rate.) Shed requests fail with the retryable
//! [`HatError::Overloaded`] *before* any engine work runs: nothing was
//! installed, nothing needs undoing, and the reject costs nanoseconds —
//! which is precisely what lets goodput recover once a burst ends.
//!
//! The transactional gate additionally acts as a circuit breaker over the
//! storage-health ladder of §6d: when the WAL is `Degraded`/`Recovering`,
//! queueing a write is queueing doomed work (it would shed at
//! [`DurabilityLayer::admit`](crate::durability::DurabilityLayer::admit)
//! after burning a queue slot and the caller's deadline budget), so the
//! gate sheds it immediately with the same `Degraded` error the WAL
//! would. Analytics are deliberately exempt: serving reads while storage
//! is unhappy is the whole point of the degradation ladder.
//!
//! The default [`AdmissionConfig`] disables both gates (unbounded
//! admission, zero queueing, zero overhead beyond two counter bumps), so
//! closed-loop benchmarks and existing tests behave exactly as before.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hat_common::telemetry::{names, Counter, Histogram, MetricsRegistry};
use hat_common::{HatError, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Knobs for the per-class admission gates. Part of
/// [`EngineConfig`](crate::api::EngineConfig); the default disables
/// admission control entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Transactional in-flight bound (`None` disables the T gate).
    pub txn_slots: Option<u32>,
    /// Analytical in-flight bound (`None` disables the A gate).
    pub query_slots: Option<u32>,
    /// Queued-waiter cap per gate — the memory-bound backstop. Sojourn
    /// shedding, not this, is the intended control surface.
    pub queue_cap: u32,
    /// Deadline budget for queue sojourn: a waiter still queued after
    /// this long is shed with [`HatError::Overloaded`].
    pub queue_deadline: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            txn_slots: None,
            query_slots: None,
            queue_cap: AdmissionConfig::DEFAULT_QUEUE_CAP,
            queue_deadline: AdmissionConfig::DEFAULT_QUEUE_DEADLINE,
        }
    }
}

impl AdmissionConfig {
    /// Default bounded-queue backstop per gate.
    pub const DEFAULT_QUEUE_CAP: u32 = 1024;
    /// Default queue-sojourn deadline budget.
    pub const DEFAULT_QUEUE_DEADLINE: Duration = Duration::from_millis(50);

    /// An enabled config bounding both classes (convenience for tests
    /// and the open-loop driver).
    pub fn bounded(txn_slots: u32, query_slots: u32) -> Self {
        AdmissionConfig {
            txn_slots: Some(txn_slots),
            query_slots: Some(query_slots),
            ..AdmissionConfig::default()
        }
    }

    /// Whether any gate is active.
    pub fn is_enabled(&self) -> bool {
        self.txn_slots.is_some() || self.query_slots.is_some()
    }
}

#[derive(Default)]
struct GateState {
    in_flight: u64,
    waiting: u64,
}

/// Sentinel for "gate disabled" in [`ClassGate::slots`] — no bound, no
/// queue, no lock taken.
const SLOTS_DISABLED: u64 = u64::MAX;

/// One class's gate: a concurrency bound, a bounded wait queue, and
/// sojourn-deadline shedding.
struct ClassGate {
    class: &'static str,
    /// Current in-flight bound; [`SLOTS_DISABLED`] means no gate. Atomic
    /// so the elastic scheduler can narrow or widen it at tick granularity
    /// without stalling admits; each `admit` reads it fresh, so a resize
    /// applies from the next admission decision (and to waiters mid-queue,
    /// which re-read it on every wake). Requests admitted while the gate
    /// was disabled hold no slot, so enabling a disabled gate mid-flight
    /// bounds only the requests arriving after the switch.
    slots: AtomicU64,
    queue_cap: u64,
    deadline: Duration,
    /// The breaker applies only to the write class (see module docs).
    breaker: bool,
    state: Mutex<GateState>,
    cv: Condvar,
    offered: Arc<Counter>,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    shed_breaker: Arc<Counter>,
    queue_wait: Arc<Histogram>,
}

impl ClassGate {
    fn admit(&self, healthy: bool) -> Result<AdmitPermit<'_>> {
        self.offered.inc();
        // Disabled gate: count offered/admitted (goodput accounting works
        // either way) but never queue, never shed, never take a lock.
        let slots = self.slots.load(Ordering::Relaxed);
        if slots == SLOTS_DISABLED {
            self.admitted.inc();
            return Ok(AdmitPermit { gate: None });
        }
        // Circuit breaker: degraded storage means a queued write is
        // doomed work — shed now, with the storage-cause error, instead
        // of spending queue budget to learn the same thing.
        if self.breaker && !healthy {
            self.shed_breaker.inc();
            return Err(HatError::Degraded);
        }
        let start = Instant::now();
        let mut st = self.state.lock();
        if st.in_flight < slots && st.waiting == 0 {
            st.in_flight += 1;
            drop(st);
            self.admitted.inc();
            self.queue_wait.record(0);
            return Ok(AdmitPermit { gate: Some(self) });
        }
        if st.waiting >= self.queue_cap {
            drop(st);
            self.shed.inc();
            return Err(HatError::Overloaded { class: self.class });
        }
        st.waiting += 1;
        loop {
            // Re-read the bound each wake: a concurrent resize (widening
            // under an elastic decision, or disabling the gate outright)
            // must free queued waiters without waiting out their deadline.
            if st.in_flight < self.slots.load(Ordering::Relaxed) {
                st.in_flight += 1;
                st.waiting -= 1;
                drop(st);
                self.admitted.inc();
                self.queue_wait.record(start.elapsed().as_nanos() as u64);
                return Ok(AdmitPermit { gate: Some(self) });
            }
            // Sojourn-deadline shed: this waiter has been queued longer
            // than the budget a caller is willing to spend waiting.
            let Some(remaining) = self.deadline.checked_sub(start.elapsed()) else {
                st.waiting -= 1;
                drop(st);
                self.shed.inc();
                return Err(HatError::Overloaded { class: self.class });
            };
            self.cv.wait_for(&mut st, remaining);
        }
    }

    fn release(&self) {
        let mut st = self.state.lock();
        st.in_flight -= 1;
        drop(st);
        self.cv.notify_one();
    }

    /// Live-resizes the in-flight bound (`None` disables the gate). A
    /// narrower bound does not evict requests already inside — it holds
    /// new admissions until in-flight drains below it. A wider (or
    /// disabled) bound wakes every queued waiter so they re-check.
    fn set_slots(&self, slots: Option<u64>) {
        self.slots.store(slots.unwrap_or(SLOTS_DISABLED), Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// The current in-flight bound, `None` when the gate is disabled.
    fn current_slots(&self) -> Option<u64> {
        match self.slots.load(Ordering::Relaxed) {
            SLOTS_DISABLED => None,
            n => Some(n),
        }
    }
}

/// RAII admission slot: holding one means the request is inside the
/// engine; dropping it frees the slot and wakes one queued waiter.
pub struct AdmitPermit<'a> {
    gate: Option<&'a ClassGate>,
}

impl std::fmt::Debug for AdmitPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmitPermit")
            .field("class", &self.gate.map(|g| g.class))
            .finish()
    }
}

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            gate.release();
        }
    }
}

/// The kernel's front door: one [`ClassGate`] per request class, counters
/// registered in the kernel's metrics registry so admission telemetry
/// flows through `RowKernel::metrics` like everything else.
pub struct AdmissionController {
    txn: ClassGate,
    query: ClassGate,
}

impl AdmissionController {
    pub fn new(config: &AdmissionConfig, registry: &MetricsRegistry) -> Self {
        let gate = |class: &'static str,
                    slots: Option<u32>,
                    breaker: bool,
                    offered: &str,
                    admitted: &str,
                    shed: &str,
                    shed_breaker: &str,
                    queue_wait: &str| ClassGate {
            class,
            slots: AtomicU64::new(slots.map(u64::from).unwrap_or(SLOTS_DISABLED)),
            queue_cap: u64::from(config.queue_cap),
            deadline: config.queue_deadline,
            breaker,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            offered: registry.counter(offered),
            admitted: registry.counter(admitted),
            shed: registry.counter(shed),
            shed_breaker: registry.counter(shed_breaker),
            queue_wait: registry.histogram(queue_wait),
        };
        AdmissionController {
            txn: gate(
                "txn",
                config.txn_slots,
                true,
                names::ADMIT_TXN_OFFERED,
                names::ADMIT_TXN_ADMITTED,
                names::ADMIT_TXN_SHED,
                names::ADMIT_TXN_SHED_BREAKER,
                names::ADMIT_TXN_QUEUE_WAIT,
            ),
            query: gate(
                "query",
                config.query_slots,
                false,
                names::ADMIT_QUERY_OFFERED,
                names::ADMIT_QUERY_ADMITTED,
                names::ADMIT_QUERY_SHED,
                names::ADMIT_QUERY_SHED_BREAKER,
                names::ADMIT_QUERY_QUEUE_WAIT,
            ),
        }
    }

    /// Gate in front of `RowKernel::commit`. `healthy` is the storage
    /// health ladder's position (`HealthState::Healthy`); off-Healthy
    /// trips the write-class circuit breaker.
    pub fn admit_txn(&self, healthy: bool) -> Result<AdmitPermit<'_>> {
        self.txn.admit(healthy)
    }

    /// Gate in front of `run_query_opts`. Analytics admit regardless of
    /// storage health (reads keep serving while the WAL is degraded).
    pub fn admit_query(&self) -> Result<AdmitPermit<'_>> {
        self.query.admit(true)
    }

    /// Live-resizes the transactional in-flight bound (see
    /// [`ClassGate::set_slots`]): the elastic scheduler's handle for
    /// narrowing T-side concurrency when cores move to analytics.
    pub fn set_txn_slots(&self, slots: Option<u32>) {
        self.txn.set_slots(slots.map(u64::from));
    }

    /// Live-resizes the analytical in-flight bound.
    pub fn set_query_slots(&self, slots: Option<u32>) {
        self.query.set_slots(slots.map(u64::from));
    }

    /// The current transactional bound (`None` = gate disabled).
    pub fn txn_slots(&self) -> Option<u64> {
        self.txn.current_slots()
    }

    /// The current analytical bound (`None` = gate disabled).
    pub fn query_slots(&self) -> Option<u64> {
        self.query.current_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn controller(config: &AdmissionConfig) -> (AdmissionController, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        (AdmissionController::new(config, &registry), registry)
    }

    #[test]
    fn disabled_gate_admits_everything_and_counts_offered() {
        let (ctl, registry) = controller(&AdmissionConfig::default());
        for _ in 0..100 {
            let p = ctl.admit_txn(true).unwrap();
            drop(p);
            ctl.admit_query().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::ADMIT_TXN_OFFERED), 100);
        assert_eq!(snap.counter(names::ADMIT_TXN_ADMITTED), 100);
        assert_eq!(snap.counter(names::ADMIT_QUERY_ADMITTED), 100);
        assert_eq!(snap.counter(names::ADMIT_TXN_SHED), 0);
        // Disabled gates never trip the breaker, even unhealthy.
        ctl.admit_txn(false).unwrap();
    }

    #[test]
    fn queue_overflow_is_shed_as_overloaded() {
        let config = AdmissionConfig {
            txn_slots: Some(1),
            queue_cap: 0,
            queue_deadline: Duration::from_secs(5),
            ..AdmissionConfig::default()
        };
        let (ctl, registry) = controller(&config);
        let held = ctl.admit_txn(true).unwrap();
        // Slot taken, zero queue: the next request sheds immediately.
        let err = ctl.admit_txn(true).unwrap_err();
        assert_eq!(err, HatError::Overloaded { class: "txn" });
        assert!(err.is_retryable() && !err.is_commit_in_doubt());
        drop(held);
        ctl.admit_txn(true).unwrap();
        assert_eq!(registry.snapshot().counter(names::ADMIT_TXN_SHED), 1);
    }

    #[test]
    fn sojourn_deadline_sheds_queued_waiter() {
        let config = AdmissionConfig {
            txn_slots: Some(1),
            queue_cap: 8,
            queue_deadline: Duration::from_millis(20),
            ..AdmissionConfig::default()
        };
        let (ctl, registry) = controller(&config);
        let _held = ctl.admit_txn(true).unwrap();
        let start = Instant::now();
        let err = ctl.admit_txn(true).unwrap_err();
        assert_eq!(err, HatError::Overloaded { class: "txn" });
        // Waited out its deadline budget, then shed — not tail-dropped.
        assert!(start.elapsed() >= Duration::from_millis(20));
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::ADMIT_TXN_SHED), 1);
        assert_eq!(snap.counter(names::ADMIT_TXN_ADMITTED), 1);
    }

    #[test]
    fn released_slot_wakes_queued_waiter_within_budget() {
        let config = AdmissionConfig {
            txn_slots: Some(1),
            queue_cap: 8,
            queue_deadline: Duration::from_secs(10),
            ..AdmissionConfig::default()
        };
        let (ctl, registry) = controller(&config);
        let ctl = Arc::new(ctl);
        let held = ctl.admit_txn(true).unwrap();
        let t = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || {
                let p = ctl.admit_txn(true).unwrap();
                drop(p);
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        t.join().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::ADMIT_TXN_ADMITTED), 2);
        assert_eq!(snap.counter(names::ADMIT_TXN_SHED), 0);
        // The queued waiter's wait time landed in the histogram.
        let waits = snap.histogram(names::ADMIT_TXN_QUEUE_WAIT).unwrap();
        assert_eq!(waits.count, 2);
    }

    #[test]
    fn breaker_sheds_writes_but_not_queries_when_degraded() {
        let config = AdmissionConfig::bounded(4, 4);
        let (ctl, registry) = controller(&config);
        let err = ctl.admit_txn(false).unwrap_err();
        // Storage-cause shed: Degraded, not Overloaded, so operators and
        // the harness attribute it to the disk, not to traffic.
        assert_eq!(err, HatError::Degraded);
        ctl.admit_query().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::ADMIT_TXN_SHED_BREAKER), 1);
        assert_eq!(snap.counter(names::ADMIT_TXN_SHED), 0);
        assert_eq!(snap.counter(names::ADMIT_QUERY_ADMITTED), 1);
    }

    #[test]
    fn live_resize_narrows_widens_and_disables_the_bound() {
        let config = AdmissionConfig {
            txn_slots: Some(2),
            queue_cap: 0,
            queue_deadline: Duration::from_millis(10),
            ..AdmissionConfig::default()
        };
        let (ctl, _registry) = controller(&config);
        let a = ctl.admit_txn(true).unwrap();
        let b = ctl.admit_txn(true).unwrap();
        // Narrowing to 1 does not evict the two in flight, but a release
        // leaves the gate full (in_flight 1 == slots 1).
        ctl.set_txn_slots(Some(1));
        assert_eq!(ctl.txn_slots(), Some(1));
        drop(b);
        let err = ctl.admit_txn(true).unwrap_err();
        assert_eq!(err, HatError::Overloaded { class: "txn" });
        // Widening reopens admission immediately.
        ctl.set_txn_slots(Some(3));
        let c = ctl.admit_txn(true).unwrap();
        drop(c);
        drop(a);
        // Disabling makes the gate unbounded again.
        ctl.set_txn_slots(None);
        assert_eq!(ctl.txn_slots(), None);
        let permits: Vec<_> = (0..32).map(|_| ctl.admit_txn(true).unwrap()).collect();
        drop(permits);
    }

    #[test]
    fn widening_wakes_queued_waiters_before_their_deadline() {
        let config = AdmissionConfig {
            txn_slots: Some(1),
            queue_cap: 8,
            queue_deadline: Duration::from_secs(10),
            ..AdmissionConfig::default()
        };
        let (ctl, registry) = controller(&config);
        let ctl = Arc::new(ctl);
        let _held = ctl.admit_txn(true).unwrap();
        let t = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || {
                let p = ctl.admit_txn(true).unwrap();
                drop(p);
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        // The waiter is queued behind the held slot; widening the bound
        // (an elastic decision granting T a core) must free it without
        // waiting for the holder to release.
        ctl.set_txn_slots(Some(2));
        t.join().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::ADMIT_TXN_ADMITTED), 2);
        assert_eq!(snap.counter(names::ADMIT_TXN_SHED), 0);
    }

    #[test]
    fn concurrency_never_exceeds_slots_under_contention() {
        let config = AdmissionConfig {
            txn_slots: Some(3),
            queue_cap: 64,
            queue_deadline: Duration::from_secs(10),
            ..AdmissionConfig::default()
        };
        let (ctl, _registry) = controller(&config);
        let ctl = Arc::new(ctl);
        let inside = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let (ctl, inside, peak) =
                    (Arc::clone(&ctl), Arc::clone(&inside), Arc::clone(&peak));
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let p = ctl.admit_txn(true).unwrap();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        inside.fetch_sub(1, Ordering::SeqCst);
                        drop(p);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "in-flight bound violated");
    }
}
