//! The engine-facing API the HATtrick workload drives.
//!
//! A [`Session`] is a single in-flight transaction offering typed point
//! operations (index lookups, reads, buffered writes); [`HtapEngine`] adds
//! bulk load, analytical query execution, benchmark reset, and stats. The
//! workload crate is written once against these traits and runs unchanged
//! on every engine design.

use hat_common::telemetry::{names, MetricsSnapshot};
use hat_common::{ColId, Result, Row, TableId};
use hat_query::exec::{QueryOpts, QueryOutput};
use hat_query::spec::QuerySpec;
use hat_storage::rowstore::RowId;
use hat_txn::{IsolationLevel, LockPolicy, Ts};

pub use crate::admission::AdmissionConfig;
pub use crate::durability::DurabilityMode;

/// Which B+tree indexes exist — the paper's "physical schemas" experiment
/// (Figure 6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexProfile {
    /// No indexes at all: every lookup is a scan.
    None,
    /// Indexes that accelerate only the T workload: primary keys, the name
    /// secondaries, and the lineorder-by-customer index.
    Semi,
    /// Everything in `Semi` plus the lineorder-by-orderdate index, which
    /// also accelerates the date-filtered analytical queries.
    #[default]
    All,
}

impl IndexProfile {
    /// Label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            IndexProfile::None => "no-indexes",
            IndexProfile::Semi => "semi-indexes",
            IndexProfile::All => "all-indexes",
        }
    }

    /// Whether T-accelerating indexes exist.
    pub fn has_txn_indexes(self) -> bool {
        !matches!(self, IndexProfile::None)
    }

    /// Whether the analytical orderdate index exists.
    pub fn has_analytic_indexes(self) -> bool {
        matches!(self, IndexProfile::All)
    }
}

/// Engine-independent configuration.
///
/// Construct via [`EngineConfig::builder`] (or start from
/// [`EngineConfig::default`] and adjust fields): the struct is
/// `#[non_exhaustive]`, so field-struct literals outside this crate no
/// longer compile — future knobs then never churn call sites.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    pub isolation: IsolationLevel,
    pub indexes: IndexProfile,
    /// Commit shards the transactional kernel is split across. Each shard
    /// owns its own commit critical section, lock-table stripe,
    /// group-commit queue, and (under `Fsync`) WAL stream; a transaction
    /// whose write set routes to one shard commits entirely under that
    /// shard's lock, while cross-shard write sets pay an epoch-based 2PC
    /// round over every touched shard. `1` (the default) reproduces the
    /// single-oracle kernel exactly.
    pub shards: u32,
    /// Write-lock conflict policy (no-wait vs wait-die ablation).
    pub lock_policy: LockPolicy,
    /// How commits become durable, paid after installation outside the
    /// commit critical section. Real engines pay this on every commit; it
    /// is also what makes the transactional workload scale with clients
    /// instead of saturating at one (clients overlap their flush waits).
    /// The default models an SSD-class group-commit flush as a coalesced
    /// sleep; [`DurabilityMode::Fsync`] runs a real on-disk WAL.
    pub durability: DurabilityMode,
    /// Cadence of the background MVCC vacuum thread that reclaims row
    /// versions below the oldest active snapshot. `None` disables vacuum
    /// entirely — version chains then grow for the life of the run, which
    /// is the pre-vacuum behavior and still useful as an ablation.
    pub vacuum_interval: Option<std::time::Duration>,
    /// Per-class overload admission gates in front of commit and query
    /// execution. Disabled by default (unbounded admission), which is
    /// correct for closed-loop runs: their client count already bounds
    /// concurrency. Open-loop runs enable it so offered load beyond
    /// capacity is shed at the front door instead of collapsing the
    /// engine.
    pub admission: AdmissionConfig,
}

impl EngineConfig {
    /// Default commit durability latency (an SSD-class WAL flush).
    pub const DEFAULT_COMMIT_LATENCY: std::time::Duration =
        std::time::Duration::from_micros(100);

    /// Default background-vacuum cadence. Frequent enough that candidate
    /// sets stay small (cost tracks update rate) while staying invisible
    /// next to commit and query work.
    pub const DEFAULT_VACUUM_INTERVAL: std::time::Duration =
        std::time::Duration::from_millis(25);

    /// Convenience: this config with durability waits disabled (tests).
    pub fn without_durability(mut self) -> Self {
        self.durability = DurabilityMode::Off;
        self
    }

    /// Starts a builder seeded with the paper-baseline defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

/// Builder for [`EngineConfig`] — the supported way to construct one
/// outside this crate. Every setter defaults to the paper baseline
/// ([`EngineConfig::default`]).
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Transaction isolation level.
    pub fn isolation(mut self, isolation: IsolationLevel) -> Self {
        self.config.isolation = isolation;
        self
    }

    /// Physical index schema.
    pub fn indexes(mut self, indexes: IndexProfile) -> Self {
        self.config.indexes = indexes;
        self
    }

    /// Commit-shard count (clamped to at least 1).
    pub fn shards(mut self, shards: u32) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Write-lock conflict policy.
    pub fn lock_policy(mut self, lock_policy: LockPolicy) -> Self {
        self.config.lock_policy = lock_policy;
        self
    }

    /// Commit durability mode.
    pub fn durability(mut self, durability: DurabilityMode) -> Self {
        self.config.durability = durability;
        self
    }

    /// Background vacuum cadence.
    pub fn vacuum_interval(mut self, interval: std::time::Duration) -> Self {
        self.config.vacuum_interval = Some(interval);
        self
    }

    /// Disables the background vacuum thread (version chains grow
    /// unboundedly — the pre-vacuum ablation).
    pub fn no_vacuum(mut self) -> Self {
        self.config.vacuum_interval = None;
        self
    }

    /// Overload admission gates (disabled by default).
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.config.admission = admission;
        self
    }

    /// Finalizes the config.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            isolation: IsolationLevel::Serializable,
            indexes: IndexProfile::All,
            shards: 1,
            lock_policy: LockPolicy::NoWait,
            durability: DurabilityMode::SleepDefault,
            vacuum_interval: Some(EngineConfig::DEFAULT_VACUUM_INTERVAL),
            admission: AdmissionConfig::default(),
        }
    }
}

/// The architecture categories of §2.2, used as ground truth for the
/// frontier-shape classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignCategory {
    Shared,
    Isolated,
    Hybrid,
}

impl DesignCategory {
    /// Label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            DesignCategory::Shared => "shared",
            DesignCategory::Isolated => "isolated",
            DesignCategory::Hybrid => "hybrid",
        }
    }
}

/// Named secondary-access paths the workload can probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamedIndex {
    /// `c_custkey -> rid`
    CustomerPk,
    /// `c_name -> rid`
    CustomerName,
    /// `s_suppkey -> rid`
    SupplierPk,
    /// `s_name -> rid`
    SupplierName,
    /// `p_partkey -> rid`
    PartPk,
    /// `d_datekey -> rid`
    DatePk,
    /// `(lo_custkey, rid)` composite — prefix counting for Count Orders.
    LineorderByCustomer,
}

/// Point-in-time counters an engine exposes.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    pub commits: u64,
    pub aborts: u64,
    pub queries: u64,
    /// Isolated engine: records shipped but not yet applied by the replica.
    pub replication_backlog: u64,
    /// Hybrid engines: rows currently in the columnar delta.
    pub delta_rows: u64,
    /// Commits whose synchronous-replication wait timed out (the
    /// committed-in-doubt outcomes of [`HatError::ReplicationTimeout`]).
    /// A subset of `commits`.
    ///
    /// [`HatError::ReplicationTimeout`]: hat_common::HatError::ReplicationTimeout
    pub replication_timeouts: u64,
    /// Commits whose write set spanned more than one commit shard (each
    /// paid the cross-shard 2PC round). Zero at `shards = 1` and on
    /// shard-local workloads. A subset of `commits`.
    pub xshard_commits: u64,
    /// Durability-layer flushes: real fsyncs in `Fsync` mode, simulated
    /// group-commit flushes in `Sleep` mode. Zero when durability is off.
    pub fsyncs: u64,
    /// Median commits acknowledged per durability flush (group-commit
    /// batch size). `1.0` means no coalescing happened.
    pub group_commit_p50: f64,
    /// 99th-percentile group-commit batch size.
    pub group_commit_p99: f64,
    /// WAL records replayed from disk when the engine started (zero
    /// unless `Fsync` mode recovered an existing WAL directory).
    pub recovery_replayed_records: u64,
    /// Torn (partially written) trailing records truncated during
    /// recovery. Nonzero after a crash mid-write; always safe.
    pub torn_tail_truncations: u64,
    /// Fact-table morsels scanned by analytical probes (cumulative).
    pub morsels_scanned: u64,
    /// Morsels skipped via date zone maps before scanning (cumulative).
    pub morsels_pruned: u64,
    /// Total probe-phase wall time across queries, nanoseconds.
    pub probe_nanos: u64,
    /// Largest probe worker count any query ran with (0 = no queries yet).
    pub probe_workers_max: u32,
    /// Aggregates clamped at the `i64` boundary instead of wrapping.
    pub agg_saturations: u64,
    /// Background vacuum passes completed since engine start.
    pub vacuum_passes: u64,
    /// Row versions reclaimed by vacuum (cumulative, all tables).
    pub versions_pruned: u64,
    /// Live MVCC versions across every row chain right now. Under a
    /// vacuum thread this plateaus; without one it grows with every
    /// update for the life of the run.
    pub live_versions: u64,
    /// Storage-health ladder position: 0 Healthy, 1 Degraded, 2
    /// Recovering (always 0 without a real WAL).
    pub health: u64,
    /// Commits shed pre-install by admission control (degraded WAL or
    /// full group-commit backlog); each surfaced as a retryable
    /// [`HatError::Degraded`](hat_common::HatError).
    pub shed_commits: u64,
    /// Scrubber ticks spent below `Healthy` — the degradation dwell time.
    pub degraded_ticks: u64,
    /// Faults the injection layer actually fired (zero outside chaos runs).
    pub disk_faults: u64,
    /// Scrub passes (re-verification sweeps over sealed segments).
    pub scrub_passes: u64,
    /// WAL segments quarantined after a failed write/fsync.
    pub quarantined_segments: u64,
    /// Transactions that reached the admission gate (admitted + shed).
    pub admit_txn_offered: u64,
    /// Transactions shed at the gate by overload (queue sojourn over the
    /// deadline budget, or queue overflow) — the *traffic* cause,
    /// distinct from the storage-cause `shed_commits`.
    pub admit_txn_shed: u64,
    /// Queries that reached the admission gate.
    pub admit_query_offered: u64,
    /// Queries shed at the gate by overload.
    pub admit_query_shed: u64,
    /// Writes shed by the admission circuit breaker because storage
    /// health was off `Healthy` (disk cause, surfaced as `Degraded`).
    pub admit_breaker_sheds: u64,
}

impl EngineStats {
    /// Derives the flat legacy view from a [`MetricsSnapshot`]. This is
    /// the *only* place metric names map to struct fields; everything
    /// else reads the snapshot by name.
    pub fn from_metrics(m: &MetricsSnapshot) -> EngineStats {
        let batches = m.histogram(names::WAL_GROUP_COMMIT_BATCH);
        EngineStats {
            commits: m.counter(names::TXN_COMMITS),
            aborts: m.counter(names::TXN_ABORTS),
            queries: m.counter(names::QUERIES),
            replication_backlog: m.gauge(names::REPL_BACKLOG),
            delta_rows: m.gauge(names::DELTA_ROWS),
            replication_timeouts: m.counter(names::TXN_REPL_TIMEOUTS),
            xshard_commits: m.counter(names::TXN_XSHARD_COMMITS),
            fsyncs: m.counter(names::WAL_FSYNCS),
            group_commit_p50: batches.map_or(0.0, |h| h.quantile(0.50) as f64),
            group_commit_p99: batches.map_or(0.0, |h| h.quantile(0.99) as f64),
            recovery_replayed_records: m.counter(names::WAL_RECOVERY_REPLAYED),
            torn_tail_truncations: m.counter(names::WAL_TORN_TAILS),
            morsels_scanned: m.counter(names::MORSELS_SCANNED),
            morsels_pruned: m.counter(names::MORSELS_PRUNED),
            probe_nanos: m.counter(names::PROBE_NANOS),
            probe_workers_max: m.gauge(names::PROBE_WORKERS_MAX) as u32,
            agg_saturations: m.counter(names::AGG_SATURATIONS),
            vacuum_passes: m.counter(names::VACUUM_PASSES),
            versions_pruned: m.counter(names::VACUUM_VERSIONS_PRUNED),
            live_versions: m.gauge(names::LIVE_VERSIONS),
            health: m.gauge(names::HEALTH_STATE),
            shed_commits: m.counter(names::WAL_SHED_COMMITS),
            degraded_ticks: m.counter(names::HEALTH_DEGRADED_TICKS),
            disk_faults: m.counter(names::DISK_FAULTS),
            scrub_passes: m.counter(names::WAL_SCRUB_PASSES),
            quarantined_segments: m.counter(names::WAL_QUARANTINED),
            admit_txn_offered: m.counter(names::ADMIT_TXN_OFFERED),
            admit_txn_shed: m.counter(names::ADMIT_TXN_SHED),
            admit_query_offered: m.counter(names::ADMIT_QUERY_OFFERED),
            admit_query_shed: m.counter(names::ADMIT_QUERY_SHED),
            admit_breaker_sheds: m.counter(names::ADMIT_TXN_SHED_BREAKER)
                + m.counter(names::ADMIT_QUERY_SHED_BREAKER),
        }
    }
}

/// Why an acknowledged commit is still *in doubt* somewhere downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InDoubtCause {
    /// The synchronous-replication wait timed out after the transaction
    /// installed on the primary: durable locally, unconfirmed at the
    /// replica (the old [`HatError::ReplicationTimeout`] outcome).
    ///
    /// [`HatError::ReplicationTimeout`]: hat_common::HatError::ReplicationTimeout
    Replication,
    /// A storage fault voided the durability wait after install: the
    /// commit stays visible and its WAL frame is re-queued, but the
    /// acknowledgement never confirmed disk (the old
    /// [`HatError::DurabilityInDoubt`] outcome).
    ///
    /// [`HatError::DurabilityInDoubt`]: hat_common::HatError::DurabilityInDoubt
    Durability,
}

/// How durable/confirmed a successful commit is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitDurability {
    /// Fully acknowledged: installed, durable per the engine's mode, and
    /// (where applicable) replicated.
    Acked,
    /// Installed and visible, but some acknowledgement never arrived. The
    /// client must treat the transaction as committed — re-executing it
    /// would double-apply — while accounting it separately from clean
    /// acks.
    InDoubt(InDoubtCause),
}

/// What [`Session::commit`] returns: the commit timestamp plus an honest
/// durability verdict. Committed-in-doubt outcomes used to be smuggled
/// through the error enum (`Err(ReplicationTimeout)` *after* the commit
/// installed); they are now `Ok` with [`CommitDurability::InDoubt`], so
/// `Err` from commit always means *not installed*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an InDoubt receipt must not be treated as a clean ack"]
pub struct CommitReceipt {
    /// The commit timestamp (begin snapshot for read-only transactions).
    pub ts: Ts,
    /// Whether the acknowledgement is clean or in doubt.
    pub durability: CommitDurability,
}

impl CommitReceipt {
    /// A cleanly acknowledged commit at `ts`.
    pub fn acked(ts: Ts) -> Self {
        CommitReceipt { ts, durability: CommitDurability::Acked }
    }

    /// A committed-in-doubt outcome at `ts`.
    pub fn in_doubt(ts: Ts, cause: InDoubtCause) -> Self {
        CommitReceipt { ts, durability: CommitDurability::InDoubt(cause) }
    }

    /// Whether the commit was cleanly acknowledged.
    pub fn is_acked(&self) -> bool {
        self.durability == CommitDurability::Acked
    }
}

/// One in-flight transaction.
///
/// All reads observe the session's isolation level; all writes are buffered
/// and installed atomically at [`Session::commit`].
pub trait Session {
    /// Point lookup through a `u32`-keyed index (or a scan fallback when
    /// the index doesn't exist in the current [`IndexProfile`]).
    fn lookup_u32(&mut self, index: NamedIndex, key: u32) -> Result<Option<(RowId, Row)>>;

    /// Point lookup through a string-keyed index (or scan fallback).
    fn lookup_str(&mut self, index: NamedIndex, key: &str) -> Result<Option<(RowId, Row)>>;

    /// Counts visible fact rows with `lo_custkey = key` via the composite
    /// index (or a full fact scan when absent — the Count Orders
    /// transaction's cost under `IndexProfile::None`).
    fn count_orders(&mut self, custkey: u32) -> Result<u64>;

    /// Reads one row by id.
    fn read(&mut self, table: TableId, rid: RowId) -> Result<Option<Row>>;

    /// Buffers an insert.
    fn insert(&mut self, table: TableId, row: Row) -> Result<()>;

    /// Locks `rid` and buffers an update. Fails fast on write conflict.
    fn update(&mut self, table: TableId, rid: RowId, row: Row) -> Result<()>;

    /// Scan-based point lookup on an arbitrary `u32` column (no-index
    /// fallback; exposed for tests and custom workloads).
    fn scan_lookup_u32(
        &mut self,
        table: TableId,
        col: ColId,
        key: u32,
    ) -> Result<Option<(RowId, Row)>>;

    /// Commits. `Ok` means the transaction installed — inspect the
    /// receipt's [`CommitDurability`] for in-doubt acknowledgements.
    /// `Err` always means nothing installed (clean abort or shed).
    fn commit(self: Box<Self>) -> Result<CommitReceipt>;

    /// Aborts, releasing all locks.
    fn abort(self: Box<Self>);
}

/// An HTAP engine under test.
pub trait HtapEngine: Send + Sync {
    /// Engine name used in reports ("postgres-like", "tidb-like", ...).
    fn name(&self) -> String;

    /// The architecture category this engine implements (ground truth).
    fn design(&self) -> DesignCategory;

    /// Bulk-loads rows into `table` at the load timestamp, building
    /// indexes. Must be called before any traffic.
    fn load(&self, table: TableId, rows: &mut dyn Iterator<Item = Row>) -> Result<()>;

    /// Finishes loading: seals columnar segments, starts background
    /// workers, records loaded sizes for [`HtapEngine::reset`].
    fn finish_load(&self) -> Result<()>;

    /// Starts a transactional session.
    fn begin(&self) -> Box<dyn Session + '_>;

    /// Runs one analytical query at the engine's freshest available
    /// snapshot, per its design (shared: current snapshot; isolated:
    /// replica's applied horizon; hybrid: merge/wait then read), with
    /// explicit execution options (probe parallelism). Results are
    /// bit-identical across option values. Pass `&QueryOpts::default()`
    /// for the serial probe.
    fn query(&self, spec: &QuerySpec, opts: &QueryOpts) -> Result<QueryOutput>;

    /// Deprecated wrapper: [`HtapEngine::query`] with default options.
    #[deprecated(note = "use `query(spec, &QueryOpts::default())`")]
    fn run_query(&self, spec: &QuerySpec) -> Result<QueryOutput> {
        self.query(spec, &QueryOpts::default())
    }

    /// Restores the data to its initial post-load state (the paper resets
    /// before each benchmark run, §6.1). Must be called with no concurrent
    /// traffic.
    fn reset(&self) -> Result<()>;

    /// One diffable, serializable snapshot of every metric the engine
    /// tracks: kernel counters, span histograms, durability counters, and
    /// the engine's own gauges (replication backlog, delta rows). The
    /// harness diffs successive snapshots for measurement windows and
    /// time-series sampling.
    fn metrics(&self) -> MetricsSnapshot;

    /// Flat legacy view of [`HtapEngine::metrics`].
    fn stats(&self) -> EngineStats {
        EngineStats::from_metrics(&self.metrics())
    }

    /// Elastic-scheduling hook: resize the engine's transactional
    /// admission bounds to reflect `t_cores` of a `total`-core budget
    /// (see [`CoreBudget`](crate::budget::CoreBudget)). Engines scale
    /// their configured commit in-flight bounds proportionally; the
    /// default is a no-op so engines without a resizable admission gate
    /// simply ignore T-side elastic decisions. Never evicts in-flight
    /// work — a narrower bound drains, it does not preempt.
    fn set_txn_cores(&self, t_cores: u32, total: u32) {
        let _ = (t_cores, total);
    }
}

/// Blanket helper: a handle bundling an engine reference (used by client
/// drivers; object-safe).
pub type TxnHandle<'a> = Box<dyn Session + 'a>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_profiles() {
        assert!(!IndexProfile::None.has_txn_indexes());
        assert!(IndexProfile::Semi.has_txn_indexes());
        assert!(!IndexProfile::Semi.has_analytic_indexes());
        assert!(IndexProfile::All.has_analytic_indexes());
        assert_eq!(IndexProfile::default(), IndexProfile::All);
    }

    #[test]
    fn default_config_matches_paper_baseline() {
        // §6.2 baseline: serializable isolation, all indexes.
        let c = EngineConfig::default();
        assert_eq!(c.isolation, IsolationLevel::Serializable);
        assert_eq!(c.indexes, IndexProfile::All);
        // Commits pay a durability wait by default (Sleep group commit at
        // the SSD-class latency) so throughput numbers stay honest.
        assert!(!c.durability.is_off());
        assert_eq!(
            c.durability.resolved(),
            DurabilityMode::Sleep(EngineConfig::DEFAULT_COMMIT_LATENCY)
        );
        assert_eq!(c.lock_policy, LockPolicy::NoWait);
        assert_eq!(c.shards, 1, "single-shard kernel is the baseline");
        // Admission control is off by default: closed-loop runs bound
        // concurrency by client count already.
        assert!(!c.admission.is_enabled());
        assert_eq!(c.without_durability().durability, DurabilityMode::Off);
    }

    #[test]
    fn builder_covers_every_knob_and_defaults_to_baseline() {
        let c = EngineConfig::builder().build();
        let d = EngineConfig::default();
        assert_eq!(c.isolation, d.isolation);
        assert_eq!(c.indexes, d.indexes);
        assert_eq!(c.lock_policy, d.lock_policy);
        assert_eq!(c.durability, d.durability);
        assert_eq!(c.vacuum_interval, d.vacuum_interval);
        assert_eq!(
            d.vacuum_interval,
            Some(EngineConfig::DEFAULT_VACUUM_INTERVAL),
            "vacuum is on by default"
        );

        let c = EngineConfig::builder()
            .isolation(IsolationLevel::ReadCommitted)
            .indexes(IndexProfile::Semi)
            .lock_policy(LockPolicy::WaitDie)
            .durability(DurabilityMode::Off)
            .vacuum_interval(std::time::Duration::from_millis(3))
            .build();
        assert_eq!(c.isolation, IsolationLevel::ReadCommitted);
        assert_eq!(c.indexes, IndexProfile::Semi);
        assert_eq!(c.lock_policy, LockPolicy::WaitDie);
        assert!(c.durability.is_off());
        assert_eq!(c.vacuum_interval, Some(std::time::Duration::from_millis(3)));
        assert_eq!(EngineConfig::builder().no_vacuum().build().vacuum_interval, None);

        let c = EngineConfig::builder().admission(AdmissionConfig::bounded(8, 2)).build();
        assert!(c.admission.is_enabled());
        assert_eq!(c.admission.txn_slots, Some(8));
        assert_eq!(c.admission.query_slots, Some(2));

        let c = EngineConfig::builder().shards(4).build();
        assert_eq!(c.shards, 4);
        assert_eq!(EngineConfig::builder().shards(0).build().shards, 1, "clamped");
    }

    #[test]
    fn commit_receipt_classification() {
        let acked = CommitReceipt::acked(42);
        assert!(acked.is_acked());
        assert_eq!(acked.ts, 42);
        let doubt = CommitReceipt::in_doubt(43, InDoubtCause::Replication);
        assert!(!doubt.is_acked());
        assert_eq!(doubt.durability, CommitDurability::InDoubt(InDoubtCause::Replication));
        let doubt = CommitReceipt::in_doubt(44, InDoubtCause::Durability);
        assert_eq!(doubt.durability, CommitDurability::InDoubt(InDoubtCause::Durability));
    }

    #[test]
    fn design_labels() {
        assert_eq!(DesignCategory::Shared.label(), "shared");
        assert_eq!(DesignCategory::Isolated.label(), "isolated");
        assert_eq!(DesignCategory::Hybrid.label(), "hybrid");
    }
}
