//! The kernel's durability layer: what a commit pays between version
//! installation and acknowledgement.
//!
//! [`DurabilityMode`] selects the model. `Off` acknowledges immediately
//! (an in-memory engine). `Sleep` models a WAL flush as a fixed latency —
//! but *coalesced*: concurrent waiters share one simulated flush instead
//! of each sleeping the full latency, matching how group commit amortizes
//! the fsync (PostgreSQL's `commit_delay` batching, §6.3). `Fsync` is the
//! real thing: records go to the on-disk [`DurableWal`] and the commit
//! blocks until its group-commit flusher has fsynced them.

use std::sync::Arc;
use std::time::Duration;

use hat_common::telemetry::Histogram;
use hat_common::Result;
use hat_storage::dwal::{DurableWal, DurableWalStats, HealthState, WalConfig, WalRecovery};
use hat_storage::wal::TableOp;
use hat_txn::Ts;
use parking_lot::{Condvar, Mutex};

/// How commits become durable. Part of
/// [`EngineConfig`](crate::api::EngineConfig).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum DurabilityMode {
    /// No durability wait at all: commits acknowledge as soon as they are
    /// installed. Raw in-memory speed; used by tests and ablations.
    Off,
    /// Model the WAL flush as a group-commit coalesced sleep of the given
    /// duration. The benchmark default — it prices durability without
    /// doing I/O, keeping runs reproducible across storage hardware.
    Sleep(Duration),
    /// A real on-disk WAL: checksummed segments, one fsync per batch of
    /// concurrent commits, checkpoints, and crash recovery.
    Fsync(WalConfig),
    /// `Sleep` at the default latency (stable `Default` for configs).
    #[default]
    SleepDefault,
}

impl DurabilityMode {
    /// Resolves [`DurabilityMode::SleepDefault`] to a concrete sleep.
    pub fn resolved(&self) -> DurabilityMode {
        match self {
            DurabilityMode::SleepDefault => {
                DurabilityMode::Sleep(crate::api::EngineConfig::DEFAULT_COMMIT_LATENCY)
            }
            other => other.clone(),
        }
    }

    /// Whether commits pay any durability wait at all.
    pub fn is_off(&self) -> bool {
        matches!(self.resolved(), DurabilityMode::Off)
            || matches!(self.resolved(), DurabilityMode::Sleep(d) if d.is_zero())
    }
}

/// Group-commit coalescing for `Sleep` mode.
///
/// Waiters gather behind a *leader*: the first waiter of an epoch sleeps
/// the full latency (the simulated flush), then publishes the epoch as
/// durable and wakes everyone who joined while it slept. A commit that
/// arrives mid-flush joins the *next* epoch — exactly the "my record must
/// be covered by a flush that started after my append" rule of a real
/// group commit, so the worst case is two flush durations and the common
/// loaded case is `latency / batch`.
struct SleepGroupCommit {
    latency: Duration,
    state: Mutex<SleepState>,
    cv: Condvar,
    /// Waiters per simulated flush (lock-free; read by `stats`).
    batch_hist: Histogram,
}

#[derive(Default)]
struct SleepState {
    /// Epoch currently being flushed (or about to be).
    epoch: u64,
    /// Highest epoch whose flush completed.
    durable_epoch: u64,
    /// Whether a leader is mid-flush.
    leader_active: bool,
    /// Waiters enrolled in the pending (not yet flushing) epoch.
    enrolled: u64,
    flushes: u64,
}

impl SleepGroupCommit {
    fn new(latency: Duration) -> Self {
        SleepGroupCommit {
            latency,
            state: Mutex::new(SleepState::default()),
            cv: Condvar::new(),
            batch_hist: Histogram::new(),
        }
    }

    /// Waits for the simulated flush covering this commit.
    fn wait(&self) {
        let mut st = self.state.lock();
        // Enroll in the next epoch to start flushing.
        let my_epoch = st.epoch + 1;
        st.enrolled += 1;
        loop {
            if st.durable_epoch >= my_epoch {
                return;
            }
            if !st.leader_active {
                // Become the leader: flush everyone enrolled so far.
                st.leader_active = true;
                st.epoch = my_epoch;
                let batch = st.enrolled;
                st.enrolled = 0;
                drop(st);
                std::thread::sleep(self.latency);
                st = self.state.lock();
                st.durable_epoch = st.epoch;
                st.leader_active = false;
                st.flushes += 1;
                self.batch_hist.record(batch);
                self.cv.notify_all();
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    fn stats(&self) -> DurableWalStats {
        let batches = self.batch_hist.snapshot();
        let flushes = self.state.lock().flushes;
        DurableWalStats {
            fsyncs: flushes,
            group_commit_p50: batches.quantile(0.50) as f64,
            group_commit_p99: batches.quantile(0.99) as f64,
            group_commit_batches: batches,
            ..DurableWalStats::default()
        }
    }
}

/// The runtime object behind a [`DurabilityMode`], held by the kernel.
pub enum DurabilityLayer {
    Off,
    Sleep(SleepGroupCommitHandle),
    Fsync(Arc<DurableWal>),
}

/// Public wrapper keeping [`SleepGroupCommit`] private.
pub struct SleepGroupCommitHandle(SleepGroupCommit);

impl DurabilityLayer {
    /// Builds the layer; for `Fsync` this opens the WAL directory and
    /// runs recovery, returning what was found for the kernel to replay.
    pub fn open(mode: &DurabilityMode) -> Result<(Self, Option<WalRecovery>)> {
        Ok(match mode.resolved() {
            DurabilityMode::Off => (DurabilityLayer::Off, None),
            DurabilityMode::Sleep(latency) if latency.is_zero() => {
                (DurabilityLayer::Off, None)
            }
            DurabilityMode::Sleep(latency) => (
                DurabilityLayer::Sleep(SleepGroupCommitHandle(SleepGroupCommit::new(
                    latency,
                ))),
                None,
            ),
            DurabilityMode::Fsync(config) => {
                let (wal, recovery) = DurableWal::open(config)?;
                (DurabilityLayer::Fsync(wal), Some(recovery))
            }
            DurabilityMode::SleepDefault => unreachable!("resolved above"),
        })
    }

    /// Logs the commit record. Must run inside the commit critical
    /// section so WAL order equals commit-timestamp order. Returns the
    /// token [`DurabilityLayer::wait`] blocks on.
    pub fn log(&self, commit_ts: Ts, ops: &[TableOp]) -> Result<u64> {
        self.log_with(commit_ts, ops, &[])
    }

    /// [`DurabilityLayer::log`] with an explicit cross-shard participant
    /// set stamped into the record (empty for single-shard commits). The
    /// record goes to *this* layer's stream only — for a cross-shard
    /// commit that must be the coordinator's, whose durable prefix is the
    /// sole arbiter of the transaction's fate at recovery.
    pub fn log_with(&self, commit_ts: Ts, ops: &[TableOp], participants: &[u8]) -> Result<u64> {
        match self {
            DurabilityLayer::Off | DurabilityLayer::Sleep(_) => Ok(0),
            DurabilityLayer::Fsync(wal) => wal.append_with(commit_ts, ops, participants),
        }
    }

    /// Blocks until the commit is durable (outside the critical section,
    /// so concurrent commits share the flush). The versions are already
    /// installed by this point, so a storage fault here surfaces as the
    /// commit-in-doubt
    /// [`HatError::DurabilityInDoubt`](hat_common::HatError) — never as
    /// the clean-abort `Degraded` that [`DurabilityLayer::admit`] uses.
    pub fn wait(&self, token: u64) -> Result<()> {
        match self {
            DurabilityLayer::Off => Ok(()),
            DurabilityLayer::Sleep(h) => {
                h.0.wait();
                Ok(())
            }
            DurabilityLayer::Fsync(wal) => wal.wait_durable(token),
        }
    }

    /// The on-disk WAL, when one exists.
    pub fn wal(&self) -> Option<&Arc<DurableWal>> {
        match self {
            DurabilityLayer::Fsync(wal) => Some(wal),
            _ => None,
        }
    }

    /// Admission control for a commit about to install: sheds it with a
    /// retryable [`HatError::Degraded`](hat_common::HatError) (or a
    /// terminal `Quarantined`) when the WAL is unhealthy or its backlog
    /// is full. Modes without a real WAL admit everything.
    pub fn admit(&self) -> hat_common::Result<()> {
        match self {
            DurabilityLayer::Fsync(wal) => wal.admit(),
            _ => Ok(()),
        }
    }

    /// Position on the storage-health ladder (`Healthy` without a WAL).
    pub fn health(&self) -> HealthState {
        match self {
            DurabilityLayer::Fsync(wal) => wal.health(),
            _ => HealthState::Healthy,
        }
    }

    /// Durability counters (zeroes for `Off`).
    pub fn stats(&self) -> DurableWalStats {
        match self {
            DurabilityLayer::Off => DurableWalStats::default(),
            DurabilityLayer::Sleep(h) => h.0.stats(),
            DurabilityLayer::Fsync(wal) => wal.stats(),
        }
    }
}

/// Per-shard durability: one [`DurabilityLayer`] per commit shard, so each
/// shard owns its own group-commit queue and (under `Fsync`) WAL stream.
///
/// * `shards == 1` — a single layer on the configured directory, exactly
///   the pre-sharding layout (old WAL directories recover unchanged).
/// * `shards > 1`, `Fsync` — shard `s` logs to `dir/shard-s`. Shard 0's
///   stream additionally carries the full data checkpoint; shards 1..N
///   write empty *marker* checkpoints for segment pruning only.
/// * `shards > 1`, `Sleep` — independent [`SleepGroupCommit`] instances,
///   so shards coalesce flushes separately (per-shard group commit).
pub struct ShardedDurability {
    layers: Vec<DurabilityLayer>,
}

impl ShardedDurability {
    /// Opens one layer per shard, returning each shard's recovery (index
    /// = shard).
    pub fn open(mode: &DurabilityMode, shards: u32) -> Result<(Self, Vec<Option<WalRecovery>>)> {
        let shards = shards.max(1) as usize;
        let mut layers = Vec::with_capacity(shards);
        let mut recoveries = Vec::with_capacity(shards);
        for s in 0..shards {
            let shard_mode = match (shards, mode.resolved()) {
                (1, m) => m,
                (_, DurabilityMode::Fsync(cfg)) => {
                    let mut c = cfg.clone();
                    c.dir = cfg.dir.join(format!("shard-{s}"));
                    DurabilityMode::Fsync(c)
                }
                (_, m) => m,
            };
            let (layer, recovery) = DurabilityLayer::open(&shard_mode)?;
            layers.push(layer);
            recoveries.push(recovery);
        }
        Ok((ShardedDurability { layers }, recoveries))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.layers.len()
    }

    /// Shard `s`'s layer.
    pub fn layer(&self, s: usize) -> &DurabilityLayer {
        &self.layers[s]
    }

    /// Shard 0's on-disk WAL, when one exists. Shard 0 is the stream that
    /// carries data checkpoints, so existing call sites (checkpointers,
    /// crash-injection tests) keep working against it.
    pub fn wal(&self) -> Option<&Arc<DurableWal>> {
        self.layers[0].wal()
    }

    /// Shard `s`'s on-disk WAL, when one exists.
    pub fn wal_for(&self, s: usize) -> Option<&Arc<DurableWal>> {
        self.layers[s].wal()
    }

    /// Commit admission on shard `s` (the coordinator for cross-shard
    /// commits).
    pub fn admit(&self, s: usize) -> Result<()> {
        self.layers[s].admit()
    }

    /// Logs on shard `s`'s stream. See [`DurabilityLayer::log_with`].
    pub fn log(&self, s: usize, commit_ts: Ts, ops: &[TableOp], participants: &[u8]) -> Result<u64> {
        self.layers[s].log_with(commit_ts, ops, participants)
    }

    /// Durability wait against shard `s`'s stream.
    pub fn wait(&self, s: usize, token: u64) -> Result<()> {
        self.layers[s].wait(token)
    }

    /// Worst health across shards: any `Degraded` shard degrades the
    /// kernel (its commits shed), then `Recovering`, else `Healthy`.
    pub fn health(&self) -> HealthState {
        let mut worst = HealthState::Healthy;
        for layer in &self.layers {
            match layer.health() {
                HealthState::Degraded => return HealthState::Degraded,
                HealthState::Recovering => worst = HealthState::Recovering,
                HealthState::Healthy => {}
            }
        }
        worst
    }

    /// Aggregated counters: numeric fields summed across shards, the
    /// group-commit batch histogram taken from shard 0 (exact at
    /// `shards == 1`; a per-shard sample otherwise), health from
    /// [`ShardedDurability::health`].
    pub fn stats(&self) -> DurableWalStats {
        let mut agg = self.layers[0].stats();
        for layer in &self.layers[1..] {
            let s = layer.stats();
            agg.fsyncs += s.fsyncs;
            agg.durable_lsn = agg.durable_lsn.max(s.durable_lsn);
            agg.recovery_replayed_records += s.recovery_replayed_records;
            agg.torn_tail_truncations += s.torn_tail_truncations;
            agg.checkpoints += s.checkpoints;
            agg.segments_deleted += s.segments_deleted;
            agg.disk_faults += s.disk_faults;
            agg.shed_commits += s.shed_commits;
            agg.degraded_ticks += s.degraded_ticks;
            agg.scrub_passes += s.scrub_passes;
            agg.quarantined_segments += s.quarantined_segments;
        }
        agg.health = self.health();
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    #[test]
    fn sleep_mode_coalesces_concurrent_waiters() {
        // 8 threads x 4 commits at 2ms latency: uncoalesced that is
        // 8*4*2 = 64ms of serial sleeping per thread-line; coalesced,
        // threads share flushes so wall time is ~4 * (2..4ms) per thread.
        let gc = Arc::new(SleepGroupCommit::new(Duration::from_millis(2)));
        let started = Instant::now();
        let waits = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let waits = Arc::clone(&waits);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        gc.wait();
                        waits.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(waits.load(Ordering::Relaxed), 32);
        let stats = gc.stats();
        assert!(
            stats.fsyncs < 32,
            "32 commits must share flushes (got {} flushes)",
            stats.fsyncs
        );
        // Worst case per wait is two flush durations; with 4 waits per
        // thread that bounds wall time well below serial sleeping.
        assert!(
            started.elapsed() < Duration::from_millis(64),
            "coalescing failed: took {:?}",
            started.elapsed()
        );
        assert!(stats.group_commit_p99 >= stats.group_commit_p50);
    }

    #[test]
    fn single_waiter_pays_one_latency() {
        let gc = SleepGroupCommit::new(Duration::from_millis(1));
        let started = Instant::now();
        gc.wait();
        let elapsed = started.elapsed();
        assert!(elapsed >= Duration::from_millis(1));
        assert_eq!(gc.stats().fsyncs, 1);
        assert_eq!(gc.stats().group_commit_p50, 1.0);
    }

    #[test]
    fn mode_resolution_and_off_detection() {
        assert!(DurabilityMode::Off.is_off());
        assert!(DurabilityMode::Sleep(Duration::ZERO).is_off());
        assert!(!DurabilityMode::SleepDefault.is_off());
        assert_eq!(
            DurabilityMode::SleepDefault.resolved(),
            DurabilityMode::Sleep(crate::api::EngineConfig::DEFAULT_COMMIT_LATENCY)
        );
        let (layer, rec) = DurabilityLayer::open(&DurabilityMode::Off).unwrap();
        assert!(rec.is_none());
        assert!(matches!(layer, DurabilityLayer::Off));
        // Zero-latency sleep degrades to Off (no leader machinery).
        let (layer, _) =
            DurabilityLayer::open(&DurabilityMode::Sleep(Duration::ZERO)).unwrap();
        assert!(matches!(layer, DurabilityLayer::Off));
    }
}
