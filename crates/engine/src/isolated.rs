//! The isolated-design engine ("PostgreSQL streaming replication", §6.3).
//!
//! A primary row-store kernel handles the T workload and streams physical
//! WAL records over a simulated link to a replica, where a replay thread
//! applies them. Analytical queries read the *replica* at its applied
//! horizon, so the two workloads touch disjoint data structures — the
//! design's performance-isolation advantage — at the cost of staleness.
//!
//! Replication modes mirror PostgreSQL's `synchronous_commit`:
//!
//! * [`ReplicationMode::Async`] — commit returns immediately; maximum
//!   staleness.
//! * [`ReplicationMode::SyncOn`] (`on`) — commit waits one round trip for
//!   the replica to acknowledge the record was received and durably
//!   written; *replay* is still asynchronous, so queries can be stale
//!   (the paper's "ON" mode, Figures 7/8).
//! * [`ReplicationMode::RemoteApply`] (`remote_apply`) — commit waits until
//!   the replica has applied the record; freshness is zero but commit
//!   latency includes shipping + queueing + replay (the paper's "RA" mode).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;
use hat_common::clock::BenchClock;
use hat_common::telemetry::{names, MetricsSnapshot, SpanTimer};
use hat_common::{HatError, Result, Row, TableId};
use hat_query::exec::{execute_with, QueryOpts, QueryOutput};
use hat_query::spec::QuerySpec;
use hat_query::view::MixedView;
use hat_storage::rowstore::RowDb;
use hat_storage::wal::{TableOp, Wal, DEFAULT_RETENTION};
use hat_txn::{SnapshotRegistry, Ts, Watermark, LOAD_TS};
use parking_lot::RwLock;

use crate::api::{DesignCategory, EngineConfig, HtapEngine, Session};
use crate::kernel::{spawn_vacuum, CommitHooks, RowKernel};
use crate::netsim::NetworkLink;

/// PostgreSQL-style `synchronous_commit` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// No commit wait.
    Async,
    /// Wait for durable receipt at the standby (the paper's "ON").
    SyncOn,
    /// Wait for the standby to apply (the paper's "RA").
    RemoteApply,
}

impl ReplicationMode {
    /// Label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ReplicationMode::Async => "async",
            ReplicationMode::SyncOn => "on",
            ReplicationMode::RemoteApply => "remote-apply",
        }
    }
}

/// Configuration of the isolated engine.
#[derive(Debug, Clone)]
pub struct IsoConfig {
    pub engine: EngineConfig,
    pub mode: ReplicationMode,
    /// One-way network latency between primary and standby.
    pub link_one_way: Duration,
    /// Simulated standby cost to decode + apply one record (WAL decode,
    /// buffer lookups, fsync amortization). The replay thread is a single
    /// consumer, so commit rates above `1/replay_cost` grow its queue —
    /// the mechanism behind the paper's staleness-vs-T-clients trend
    /// (Figure 8b).
    pub replay_cost: Duration,
    /// Bound on the synchronous-replication wait ([`ReplicationMode::SyncOn`]
    /// ack, [`ReplicationMode::RemoteApply`] apply). A commit that cannot
    /// get its acknowledgement within this bound — standby crashed, link
    /// partitioned — returns [`HatError::ReplicationTimeout`] instead of
    /// hanging: the writes stay durable on the primary (committed-in-doubt).
    pub commit_timeout: Duration,
    /// WAL records retained for standby catch-up after a crash
    /// (`wal_keep_size`); a standby further behind than this needs a full
    /// basebackup ([`HatError::WalTruncated`]).
    pub wal_retention: usize,
}

impl Default for IsoConfig {
    fn default() -> Self {
        IsoConfig {
            engine: EngineConfig::default(),
            mode: ReplicationMode::SyncOn,
            // A LAN round trip plus standby WAL fsync: synchronous-commit
            // acknowledgements are in the ~1ms class, far above the local
            // flush in `EngineConfig::durability`. (PostgreSQL docs
            // warn of exactly this T-side cost for synchronous modes.)
            link_one_way: Duration::from_micros(500),
            replay_cost: Duration::from_micros(120),
            commit_timeout: Duration::from_millis(250),
            wal_retention: DEFAULT_RETENTION,
        }
    }
}

impl IsoConfig {
    /// The default configuration with the primary's local flush folded
    /// into the replication acknowledgement (one coalesced wait per
    /// commit instead of two sleeps — the standby ack already implies
    /// local durability ordering).
    pub fn coalesced_default() -> Self {
        let mut cfg = IsoConfig::default();
        cfg.engine.durability = crate::api::DurabilityMode::Off;
        cfg
    }
}

/// The standby node: its own row database, indexes for analytical plans,
/// and the applied-timestamp watermark.
struct Replica {
    db: RowDb,
    applied: Watermark,
    /// Active snapshots over the replica's database. Replica queries
    /// register here (not in the primary kernel's registry): the standby
    /// prunes against its *applied* watermark, independent of the
    /// primary's visibility frontier.
    snapshots: Arc<SnapshotRegistry>,
    /// Records shipped but not yet applied.
    backlog: AtomicU64,
    /// Highest LSN the replay thread has applied. Survives a replay-thread
    /// crash, so a restart can rejoin the WAL at `applied_lsn + 1` without
    /// losing or double-applying records.
    applied_lsn: AtomicU64,
    /// The standby is crashed: no replay thread is consuming the WAL, and
    /// synchronous commits cannot get their acknowledgements.
    down: AtomicBool,
    /// When set, the replay thread skips its simulated transit/apply
    /// delays — used by reset/quiesce to drain the backlog at memory
    /// speed (catch-up recovery runs unthrottled in real systems too;
    /// only the measured benchmark phases model apply cost).
    fast_drain: AtomicBool,
}

/// Commit hooks on the primary: append to the WAL inside installation;
/// apply the mode's wait afterwards.
struct PrimaryHooks {
    wal: Arc<Wal>,
    link: Arc<NetworkLink>,
    mode: ReplicationMode,
    replica: Arc<Replica>,
    /// Highest commit timestamp with a WAL record. Timestamps *without*
    /// records exist (serializable validation failures burn one), so
    /// waiting for the replica must target this, not the read horizon.
    last_logged: Arc<AtomicU64>,
    /// Bound on the synchronous wait; see [`IsoConfig::commit_timeout`].
    commit_timeout: Duration,
}

impl CommitHooks for PrimaryHooks {
    fn on_install(&self, ts: Ts, ops: &[TableOp]) {
        self.replica.backlog.fetch_add(1, Ordering::Relaxed);
        // Inside the commit critical section: monotonic.
        self.last_logged.store(ts, Ordering::Release);
        self.wal.append(ts, ops.to_vec());
    }

    // The shipped WAL is a totally ordered stream the standby replays
    // sequentially; sharded commits must deliver through the sequencer.
    fn ordered_install(&self) -> bool {
        true
    }

    fn post_commit(&self, ts: Ts) -> hat_common::Result<()> {
        match self.mode {
            ReplicationMode::Async => Ok(()),
            // Synchronous transmission: request + durable-write ack. The
            // ack needs a live standby and an unpartitioned link; both
            // waits share one deadline.
            ReplicationMode::SyncOn => {
                let deadline = Instant::now() + self.commit_timeout;
                while self.replica.down.load(Ordering::Acquire) {
                    if Instant::now() >= deadline {
                        return Err(HatError::ReplicationTimeout);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                self.link.try_delay(2, remaining)
            }
            // Wait until the standby has replayed our record. A crashed
            // standby or a partitioned link both stall the applied
            // watermark, so one bounded wait covers every fault.
            ReplicationMode::RemoteApply => {
                if self.replica.applied.wait_for_timeout(ts, self.commit_timeout) {
                    Ok(())
                } else {
                    Err(HatError::ReplicationTimeout)
                }
            }
        }
    }
}

/// Stop flag + handle of one incarnation of the replay thread.
struct ReplayCtl {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// A two-node primary/standby engine.
pub struct IsoEngine {
    kernel: Arc<RowKernel>,
    replica: Arc<Replica>,
    wal: Arc<Wal>,
    link: Arc<NetworkLink>,
    last_logged: Arc<AtomicU64>,
    config: IsoConfig,
    replay: RwLock<Option<ReplayCtl>>,
    stop_vacuum: Arc<AtomicBool>,
    vacuum: RwLock<Option<JoinHandle<()>>>,
}

impl IsoEngine {
    /// Builds the engine; the replay thread starts at
    /// [`HtapEngine::finish_load`].
    pub fn new(config: IsoConfig) -> Self {
        let wal = Arc::new(Wal::with_retention(config.wal_retention));
        let link = Arc::new(NetworkLink::new(
            config.link_one_way,
            config.link_one_way / 4,
        ));
        let replica = Arc::new(Replica {
            db: RowDb::new(),
            applied: Watermark::new(LOAD_TS),
            snapshots: Arc::new(SnapshotRegistry::new()),
            backlog: AtomicU64::new(0),
            applied_lsn: AtomicU64::new(0),
            down: AtomicBool::new(false),
            fast_drain: AtomicBool::new(false),
        });
        let last_logged = Arc::new(AtomicU64::new(LOAD_TS));
        let hooks = Arc::new(PrimaryHooks {
            wal: Arc::clone(&wal),
            link: Arc::clone(&link),
            mode: config.mode,
            replica: Arc::clone(&replica),
            last_logged: Arc::clone(&last_logged),
            commit_timeout: config.commit_timeout,
        });
        let kernel = Arc::new(RowKernel::with_hooks(config.engine.clone(), hooks));
        IsoEngine {
            kernel,
            replica,
            wal,
            link,
            last_logged,
            config,
            replay: RwLock::new(None),
            stop_vacuum: Arc::new(AtomicBool::new(false)),
            vacuum: RwLock::new(None),
        }
    }

    /// The primary↔standby link — the chaos surface: partition, brown
    /// out, or schedule a [`crate::netsim::FaultPlan`] against it.
    pub fn link(&self) -> &Arc<NetworkLink> {
        &self.link
    }

    /// Whether the standby is currently crashed.
    pub fn is_replica_down(&self) -> bool {
        self.replica.down.load(Ordering::Acquire)
    }

    /// Kills the standby's replay thread, simulating a replica crash.
    /// The replica's database and applied LSN survive (crash, not
    /// wipeout), so [`IsoEngine::restart_replica`] can catch up from the
    /// WAL. Idempotent; synchronous commits start timing out immediately.
    pub fn crash_replica(&self) {
        let ctl = self.replay.write().take();
        if let Some(ctl) = ctl {
            self.replica.down.store(true, Ordering::Release);
            ctl.stop.store(true, Ordering::Release);
            let _ = ctl.handle.join();
        }
    }

    /// Restarts a crashed standby: rejoins the WAL at the last applied
    /// LSN + 1, fast-drains the retained backlog (catch-up recovery runs
    /// unthrottled), then resumes normal throttled replay.
    ///
    /// Fails with [`HatError::WalTruncated`] if the standby fell further
    /// behind than [`IsoConfig::wal_retention`]; a real system would take
    /// a fresh basebackup here.
    pub fn restart_replica(&self) -> Result<()> {
        if !self.is_replica_down() {
            return Ok(());
        }
        self.spawn_replay()?;
        self.replica.down.store(false, Ordering::Release);
        Ok(())
    }

    /// The configured replication mode.
    pub fn mode(&self) -> ReplicationMode {
        self.config.mode
    }

    /// The replica's applied horizon (tests, diagnostics).
    pub fn applied_ts(&self) -> Ts {
        self.replica.applied.get()
    }

    /// Blocks until the replica has applied everything committed so far,
    /// draining the backlog at full speed (no simulated apply throttling —
    /// this is harness hygiene, not a measured phase). The standby must be
    /// up; callers recovering from a crash go through
    /// [`IsoEngine::restart_replica`] first.
    pub fn quiesce_replication(&self) {
        debug_assert!(!self.is_replica_down(), "quiesce requires a live standby");
        self.replica.fast_drain.store(true, Ordering::Release);
        // Wait for the last *logged* commit, not the read horizon:
        // timestamps burned without a WAL record (e.g. serializable
        // validation failures) never reach the replica.
        self.replica.applied.wait_for(self.last_logged.load(Ordering::Acquire));
        self.replica.fast_drain.store(false, Ordering::Release);
    }

    fn spawn_replay(&self) -> Result<()> {
        // Rejoin exactly after the last applied record: the retention ring
        // replays everything committed while the standby was down,
        // atomically with registration, so no record is lost or doubled.
        let from = self.replica.applied_lsn.load(Ordering::Acquire) + 1;
        let rx = self.wal.subscribe_from(from)?;
        // Records appended before this restart are catch-up work: applied
        // at memory speed, like recovery replay. Later records pay the
        // normal simulated transit + apply cost.
        let catchup_end = self.wal.appended();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let replica = Arc::clone(&self.replica);
        let link = Arc::clone(&self.link);
        let one_way = self.config.link_one_way;
        let replay_cost = self.config.replay_cost;
        const POLL: Duration = Duration::from_millis(5);
        let handle = std::thread::Builder::new()
            .name("iso-replay".into())
            .spawn(move || {
                let clock = BenchClock::global();
                'replay: loop {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let record = match rx.recv_timeout(POLL) {
                        Ok(record) => record,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    };
                    let throttled = record.lsn > catchup_end
                        && !replica.fast_drain.load(Ordering::Acquire);
                    if throttled {
                        // Records cannot cross a partitioned link; park
                        // until it heals, still honoring crash/quiesce.
                        while !link.wait_healthy_until(Instant::now() + POLL) {
                            if stop2.load(Ordering::Acquire) {
                                // Unapplied: applied_lsn still points
                                // before this record, so a restart's
                                // subscribe_from replays it.
                                break 'replay;
                            }
                            if replica.fast_drain.load(Ordering::Acquire) {
                                break;
                            }
                        }
                        // Model transit: the record becomes available
                        // one-way latency after it was sent. Only sleep the
                        // remainder — shipping overlaps with queueing.
                        let available_at = record.sent_at + one_way.as_nanos() as u64;
                        let now = clock.now();
                        if now < available_at {
                            std::thread::sleep(Duration::from_nanos(available_at - now));
                        }
                        // Per-record standby apply cost.
                        if !replay_cost.is_zero() {
                            std::thread::sleep(replay_cost);
                        }
                    }
                    for op in &record.ops {
                        match op {
                            TableOp::Insert { table, rid, row } => {
                                // Gapped: the log is timestamp-ordered, but
                                // at shards > 1 rid allocation interleaves
                                // across shards, so a later-ts record can
                                // carry an earlier rid.
                                replica
                                    .db
                                    .store(*table)
                                    .install_insert_gapped(
                                        *rid,
                                        Arc::clone(row),
                                        record.commit_ts,
                                    )
                                    .expect("replica applies each rid once");
                            }
                            TableOp::Update { table, rid, row } => {
                                replica
                                    .db
                                    .store(*table)
                                    .install_update(*rid, Arc::clone(row), record.commit_ts)
                                    .expect("replica row exists");
                            }
                        }
                    }
                    replica.applied_lsn.store(record.lsn, Ordering::Release);
                    // Decrement before advancing: quiesce/reset observe a
                    // zero backlog only after the watermark they waited on.
                    replica.backlog.fetch_sub(1, Ordering::Relaxed);
                    replica.applied.advance(record.commit_ts);
                }
            })
            .expect("spawn replay thread");
        *self.replay.write() = Some(ReplayCtl { stop, handle });
        Ok(())
    }
}

impl HtapEngine for IsoEngine {
    fn name(&self) -> String {
        format!(
            "isolated[{},{}]",
            self.config.mode.label(),
            self.kernel.config.isolation.label()
        )
    }

    fn design(&self) -> DesignCategory {
        DesignCategory::Isolated
    }

    fn set_txn_cores(&self, t_cores: u32, total: u32) {
        self.kernel.set_txn_core_fraction(t_cores, total);
    }

    fn load(&self, table: TableId, rows: &mut dyn Iterator<Item = Row>) -> Result<()> {
        // Base backup: load primary and standby directly (PostgreSQL
        // standbys start from a basebackup, not from WAL replay of the
        // initial population).
        let store = self.replica.db.store(table);
        let mut tee = rows.inspect(|row| {
            store.install_insert(Arc::clone(row), LOAD_TS);
        });
        self.kernel.load(table, &mut tee)
    }

    fn finish_load(&self) -> Result<()> {
        self.kernel.finish_load();
        // One vacuum thread covers both nodes: the primary pass prunes at
        // the kernel's safe horizon, and the extra hook prunes the standby
        // at its own applied watermark (a standby never needs versions
        // older than what the oldest replica query can see).
        let replica = Arc::clone(&self.replica);
        let pruned = Arc::clone(&self.kernel.stats.versions_pruned);
        *self.vacuum.write() = spawn_vacuum(&self.kernel, &self.stop_vacuum, move || {
            let horizon = replica.snapshots.prune_horizon(replica.applied.get());
            let stats = replica.db.vacuum(horizon, |_| {});
            pruned.add(stats.freed);
        });
        self.spawn_replay()
    }

    fn begin(&self) -> Box<dyn Session + '_> {
        Box::new(self.kernel.begin_session())
    }

    fn query(&self, spec: &QuerySpec, opts: &QueryOpts) -> Result<QueryOutput> {
        // A-class overload gate: a no-op unless admission is enabled, a
        // bounded sojourn-deadline-shed queue when it is. Shed queries
        // never execute and are not counted as executed.
        let _admit = self.kernel.admission.admit_query()?;
        self.kernel.stats.queries.inc();
        // Queries read the standby at its applied horizon — whatever has
        // been replayed so far. Staleness is visible through the
        // freshness side-read of the replicated FRESHNESS rows.
        let span = SpanTimer::start();
        let _guard = self
            .replica
            .snapshots
            .register_with(|| self.replica.applied.get());
        let ts = _guard.ts();
        span.finish(&self.kernel.stats.snapshot_span);
        let view = MixedView::rows(&self.replica.db, ts);
        let out = execute_with(spec, &view, opts);
        self.kernel.stats.record_exec(&out.stats);
        Ok(out)
    }

    fn reset(&self) -> Result<()> {
        // Recover a crashed standby, drain replication so it is
        // consistent, then reset both nodes to their loaded state.
        self.restart_replica()?;
        self.quiesce_replication();
        self.kernel.reset()?;
        for t in TableId::ALL {
            let store = self.replica.db.store(t);
            store.truncate_slots(self.kernel.loaded_count(t));
            if t.is_mutable() {
                store.revert_versions_after(LOAD_TS);
            }
        }
        Ok(())
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.kernel.metrics();
        snap.set_gauge(names::REPL_BACKLOG, self.replica.backlog.load(Ordering::Relaxed));
        // Bounded memory is a two-node property here: report the version
        // population of primary and standby together.
        snap.set_gauge(
            names::LIVE_VERSIONS,
            self.kernel.db.live_versions() + self.replica.db.live_versions(),
        );
        snap
    }
}

impl Drop for IsoEngine {
    fn drop(&mut self) {
        self.wal.close();
        self.stop_vacuum.store(true, Ordering::Relaxed);
        if let Some(handle) = self.vacuum.write().take() {
            let _ = handle.join();
        }
        if let Some(ctl) = self.replay.write().take() {
            ctl.stop.store(true, Ordering::Release);
            let _ = ctl.handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{CommitDurability, InDoubtCause};
    use hat_common::ids::customer;
    use hat_common::value::{row_from, row_with};
    use hat_common::Value;
    use hat_query::predicate::Predicate;
    use hat_query::spec::{AggExpr, QueryId, QuerySpec};
    use crate::api::NamedIndex;

    fn fast_config(mode: ReplicationMode) -> IsoConfig {
        IsoConfig {
            engine: EngineConfig::default(),
            mode,
            link_one_way: Duration::from_micros(50),
            replay_cost: Duration::from_micros(10),
            ..IsoConfig::default()
        }
    }

    fn customer_row(ck: u32) -> Row {
        row_from([
            Value::U32(ck),
            Value::from(format!("Customer#{ck:09}")),
            Value::from("addr"),
            Value::from("CITY0"),
            Value::from("CHINA"),
            Value::from("ASIA"),
            Value::from("phone"),
            Value::from("AUTO"),
            Value::U32(0),
        ])
    }

    fn freshness_row(client: u32, txn: u64) -> Row {
        row_from([Value::U32(client), Value::U64(txn)])
    }

    fn loaded_engine(mode: ReplicationMode) -> IsoEngine {
        let engine = IsoEngine::new(fast_config(mode));
        let customers: Vec<Row> = (1..=10).map(customer_row).collect();
        engine.load(TableId::Customer, &mut customers.into_iter()).unwrap();
        let fr: Vec<Row> = (0..2).map(|c| freshness_row(c, 0)).collect();
        engine.load(TableId::Freshness, &mut fr.into_iter()).unwrap();
        engine.finish_load().unwrap();
        engine
    }

    /// A trivial count(*) over customer for replica-visibility checks.
    fn count_customers_spec() -> QuerySpec {
        QuerySpec {
            id: QueryId::Q1_1,
            fact: TableId::Customer,
            fact_filter: Predicate::all(),
            joins: vec![],
            group_by: vec![],
            agg: AggExpr::CountRows,
        }
    }

    #[test]
    fn replica_receives_committed_writes() {
        let engine = loaded_engine(ReplicationMode::SyncOn);
        let mut s = engine.begin();
        let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 3).unwrap().unwrap();
        s.update(
            TableId::Customer,
            rid,
            row_with(&row, customer::PAYMENTCNT, Value::U32(5)),
        )
        .unwrap();
        let commit_ts = s.commit().unwrap().ts;
        engine.replica.applied.wait_for(commit_ts);
        let replicated = engine.replica.db.store(TableId::Customer).read(rid, commit_ts).unwrap();
        assert_eq!(replicated[customer::PAYMENTCNT].as_u32().unwrap(), 5);
    }

    #[test]
    fn remote_apply_commits_are_immediately_queryable() {
        let engine = loaded_engine(ReplicationMode::RemoteApply);
        let mut s = engine.begin();
        let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        s.update(TableId::Customer, rid, row_with(&row, customer::PAYMENTCNT, Value::U32(9)))
            .unwrap();
        let commit_ts = s.commit().unwrap().ts;
        // RA: by the time commit returned, the replica has applied.
        assert!(engine.applied_ts() >= commit_ts);
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 10);
    }

    #[test]
    fn freshness_vector_comes_from_replica() {
        let engine = loaded_engine(ReplicationMode::RemoteApply);
        let mut s = engine.begin();
        s.update(TableId::Freshness, 0, freshness_row(0, 42)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.freshness, vec![(0, 42), (1, 0)]);
    }

    #[test]
    fn async_mode_can_be_stale_then_catches_up() {
        // Large replay cost: the query right after commit misses the txn.
        let mut cfg = fast_config(ReplicationMode::Async);
        cfg.replay_cost = Duration::from_millis(30);
        let engine = IsoEngine::new(cfg);
        let customers: Vec<Row> = (1..=3).map(customer_row).collect();
        engine.load(TableId::Customer, &mut customers.into_iter()).unwrap();
        let fr = vec![freshness_row(0, 0)];
        engine.load(TableId::Freshness, &mut fr.into_iter()).unwrap();
        engine.finish_load().unwrap();

        let mut s = engine.begin();
        s.update(TableId::Freshness, 0, freshness_row(0, 7)).unwrap();
        let commit_ts = s.commit().unwrap().ts;
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.freshness, vec![(0, 0)], "stale before replay");
        engine.replica.applied.wait_for(commit_ts);
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.freshness, vec![(0, 7)], "fresh after replay");
    }

    #[test]
    fn inserts_replicate_with_same_rids() {
        let engine = loaded_engine(ReplicationMode::RemoteApply);
        let mut s = engine.begin();
        s.insert(TableId::Customer, customer_row(11)).unwrap();
        let commit_ts = s.commit().unwrap().ts;
        let primary_count = engine.kernel.db.store(TableId::Customer).slot_count();
        let replica_count = engine.replica.db.store(TableId::Customer).slot_count();
        assert_eq!(primary_count, replica_count);
        assert_eq!(primary_count, 11);
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 11);
        let _ = commit_ts;
    }

    #[test]
    fn reset_restores_both_nodes() {
        let engine = loaded_engine(ReplicationMode::SyncOn);
        let mut s = engine.begin();
        s.insert(TableId::Customer, customer_row(11)).unwrap();
        s.update(TableId::Freshness, 0, freshness_row(0, 3)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        engine.reset().unwrap();
        assert_eq!(engine.kernel.db.store(TableId::Customer).slot_count(), 10);
        assert_eq!(engine.replica.db.store(TableId::Customer).slot_count(), 10);
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 10);
        assert_eq!(out.freshness, vec![(0, 0), (1, 0)]);
        assert_eq!(engine.stats().replication_backlog, 0);
    }

    #[test]
    fn quiesce_survives_burned_timestamps() {
        // Regression: serializable validation failures burn a commit
        // timestamp without producing a WAL record. Quiesce/reset must not
        // wait for a record that will never arrive.
        let engine = Arc::new(loaded_engine(ReplicationMode::SyncOn));
        // t1 reads customer 1; t2 rewrites it and commits; t1 then writes
        // customer 2 and fails validation -> burned timestamp.
        let mut t1 = engine.begin();
        let _ = t1.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        let mut t2 = engine.begin();
        let (rid, row) = t2.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        t2.update(TableId::Customer, rid, row).unwrap();
        assert!(t2.commit().unwrap().is_acked());
        let (rid2, row2) = t1.lookup_u32(NamedIndex::CustomerPk, 2).unwrap().unwrap();
        t1.update(TableId::Customer, rid2, row2).unwrap();
        assert!(t1.commit().is_err(), "validation must fail");

        // Reset (which quiesces) must complete promptly.
        let (tx, rx) = std::sync::mpsc::channel();
        let engine2 = Arc::clone(&engine);
        std::thread::spawn(move || {
            engine2.reset().unwrap();
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(10))
            .expect("reset deadlocked on a burned timestamp");
    }

    #[test]
    fn sync_commit_times_out_under_partition_within_bound() {
        let mut cfg = fast_config(ReplicationMode::SyncOn);
        cfg.commit_timeout = Duration::from_millis(30);
        let engine = {
            let engine = IsoEngine::new(cfg);
            let customers: Vec<Row> = (1..=10).map(customer_row).collect();
            engine.load(TableId::Customer, &mut customers.into_iter()).unwrap();
            engine.finish_load().unwrap();
            engine
        };
        engine.link().partition();
        let mut s = engine.begin();
        s.insert(TableId::Customer, customer_row(11)).unwrap();
        let start = Instant::now();
        let receipt = s.commit().unwrap();
        assert_eq!(
            receipt.durability,
            CommitDurability::InDoubt(InDoubtCause::Replication)
        );
        assert!(!receipt.is_acked());
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert!(start.elapsed() < Duration::from_millis(500), "bounded, not hung");
        let stats = engine.stats();
        assert_eq!(stats.replication_timeouts, 1);
        assert_eq!(stats.commits, 1, "in-doubt commit is durable on the primary");

        // After the partition heals, commits flow again and the in-doubt
        // write is visible everywhere.
        engine.link().heal();
        let mut s = engine.begin();
        s.insert(TableId::Customer, customer_row(12)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        engine.quiesce_replication();
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 12, "no lost commits after recovery");
    }

    #[test]
    fn remote_apply_times_out_when_replica_down() {
        let mut cfg = fast_config(ReplicationMode::RemoteApply);
        cfg.commit_timeout = Duration::from_millis(30);
        let engine = {
            let engine = IsoEngine::new(cfg);
            let customers: Vec<Row> = (1..=5).map(customer_row).collect();
            engine.load(TableId::Customer, &mut customers.into_iter()).unwrap();
            engine.finish_load().unwrap();
            engine
        };
        engine.crash_replica();
        assert!(engine.is_replica_down());
        let mut s = engine.begin();
        s.insert(TableId::Customer, customer_row(6)).unwrap();
        let receipt = s.commit().unwrap();
        assert_eq!(
            receipt.durability,
            CommitDurability::InDoubt(InDoubtCause::Replication)
        );
        // Recovery: restart, catch up, and the write is there.
        engine.restart_replica().unwrap();
        engine.quiesce_replication();
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 6);
    }

    #[test]
    fn crashed_replica_catches_up_from_wal_on_restart() {
        let engine = loaded_engine(ReplicationMode::Async);
        engine.crash_replica();
        // Async commits keep succeeding while the standby is down.
        for ck in 11..=20 {
            let mut s = engine.begin();
            s.insert(TableId::Customer, customer_row(ck)).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        assert_eq!(engine.stats().replication_backlog, 10);
        let stale = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(stale.groups[0].agg, 10, "standby frozen at crash point");

        engine.restart_replica().unwrap();
        engine.quiesce_replication();
        assert_eq!(engine.stats().replication_backlog, 0);
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 20, "every record recovered, none doubled");
        // Watermark continuity: the applied horizon reached the last
        // logged commit.
        assert!(engine.applied_ts() >= engine.last_logged.load(Ordering::Acquire));
    }

    #[test]
    fn crash_restart_is_idempotent_and_cheap_when_up() {
        let engine = loaded_engine(ReplicationMode::Async);
        engine.restart_replica().unwrap();
        engine.crash_replica();
        engine.crash_replica();
        engine.restart_replica().unwrap();
        engine.restart_replica().unwrap();
        assert!(!engine.is_replica_down());
        let mut s = engine.begin();
        s.insert(TableId::Customer, customer_row(11)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        engine.quiesce_replication();
        assert_eq!(
            engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap().groups[0].agg,
            11
        );
    }

    #[test]
    fn replica_too_stale_for_retained_wal_needs_basebackup() {
        let mut cfg = fast_config(ReplicationMode::Async);
        cfg.wal_retention = 4;
        let engine = IsoEngine::new(cfg);
        let customers: Vec<Row> = (1..=3).map(customer_row).collect();
        engine.load(TableId::Customer, &mut customers.into_iter()).unwrap();
        engine.finish_load().unwrap();
        engine.crash_replica();
        for ck in 4..=13 {
            let mut s = engine.begin();
            s.insert(TableId::Customer, customer_row(ck)).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        let err = engine.restart_replica().unwrap_err();
        assert!(matches!(err, HatError::WalTruncated { .. }), "{err:?}");
    }

    #[test]
    fn both_nodes_vacuum_and_the_standby_prunes_at_applied() {
        let mut cfg = fast_config(ReplicationMode::RemoteApply);
        cfg.engine.vacuum_interval = Some(Duration::from_millis(1));
        let engine = IsoEngine::new(cfg);
        let customers: Vec<Row> = (1..=4).map(customer_row).collect();
        engine.load(TableId::Customer, &mut customers.into_iter()).unwrap();
        engine.finish_load().unwrap();
        let base = engine.replica.db.live_versions();
        // Remote-apply: every commit is replayed before the next begins,
        // so both nodes accumulate the same 30-version chain on customer 1.
        for n in 1..=30u32 {
            let mut s = engine.begin();
            let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
            s.update(
                TableId::Customer,
                rid,
                row_with(&row, customer::PAYMENTCNT, Value::U32(n)),
            )
            .unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        // The vacuum thread converges both databases to newest + base.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let primary = engine.kernel.db.live_versions();
            let standby = engine.replica.db.live_versions();
            if primary <= base + 1 && standby <= base + 1 {
                break;
            }
            assert!(Instant::now() < deadline, "vacuum never converged: primary={primary} standby={standby}");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Replica reads still see the newest state.
        let out = engine.query(&count_customers_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 4);
        let snap = engine.metrics();
        assert!(snap.gauge(names::LIVE_VERSIONS) <= 2 * (base + 1));
    }

    #[test]
    fn design_and_mode_labels() {
        let engine = loaded_engine(ReplicationMode::SyncOn);
        assert_eq!(engine.design(), DesignCategory::Isolated);
        assert!(engine.name().contains("isolated"));
        assert_eq!(engine.mode().label(), "on");
        assert_eq!(ReplicationMode::RemoteApply.label(), "remote-apply");
        assert_eq!(ReplicationMode::Async.label(), "async");
    }
}
