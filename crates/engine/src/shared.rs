//! The shared-design engine ("PostgreSQL-like", §2.2 / §6.2).
//!
//! One MVCC row store serves both workloads: transactions run through the
//! kernel, and analytical queries scan the same version chains under a
//! snapshot. Freshness is zero by construction — a query's snapshot is the
//! current visibility horizon, so it sees every transaction that committed
//! before it started. The cost is interference: both workloads fight for
//! CPU, slot locks, the commit critical section, and index latches.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hat_common::telemetry::{MetricsSnapshot, SpanTimer};
use hat_common::{HatError, Result, Row, TableId};
use hat_query::exec::{execute_with, QueryOpts, QueryOutput};
use hat_query::spec::QuerySpec;
use hat_query::view::MixedView;
use parking_lot::RwLock;

use crate::analytics::{date_range_hint, PrefilteredView};
use crate::api::{DesignCategory, EngineConfig, HtapEngine, Session};
use crate::kernel::{spawn_vacuum, RowKernel};

/// A single-node, single-copy MVCC engine.
pub struct ShdEngine {
    kernel: Arc<RowKernel>,
    /// Stops the background threads (checkpointer, vacuum) on drop.
    stop_background: Arc<AtomicBool>,
    /// Background checkpointer (Fsync durability with `checkpoint_every`).
    checkpointer: RwLock<Option<JoinHandle<()>>>,
    /// Background MVCC vacuum ([`EngineConfig::vacuum_interval`]).
    vacuum: RwLock<Option<JoinHandle<()>>>,
}

impl ShdEngine {
    /// Builds an engine with the given configuration. Panics if the
    /// durability mode needs disk and the WAL can't be opened; use
    /// [`ShdEngine::try_new`] to handle that (and to recover a WAL
    /// directory left by a previous process).
    pub fn new(config: EngineConfig) -> Self {
        Self::try_new(config).expect("engine construction failed")
    }

    /// Fallible [`ShdEngine::new`]: with `DurabilityMode::Fsync` this
    /// replays any checkpoint + WAL tail found in the configured
    /// directory before returning, so the engine resumes exactly at the
    /// last acknowledged commit.
    pub fn try_new(config: EngineConfig) -> Result<Self> {
        Ok(ShdEngine {
            kernel: Arc::new(RowKernel::try_new(config)?),
            stop_background: Arc::new(AtomicBool::new(false)),
            checkpointer: RwLock::new(None),
            vacuum: RwLock::new(None),
        })
    }

    /// The engine's kernel (tests and the isolated engine reuse it).
    pub fn kernel(&self) -> &Arc<RowKernel> {
        &self.kernel
    }

    /// Writes a checkpoint now (no-op unless durability is `Fsync`).
    pub fn checkpoint(&self) -> Result<()> {
        self.kernel.checkpoint()
    }

    /// Whether a periodic checkpointer was requested by the WAL config.
    fn checkpoint_interval(&self) -> Option<Duration> {
        self.kernel
            .durability
            .wal()
            .and_then(|w| w.config().checkpoint_every)
    }
}

impl Drop for ShdEngine {
    fn drop(&mut self) {
        self.stop_background.store(true, Ordering::Release);
        for slot in [&self.checkpointer, &self.vacuum] {
            if let Some(handle) = slot.write().take() {
                let _ = handle.join();
            }
        }
    }
}

impl HtapEngine for ShdEngine {
    fn name(&self) -> String {
        format!(
            "shared[{},{}]",
            self.kernel.config.isolation.label(),
            self.kernel.config.indexes.label()
        )
    }

    fn design(&self) -> DesignCategory {
        DesignCategory::Shared
    }

    fn set_txn_cores(&self, t_cores: u32, total: u32) {
        self.kernel.set_txn_core_fraction(t_cores, total);
    }

    fn load(&self, table: TableId, rows: &mut dyn Iterator<Item = Row>) -> Result<()> {
        self.kernel.load(table, rows)
    }

    fn finish_load(&self) -> Result<()> {
        self.kernel.finish_load();
        // With an on-disk WAL, make the bulk-loaded base data durable via
        // an initial checkpoint (loads are not logged), then start the
        // periodic checkpointer if the config asked for one.
        if self.kernel.durability.wal().is_some() {
            self.kernel.checkpoint()?;
            if let Some(every) = self.checkpoint_interval() {
                let kernel = Arc::clone(&self.kernel);
                let stop = Arc::clone(&self.stop_background);
                let handle = std::thread::Builder::new()
                    .name("wal-checkpointer".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            std::thread::sleep(every);
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            // A degraded WAL refuses checkpoints until the
                            // scrubber re-admits it: skip the tick and try
                            // again. A crashed WAL ends the loop.
                            match kernel.checkpoint() {
                                Ok(()) | Err(HatError::Degraded) => {}
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn checkpointer");
                *self.checkpointer.write() = Some(handle);
            }
        }
        *self.vacuum.write() = spawn_vacuum(&self.kernel, &self.stop_background, || {});
        Ok(())
    }

    fn begin(&self) -> Box<dyn Session + '_> {
        Box::new(self.kernel.begin_session())
    }

    fn query(&self, spec: &QuerySpec, opts: &QueryOpts) -> Result<QueryOutput> {
        // A-class overload gate: a no-op unless admission is enabled, a
        // bounded sojourn-deadline-shed queue when it is. Shed queries
        // never execute and are not counted as executed.
        let _admit = self.kernel.admission.admit_query()?;
        self.kernel.stats.queries.inc();
        let span = SpanTimer::start();
        // The guard pins the query's snapshot against vacuum for the whole
        // scan; registration picks the timestamp (it may retry past a
        // concurrent pass, always landing on a fresh frontier).
        let _guard = self
            .kernel
            .snapshots
            .register_with(|| self.kernel.oracle.read_ts());
        let ts = _guard.ts();
        span.finish(&self.kernel.stats.snapshot_span);
        // Index-accelerated plan when the physical schema allows it.
        let out = if let Some(rids) = date_range_hint(spec)
            .and_then(|(lo, hi)| self.kernel.indexes.lineorder_rids_for_date_range(lo, hi))
        {
            let view = PrefilteredView::new(&self.kernel.db, ts, spec.fact, &rids);
            execute_with(spec, &view, opts)
        } else {
            let view = MixedView::rows(&self.kernel.db, ts);
            execute_with(spec, &view, opts)
        };
        self.kernel.stats.record_exec(&out.stats);
        Ok(out)
    }

    fn reset(&self) -> Result<()> {
        self.kernel.reset()
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.kernel.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{IndexProfile, NamedIndex};
    use hat_common::ids::customer;
    use hat_query::exec::execute;
    use hat_common::value::row_from;
    use hat_common::{Money, Value};
    use hat_query::spec::QueryId;
    use hat_query::ssb;
    use hat_txn::IsolationLevel;

    fn date_row(key: u32) -> Row {
        let d = hat_common::dates::CalendarDate::from_key(key);
        row_from([
            Value::U32(key),
            Value::from(format!("{} {}, {}", d.month_name(), d.day, d.year)),
            Value::from(d.day_name()),
            Value::from(d.month_name()),
            Value::U32(d.year),
            Value::U32(d.yearmonthnum()),
            Value::from(d.yearmonth()),
            Value::U32(d.weekday() + 1),
            Value::U32(d.day),
            Value::U32(d.day_num_in_year()),
            Value::U32(d.month),
            Value::U32(d.week_num_in_year()),
            Value::from(d.selling_season()),
            Value::from(d.is_last_day_in_month()),
            Value::from(d.is_holiday()),
            Value::from(d.is_weekday()),
        ])
    }

    fn lineorder_row(ok: u64, custkey: u32, orderdate: u32, price_c: i64, disc: u32, qty: u32) -> Row {
        row_from([
            Value::U64(ok),
            Value::U32(1),
            Value::U32(custkey),
            Value::U32(1),
            Value::U32(1),
            Value::U32(orderdate),
            Value::from("1-URGENT"),
            Value::from("0"),
            Value::U32(qty),
            Value::Money(Money::from_cents(price_c)),
            Value::Money(Money::from_cents(price_c)),
            Value::U32(disc),
            Value::Money(Money::from_cents(price_c * 9 / 10)),
            Value::Money(Money::from_cents(price_c * 6 / 10)),
            Value::U32(0),
            Value::U32(orderdate),
            Value::from("TRUCK"),
        ])
    }

    fn engine_with_data(indexes: IndexProfile) -> ShdEngine {
        let engine = ShdEngine::new(EngineConfig {
            isolation: IsolationLevel::Serializable,
            indexes,
            durability: crate::api::DurabilityMode::Off,
            ..EngineConfig::default()
        });
        // Date dimension: all of 1993 and 1994.
        let dates: Vec<Row> = hat_common::dates::all_date_keys()
            .filter(|k| (19930101..=19941231).contains(k))
            .map(date_row)
            .collect();
        engine.load(TableId::Date, &mut dates.into_iter()).unwrap();
        // Facts: two qualifying rows in 1993, one in 1994.
        let rows = vec![
            lineorder_row(1, 1, 19930315, 10_000, 2, 10),
            lineorder_row(2, 1, 19930720, 20_000, 3, 20),
            lineorder_row(3, 1, 19940101, 30_000, 2, 10),
        ];
        engine.load(TableId::Lineorder, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
        engine
    }

    #[test]
    fn q11_matches_on_both_plans() {
        // Q1.1: d_year=1993, discount 1..3, quantity < 25
        // -> rows 1 and 2: 10000*2% + 20000*3% = 200 + 600.
        let expected = 800;
        for profile in [IndexProfile::All, IndexProfile::Semi, IndexProfile::None] {
            let engine = engine_with_data(profile);
            let out = engine.query(&ssb::query(QueryId::Q1_1), &QueryOpts::default()).unwrap();
            assert_eq!(out.groups[0].agg, expected, "profile {profile:?}");
            assert_eq!(out.matched_rows, 2);
        }
    }

    #[test]
    fn queries_see_committed_inserts_immediately() {
        let engine = engine_with_data(IndexProfile::All);
        let mut s = engine.begin();
        s.insert(TableId::Lineorder, lineorder_row(4, 1, 19930601, 100_000, 1, 5))
            .unwrap();
        assert!(s.commit().unwrap().is_acked());
        let out = engine.query(&ssb::query(QueryId::Q1_1), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 800 + 1000, "freshness is zero by design");
    }

    #[test]
    fn uncommitted_inserts_are_invisible_to_queries() {
        let engine = engine_with_data(IndexProfile::All);
        let mut s = engine.begin();
        s.insert(TableId::Lineorder, lineorder_row(4, 1, 19930601, 100_000, 1, 5))
            .unwrap();
        let out = engine.query(&ssb::query(QueryId::Q1_1), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 800);
        s.abort();
    }

    #[test]
    fn design_and_name() {
        let engine = engine_with_data(IndexProfile::All);
        assert_eq!(engine.design(), DesignCategory::Shared);
        assert!(engine.name().contains("shared"));
        assert!(engine.name().contains("serializable"));
    }

    #[test]
    fn reset_between_runs() {
        let engine = engine_with_data(IndexProfile::All);
        let mut s = engine.begin();
        s.insert(TableId::Lineorder, lineorder_row(4, 1, 19930601, 100_000, 1, 5))
            .unwrap();
        assert!(s.commit().unwrap().is_acked());
        engine.reset().unwrap();
        let out = engine.query(&ssb::query(QueryId::Q1_1), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 800);
    }

    #[test]
    fn transactional_path_works_end_to_end() {
        let engine = ShdEngine::new(EngineConfig::default());
        let customers: Vec<Row> = (1..=10u32)
            .map(|i| {
                row_from([
                    Value::U32(i),
                    Value::from(format!("Customer#{i:09}")),
                    Value::from("addr"),
                    Value::from("CITY0"),
                    Value::from("CHINA"),
                    Value::from("ASIA"),
                    Value::from("phone"),
                    Value::from("AUTO"),
                    Value::U32(0),
                ])
            })
            .collect();
        engine.load(TableId::Customer, &mut customers.into_iter()).unwrap();
        engine.finish_load().unwrap();
        let mut s = engine.begin();
        let (rid, row) = s.lookup_str(NamedIndex::CustomerName, "Customer#000000004")
            .unwrap()
            .unwrap();
        assert_eq!(row[customer::CUSTKEY].as_u32().unwrap(), 4);
        let patched =
            hat_common::value::row_with(&row, customer::PAYMENTCNT, Value::U32(1));
        s.update(TableId::Customer, rid, patched).unwrap();
        assert!(s.commit().unwrap().is_acked());
        assert_eq!(engine.stats().commits, 1);
    }

    #[test]
    fn background_vacuum_reclaims_superseded_versions() {
        let engine = ShdEngine::new(EngineConfig {
            durability: crate::api::DurabilityMode::Off,
            vacuum_interval: Some(Duration::from_millis(1)),
            ..EngineConfig::default()
        });
        let customers: Vec<Row> = (1..=4u32)
            .map(|i| {
                row_from([
                    Value::U32(i),
                    Value::from(format!("Customer#{i:09}")),
                    Value::from("addr"),
                    Value::from("CITY0"),
                    Value::from("CHINA"),
                    Value::from("ASIA"),
                    Value::from("phone"),
                    Value::from("AUTO"),
                    Value::U32(0),
                ])
            })
            .collect();
        engine.load(TableId::Customer, &mut customers.into_iter()).unwrap();
        engine.finish_load().unwrap();
        let base = engine.kernel().db.live_versions();
        for _ in 0..50 {
            let mut s = engine.begin();
            let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
            s.update(TableId::Customer, rid, row).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        // The background thread converges the chain to newest + base.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while engine.kernel().db.live_versions() > base + 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "vacuum failed to reclaim: {} live versions",
                engine.kernel().db.live_versions()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(engine.stats().vacuum_passes > 0);
        assert!(engine.stats().versions_pruned >= 48);
    }

    #[test]
    fn prefilter_consistency_with_concurrent_growth() {
        // Rows inserted after the query's snapshot must not appear even
        // though their index entries exist.
        let engine = engine_with_data(IndexProfile::All);
        let ts_before = engine.kernel().oracle.read_ts();
        let mut s = engine.begin();
        s.insert(TableId::Lineorder, lineorder_row(4, 1, 19930601, 100_000, 1, 5))
            .unwrap();
        assert!(s.commit().unwrap().is_acked());
        // Manually run the prefiltered plan at the old snapshot.
        let spec = ssb::query(QueryId::Q1_1);
        let (lo, hi) = date_range_hint(&spec).unwrap();
        let rids = engine
            .kernel()
            .indexes
            .lineorder_rids_for_date_range(lo, hi)
            .unwrap();
        assert_eq!(rids.len(), 3, "index has the new entry");
        let view = PrefilteredView::new(&engine.kernel().db, ts_before, spec.fact, &rids);
        let out = execute(&spec, &view);
        assert_eq!(out.groups[0].agg, 800, "snapshot excludes the new row");
    }
}
