//! The hybrid-design engines (§2.2): one machine, shared resources, two
//! data formats.
//!
//! * [`DualEngine`] — "System-X"-like (§6.4): an OCC row store plus an
//!   in-memory columnar copy. Committed fact rows land in a row-format
//!   delta; every analytical query synchronously folds the delta tail up to
//!   its start timestamp into its scan (merge-on-read), so freshness is
//!   zero. A background thread compacts the delta into sealed compressed
//!   segments.
//! * [`LearnerEngine`] — TiDB-like (§6.5): commits pay simulated Raft
//!   consensus rounds; an asynchronous *learner* thread consumes the log
//!   and maintains the columnar copy; each analytical query performs a
//!   read-index wait until the learner reaches the query's start timestamp,
//!   so freshness is zero at the cost of wait latency.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;
use hat_common::telemetry::{names, MetricsSnapshot, SpanTimer};
use hat_common::{HatError, Result, Row, TableId};
use hat_query::exec::{execute_with, QueryOpts, QueryOutput};
use hat_query::spec::QuerySpec;
use hat_query::view::MixedView;
use hat_storage::colstore::{ColumnTable, DimColumnCopy};
use hat_storage::wal::{TableOp, Wal, DEFAULT_RETENTION};
use hat_txn::{IsolationLevel, Ts, Watermark, LOAD_TS};
use parking_lot::RwLock;

use crate::api::{
    DesignCategory, EngineConfig, HtapEngine, IndexProfile, Session,
};
use crate::kernel::{spawn_vacuum, CommitHooks, RowKernel};
use crate::netsim::NetworkLink;

/// The columnar side shared by both hybrid engines: a live fact copy
/// (insert delta) and dimension copies with update overlays.
///
/// HISTORY is insert-only and never scanned by the SSB queries; it stays
/// row-format. The freshness side-read always goes to the row store at the
/// query snapshot, which observes exactly the same committed prefix.
struct ColumnarSide {
    lineorder: ColumnTable,
    dims: Vec<DimColumnCopy>,
    /// Sealed lineorder segments built at load time (what reset keeps).
    base_segments: AtomicUsize,
}

/// Rows per sealed base segment. Matches the executor's morsel size, so
/// with date-clustered loading each base segment is one prunable morsel
/// with a tight orderdate zone map.
const LOAD_SEGMENT_ROWS: usize = 4096;

impl ColumnarSide {
    fn new() -> Self {
        ColumnarSide {
            lineorder: ColumnTable::new(TableId::Lineorder),
            dims: [TableId::Customer, TableId::Supplier, TableId::Part, TableId::Date]
                .iter()
                .map(|&t| DimColumnCopy::new(t))
                .collect(),
            base_segments: AtomicUsize::new(0),
        }
    }

    /// Builds the sealed load-time segments from the row kernel.
    fn build_from(&self, kernel: &RowKernel) {
        let mut rows = Vec::new();
        kernel.db.store(TableId::Lineorder).scan(LOAD_TS, |_, row| {
            rows.push(Arc::clone(row));
        });
        // Cluster the sealed base segments by orderdate so their zone
        // maps are tight and date-hinted queries can prune whole morsels.
        // Row order within a sealed snapshot carries no semantics (every
        // query aggregates), so this only sharpens min/max ranges.
        rows.sort_by_key(|row| row[hat_common::ids::lineorder::ORDERDATE].as_u32().unwrap());
        for chunk in rows.chunks(LOAD_SEGMENT_ROWS) {
            self.lineorder.load_segment(LOAD_TS, chunk.iter().map(Arc::clone));
        }
        self.base_segments.store(self.lineorder.segment_count(), Ordering::Relaxed);
        for dim in &self.dims {
            let mut rows = Vec::new();
            kernel.db.store(dim.table()).scan(LOAD_TS, |_, row| {
                rows.push(Arc::clone(row));
            });
            dim.load(LOAD_TS, rows);
        }
    }

    /// Applies one committed redo operation to the columnar copies.
    /// Inserts land in the fact delta; dimension updates land in the
    /// per-dimension update log.
    fn apply_op(&self, ts: Ts, op: &TableOp) {
        match op {
            TableOp::Insert { table: TableId::Lineorder, row, .. } => {
                self.lineorder.append_delta(ts, Arc::clone(row));
            }
            TableOp::Update { table, rid, row } => {
                if let Some(dim) = self.dims.iter().find(|d| d.table() == *table) {
                    dim.append_update(ts, *rid, Arc::clone(row));
                }
            }
            _ => {}
        }
    }

    /// Compacts the fact delta and folds dimension update logs.
    fn merge_background(&self, upto: Ts, fact_threshold: usize) {
        if self.lineorder.delta_len() >= fact_threshold {
            self.lineorder.compact(upto);
        }
        for dim in &self.dims {
            if dim.update_len() >= fact_threshold {
                dim.fold(upto);
            }
        }
    }

    /// The analytical view at `ts`: columnar fact + dims, row store for
    /// everything else (freshness).
    fn view<'a>(&'a self, kernel: &'a RowKernel, ts: Ts) -> MixedView<'a> {
        let mut view = MixedView::rows(&kernel.db, ts)
            .with_columnar(TableId::Lineorder, self.lineorder.snapshot(ts));
        for dim in &self.dims {
            view = view.with_dim(dim.table(), dim.snapshot(ts));
        }
        view
    }

    /// Benchmark reset: back to the load-time content per table.
    fn reset(&self) {
        self.lineorder
            .reset_keep_segments(self.base_segments.load(Ordering::Relaxed).max(1));
        for dim in &self.dims {
            dim.reset();
        }
    }
}

// ---------------------------------------------------------------------------
// DualEngine (System-X-like)
// ---------------------------------------------------------------------------

/// Configuration of the dual-format engine.
#[derive(Debug, Clone)]
pub struct DualConfig {
    /// Index profile for the transactional side. Isolation is fixed to
    /// serializable (optimistic MVCC with read validation, like System-X).
    pub indexes: IndexProfile,
    /// Delta size that triggers background compaction.
    pub merge_threshold: usize,
    /// How often the compactor checks the delta.
    pub merge_interval: Duration,
    /// Row-side MVCC vacuum cadence (`None` disables it); forwarded to
    /// the kernel's [`EngineConfig::vacuum_interval`].
    pub vacuum_interval: Option<Duration>,
    /// Commit shards of the transactional kernel; forwarded to
    /// [`EngineConfig::shards`].
    pub shards: u32,
}

impl Default for DualConfig {
    fn default() -> Self {
        DualConfig {
            indexes: IndexProfile::Semi,
            merge_threshold: 4096,
            merge_interval: Duration::from_millis(5),
            vacuum_interval: Some(EngineConfig::DEFAULT_VACUUM_INTERVAL),
            shards: 1,
        }
    }
}

/// Commit hooks: mirror fact-table inserts into the columnar delta inside
/// the commit critical section (keeps the delta in timestamp order).
struct DualHooks {
    columnar: Arc<ColumnarSide>,
}

impl CommitHooks for DualHooks {
    fn on_install(&self, ts: Ts, ops: &[TableOp]) {
        for op in ops {
            self.columnar.apply_op(ts, op);
        }
    }

    // The delta tail assumes timestamp-ordered appends; sharded commits
    // must deliver through the sequencer.
    fn ordered_install(&self) -> bool {
        true
    }
}

/// A single-node dual-format in-memory engine.
pub struct DualEngine {
    kernel: Arc<RowKernel>,
    columnar: Arc<ColumnarSide>,
    config: DualConfig,
    stop: Arc<AtomicBool>,
    compactor: RwLock<Option<JoinHandle<()>>>,
    vacuum: RwLock<Option<JoinHandle<()>>>,
}

impl DualEngine {
    /// Builds the engine; the compactor starts at `finish_load`.
    pub fn new(config: DualConfig) -> Self {
        let columnar = Arc::new(ColumnarSide::new());
        let hooks = Arc::new(DualHooks { columnar: Arc::clone(&columnar) });
        let kernel = Arc::new(RowKernel::with_hooks(
            EngineConfig {
                isolation: IsolationLevel::Serializable,
                indexes: config.indexes,
                // Memory-optimized engine: cheaper log persistence.
                durability: crate::api::DurabilityMode::Sleep(Duration::from_micros(60)),
                vacuum_interval: config.vacuum_interval,
                shards: config.shards.max(1),
                ..EngineConfig::default()
            },
            hooks,
        ));
        DualEngine {
            kernel,
            columnar,
            config,
            stop: Arc::new(AtomicBool::new(false)),
            compactor: RwLock::new(None),
            vacuum: RwLock::new(None),
        }
    }

    /// Current delta size (tests, stats).
    pub fn delta_rows(&self) -> usize {
        self.columnar.lineorder.delta_len()
    }

    /// Number of sealed lineorder segments (tests).
    pub fn lineorder_segments(&self) -> usize {
        self.columnar.lineorder.segment_count()
    }

    fn spawn_compactor(&self) {
        let columnar = Arc::clone(&self.columnar);
        let kernel = Arc::clone(&self.kernel);
        let stop = Arc::clone(&self.stop);
        let threshold = self.config.merge_threshold;
        let interval = self.config.merge_interval;
        let handle = std::thread::Builder::new()
            .name("dual-compactor".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    columnar.merge_background(kernel.oracle.read_ts(), threshold);
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn compactor");
        *self.compactor.write() = Some(handle);
    }
}

impl HtapEngine for DualEngine {
    fn name(&self) -> String {
        "dual-format[serializable]".to_string()
    }

    fn design(&self) -> DesignCategory {
        DesignCategory::Hybrid
    }

    fn set_txn_cores(&self, t_cores: u32, total: u32) {
        self.kernel.set_txn_core_fraction(t_cores, total);
    }

    fn load(&self, table: TableId, rows: &mut dyn Iterator<Item = Row>) -> Result<()> {
        self.kernel.load(table, rows)
    }

    fn finish_load(&self) -> Result<()> {
        self.kernel.finish_load();
        self.columnar.build_from(&self.kernel);
        self.spawn_compactor();
        // Row-side MVCC vacuum; the columnar side has its own compactor.
        *self.vacuum.write() = spawn_vacuum(&self.kernel, &self.stop, || {});
        Ok(())
    }

    fn begin(&self) -> Box<dyn Session + '_> {
        Box::new(self.kernel.begin_session())
    }

    fn query(&self, spec: &QuerySpec, opts: &QueryOpts) -> Result<QueryOutput> {
        // A-class overload gate: a no-op unless admission is enabled, a
        // bounded sojourn-deadline-shed queue when it is. Shed queries
        // never execute and are not counted as executed.
        let _admit = self.kernel.admission.admit_query()?;
        self.kernel.stats.queries.inc();
        // Merge-on-read: the snapshot at the query's start includes every
        // delta row up to ts — the latest updates are always merged before
        // execution, so freshness is zero (§6.4). The snapshot span prices
        // that merge-on-read view construction.
        let span = SpanTimer::start();
        let _guard = self
            .kernel
            .snapshots
            .register_with(|| self.kernel.oracle.read_ts());
        let ts = _guard.ts();
        let view = self.columnar.view(&self.kernel, ts);
        span.finish(&self.kernel.stats.snapshot_span);
        let out = execute_with(spec, &view, opts);
        self.kernel.stats.record_exec(&out.stats);
        Ok(out)
    }

    fn reset(&self) -> Result<()> {
        self.kernel.reset()?;
        self.columnar.reset();
        Ok(())
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.kernel.metrics();
        snap.set_gauge(names::DELTA_ROWS, self.columnar.lineorder.delta_len() as u64);
        snap.set_gauge(
            names::COLSTORE_BYTES_ENCODED,
            self.columnar.lineorder.approx_bytes() as u64,
        );
        snap.set_gauge(
            names::COLSTORE_BYTES_DECODED,
            self.columnar.lineorder.decoded_bytes_equiv() as u64,
        );
        snap
    }
}

impl Drop for DualEngine {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for slot in [&self.compactor, &self.vacuum] {
            if let Some(handle) = slot.write().take() {
                let _ = handle.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// LearnerEngine (TiDB-like)
// ---------------------------------------------------------------------------

/// Deployment profile for the learner engine (Figure 10 vs Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnerProfile {
    /// Everything on one node: consensus over loopback-fast IPC.
    SingleNode,
    /// TiKV/TiFlash on separate nodes: real network RTTs on the commit
    /// path ("high CPU-overhead of the TCP/IP stack and the limited
    /// network bandwidth", §6.5.2).
    Distributed,
}

impl LearnerProfile {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LearnerProfile::SingleNode => "single-node",
            LearnerProfile::Distributed => "distributed",
        }
    }

    fn link_one_way(self) -> Duration {
        // Calibrated to the modeled systems' commit-latency class: TiDB
        // commits pay 2PC + Raft-log fsync (~1ms even on one node), and
        // cross-node deployments add real network RTTs (§6.5.2). These
        // waits park the client thread, which is also what frees resources
        // for the analytical side on shared hardware.
        match self {
            LearnerProfile::SingleNode => Duration::from_micros(200),
            LearnerProfile::Distributed => Duration::from_micros(600),
        }
    }

    fn commit_rounds(self) -> u32 {
        // 2PC: prewrite + commit quorum rounds in both profiles.
        match self {
            LearnerProfile::SingleNode => 2,
            LearnerProfile::Distributed => 2,
        }
    }
}

/// Configuration of the learner engine.
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    pub profile: LearnerProfile,
    pub indexes: IndexProfile,
    /// Learner cost to decode + transform one log record to columnar
    /// format (§6.5: "preprocess, decode into row-format tuples, and
    /// transform to columnar format").
    pub apply_cost: Duration,
    /// Delta size that triggers learner-side compaction.
    pub merge_threshold: usize,
    /// Bound on the consensus rounds in `pre_commit`. Under a link
    /// partition the quorum is unreachable; after this long the commit
    /// aborts cleanly with [`HatError::ReplicaUnavailable`] (nothing was
    /// installed, so a plain retry is safe).
    pub consensus_timeout: Duration,
    /// Bound on the analytical read-index wait. A crashed learner stalls
    /// the applied watermark; rather than hanging, the query fails with
    /// the retryable [`HatError::ReplicaUnavailable`].
    pub read_index_timeout: Duration,
    /// Log records retained for learner catch-up after a crash.
    pub wal_retention: usize,
    /// Row-side MVCC vacuum cadence (`None` disables it); forwarded to
    /// the kernel's [`EngineConfig::vacuum_interval`]. The columnar copy
    /// needs no vacuum — the learner thread already folds its delta and
    /// dimension update logs at the applied watermark.
    pub vacuum_interval: Option<Duration>,
    /// Commit shards of the transactional kernel; forwarded to
    /// [`EngineConfig::shards`].
    pub shards: u32,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            profile: LearnerProfile::SingleNode,
            indexes: IndexProfile::Semi,
            apply_cost: Duration::from_micros(20),
            merge_threshold: 4096,
            consensus_timeout: Duration::from_millis(250),
            read_index_timeout: Duration::from_millis(500),
            wal_retention: DEFAULT_RETENTION,
            vacuum_interval: Some(EngineConfig::DEFAULT_VACUUM_INTERVAL),
            shards: 1,
        }
    }
}

/// Commit hooks: consensus latency before install, log append inside.
struct LearnerHooks {
    wal: Arc<Wal>,
    link: Arc<NetworkLink>,
    rounds: u32,
    backlog: Arc<AtomicU64>,
    /// Highest commit timestamp with a log record (see the isolated
    /// engine: burned timestamps never produce records).
    last_logged: Arc<AtomicU64>,
    /// Bound on the consensus wait; see [`LearnerConfig::consensus_timeout`].
    consensus_timeout: Duration,
}

impl CommitHooks for LearnerHooks {
    fn pre_commit(&self) -> Result<()> {
        // All consensus rounds in one coalesced wait (2 traversals each).
        // If the quorum is unreachable (partition) past the bound, nothing
        // has been installed: surface a clean, retryable abort rather
        // than an in-doubt timeout.
        self.link
            .try_delay(self.rounds * 2, self.consensus_timeout)
            .map_err(|_| HatError::ReplicaUnavailable)
    }

    fn on_install(&self, ts: Ts, ops: &[TableOp]) {
        self.backlog.fetch_add(1, Ordering::Relaxed);
        self.last_logged.store(ts, Ordering::Release);
        self.wal.append(ts, ops.to_vec());
    }

    // The learner log is a totally ordered stream; sharded commits must
    // deliver through the sequencer.
    fn ordered_install(&self) -> bool {
        true
    }
}

/// Stop flag + handle of one incarnation of the learner thread.
struct LearnerCtl {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// A consensus-commit row store with an asynchronous columnar learner.
pub struct LearnerEngine {
    kernel: Arc<RowKernel>,
    columnar: Arc<ColumnarSide>,
    wal: Arc<Wal>,
    link: Arc<NetworkLink>,
    applied: Arc<Watermark>,
    backlog: Arc<AtomicU64>,
    last_logged: Arc<AtomicU64>,
    /// Highest log LSN the learner has applied; survives a learner crash
    /// so a restart can rejoin the log without loss or duplication.
    applied_lsn: Arc<AtomicU64>,
    /// The learner is crashed: read-index waits will time out.
    down: AtomicBool,
    /// Drops the simulated apply cost while quiescing (see the isolated
    /// engine's fast-drain; harness hygiene only).
    fast_drain: Arc<AtomicBool>,
    config: LearnerConfig,
    learner: RwLock<Option<LearnerCtl>>,
    stop_vacuum: Arc<AtomicBool>,
    vacuum: RwLock<Option<JoinHandle<()>>>,
}

impl LearnerEngine {
    /// Builds the engine; the learner thread starts at `finish_load`.
    pub fn new(config: LearnerConfig) -> Self {
        let wal = Arc::new(Wal::with_retention(config.wal_retention));
        let backlog = Arc::new(AtomicU64::new(0));
        let link = Arc::new(NetworkLink::new(
            config.profile.link_one_way(),
            config.profile.link_one_way() / 4,
        ));
        let last_logged = Arc::new(AtomicU64::new(LOAD_TS));
        let hooks = Arc::new(LearnerHooks {
            wal: Arc::clone(&wal),
            link: Arc::clone(&link),
            rounds: config.profile.commit_rounds(),
            backlog: Arc::clone(&backlog),
            last_logged: Arc::clone(&last_logged),
            consensus_timeout: config.consensus_timeout,
        });
        let kernel = Arc::new(RowKernel::with_hooks(
            EngineConfig {
                // TiDB default: snapshot-isolated reads (§6.5.1).
                isolation: IsolationLevel::SnapshotIsolation,
                indexes: config.indexes,
                // Durability is paid inside the consensus rounds.
                durability: crate::api::DurabilityMode::Off,
                vacuum_interval: config.vacuum_interval,
                shards: config.shards.max(1),
                ..EngineConfig::default()
            },
            hooks,
        ));
        LearnerEngine {
            kernel,
            columnar: Arc::new(ColumnarSide::new()),
            wal,
            link,
            applied: Arc::new(Watermark::new(LOAD_TS)),
            backlog,
            last_logged,
            applied_lsn: Arc::new(AtomicU64::new(0)),
            down: AtomicBool::new(false),
            fast_drain: Arc::new(AtomicBool::new(false)),
            config,
            learner: RwLock::new(None),
            stop_vacuum: Arc::new(AtomicBool::new(false)),
            vacuum: RwLock::new(None),
        }
    }

    /// The deployment profile.
    pub fn profile(&self) -> LearnerProfile {
        self.config.profile
    }

    /// The learner's applied horizon (tests, diagnostics).
    pub fn applied_ts(&self) -> Ts {
        self.applied.get()
    }

    /// The consensus/learner link — the chaos surface for this engine.
    pub fn link(&self) -> &Arc<NetworkLink> {
        &self.link
    }

    /// Whether the learner is currently crashed.
    pub fn is_learner_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Kills the learner thread, simulating a TiFlash node crash. The
    /// columnar copy and applied LSN survive; transactional commits keep
    /// succeeding (the learner is not in the commit quorum), but
    /// analytical read-index waits start timing out.
    pub fn crash_learner(&self) {
        let ctl = self.learner.write().take();
        if let Some(ctl) = ctl {
            self.down.store(true, Ordering::Release);
            ctl.stop.store(true, Ordering::Release);
            let _ = ctl.handle.join();
        }
    }

    /// Restarts a crashed learner: rejoins the log at the last applied
    /// LSN + 1, fast-drains the retained backlog, resumes normal replay.
    /// Fails with [`HatError::WalTruncated`] if the learner fell behind
    /// the retention ring.
    pub fn restart_learner(&self) -> Result<()> {
        if !self.is_learner_down() {
            return Ok(());
        }
        self.spawn_learner()?;
        self.down.store(false, Ordering::Release);
        Ok(())
    }

    /// Blocks until the learner has consumed everything committed so far,
    /// at full speed (no simulated apply cost; harness hygiene). The
    /// learner must be up; recover a crash via
    /// [`LearnerEngine::restart_learner`] first.
    pub fn quiesce_learner(&self) {
        debug_assert!(!self.is_learner_down(), "quiesce requires a live learner");
        self.fast_drain.store(true, Ordering::Release);
        self.applied.wait_for(self.last_logged.load(Ordering::Acquire));
        self.fast_drain.store(false, Ordering::Release);
    }

    fn spawn_learner(&self) -> Result<()> {
        let from = self.applied_lsn.load(Ordering::Acquire) + 1;
        let rx = self.wal.subscribe_from(from)?;
        // Catch-up suffix replays at memory speed; later records pay the
        // normal apply cost.
        let catchup_end = self.wal.appended();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let columnar = Arc::clone(&self.columnar);
        let applied = Arc::clone(&self.applied);
        let applied_lsn = Arc::clone(&self.applied_lsn);
        let backlog = Arc::clone(&self.backlog);
        let fast_drain = Arc::clone(&self.fast_drain);
        let apply_cost = self.config.apply_cost;
        let threshold = self.config.merge_threshold;
        const POLL: Duration = Duration::from_millis(5);
        let handle = std::thread::Builder::new()
            .name("tiflash-learner".into())
            .spawn(move || loop {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let record = match rx.recv_timeout(POLL) {
                    Ok(record) => record,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                };
                let throttled = record.lsn > catchup_end
                    && !fast_drain.load(Ordering::Acquire);
                if throttled && !apply_cost.is_zero() {
                    std::thread::sleep(apply_cost);
                }
                for op in &record.ops {
                    columnar.apply_op(record.commit_ts, op);
                }
                applied_lsn.store(record.lsn, Ordering::Release);
                backlog.fetch_sub(1, Ordering::Relaxed);
                applied.advance(record.commit_ts);
                columnar.merge_background(record.commit_ts, threshold);
            })
            .expect("spawn learner");
        *self.learner.write() = Some(LearnerCtl { stop, handle });
        Ok(())
    }
}

impl HtapEngine for LearnerEngine {
    fn name(&self) -> String {
        format!("learner[{}]", self.config.profile.label())
    }

    fn design(&self) -> DesignCategory {
        DesignCategory::Hybrid
    }

    fn set_txn_cores(&self, t_cores: u32, total: u32) {
        self.kernel.set_txn_core_fraction(t_cores, total);
    }

    fn load(&self, table: TableId, rows: &mut dyn Iterator<Item = Row>) -> Result<()> {
        self.kernel.load(table, rows)
    }

    fn finish_load(&self) -> Result<()> {
        self.kernel.finish_load();
        self.columnar.build_from(&self.kernel);
        // Row-side MVCC vacuum. The columnar copy prunes itself at the
        // applied watermark (the learner thread's merge_background).
        *self.vacuum.write() = spawn_vacuum(&self.kernel, &self.stop_vacuum, || {});
        self.spawn_learner()
    }

    fn begin(&self) -> Box<dyn Session + '_> {
        Box::new(self.kernel.begin_session())
    }

    fn query(&self, spec: &QuerySpec, opts: &QueryOpts) -> Result<QueryOutput> {
        // A-class overload gate: a no-op unless admission is enabled, a
        // bounded sojourn-deadline-shed queue when it is. Shed queries
        // never execute and are not counted as executed.
        let _admit = self.kernel.admission.admit_query()?;
        self.kernel.stats.queries.inc();
        // Read-index wait: TiDB merges the tail of the log with the
        // analytical data before executing, so the query sees everything
        // committed before its start — freshness zero by construction
        // (§6.5.1), paid as wait latency here. The snapshot span prices
        // that wait plus view construction. The guard is taken before the
        // wait so vacuum cannot pass the query's snapshot while it blocks.
        let span = SpanTimer::start();
        let _guard = self
            .kernel
            .snapshots
            .register_with(|| self.kernel.oracle.read_ts());
        let ts = _guard.ts();
        // Wait only up to the last logged commit: timestamps burned
        // without a record (aborted installs) never reach the learner,
        // and nothing with a record in (last_logged, ts] exists. Bounded:
        // a crashed learner must fail the query, not hang the client.
        let target = ts.min(self.last_logged.load(Ordering::Acquire));
        if !self.applied.wait_for_timeout(target, self.config.read_index_timeout) {
            return Err(HatError::ReplicaUnavailable);
        }
        let view = self.columnar.view(&self.kernel, ts);
        span.finish(&self.kernel.stats.snapshot_span);
        let out = execute_with(spec, &view, opts);
        self.kernel.stats.record_exec(&out.stats);
        Ok(out)
    }

    fn reset(&self) -> Result<()> {
        self.restart_learner()?;
        self.quiesce_learner();
        self.kernel.reset()?;
        self.columnar.reset();
        Ok(())
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.kernel.metrics();
        snap.set_gauge(names::REPL_BACKLOG, self.backlog.load(Ordering::Relaxed));
        snap.set_gauge(names::DELTA_ROWS, self.columnar.lineorder.delta_len() as u64);
        snap.set_gauge(
            names::COLSTORE_BYTES_ENCODED,
            self.columnar.lineorder.approx_bytes() as u64,
        );
        snap.set_gauge(
            names::COLSTORE_BYTES_DECODED,
            self.columnar.lineorder.decoded_bytes_equiv() as u64,
        );
        snap
    }
}

impl Drop for LearnerEngine {
    fn drop(&mut self) {
        self.wal.close();
        self.stop_vacuum.store(true, Ordering::Relaxed);
        if let Some(handle) = self.vacuum.write().take() {
            let _ = handle.join();
        }
        if let Some(ctl) = self.learner.write().take() {
            ctl.stop.store(true, Ordering::Release);
            let _ = ctl.handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::{Money, Value};
    use hat_query::predicate::Predicate;
    use hat_query::spec::{AggExpr, QueryId, QuerySpec};

    fn lineorder_row(ok: u64, custkey: u32, revenue_c: i64) -> Row {
        row_from([
            Value::U64(ok),
            Value::U32(1),
            Value::U32(custkey),
            Value::U32(1),
            Value::U32(1),
            Value::U32(19940101),
            Value::from("1-URGENT"),
            Value::from("0"),
            Value::U32(10),
            Value::Money(Money::from_cents(revenue_c)),
            Value::Money(Money::from_cents(revenue_c)),
            Value::U32(5),
            Value::Money(Money::from_cents(revenue_c)),
            Value::Money(Money::from_cents(revenue_c / 2)),
            Value::U32(0),
            Value::U32(19940110),
            Value::from("TRUCK"),
        ])
    }

    fn sum_revenue_spec() -> QuerySpec {
        QuerySpec {
            id: QueryId::Q1_1,
            fact: TableId::Lineorder,
            fact_filter: Predicate::all(),
            joins: vec![],
            group_by: vec![],
            agg: AggExpr::SumMoney(hat_common::ids::lineorder::REVENUE),
        }
    }

    fn loaded_dual() -> DualEngine {
        let engine = DualEngine::new(DualConfig {
            merge_threshold: 8,
            merge_interval: Duration::from_millis(1),
            ..DualConfig::default()
        });
        let rows: Vec<Row> = (0..10).map(|i| lineorder_row(i, 1, 100)).collect();
        engine.load(TableId::Lineorder, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
        engine
    }

    #[test]
    fn dual_queries_include_fresh_commits() {
        let engine = loaded_dual();
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 1000);
        // Insert and immediately query: merge-on-read must see it.
        let mut s = engine.begin();
        s.insert(TableId::Lineorder, lineorder_row(10, 1, 500)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 1500, "zero freshness by construction");
    }

    #[test]
    fn dual_compaction_seals_delta() {
        let engine = loaded_dual();
        for i in 0..20u64 {
            let mut s = engine.begin();
            s.insert(TableId::Lineorder, lineorder_row(10 + i, 1, 10)).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        // Compactor threshold is 8; wait for it to run.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while engine.delta_rows() >= 8 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(engine.delta_rows() < 8, "compactor drained the delta");
        assert!(engine.lineorder_segments() >= 2);
        // Results unchanged by compaction.
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 1000 + 200);
    }

    #[test]
    fn dual_reset_restores_load_state() {
        let engine = loaded_dual();
        for i in 0..20u64 {
            let mut s = engine.begin();
            s.insert(TableId::Lineorder, lineorder_row(10 + i, 1, 10)).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        engine.reset().unwrap();
        assert_eq!(engine.lineorder_segments(), 1);
        assert_eq!(engine.delta_rows(), 0);
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 1000);
    }

    #[test]
    fn dual_vacuum_prunes_row_side_version_chains() {
        let engine = DualEngine::new(DualConfig {
            merge_threshold: 8,
            merge_interval: Duration::from_millis(1),
            vacuum_interval: Some(Duration::from_millis(1)),
            ..DualConfig::default()
        });
        let rows: Vec<Row> = (0..10).map(|i| lineorder_row(i, 1, 100)).collect();
        engine.load(TableId::Lineorder, &mut rows.into_iter()).unwrap();
        let fr = vec![row_from([Value::U32(0), Value::U64(0)])];
        engine.load(TableId::Freshness, &mut fr.into_iter()).unwrap();
        engine.finish_load().unwrap();
        let base = engine.kernel.db.live_versions();
        // Bury the freshness row (row-format, merge-on-read reads it from
        // the row store) under 40 committed updates.
        for n in 1..=40u64 {
            let mut s = engine.begin();
            s.update(TableId::Freshness, 0, row_from([Value::U32(0), Value::U64(n)]))
                .unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while engine.kernel.db.live_versions() > base + 1 {
            assert!(std::time::Instant::now() < deadline, "vacuum never converged");
            std::thread::sleep(Duration::from_millis(2));
        }
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 1000);
        assert_eq!(out.freshness, vec![(0, 40)], "newest version survives");
    }

    #[test]
    fn dual_design_metadata() {
        let engine = loaded_dual();
        assert_eq!(engine.design(), DesignCategory::Hybrid);
        assert!(engine.name().contains("dual-format"));
    }

    fn fast_learner(profile: LearnerProfile) -> LearnerEngine {
        let engine = LearnerEngine::new(LearnerConfig {
            profile,
            apply_cost: Duration::from_micros(5),
            merge_threshold: 8,
            ..LearnerConfig::default()
        });
        let rows: Vec<Row> = (0..10).map(|i| lineorder_row(i, 1, 100)).collect();
        engine.load(TableId::Lineorder, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
        engine
    }

    #[test]
    fn learner_read_index_guarantees_freshness() {
        let engine = fast_learner(LearnerProfile::SingleNode);
        for i in 0..5u64 {
            let mut s = engine.begin();
            s.insert(TableId::Lineorder, lineorder_row(10 + i, 1, 100)).unwrap();
            assert!(s.commit().unwrap().is_acked());
            // Query immediately after each commit: read-index wait must
            // make the commit visible despite the async learner.
            let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
            assert_eq!(out.groups[0].agg, 1000 + (i as i64 + 1) * 100);
        }
    }

    #[test]
    fn learner_compacts_and_resets() {
        let engine = fast_learner(LearnerProfile::SingleNode);
        for i in 0..30u64 {
            let mut s = engine.begin();
            s.insert(TableId::Lineorder, lineorder_row(10 + i, 1, 10)).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        engine.quiesce_learner();
        assert!(engine.columnar.lineorder.segment_count() >= 2);
        engine.reset().unwrap();
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 1000);
        assert_eq!(engine.stats().replication_backlog, 0);
    }

    #[test]
    fn learner_crash_restart_recovers_columnar_state() {
        let engine = fast_learner(LearnerProfile::SingleNode);
        engine.crash_learner();
        assert!(engine.is_learner_down());
        // Commits keep succeeding: the learner is not in the quorum.
        for i in 0..5u64 {
            let mut s = engine.begin();
            s.insert(TableId::Lineorder, lineorder_row(10 + i, 1, 100)).unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
        assert_eq!(engine.stats().replication_backlog, 5);
        engine.restart_learner().unwrap();
        engine.quiesce_learner();
        assert_eq!(engine.stats().replication_backlog, 0);
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 1500, "no lost or doubled records");
    }

    #[test]
    fn read_index_times_out_while_learner_down() {
        let engine = LearnerEngine::new(LearnerConfig {
            apply_cost: Duration::from_micros(5),
            read_index_timeout: Duration::from_millis(20),
            ..LearnerConfig::default()
        });
        let rows: Vec<Row> = (0..4).map(|i| lineorder_row(i, 1, 100)).collect();
        engine.load(TableId::Lineorder, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
        engine.crash_learner();
        let mut s = engine.begin();
        s.insert(TableId::Lineorder, lineorder_row(10, 1, 100)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        let err = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap_err();
        assert_eq!(err, HatError::ReplicaUnavailable);
        assert!(err.is_retryable() && !err.is_commit_in_doubt());
        engine.restart_learner().unwrap();
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 500);
    }

    #[test]
    fn consensus_times_out_under_partition_as_clean_abort() {
        let engine = LearnerEngine::new(LearnerConfig {
            apply_cost: Duration::from_micros(5),
            consensus_timeout: Duration::from_millis(20),
            ..LearnerConfig::default()
        });
        let rows: Vec<Row> = (0..4).map(|i| lineorder_row(i, 1, 100)).collect();
        engine.load(TableId::Lineorder, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
        engine.link().partition();
        let mut s = engine.begin();
        s.insert(TableId::Lineorder, lineorder_row(10, 1, 100)).unwrap();
        let err = s.commit().unwrap_err();
        assert_eq!(err, HatError::ReplicaUnavailable);
        let stats = engine.stats();
        assert_eq!(stats.commits, 0, "pre-install failure is a clean abort");
        assert_eq!(stats.aborts, 1);
        // Nothing reached the log or the learner.
        engine.link().heal();
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 400);
        // And a plain retry succeeds after the heal.
        let mut s = engine.begin();
        s.insert(TableId::Lineorder, lineorder_row(10, 1, 100)).unwrap();
        assert!(s.commit().unwrap().is_acked());
        let out = engine.query(&sum_revenue_spec(), &QueryOpts::default()).unwrap();
        assert_eq!(out.groups[0].agg, 500);
    }

    #[test]
    fn distributed_profile_has_higher_commit_latency() {
        let single = fast_learner(LearnerProfile::SingleNode);
        let dist = fast_learner(LearnerProfile::Distributed);
        let time_commits = |engine: &LearnerEngine| {
            let start = std::time::Instant::now();
            for i in 0..10u64 {
                let mut s = engine.begin();
                s.insert(TableId::Lineorder, lineorder_row(100 + i, 1, 1)).unwrap();
                assert!(s.commit().unwrap().is_acked());
            }
            start.elapsed()
        };
        let t_single = time_commits(&single);
        let t_dist = time_commits(&dist);
        assert!(
            t_dist > t_single * 2,
            "distributed consensus must cost more ({t_single:?} vs {t_dist:?})"
        );
        assert_eq!(single.profile().label(), "single-node");
        assert_eq!(dist.profile().label(), "distributed");
    }
}
