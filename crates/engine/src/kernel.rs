//! The sharded row-store transaction kernel shared by every engine.
//!
//! [`RowKernel`] combines a [`RowDb`], a sharded timestamp oracle, a
//! sharded lock table, and an [`IndexSet`] into a complete transactional
//! engine: sessions buffer writes, acquire no-wait row locks, and install
//! at commit inside the commit critical section of every shard their
//! write set routes to. A single-shard write set commits entirely under
//! its home shard's lock; a cross-shard write set pays a degenerate
//! two-phase commit (all participant mutexes, one common timestamp, one
//! redo record on the coordinator's WAL stream). Engines differ in the
//! [`CommitHooks`] they attach (WAL shipping, columnar delta append,
//! consensus latency) and in where their analytical queries read — the
//! kernel itself is the "primary node" of all four designs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hat_common::ids::{customer, date, lineorder, part, supplier};
use hat_common::telemetry::{
    names, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, SpanTimer,
};
use hat_common::{HatError, Result, Row, TableId};
use hat_storage::bptree::BPlusTree;
use hat_storage::dwal::{CheckpointData, TableCheckpoint, WalRecovery};
use hat_storage::rowstore::{PruneStats, RowDb, RowId, RowStore};
use hat_storage::wal::TableOp;
use hat_txn::locks::OwnerId;
use hat_txn::{
    InstallSequencer, LockKey, LockManager, LockPolicy, ShardRouter, ShardedOracle,
    SnapshotGuard, SnapshotRegistry, Ts, TxnCtx, WriteOp, LOAD_TS,
};
use parking_lot::RwLock;

use crate::admission::AdmissionController;
use crate::api::{
    CommitReceipt, EngineConfig, EngineStats, InDoubtCause, IndexProfile, NamedIndex, Session,
};
use crate::durability::ShardedDurability;
use hat_storage::dwal::HealthState;

/// Hooks an engine attaches to the kernel's commit path.
pub trait CommitHooks: Send + Sync {
    /// Runs before the commit critical section — consensus/prepare latency.
    ///
    /// May fail (e.g. consensus rounds unreachable under a link
    /// partition): nothing has been installed yet, so an error here aborts
    /// the transaction cleanly and is safe to retry.
    fn pre_commit(&self) -> Result<()> {
        Ok(())
    }

    /// Runs inside the critical section with the resolved redo operations,
    /// in commit-timestamp order across all transactions. WAL append and
    /// columnar delta append live here. Infallible: by this point the
    /// writes are installed and the record must reach the log.
    fn on_install(&self, _ts: Ts, _ops: &[TableOp]) {}

    /// Whether [`CommitHooks::on_install`] must be delivered in global
    /// commit-timestamp order. Hooks that ship a totally ordered stream
    /// (replication WAL, columnar delta, learner log) return `true`, and
    /// the kernel routes their deliveries through an
    /// [`InstallSequencer`]; hook-free kernels skip the sequencer and
    /// shards commit fully independently.
    fn ordered_install(&self) -> bool {
        false
    }

    /// Runs after the critical section is released — synchronous
    /// replication waits live here so they don't serialize other commits.
    ///
    /// May fail with [`HatError::ReplicationTimeout`]: the transaction is
    /// already durable on the primary, so such an error means
    /// *committed-in-doubt*, not aborted — [`KernelSession::commit`]
    /// surfaces it through the receipt's
    /// [`CommitDurability`](crate::api::CommitDurability) after counting
    /// the commit.
    fn post_commit(&self, _ts: Ts) -> Result<()> {
        Ok(())
    }
}

/// Per-shard row locks: one [`LockManager`] stripe per commit shard,
/// routed by the same hash as the commit shards themselves, so a row's
/// lock stripe and commit shard always agree.
pub struct ShardedLocks {
    router: ShardRouter,
    stripes: Vec<LockManager>,
}

impl ShardedLocks {
    fn new(policy: LockPolicy, shards: u32) -> Self {
        ShardedLocks {
            router: ShardRouter::new(shards),
            stripes: (0..shards.max(1)).map(|_| LockManager::with_policy(policy)).collect(),
        }
    }

    #[inline]
    fn stripe(&self, key: &LockKey) -> &LockManager {
        &self.stripes[self.router.route(key.0, key.1)]
    }

    /// See [`LockManager::try_lock`].
    pub fn try_lock(&self, key: LockKey, owner: OwnerId) -> Result<()> {
        self.stripe(&key).try_lock(key, owner)
    }

    /// Releases every lock in `keys` held by `owner`.
    pub fn unlock_all(&self, keys: &[LockKey], owner: OwnerId) {
        for key in keys {
            self.stripe(key).unlock(*key, owner);
        }
    }

    /// See [`LockManager::held_by_other`].
    pub fn held_by_other(&self, key: &LockKey, owner: OwnerId) -> bool {
        self.stripe(key).held_by_other(key, owner)
    }

    /// Locks currently held across all stripes (test/diagnostic helper).
    pub fn held_count(&self) -> usize {
        self.stripes.iter().map(|s| s.held_count()).sum()
    }
}

/// The default no-op hooks (shared design).
pub struct NoHooks;
impl CommitHooks for NoHooks {}

/// The secondary access paths, governed by [`IndexProfile`].
pub struct IndexSet {
    profile: IndexProfile,
    customer_pk: RwLock<BPlusTree<u32, RowId>>,
    customer_name: RwLock<BPlusTree<String, RowId>>,
    supplier_pk: RwLock<BPlusTree<u32, RowId>>,
    supplier_name: RwLock<BPlusTree<String, RowId>>,
    part_pk: RwLock<BPlusTree<u32, RowId>>,
    date_pk: RwLock<BPlusTree<u32, RowId>>,
    /// `(lo_custkey, rid) -> ()` — Count Orders prefix scans.
    lineorder_cust: RwLock<BPlusTree<(u32, RowId), ()>>,
    /// `(lo_orderdate, rid) -> ()` — analytical date prefiltering
    /// (`All` profile only).
    lineorder_date: RwLock<BPlusTree<(u32, RowId), ()>>,
}

impl IndexSet {
    fn new(profile: IndexProfile) -> Self {
        IndexSet {
            profile,
            customer_pk: RwLock::new(BPlusTree::new()),
            customer_name: RwLock::new(BPlusTree::new()),
            supplier_pk: RwLock::new(BPlusTree::new()),
            supplier_name: RwLock::new(BPlusTree::new()),
            part_pk: RwLock::new(BPlusTree::new()),
            date_pk: RwLock::new(BPlusTree::new()),
            lineorder_cust: RwLock::new(BPlusTree::new()),
            lineorder_date: RwLock::new(BPlusTree::new()),
        }
    }

    /// The active profile.
    pub fn profile(&self) -> IndexProfile {
        self.profile
    }

    /// Index a freshly loaded/inserted row. Called with the row already
    /// installed.
    fn index_row(&self, table: TableId, rid: RowId, row: &Row) {
        if !self.profile.has_txn_indexes() {
            return;
        }
        match table {
            TableId::Customer => {
                let key = row[customer::CUSTKEY].as_u32().expect("typed");
                self.customer_pk.write().insert(key, rid);
                let name = row[customer::NAME].as_str().expect("typed").to_owned();
                self.customer_name.write().insert(name, rid);
            }
            TableId::Supplier => {
                let key = row[supplier::SUPPKEY].as_u32().expect("typed");
                self.supplier_pk.write().insert(key, rid);
                let name = row[supplier::NAME].as_str().expect("typed").to_owned();
                self.supplier_name.write().insert(name, rid);
            }
            TableId::Part => {
                let key = row[part::PARTKEY].as_u32().expect("typed");
                self.part_pk.write().insert(key, rid);
            }
            TableId::Date => {
                let key = row[date::DATEKEY].as_u32().expect("typed");
                self.date_pk.write().insert(key, rid);
            }
            TableId::Lineorder => {
                let ck = row[lineorder::CUSTKEY].as_u32().expect("typed");
                self.lineorder_cust.write().insert((ck, rid), ());
                if self.profile.has_analytic_indexes() {
                    let od = row[lineorder::ORDERDATE].as_u32().expect("typed");
                    self.lineorder_date.write().insert((od, rid), ());
                }
            }
            TableId::History | TableId::Freshness => {}
        }
    }

    /// Point probe of a `u32`-keyed unique index. `None` if the profile
    /// lacks the index.
    fn probe_u32(&self, which: NamedIndex, key: u32) -> Option<Option<RowId>> {
        if !self.profile.has_txn_indexes() {
            return None;
        }
        let tree = match which {
            NamedIndex::CustomerPk => &self.customer_pk,
            NamedIndex::SupplierPk => &self.supplier_pk,
            NamedIndex::PartPk => &self.part_pk,
            NamedIndex::DatePk => &self.date_pk,
            _ => return None,
        };
        Some(tree.read().get(&key).copied())
    }

    /// Point probe of a string-keyed unique index.
    fn probe_str(&self, which: NamedIndex, key: &str) -> Option<Option<RowId>> {
        if !self.profile.has_txn_indexes() {
            return None;
        }
        let tree = match which {
            NamedIndex::CustomerName => &self.customer_name,
            NamedIndex::SupplierName => &self.supplier_name,
            _ => return None,
        };
        Some(tree.read().get(key).copied())
    }

    /// Rids of lineorder rows for `custkey` via the composite index.
    fn lineorder_rids_for_customer(&self, custkey: u32) -> Option<Vec<RowId>> {
        if !self.profile.has_txn_indexes() {
            return None;
        }
        let tree = self.lineorder_cust.read();
        let mut rids = Vec::new();
        tree.range(
            std::ops::Bound::Included(&(custkey, 0)),
            std::ops::Bound::Excluded(&(custkey + 1, 0)),
            |&(_, rid), _| {
                rids.push(rid);
                true
            },
        );
        Some(rids)
    }

    /// Rids of lineorder rows with orderdate in `[lo, hi]` via the date
    /// index (`All` profile only).
    pub fn lineorder_rids_for_date_range(&self, lo: u32, hi: u32) -> Option<Vec<RowId>> {
        if !self.profile.has_analytic_indexes() {
            return None;
        }
        let tree = self.lineorder_date.read();
        let mut rids = Vec::new();
        tree.range(
            std::ops::Bound::Included(&(lo, 0)),
            std::ops::Bound::Excluded(&(hi + 1, 0)),
            |&(_, rid), _| {
                rids.push(rid);
                true
            },
        );
        Some(rids)
    }

    /// Live entry count across both lineorder composite indexes. The
    /// vacuum sweep keeps this proportional to the live row count; the
    /// plateau is asserted in the vacuum tests.
    pub fn lineorder_entries(&self) -> u64 {
        (self.lineorder_cust.read().len() + self.lineorder_date.read().len()) as u64
    }

    /// Sweeps dead lineorder index entries: removes every `(key, rid)`
    /// pair whose rid no longer holds a committed version in `store`
    /// (slot emptied by a benchmark reset or truncation). Piggybacked on
    /// the vacuum prune horizon — once vacuum runs, an emptied slot can
    /// never become visible again, so removal is safe without locking
    /// the row. Returns the number of entries reclaimed.
    fn sweep_dead(&self, store: &RowStore) -> u64 {
        if !self.profile.has_txn_indexes() {
            return 0;
        }
        let mut swept = 0;
        for tree in [&self.lineorder_cust, &self.lineorder_date] {
            let mut guard = tree.write();
            let mut stale = Vec::new();
            guard.for_each(|&(k, rid), _| {
                if store.latest_ts(rid).is_none() {
                    stale.push((k, rid));
                }
            });
            for key in stale {
                guard.remove(&key);
                swept += 1;
            }
        }
        swept
    }
}

/// Counters shared across sessions: typed handles into the kernel's
/// [`MetricsRegistry`]. Hot paths touch the handles (lock-free atomics);
/// [`RowKernel::metrics`] snapshots the whole registry by name.
pub struct KernelStats {
    /// The registry every handle below is named in.
    pub registry: MetricsRegistry,
    pub commits: Arc<Counter>,
    pub aborts: Arc<Counter>,
    pub queries: Arc<Counter>,
    /// Commits whose synchronous replication wait timed out
    /// (committed-in-doubt outcomes). A subset of `commits`.
    pub replication_timeouts: Arc<Counter>,
    /// Commits whose write set spanned more than one commit shard (each
    /// paid the cross-shard 2PC round). A subset of `commits`; zero at
    /// `shards = 1` and on shard-local workloads.
    pub xshard_commits: Arc<Counter>,
    /// Fact-table morsels scanned by analytical probes.
    pub morsels_scanned: Arc<Counter>,
    /// Morsels pruned via date zone maps.
    pub morsels_pruned: Arc<Counter>,
    /// Scan batches pulled by the vectorized probe path.
    pub scan_batches: Arc<Counter>,
    /// Fact rows skipped unscanned by zone-map pruning.
    pub scan_rows_pruned: Arc<Counter>,
    /// Fact rows removed by the vectorized filter kernels.
    pub scan_rows_filtered: Arc<Counter>,
    /// Total probe-phase wall time, nanoseconds.
    pub probe_nanos: Arc<Counter>,
    /// Largest probe worker count any query used.
    pub probe_workers_max: Arc<Gauge>,
    /// Aggregates saturated at the `i64` boundary.
    pub agg_saturations: Arc<Counter>,
    /// End-to-end commit call durations, nanoseconds.
    pub commit_span: Arc<Histogram>,
    /// Snapshot/view acquisition before a query, nanoseconds. Engines
    /// record this around their read-timestamp/read-index/delta-merge
    /// step, so replication waits and merge-on-read costs show up here.
    pub snapshot_span: Arc<Histogram>,
    /// Dimension hash-build durations, nanoseconds.
    pub build_span: Arc<Histogram>,
    /// Fact probe durations, nanoseconds.
    pub probe_span: Arc<Histogram>,
    /// Completed vacuum passes.
    pub vacuum_passes: Arc<Counter>,
    /// Row versions reclaimed by vacuum.
    pub versions_pruned: Arc<Counter>,
    /// Dead secondary-index entries reclaimed by the vacuum sweep.
    pub index_entries_swept: Arc<Counter>,
    /// Live versions across the row store (refreshed by every vacuum
    /// pass and by [`RowKernel::metrics`]).
    pub live_versions: Arc<Gauge>,
    /// Version-chain lengths observed by vacuum before pruning.
    pub chain_length: Arc<Histogram>,
}

impl Default for KernelStats {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        KernelStats {
            commits: registry.counter(names::TXN_COMMITS),
            aborts: registry.counter(names::TXN_ABORTS),
            queries: registry.counter(names::QUERIES),
            replication_timeouts: registry.counter(names::TXN_REPL_TIMEOUTS),
            xshard_commits: registry.counter(names::TXN_XSHARD_COMMITS),
            morsels_scanned: registry.counter(names::MORSELS_SCANNED),
            morsels_pruned: registry.counter(names::MORSELS_PRUNED),
            scan_batches: registry.counter(names::SCAN_BATCHES),
            scan_rows_pruned: registry.counter(names::SCAN_ROWS_PRUNED),
            scan_rows_filtered: registry.counter(names::SCAN_ROWS_FILTERED),
            probe_nanos: registry.counter(names::PROBE_NANOS),
            probe_workers_max: registry.gauge(names::PROBE_WORKERS_MAX),
            agg_saturations: registry.counter(names::AGG_SATURATIONS),
            commit_span: registry.histogram(names::SPAN_COMMIT),
            snapshot_span: registry.histogram(names::SPAN_SNAPSHOT),
            build_span: registry.histogram(names::SPAN_QUERY_BUILD),
            probe_span: registry.histogram(names::SPAN_QUERY_PROBE),
            vacuum_passes: registry.counter(names::VACUUM_PASSES),
            versions_pruned: registry.counter(names::VACUUM_VERSIONS_PRUNED),
            index_entries_swept: registry.counter(names::VACUUM_INDEX_SWEPT),
            live_versions: registry.gauge(names::LIVE_VERSIONS),
            chain_length: registry.histogram(names::VACUUM_CHAIN_LENGTH),
            registry,
        }
    }
}

impl KernelStats {
    /// Folds one query's execution diagnostics into the cumulative
    /// counters. Every engine calls this after [`hat_query::exec`] returns.
    pub fn record_exec(&self, s: &hat_query::exec::ExecStats) {
        self.morsels_scanned.add(s.morsels_scanned);
        self.morsels_pruned.add(s.morsels_pruned);
        self.scan_batches.add(s.batches);
        self.scan_rows_pruned.add(s.rows_pruned_zonemap);
        self.scan_rows_filtered.add(s.rows_filtered_vectorized);
        self.probe_nanos.add(s.probe_nanos);
        self.probe_workers_max.set_max(s.workers as u64);
        self.agg_saturations.add(s.agg_saturations);
        self.build_span.record(s.build_nanos);
        self.probe_span.record(s.probe_nanos);
    }
}

/// Per-shard commit counters, registered in the kernel's registry under
/// `txn.shard{N}.*` so they flow through [`RowKernel::metrics`].
struct ShardCounters {
    /// Commits coordinated by this shard.
    commits: Arc<Counter>,
    /// Cross-shard commits this shard participated in.
    xshard_commits: Arc<Counter>,
}

/// The transactional core of an engine, hash-sharded across
/// [`EngineConfig::shards`] commit shards.
pub struct RowKernel {
    pub db: RowDb,
    /// Per-shard commit critical sections behind one global visibility
    /// horizon. `read_ts`/`advance_to`/`begin_commit` keep the old
    /// single-oracle surface for engines and tests.
    pub oracle: ShardedOracle,
    /// Routes `(table, rid)` to its home commit shard.
    router: ShardRouter,
    /// Per-shard row-lock stripes (same routing as the oracle).
    pub locks: ShardedLocks,
    pub indexes: IndexSet,
    pub config: EngineConfig,
    pub stats: KernelStats,
    /// Per-shard durability: each shard owns its own group-commit queue
    /// and (under `Fsync`) WAL stream. Engines reach through
    /// [`ShardedDurability::wal`] (shard 0, the checkpoint-bearing
    /// stream) for checkpoints, crash injection, and counters.
    pub durability: ShardedDurability,
    /// Per-class overload gate in front of query execution (A) and — at
    /// `shards = 1` — commit (T). Its counters are registered in
    /// `stats.registry` so they flow through [`RowKernel::metrics`].
    pub admission: Arc<AdmissionController>,
    /// Per-shard commit gates: a commit admits on its *coordinator*
    /// shard's gate, so overload on one shard back-pressures only the
    /// traffic routed there. At `shards = 1` this is `admission` itself.
    txn_gates: Vec<Arc<AdmissionController>>,
    /// Per-shard commit counters (`txn.shard{N}.*`).
    shard_counters: Vec<ShardCounters>,
    /// Active snapshots against this kernel's row store: every session
    /// and every analytical query that reads the primary holds a guard
    /// here, and [`RowKernel::vacuum_pass`] prunes below their minimum.
    pub snapshots: Arc<SnapshotRegistry>,
    /// Timestamp of the last durable checkpoint (0 before the first).
    /// Under `Fsync`, vacuum never prunes above it: the in-memory store
    /// keeps every version the on-disk image hasn't caught up to.
    last_checkpoint_ts: AtomicU64,
    hooks: Arc<dyn CommitHooks>,
    /// Engaged when the hooks demand timestamp-ordered `on_install`
    /// delivery; `None` for hook-free kernels, which then commit with no
    /// cross-shard coordination at all.
    sequencer: Option<InstallSequencer>,
    /// Slot counts per table recorded at `finish_load`, for reset.
    loaded_counts: RwLock<Vec<u64>>,
}

impl RowKernel {
    /// A kernel with no commit hooks. Panics if the durability mode needs
    /// disk and the WAL directory can't be opened; use
    /// [`RowKernel::try_new`] to handle that.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_hooks(config, Arc::new(NoHooks))
    }

    /// Fallible [`RowKernel::new`].
    pub fn try_new(config: EngineConfig) -> Result<Self> {
        Self::try_with_hooks(config, Arc::new(NoHooks))
    }

    /// A kernel with engine-specific commit hooks (panicking variant).
    pub fn with_hooks(config: EngineConfig, hooks: Arc<dyn CommitHooks>) -> Self {
        Self::try_with_hooks(config, hooks).expect("durability layer open failed")
    }

    /// A kernel with engine-specific commit hooks. In
    /// [`DurabilityMode::Fsync`](crate::api::DurabilityMode) this opens
    /// every shard's WAL directory, replays any checkpoint + merged log
    /// tails found there into the row store, and restores the timestamp
    /// horizon — the kernel comes back exactly as of the last
    /// acknowledged commit on every stream.
    pub fn try_with_hooks(config: EngineConfig, hooks: Arc<dyn CommitHooks>) -> Result<Self> {
        let shards = config.shards.max(1);
        let (durability, recoveries) = ShardedDurability::open(&config.durability, shards)?;
        let stats = KernelStats::default();
        let admission = Arc::new(AdmissionController::new(&config.admission, &stats.registry));
        let txn_gates: Vec<Arc<AdmissionController>> = if shards == 1 {
            vec![Arc::clone(&admission)]
        } else {
            // Divide the commit slots across shards (ceil, at least 1);
            // the gates share the registry, so their counters aggregate.
            let per_shard = config.admission.txn_slots.map(|n| n.div_ceil(shards).max(1));
            (0..shards)
                .map(|_| {
                    let mut gate_config = config.admission.clone();
                    gate_config.txn_slots = per_shard;
                    Arc::new(AdmissionController::new(&gate_config, &stats.registry))
                })
                .collect()
        };
        let shard_counters = (0..shards)
            .map(|s| ShardCounters {
                commits: stats.registry.counter(&format!("txn.shard{s}.commits")),
                xshard_commits: stats
                    .registry
                    .counter(&format!("txn.shard{s}.xshard_commits")),
            })
            .collect();
        let mut kernel = RowKernel {
            db: RowDb::new(),
            oracle: ShardedOracle::new(shards),
            router: ShardRouter::new(shards),
            locks: ShardedLocks::new(config.lock_policy, shards),
            indexes: IndexSet::new(config.indexes),
            config,
            stats,
            durability,
            admission,
            txn_gates,
            shard_counters,
            snapshots: Arc::new(SnapshotRegistry::new()),
            last_checkpoint_ts: AtomicU64::new(0),
            hooks,
            sequencer: None,
            loaded_counts: RwLock::new(vec![0; TableId::COUNT]),
        };
        if recoveries.iter().any(Option::is_some) {
            kernel.apply_recovery(&recoveries)?;
        }
        kernel.sequencer = kernel
            .hooks
            .ordered_install()
            .then(|| InstallSequencer::new(kernel.oracle.read_ts() + 1));
        Ok(kernel)
    }

    /// The shard router (tests and workload generators use it to build
    /// shard-local write sets).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Live-resizes the transactional admission bounds to reflect an
    /// elastic core split: `t_cores` of a `total`-core budget. The
    /// configured `txn_slots` scale proportionally (ceil), then divide
    /// across the per-shard commit gates exactly as at construction
    /// (ceil, at least 1 per shard — a shard with zero slots could never
    /// drain its queue). Disabled admission stays disabled: with no
    /// configured bound there is nothing to narrow, and the harness's
    /// worker parking is the only T-side lever.
    pub fn set_txn_core_fraction(&self, t_cores: u32, total: u32) {
        let Some(base) = self.config.admission.txn_slots else {
            return;
        };
        let total = u64::from(total.max(1));
        let t = u64::from(t_cores).min(total);
        let scaled = ((u64::from(base) * t).div_ceil(total) as u32).max(1);
        let shards = self.txn_gates.len().max(1) as u32;
        let per_shard = scaled.div_ceil(shards).max(1);
        for gate in &self.txn_gates {
            gate.set_txn_slots(Some(per_shard));
        }
    }

    /// The sorted, deduplicated commit-shard set of a write set: updates
    /// route by `(table, rid)` — the row's home shard — and inserts by
    /// the row's first column (the natural-key prefix, so all lines of
    /// one order land together). Recovery never needs this mapping: all
    /// streams are merged and replayed by logged rid/timestamp.
    fn participants(&self, writes: &[WriteOp]) -> Vec<usize> {
        if self.router.shards() == 1 || writes.is_empty() {
            return vec![0];
        }
        let mut set: Vec<usize> = writes
            .iter()
            .map(|op| match op {
                WriteOp::Update { table, rid, .. } => self.router.route(*table, *rid),
                WriteOp::Insert { table, row } => {
                    self.router.route(*table, insert_route_key(row))
                }
            })
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// Passes an allocated-but-undelivered timestamp through the
    /// sequencer so the ordered hook stream never wedges (aborts after
    /// allocation, burned checkpoint timestamps).
    fn sequencer_skip(&self, ts: Ts) {
        if let Some(seq) = &self.sequencer {
            seq.wait_turn(ts);
            seq.advance(ts);
        }
    }

    /// Rebuilds row-store state from what recovery found on disk. Shard
    /// 0's stream carries the full data checkpoint (restored first, rows
    /// at their original rids); the other shards' checkpoints are empty
    /// markers used only for segment pruning. The WAL tails of *all*
    /// shards are then merged: records at or below the checkpoint cut
    /// are dropped (a crash between the shard-0 data checkpoint and the
    /// markers leaves stale tails behind), inserts replay in rid order
    /// with gap-filling (a rid acknowledged on one stream may neighbor a
    /// lost, never-acknowledged rid from another), and updates replay in
    /// timestamp order. A cross-shard commit's record lives *only* on
    /// its coordinator's stream, so "durable there" is the whole
    /// in-doubt resolution rule — every replay of the same directory
    /// reaches the same verdict. Replayed timestamps feed
    /// [`ShardedOracle::advance_to`] so new transactions snapshot past
    /// everything recovered.
    fn apply_recovery(&self, recoveries: &[Option<WalRecovery>]) -> Result<()> {
        let baseline = recoveries[0]
            .as_ref()
            .and_then(|r| r.checkpoint.as_ref())
            .map(|c| c.last_ts)
            .unwrap_or(0);
        if let Some(ckpt) = recoveries[0].as_ref().and_then(|r| r.checkpoint.as_ref()) {
            self.last_checkpoint_ts.store(ckpt.last_ts, Ordering::Release);
            for tc in &ckpt.tables {
                let store = self.db.store(tc.table);
                for (rid, ts, row) in &tc.rows {
                    // Gapped install: the image may itself contain holes
                    // left by an earlier gap-filling replay.
                    store.install_insert_gapped(*rid, Arc::clone(row), *ts)?;
                    self.indexes.index_row(tc.table, *rid, row);
                }
            }
        }
        let mut max_ts = baseline;
        let mut inserts: Vec<(TableId, RowId, Ts, &Row)> = Vec::new();
        let mut updates: Vec<(Ts, TableId, RowId, &Row)> = Vec::new();
        for recovery in recoveries.iter().flatten() {
            max_ts = max_ts.max(recovery.max_ts());
            for rec in &recovery.tail {
                if rec.commit_ts <= baseline {
                    continue;
                }
                for op in &rec.ops {
                    match op {
                        TableOp::Insert { table, rid, row } => {
                            inserts.push((*table, *rid, rec.commit_ts, row));
                        }
                        TableOp::Update { table, rid, row } => {
                            updates.push((rec.commit_ts, *table, *rid, row));
                        }
                    }
                }
            }
        }
        inserts.sort_unstable_by_key(|(table, rid, _, _)| (table.index(), *rid));
        for (table, rid, ts, row) in inserts {
            let store = self.db.store(table);
            store.install_insert_gapped(rid, Arc::clone(row), ts)?;
            self.indexes.index_row(table, rid, row);
        }
        updates.sort_unstable_by_key(|(ts, table, rid, _)| (*ts, table.index(), *rid));
        for (ts, table, rid, row) in updates {
            let store = self.db.store(table);
            if store.latest_ts(rid).is_some() {
                store.install_update(rid, Arc::clone(row), ts)?;
            } else {
                // The row's insert was on another shard's stream and never
                // became durable (its commit was never acknowledged), but
                // this later update was. The update record carries the
                // full row image, so installing it as the base version
                // reproduces exactly the acknowledged state.
                store.install_insert_gapped(rid, Arc::clone(row), ts)?;
                self.indexes.index_row(table, rid, row);
            }
        }
        self.oracle.advance_to(max_ts);
        Ok(())
    }

    /// Writes a checkpoint: a globally consistent cut `(ts, lsn_s per
    /// shard)` plus a snapshot of every table at `ts`. Completed
    /// checkpoints let recovery skip the log prefix and let sealed
    /// segments below each shard's checkpoint LSN be deleted. No-op
    /// unless durability is `Fsync`.
    ///
    /// Shard 0's stream carries the full data image, written *first*;
    /// shards 1..N then get empty marker checkpoints `(lsn_s, ts)` for
    /// segment pruning. A crash between the writes leaves the shard-0
    /// baseline at or above every marker's cut, so the merged-tail
    /// replay (filtered to `ts > baseline`) loses nothing.
    ///
    /// Call once after bulk load (so the base data is durable without
    /// logging it), then periodically.
    pub fn checkpoint(&self) -> Result<()> {
        if self.durability.wal().is_none() {
            return Ok(());
        }
        let shards = self.durability.shards();
        let (ts, lsns) = if shards == 1 {
            // (lsn, ts) are read atomically; appends happen in ts order
            // inside the commit critical section, so "wal prefix <= lsn"
            // is exactly "commits with commit_ts <= ts". LOAD_TS floors
            // the snapshot so a checkpoint right after load captures the
            // loaded rows.
            let (lsn, wal_ts) = self.durability.wal().expect("checked").last_appended();
            (wal_ts.max(LOAD_TS), vec![lsn])
        } else {
            // Quiesce: holding every shard's commit mutex, all commits
            // below the burned timestamp have finished their appends, so
            // each stream's current LSN covers exactly the cut.
            let guard = self.oracle.begin_commit();
            let cut = (guard.ts() - 1).max(LOAD_TS);
            let lsns = (0..shards)
                .map(|s| {
                    self.durability.wal_for(s).map(|w| w.last_appended().0).unwrap_or(0)
                })
                .collect();
            self.sequencer_skip(guard.ts());
            guard.finish();
            (cut, lsns)
        };
        // The scan runs outside the commit mutexes: MVCC reads at `ts`
        // stay stable because vacuum is clamped at the *previous*
        // checkpoint until this one lands.
        let mut tables = Vec::new();
        for t in TableId::ALL {
            let store = self.db.store(t);
            let mut rows: Vec<(u64, Ts, Row)> = Vec::new();
            store.scan(ts, |rid, row| rows.push((rid, ts, Arc::clone(row))));
            // Version stamps are resolved in a second pass: the scan
            // callback runs under the slot lock, which latest_ts retakes.
            for (rid, vts, _) in &mut rows {
                *vts = visible_version_ts(store, *rid, ts).unwrap_or(ts);
            }
            if !rows.is_empty() {
                tables.push(TableCheckpoint { table: t, rows });
            }
        }
        self.durability
            .wal_for(0)
            .expect("checked")
            .checkpoint(&CheckpointData { lsn: lsns[0], last_ts: ts, tables })?;
        for (s, &lsn) in lsns.iter().enumerate().take(shards).skip(1) {
            if let Some(wal) = self.durability.wal_for(s) {
                wal.checkpoint(&CheckpointData { lsn, last_ts: ts, tables: Vec::new() })?;
            }
        }
        // Only now is the image durable; release the vacuum clamp up to it.
        self.last_checkpoint_ts.store(ts, Ordering::Release);
        Ok(())
    }

    /// Replaces the hooks (engines call this once during construction,
    /// before any traffic). Re-derives the install sequencer from the new
    /// hooks' ordering demand.
    pub fn set_hooks(&mut self, hooks: Arc<dyn CommitHooks>) {
        self.sequencer = hooks
            .ordered_install()
            .then(|| InstallSequencer::new(self.oracle.read_ts() + 1));
        self.hooks = hooks;
    }

    /// Bulk-loads rows at the load timestamp, building indexes.
    pub fn load(&self, table: TableId, rows: &mut dyn Iterator<Item = Row>) -> Result<()> {
        let store = self.db.store(table);
        for row in rows {
            let rid = store.install_insert(Arc::clone(&row), LOAD_TS);
            self.indexes.index_row(table, rid, &row);
        }
        Ok(())
    }

    /// Records loaded sizes; call once after all [`RowKernel::load`]s.
    pub fn finish_load(&self) {
        let mut counts = self.loaded_counts.write();
        for t in TableId::ALL {
            counts[t.index()] = self.db.store(t).slot_count();
        }
    }

    /// The loaded slot count of `table`.
    pub fn loaded_count(&self, table: TableId) -> u64 {
        self.loaded_counts.read()[table.index()]
    }

    /// Restores post-load state: truncates grown tables, reverts updated
    /// rows, trims indexes. Caller must quiesce traffic first.
    pub fn reset(&self) -> Result<()> {
        let counts = self.loaded_counts.read();
        for t in TableId::ALL {
            let store = self.db.store(t);
            store.truncate_slots(counts[t.index()]);
            if t.is_mutable() {
                store.revert_versions_after(LOAD_TS);
            }
        }
        self.indexes.sweep_dead(self.db.store(TableId::Lineorder));
        Ok(())
    }

    /// Starts a session at the kernel's configured isolation level. The
    /// session registers its begin snapshot in the kernel's
    /// [`SnapshotRegistry`] and holds the guard for its whole lifetime,
    /// so vacuum can never reclaim a version an open transaction might
    /// still read.
    pub fn begin_session(self: &Arc<Self>) -> KernelSession {
        let snapshot = self.snapshots.register_with(|| self.oracle.read_ts());
        KernelSession {
            ctx: TxnCtx::begin(self.config.isolation, snapshot.ts()),
            kernel: Arc::clone(self),
            _snapshot: snapshot,
        }
    }

    /// One vacuum pass: computes the safe prune horizon — the current
    /// visibility frontier, clamped to the last durable checkpoint under
    /// `Fsync` and to the oldest active snapshot — and reclaims version
    /// chains below it, visiting only slots updated since the last pass.
    /// Called by each engine's background vacuum thread (see
    /// [`EngineConfig::vacuum_interval`]); safe to call manually.
    pub fn vacuum_pass(&self) -> PruneStats {
        let mut frontier = self.oracle.read_ts();
        if self.durability.wal().is_some() {
            // LOAD_TS floors the clamp so pre-checkpoint passes are
            // harmless no-ops rather than pruning at the 0 sentinel.
            frontier =
                frontier.min(self.last_checkpoint_ts.load(Ordering::Acquire).max(LOAD_TS));
        }
        let horizon = self.snapshots.prune_horizon(frontier);
        let chain_hist = &self.stats.chain_length;
        let stats = self.db.vacuum(horizon, |len| chain_hist.record(len));
        // Piggyback the secondary-index sweep on the same horizon: any
        // lineorder rid whose slot is empty by now (reset/truncation) can
        // never become visible again, so its index entries are dead.
        let swept = self.indexes.sweep_dead(self.db.store(TableId::Lineorder));
        self.stats.index_entries_swept.add(swept);
        self.stats.vacuum_passes.inc();
        self.stats.versions_pruned.add(stats.freed);
        self.stats.live_versions.set(self.db.live_versions());
        stats
    }

    /// One diffable, serializable snapshot of every kernel metric,
    /// including the durability layer's counters and batch histogram.
    /// Engines overlay their own gauges (backlog, delta rows) on top.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.stats.registry.snapshot();
        let d = self.durability.stats();
        snap.set_counter(names::WAL_FSYNCS, d.fsyncs);
        snap.set_counter(names::WAL_RECOVERY_REPLAYED, d.recovery_replayed_records);
        snap.set_counter(names::WAL_TORN_TAILS, d.torn_tail_truncations);
        snap.set_histogram(names::WAL_GROUP_COMMIT_BATCH, d.group_commit_batches);
        snap.set_counter(names::WAL_SHED_COMMITS, d.shed_commits);
        snap.set_counter(names::WAL_SCRUB_PASSES, d.scrub_passes);
        snap.set_counter(names::WAL_QUARANTINED, d.quarantined_segments);
        snap.set_counter(names::HEALTH_DEGRADED_TICKS, d.degraded_ticks);
        snap.set_counter(names::DISK_FAULTS, d.disk_faults);
        snap.set_gauge(names::HEALTH_STATE, d.health.as_u64());
        // Always-fresh gauge: accurate even with vacuum disabled.
        snap.set_gauge(names::LIVE_VERSIONS, self.db.live_versions());
        snap
    }

    /// Current position on the storage-health ladder (always `Healthy`
    /// for durability modes without a real WAL).
    pub fn health(&self) -> hat_storage::dwal::HealthState {
        self.durability.health()
    }

    /// Legacy flat view of [`RowKernel::metrics`].
    pub fn stats_snapshot(&self) -> EngineStats {
        EngineStats::from_metrics(&self.metrics())
    }
}

/// Spawns an engine's background vacuum thread: one
/// [`RowKernel::vacuum_pass`] every `config.vacuum_interval`, plus an
/// engine-specific `extra` step per pass (replica and learner engines
/// prune their own copies at their applied watermark there). Returns
/// `None` when the config disabled vacuum ([`EngineConfig::no_vacuum`]).
/// The caller owns the stop flag and must join the handle on drop.
pub fn spawn_vacuum(
    kernel: &Arc<RowKernel>,
    stop: &Arc<std::sync::atomic::AtomicBool>,
    extra: impl Fn() + Send + 'static,
) -> Option<std::thread::JoinHandle<()>> {
    let every = kernel.config.vacuum_interval?;
    let kernel = Arc::clone(kernel);
    let stop = Arc::clone(stop);
    let handle = std::thread::Builder::new()
        .name("mvcc-vacuum".into())
        .spawn(move || {
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(every);
                if stop.load(Ordering::Acquire) {
                    break;
                }
                kernel.vacuum_pass();
                extra();
            }
        })
        .expect("spawn vacuum");
    Some(handle)
}

/// A transaction running against a [`RowKernel`].
pub struct KernelSession {
    kernel: Arc<RowKernel>,
    ctx: TxnCtx,
    /// Pins the begin snapshot against vacuum for the session's lifetime.
    _snapshot: SnapshotGuard,
}

impl KernelSession {
    /// The timestamp reads use right now (per-statement for read
    /// committed, the begin snapshot otherwise).
    fn read_ts(&self) -> Ts {
        if self.ctx.isolation().uses_begin_snapshot() {
            self.ctx.begin_snapshot().ts
        } else {
            self.kernel.oracle.read_ts()
        }
    }

    /// Visibility-checked read of `rid` with own-write overlay.
    fn read_visible(&mut self, table: TableId, rid: RowId) -> Option<Row> {
        if let Some(own) = self.ctx.own_write(table, rid) {
            return Some(Arc::clone(own));
        }
        let ts = self.read_ts();
        let store = self.kernel.db.store(table);
        let row = store.read(rid, ts)?;
        // Record the observed version for serializable validation.
        if self.ctx.isolation().validates_reads() {
            // The version we read is the newest with ts' <= ts; its exact
            // timestamp is what validation compares against.
            if let Some(vts) = visible_version_ts(store, rid, ts) {
                self.ctx.record_read(table, rid, vts);
            }
        }
        Some(row)
    }

    fn abort_with(&mut self, err: HatError) -> HatError {
        self.kernel.locks.unlock_all(self.ctx.locks(), self.ctx.id());
        self.ctx.close();
        self.kernel.stats.aborts.inc();
        err
    }

    /// Scan fallback for point lookups when an index is absent.
    fn scan_for_u32(&self, table: TableId, col: usize, key: u32) -> Option<(RowId, Row)> {
        let ts = self.read_ts();
        let mut found = None;
        self.kernel.db.store(table).scan_while(ts, |rid, row| {
            if row[col].as_u32().map(|v| v == key).unwrap_or(false) {
                found = Some((rid, Arc::clone(row)));
                false
            } else {
                true
            }
        });
        found
    }

    fn scan_for_str(&self, table: TableId, col: usize, key: &str) -> Option<(RowId, Row)> {
        let ts = self.read_ts();
        let mut found = None;
        self.kernel.db.store(table).scan_while(ts, |rid, row| {
            if row[col].as_str().map(|v| v == key).unwrap_or(false) {
                found = Some((rid, Arc::clone(row)));
                false
            } else {
                true
            }
        });
        found
    }
}

/// Timestamp of the version of `rid` visible at `ts`.
fn visible_version_ts(
    store: &hat_storage::rowstore::RowStore,
    rid: RowId,
    ts: Ts,
) -> Option<Ts> {
    // The newest version overall: if it's visible, its ts is the answer;
    // otherwise validation only needs *a* stable token — we use the latest
    // visible ts via a read. To avoid a second chain walk API we
    // approximate with latest_ts when it is visible, else the snapshot ts
    // bound. Conservative: any concurrent rewrite changes latest_ts and
    // fails validation.
    let latest = store.latest_ts(rid)?;
    Some(if latest <= ts { latest } else { ts })
}

/// Routing key of an insert, whose rid is unknown until install: the
/// row's leading column as an integer. Every SSB/CH table leads with its
/// natural key (and every lineorder line of one order shares its
/// orderkey), so one order's lines always land on one shard.
fn insert_route_key(row: &Row) -> u64 {
    row.first()
        .and_then(|v| v.as_u64().ok().or_else(|| v.as_u32().ok().map(u64::from)))
        .unwrap_or(0)
}

impl Session for KernelSession {
    fn lookup_u32(&mut self, index: NamedIndex, key: u32) -> Result<Option<(RowId, Row)>> {
        if self.ctx.is_closed() {
            return Err(HatError::TxnClosed);
        }
        let (table, col) = match index {
            NamedIndex::CustomerPk => (TableId::Customer, customer::CUSTKEY),
            NamedIndex::SupplierPk => (TableId::Supplier, supplier::SUPPKEY),
            NamedIndex::PartPk => (TableId::Part, part::PARTKEY),
            NamedIndex::DatePk => (TableId::Date, date::DATEKEY),
            other => {
                return Err(HatError::Unsupported(format!(
                    "lookup_u32 on {other:?}"
                )))
            }
        };
        match self.kernel.indexes.probe_u32(index, key) {
            Some(Some(rid)) => {
                Ok(self.read_visible(table, rid).map(|row| (rid, row)))
            }
            Some(None) => Ok(None),
            // No index in this profile: scan.
            None => Ok(self.scan_for_u32(table, col, key)),
        }
    }

    fn lookup_str(&mut self, index: NamedIndex, key: &str) -> Result<Option<(RowId, Row)>> {
        if self.ctx.is_closed() {
            return Err(HatError::TxnClosed);
        }
        let (table, col) = match index {
            NamedIndex::CustomerName => (TableId::Customer, customer::NAME),
            NamedIndex::SupplierName => (TableId::Supplier, supplier::NAME),
            other => {
                return Err(HatError::Unsupported(format!(
                    "lookup_str on {other:?}"
                )))
            }
        };
        match self.kernel.indexes.probe_str(index, key) {
            Some(Some(rid)) => {
                Ok(self.read_visible(table, rid).map(|row| (rid, row)))
            }
            Some(None) => Ok(None),
            None => Ok(self.scan_for_str(table, col, key)),
        }
    }

    fn count_orders(&mut self, custkey: u32) -> Result<u64> {
        if self.ctx.is_closed() {
            return Err(HatError::TxnClosed);
        }
        let ts = self.read_ts();
        let store = self.kernel.db.store(TableId::Lineorder);
        match self.kernel.indexes.lineorder_rids_for_customer(custkey) {
            Some(rids) => {
                // Index entries may point at rows newer than our snapshot;
                // verify visibility per rid (lineorder rows are
                // insert-only, so latest_ts is the insert ts).
                let mut n = 0;
                for rid in rids {
                    if store.latest_ts(rid).map(|t| t <= ts).unwrap_or(false) {
                        n += 1;
                    }
                }
                Ok(n)
            }
            None => {
                // No-index fallback: scan the fact table.
                let mut n = 0;
                store.scan(ts, |_, row| {
                    if row[lineorder::CUSTKEY]
                        .as_u32()
                        .map(|v| v == custkey)
                        .unwrap_or(false)
                    {
                        n += 1;
                    }
                });
                Ok(n)
            }
        }
    }

    fn read(&mut self, table: TableId, rid: RowId) -> Result<Option<Row>> {
        if self.ctx.is_closed() {
            return Err(HatError::TxnClosed);
        }
        Ok(self.read_visible(table, rid))
    }

    fn insert(&mut self, table: TableId, row: Row) -> Result<()> {
        if self.ctx.is_closed() {
            return Err(HatError::TxnClosed);
        }
        self.ctx.buffer_write(WriteOp::Insert { table, row });
        Ok(())
    }

    fn update(&mut self, table: TableId, rid: RowId, row: Row) -> Result<()> {
        if self.ctx.is_closed() {
            return Err(HatError::TxnClosed);
        }
        let key = (table, rid);
        if let Err(e) = self.kernel.locks.try_lock(key, self.ctx.id()) {
            return Err(self.abort_with(e));
        }
        self.ctx.record_lock(key);
        // First-committer-wins under snapshot-based isolation: if a version
        // newer than our snapshot exists, we must abort.
        if self.ctx.isolation().uses_begin_snapshot() {
            let begin = self.ctx.begin_snapshot().ts;
            if let Some(latest) = self.kernel.db.store(table).latest_ts(rid) {
                if latest > begin {
                    return Err(self.abort_with(HatError::WriteConflict {
                        table: table.name(),
                    }));
                }
            }
        }
        self.ctx.buffer_write(WriteOp::Update { table, rid, row });
        Ok(())
    }

    fn scan_lookup_u32(
        &mut self,
        table: TableId,
        col: usize,
        key: u32,
    ) -> Result<Option<(RowId, Row)>> {
        if self.ctx.is_closed() {
            return Err(HatError::TxnClosed);
        }
        Ok(self.scan_for_u32(table, col, key))
    }

    fn commit(mut self: Box<Self>) -> Result<CommitReceipt> {
        if self.ctx.is_closed() {
            return Err(HatError::TxnClosed);
        }
        let kernel = Arc::clone(&self.kernel);
        // Span covers the whole commit call: validation, install, and the
        // durability wait. Atomics-only; never on the abort path.
        let span = SpanTimer::start();
        // Read-only transactions commit trivially at their snapshot.
        if self.ctx.is_read_only() {
            self.ctx.close();
            kernel.stats.commits.inc();
            kernel.stats.commit_span.record(span.elapsed_nanos());
            return Ok(CommitReceipt::acked(self.ctx.begin_snapshot().ts));
        }

        // Route the write set: the sorted participant shard list, whose
        // lowest member coordinates (its gate, its group-commit queue,
        // its WAL stream). A shard-local write set never leaves its home
        // shard's structures.
        let participants = kernel.participants(self.ctx.writes());
        let coordinator = participants[0];

        // Overload admission at the front door: when the T gate is
        // enabled and the coordinator shard is at its in-flight bound,
        // the commit queues here (bounded, sojourn-deadline-shed) before
        // any engine-side work runs. Off-Healthy storage trips the gate's
        // circuit breaker instead of queueing doomed work. Nothing is
        // installed yet: a shed is a clean, retryable abort.
        let _admit = match kernel.txn_gates[coordinator]
            .admit_txn(kernel.durability.health() == HealthState::Healthy)
        {
            Ok(permit) => permit,
            Err(e) => return Err(self.abort_with(e)),
        };

        // Engine-specific pre-commit latency (consensus rounds). Nothing
        // is installed yet, so a failure here is a clean, retryable abort.
        if let Err(e) = kernel.hooks.pre_commit() {
            return Err(self.abort_with(e));
        }

        // Admission control: a degraded/quarantined WAL or a full
        // group-commit backlog on the coordinator's stream sheds the
        // commit here, *before* anything installs — a clean abort the
        // client may retry, while reads and analytics keep serving from
        // the in-memory store.
        if let Err(e) = kernel.durability.admit(coordinator) {
            return Err(self.abort_with(e));
        }

        // Prepare: take every participant shard's commit mutex (ascending
        // order — deadlock-free) and allocate one common commit
        // timestamp. For a single-shard write set this is exactly the old
        // single-mutex critical section, just on the home shard's stripe.
        let guard = kernel.oracle.begin_commit_on(&participants);
        let commit_ts = guard.ts();

        // Serializable read validation inside the critical section. A read
        // is valid iff the version we observed is still the newest AND no
        // concurrent transaction holds the row's write lock: a same-epoch
        // committer on *another* shard may not have installed yet, but it
        // has locked its write set, so `held_by_other` closes the
        // cross-shard write-skew window (Silo-style).
        if self.ctx.isolation().validates_reads() {
            for entry in self.ctx.reads() {
                let key = (entry.table, entry.rid);
                let latest = kernel.db.store(entry.table).latest_ts(entry.rid);
                if latest != Some(entry.version_ts)
                    || kernel.locks.held_by_other(&key, self.ctx.id())
                {
                    // The allocated timestamp must still pass through the
                    // ordered-install stream or later commits wedge.
                    kernel.sequencer_skip(commit_ts);
                    drop(guard);
                    return Err(self.abort_with(HatError::SerializationFailure));
                }
            }
        }

        // Install buffered writes and build the redo record. A transaction
        // may update the same row several times; only its *final* version
        // is installed (one version per row per commit timestamp), so scan
        // backwards and mark superseded updates.
        let writes = self.ctx.writes();
        let mut superseded = vec![false; writes.len()];
        {
            let mut seen: std::collections::HashSet<(TableId, RowId)> =
                std::collections::HashSet::new();
            for (i, op) in writes.iter().enumerate().rev() {
                if let WriteOp::Update { table, rid, .. } = op {
                    if !seen.insert((*table, *rid)) {
                        superseded[i] = true;
                    }
                }
            }
        }
        let mut redo: Vec<TableOp> = Vec::with_capacity(writes.len());
        for (op, skip) in writes.iter().zip(&superseded) {
            if *skip {
                continue;
            }
            match op {
                WriteOp::Insert { table, row } => {
                    let store = kernel.db.store(*table);
                    let rid = store.install_insert(Arc::clone(row), commit_ts);
                    kernel.indexes.index_row(*table, rid, row);
                    redo.push(TableOp::Insert { table: *table, rid, row: Arc::clone(row) });
                }
                WriteOp::Update { table, rid, row } => {
                    kernel
                        .db
                        .store(*table)
                        .install_update(*rid, Arc::clone(row), commit_ts)
                        .expect("locked row exists");
                    redo.push(TableOp::Update {
                        table: *table,
                        rid: *rid,
                        row: Arc::clone(row),
                    });
                }
            }
        }
        // Ordered hook delivery: engines that ship a totally ordered
        // stream (replication WAL, columnar delta, learner log) get
        // `on_install` in global commit-ts order via the sequencer;
        // hook-free kernels skip it and shards proceed independently.
        if let Some(seq) = &kernel.sequencer {
            seq.wait_turn(commit_ts);
            kernel.hooks.on_install(commit_ts, &redo);
            seq.advance(commit_ts);
        } else {
            kernel.hooks.on_install(commit_ts, &redo);
        }
        // Log inside the critical section so each stream's WAL order
        // equals commit-ts order (recovery merges the streams by
        // timestamp). The whole record — including the participant set —
        // goes to the *coordinator's* stream only: "durable there" is the
        // single source of truth a recovery consults to resolve an
        // in-doubt cross-shard commit. The append only enqueues bytes;
        // the expensive flush wait happens after unlock.
        let participant_bytes: Vec<u8> = participants.iter().map(|&s| s as u8).collect();
        let durability_token =
            kernel.durability.log(coordinator, commit_ts, &redo, &participant_bytes);
        guard.finish();

        kernel.locks.unlock_all(self.ctx.locks(), self.ctx.id());
        self.ctx.close();

        // Durability wait (WAL flush) outside the critical section:
        // concurrent commits overlap their flushes, as with group commit.
        // A failure here (WAL crashed before covering our record) means
        // the commit was never acknowledged: in-doubt outcomes surface
        // through the receipt — without counting the commit; recovery
        // decides its fate — and anything else propagates as the error it
        // is.
        if let Err(e) = durability_token.and_then(|token| kernel.durability.wait(coordinator, token))
        {
            if e.is_commit_in_doubt() {
                return Ok(CommitReceipt::in_doubt(commit_ts, InDoubtCause::Durability));
            }
            return Err(e);
        }
        // Synchronous replication waits also happen outside the critical
        // section so concurrent commits can proceed. A timeout here does
        // NOT undo the commit: the writes are durable on the primary, so
        // the outcome is committed-in-doubt — counted as a commit, and
        // surfaced through the receipt for the client to account
        // separately.
        let post = kernel.hooks.post_commit(commit_ts);
        kernel.stats.commits.inc();
        kernel.shard_counters[coordinator].commits.inc();
        if participants.len() > 1 {
            kernel.stats.xshard_commits.inc();
            for &s in &participants {
                kernel.shard_counters[s].xshard_commits.inc();
            }
        }
        kernel.stats.commit_span.record(span.elapsed_nanos());
        if let Err(e) = post {
            debug_assert!(e.is_commit_in_doubt(), "post_commit errors must be in-doubt");
            kernel.stats.replication_timeouts.inc();
            return Ok(CommitReceipt::in_doubt(commit_ts, InDoubtCause::Replication));
        }
        Ok(CommitReceipt::acked(commit_ts))
    }

    fn abort(mut self: Box<Self>) {
        if !self.ctx.is_closed() {
            self.kernel.locks.unlock_all(self.ctx.locks(), self.ctx.id());
            self.ctx.close();
            self.kernel.stats.aborts.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_txn::IsolationLevel;
    use hat_common::value::row_from;
    use hat_common::Value;

    fn kernel(iso: IsolationLevel, idx: IndexProfile) -> Arc<RowKernel> {
        Arc::new(RowKernel::new(EngineConfig {
            isolation: iso,
            indexes: idx,
            durability: crate::api::DurabilityMode::Off,
            ..EngineConfig::default()
        }))
    }

    fn customer_row(ck: u32, name: &str) -> Row {
        row_from([
            Value::U32(ck),
            Value::from(name),
            Value::from("addr"),
            Value::from("CITY0"),
            Value::from("CHINA"),
            Value::from("ASIA"),
            Value::from("phone"),
            Value::from("AUTO"),
            Value::U32(0),
        ])
    }

    fn load_customers(k: &Arc<RowKernel>, n: u32) {
        let rows: Vec<Row> =
            (1..=n).map(|i| customer_row(i, &format!("Customer#{i:09}"))).collect();
        k.load(TableId::Customer, &mut rows.into_iter()).unwrap();
        k.finish_load();
    }

    #[test]
    fn lookup_via_index_and_via_scan_agree() {
        for profile in [IndexProfile::All, IndexProfile::None] {
            let k = kernel(IsolationLevel::SnapshotIsolation, profile);
            load_customers(&k, 50);
            let mut s = k.begin_session();
            let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 7).unwrap().unwrap();
            assert_eq!(row[customer::CUSTKEY].as_u32().unwrap(), 7);
            let (rid2, _) = s
                .lookup_str(NamedIndex::CustomerName, "Customer#000000007")
                .unwrap()
                .unwrap();
            assert_eq!(rid, rid2);
            assert!(s.lookup_u32(NamedIndex::CustomerPk, 999).unwrap().is_none());
            Box::new(s).abort();
        }
    }

    #[test]
    fn update_visible_after_commit_only() {
        let k = kernel(IsolationLevel::SnapshotIsolation, IndexProfile::All);
        load_customers(&k, 5);
        let mut writer = k.begin_session();
        let (rid, row) = writer.lookup_u32(NamedIndex::CustomerPk, 3).unwrap().unwrap();
        let patched = hat_common::value::row_with(&row, customer::PAYMENTCNT, Value::U32(9));
        writer.update(TableId::Customer, rid, patched).unwrap();

        // Concurrent reader sees the old value.
        let mut reader = k.begin_session();
        let (_, seen) = reader.lookup_u32(NamedIndex::CustomerPk, 3).unwrap().unwrap();
        assert_eq!(seen[customer::PAYMENTCNT].as_u32().unwrap(), 0);
        Box::new(reader).abort();

        // Writer sees its own write.
        let own = writer.read(TableId::Customer, rid).unwrap().unwrap();
        assert_eq!(own[customer::PAYMENTCNT].as_u32().unwrap(), 9);

        assert!(Box::new(writer).commit().unwrap().is_acked());

        // New session sees the committed value.
        let mut after = k.begin_session();
        let (_, seen) = after.lookup_u32(NamedIndex::CustomerPk, 3).unwrap().unwrap();
        assert_eq!(seen[customer::PAYMENTCNT].as_u32().unwrap(), 9);
        Box::new(after).abort();
    }

    #[test]
    fn write_write_conflict_aborts_second_writer() {
        let k = kernel(IsolationLevel::SnapshotIsolation, IndexProfile::All);
        load_customers(&k, 5);
        let mut a = k.begin_session();
        let mut b = k.begin_session();
        let (rid, row) = a.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        a.update(TableId::Customer, rid, Arc::clone(&row)).unwrap();
        let err = b.update(TableId::Customer, rid, row).unwrap_err();
        assert!(err.is_retryable());
        // After A commits, a fresh session can update again.
        assert!(Box::new(a).commit().unwrap().is_acked());
        let mut c = k.begin_session();
        let (rid, row) = c.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        c.update(TableId::Customer, rid, row).unwrap();
        assert!(Box::new(c).commit().unwrap().is_acked());
        assert_eq!(k.locks.held_count(), 0);
    }

    #[test]
    fn first_committer_wins_under_si() {
        let k = kernel(IsolationLevel::SnapshotIsolation, IndexProfile::All);
        load_customers(&k, 5);
        // B begins before A commits, then tries to update the row A wrote.
        let mut a = k.begin_session();
        let mut b = k.begin_session();
        let (rid, row) = a.lookup_u32(NamedIndex::CustomerPk, 2).unwrap().unwrap();
        a.update(TableId::Customer, rid, Arc::clone(&row)).unwrap();
        assert!(Box::new(a).commit().unwrap().is_acked());
        let err = b.update(TableId::Customer, rid, row).unwrap_err();
        assert!(matches!(err, HatError::WriteConflict { .. }));
    }

    #[test]
    fn read_committed_allows_overwriting_newer_commits() {
        let k = kernel(IsolationLevel::ReadCommitted, IndexProfile::All);
        load_customers(&k, 5);
        let mut a = k.begin_session();
        let mut b = k.begin_session();
        let (rid, row) = a.lookup_u32(NamedIndex::CustomerPk, 2).unwrap().unwrap();
        a.update(TableId::Customer, rid, Arc::clone(&row)).unwrap();
        assert!(Box::new(a).commit().unwrap().is_acked());
        // Under RC this succeeds (no first-committer-wins check).
        b.update(TableId::Customer, rid, row).unwrap();
        assert!(Box::new(b).commit().unwrap().is_acked());
    }

    #[test]
    fn serializable_validates_reads() {
        let k = kernel(IsolationLevel::Serializable, IndexProfile::All);
        load_customers(&k, 5);
        // T1 reads row 1; T2 rewrites row 1 and commits; T1 then writes
        // something else and must fail validation.
        let mut t1 = k.begin_session();
        let _ = t1.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();

        let mut t2 = k.begin_session();
        let (rid1, row1) = t2.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        t2.update(TableId::Customer, rid1, row1).unwrap();
        assert!(Box::new(t2).commit().unwrap().is_acked());

        let mut t1 = t1; // continue t1
        let (rid3, row3) = t1.lookup_u32(NamedIndex::CustomerPk, 3).unwrap().unwrap();
        t1.update(TableId::Customer, rid3, row3).unwrap();
        let err = Box::new(t1).commit().unwrap_err();
        assert_eq!(err, HatError::SerializationFailure);
        assert_eq!(k.locks.held_count(), 0, "validation failure releases locks");
    }

    #[test]
    fn serializable_read_only_never_fails() {
        let k = kernel(IsolationLevel::Serializable, IndexProfile::All);
        load_customers(&k, 5);
        let mut t1 = k.begin_session();
        let _ = t1.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        let mut t2 = k.begin_session();
        let (rid, row) = t2.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        t2.update(TableId::Customer, rid, row).unwrap();
        assert!(Box::new(t2).commit().unwrap().is_acked());
        // Read-only commit succeeds despite the invalidated read.
        assert!(Box::new(t1).commit().unwrap().is_acked());
    }

    #[test]
    fn inserts_are_indexed_and_countable() {
        let k = kernel(IsolationLevel::SnapshotIsolation, IndexProfile::Semi);
        load_customers(&k, 3);
        let mut s = k.begin_session();
        for i in 0..4u64 {
            s.insert(TableId::Lineorder, lineorder_row(i, 2)).unwrap();
        }
        assert!(Box::new(s).commit().unwrap().is_acked());
        let mut s = k.begin_session();
        assert_eq!(s.count_orders(2).unwrap(), 4);
        assert_eq!(s.count_orders(1).unwrap(), 0);
        Box::new(s).abort();
    }

    #[test]
    fn count_orders_scan_fallback_matches_index() {
        for profile in [IndexProfile::Semi, IndexProfile::None] {
            let k = kernel(IsolationLevel::SnapshotIsolation, profile);
            load_customers(&k, 3);
            let mut s = k.begin_session();
            for i in 0..6u64 {
                s.insert(TableId::Lineorder, lineorder_row(i, (i % 2) as u32 + 1))
                    .unwrap();
            }
            assert!(Box::new(s).commit().unwrap().is_acked());
            let mut s = k.begin_session();
            assert_eq!(s.count_orders(1).unwrap(), 3, "profile {profile:?}");
            Box::new(s).abort();
        }
    }

    #[test]
    fn reset_restores_loaded_state() {
        let k = kernel(IsolationLevel::SnapshotIsolation, IndexProfile::All);
        load_customers(&k, 3);
        // Mutate: update a customer, insert lineorders.
        let mut s = k.begin_session();
        let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        s.update(
            TableId::Customer,
            rid,
            hat_common::value::row_with(&row, customer::PAYMENTCNT, Value::U32(7)),
        )
        .unwrap();
        for i in 0..5u64 {
            s.insert(TableId::Lineorder, lineorder_row(i, 1)).unwrap();
        }
        assert!(Box::new(s).commit().unwrap().is_acked());

        k.reset().unwrap();

        let mut s = k.begin_session();
        let (_, row) = s.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        assert_eq!(row[customer::PAYMENTCNT].as_u32().unwrap(), 0);
        assert_eq!(s.count_orders(1).unwrap(), 0);
        assert_eq!(k.db.store(TableId::Lineorder).slot_count(), 0);
        Box::new(s).abort();
        // Post-reset traffic works.
        let mut s = k.begin_session();
        s.insert(TableId::Lineorder, lineorder_row(0, 1)).unwrap();
        assert!(Box::new(s).commit().unwrap().is_acked());
        let mut s = k.begin_session();
        assert_eq!(s.count_orders(1).unwrap(), 1);
        Box::new(s).abort();
    }

    #[test]
    fn vacuum_respects_open_sessions_and_reclaims_after_release() {
        let k = kernel(IsolationLevel::SnapshotIsolation, IndexProfile::All);
        load_customers(&k, 4);
        let base = k.db.live_versions();
        // Commit once so the pinned session's snapshot lands above the
        // load timestamp (guards at LOAD_TS are exempt from the horizon:
        // they only read immortal base versions).
        {
            let mut s = k.begin_session();
            let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 2).unwrap().unwrap();
            s.update(TableId::Customer, rid, row).unwrap();
            assert!(Box::new(s).commit().unwrap().is_acked());
        }
        // Pin a snapshot, then rewrite customer 1 five times.
        let pinned = k.begin_session();
        for _ in 0..5 {
            let mut s = k.begin_session();
            let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
            s.update(TableId::Customer, rid, row).unwrap();
            assert!(Box::new(s).commit().unwrap().is_acked());
        }
        assert_eq!(k.db.live_versions(), base + 6);
        // The open session pins its begin snapshot: the version visible
        // there plus everything newer must survive the pass.
        let stats = k.vacuum_pass();
        assert_eq!(stats.freed, 0);
        assert_eq!(k.db.live_versions(), base + 6, "pinned snapshot holds the horizon");
        Box::new(pinned).abort();
        // Released: the next pass reclaims customer 1's intermediate
        // versions, keeping the newest plus the load-time base (reset
        // needs it). Customer 2's chain is already converged.
        let stats = k.vacuum_pass();
        assert_eq!(stats.freed, 4);
        assert_eq!(k.db.live_versions(), base + 2);
        let snap = k.metrics();
        assert_eq!(snap.counter(names::VACUUM_PASSES), 2);
        assert_eq!(snap.counter(names::VACUUM_VERSIONS_PRUNED), 4);
        assert_eq!(snap.gauge(names::LIVE_VERSIONS), base + 2);
        // Reset after vacuum restores the loaded row state.
        k.reset().unwrap();
        let mut s = k.begin_session();
        let (_, row) = s.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        assert_eq!(row[customer::PAYMENTCNT].as_u32().unwrap(), 0);
        Box::new(s).abort();

        // Secondary-index sweep: dead lineorder entries are reclaimed at
        // the vacuum horizon, so repeated grow/trim cycles plateau at the
        // live row count instead of leaking index entries.
        let store = k.db.store(TableId::Lineorder);
        for cycle in 0..3u32 {
            let mut s = k.begin_session();
            for i in 0..8u64 {
                s.insert(TableId::Lineorder, lineorder_row(i, 1)).unwrap();
            }
            assert!(Box::new(s).commit().unwrap().is_acked());
            // `All` profile: one cust entry + one date entry per row.
            assert_eq!(k.indexes.lineorder_entries(), 16, "cycle {cycle}: live rows indexed");
            store.truncate_slots(0);
            k.vacuum_pass();
            assert_eq!(
                k.indexes.lineorder_entries(),
                0,
                "cycle {cycle}: the sweep holds the index-size plateau"
            );
        }
        assert_eq!(k.metrics().counter(names::VACUUM_INDEX_SWEPT), 48);
    }

    #[test]
    fn stats_track_outcomes() {
        let k = kernel(IsolationLevel::SnapshotIsolation, IndexProfile::All);
        load_customers(&k, 2);
        let mut s = k.begin_session();
        s.insert(TableId::Lineorder, lineorder_row(0, 1)).unwrap();
        assert!(Box::new(s).commit().unwrap().is_acked());
        let s = k.begin_session();
        Box::new(s).abort();
        let stats = k.stats_snapshot();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.aborts, 1);
    }

    /// Minimal typed lineorder row for kernel tests.
    fn lineorder_row(orderkey: u64, custkey: u32) -> Row {
        use hat_common::Money;
        row_from([
            Value::U64(orderkey),
            Value::U32(1),
            Value::U32(custkey),
            Value::U32(1),
            Value::U32(1),
            Value::U32(19940101),
            Value::from("1-URGENT"),
            Value::from("0"),
            Value::U32(10),
            Value::Money(Money::from_dollars(100)),
            Value::Money(Money::from_dollars(100)),
            Value::U32(5),
            Value::Money(Money::from_dollars(95)),
            Value::Money(Money::from_dollars(60)),
            Value::U32(3),
            Value::U32(19940110),
            Value::from("TRUCK"),
        ])
    }
}
