//! Quick calibration probe: load times, txn and query throughput per engine.
use std::sync::Arc;
use std::time::{Duration, Instant};

use hat_engine::{EngineConfig, ShdEngine};
use hattrick::gen::{generate, ScaleFactor};
use hattrick::harness::{BenchmarkConfig, Harness};

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let t0 = Instant::now();
    let data = generate(ScaleFactor(sf), 42);
    println!("gen sf={sf}: {} lineorder rows, {:.1} MB, {:?}",
        data.lineorder.len(), data.approx_bytes() as f64 / 1e6, t0.elapsed());
    let t0 = Instant::now();
    let engine = ShdEngine::new(EngineConfig::default());
    data.load_into(&engine).unwrap();
    println!("load: {:?}", t0.elapsed());
    let harness = Harness::new(Arc::new(engine), data.profile.clone(), BenchmarkConfig {
        warmup: Duration::from_millis(150),
        measure: Duration::from_millis(400),
        seed: 1,
        reset_between_points: true,
        ..Default::default()
    });
    for (t, a) in [(1,0),(2,0),(4,0),(0,1),(0,2),(2,2)] {
        let t0 = Instant::now();
        let m = harness.run_point(t, a).unwrap();
        println!("point ({t},{a}): tps={:.0} qps={:.2} aborts={} wall={:?}", m.tps, m.qps, m.aborts(), t0.elapsed());
    }
}
