//! `hatcli` — command-line driver for the HATtrick benchmark.
//!
//! ```text
//! hatcli engines
//! hatcli point    --engine shared --sf 0.01 -t 4 -a 2 [--repeats 3]
//!                 [--metrics-out run.json]
//! hatcli point    --engine shared --sf 0.01 --arrival-rate 3000
//!                 [--arrival-shape poisson|bursty|step] [--deadline-ms 20]
//!                 [--workers 4] [--ticks 100] [--tick-ms 5]
//!                 [--retry-budget 100]     # open-loop overload run
//! hatcli point    --engine shared --sf 0.01 --arrival-rate 3000
//!                 --sched elastic [--budget 4] [--dwell 5]
//!                 [--t-floor 1] [--high-backlog 8] [--low-backlog 2]
//!                 [--overlay-out traj.svg]  # per-tick trajectory figure
//! hatcli frontier --engine learner-dist --sf 0.01 [--quick]
//!                 [--metrics-out run.json]
//! hatcli compare  --sf 0.02
//! hatcli artifact run.json          # validate + summarize an artifact
//! ```
//!
//! Engine names: `shared`, `shared-rc`, `shared-semi`, `shared-noidx`,
//! `isolated-on`, `isolated-ra`, `isolated-async`, `dual`, `learner`,
//! `learner-dist`, `cow`.

use std::sync::Arc;
use std::time::Duration;

use hat_engine::{
    CowConfig, CowEngine, DiskFaultPlan, DualConfig, DualEngine, DurabilityMode,
    EngineConfig, HtapEngine, IndexProfile, IsoConfig, IsoEngine, LearnerConfig,
    LearnerEngine, LearnerProfile, QueryOpts, ReplicationMode, ShdEngine, WalConfig,
};
use hat_txn::IsolationLevel;
use hattrick::artifact::{RunArtifact, RunConfig};
use hattrick::freshness::FreshnessAgg;
use hattrick::frontier::{build_grid, sweep_shards, Frontier, SaturationConfig};
use hattrick::gen::{generate, ScaleFactor};
use hattrick::harness::{
    BenchmarkConfig, Harness, PointMeasurement, RetryBudgetConfig, SamplePhase,
};
use hattrick::openloop::{ArrivalShape, OpenLoopConfig};
use hattrick::report;
use hattrick::sched::{SchedPolicy, SchedTarget};
use hattrick::TxnMix;

const ENGINES: [&str; 11] = [
    "shared",
    "shared-rc",
    "shared-semi",
    "shared-noidx",
    "isolated-on",
    "isolated-ra",
    "isolated-async",
    "dual",
    "learner",
    "learner-dist",
    "cow",
];

fn build_engine(
    name: &str,
    durability: &DurabilityMode,
    vacuum: Option<Duration>,
    shards: u32,
) -> Option<Arc<dyn HtapEngine>> {
    let shd = |iso, idx| -> Arc<dyn HtapEngine> {
        let mut cfg = EngineConfig::builder()
            .isolation(iso)
            .indexes(idx)
            .durability(durability.clone())
            .shards(shards)
            .build();
        cfg.vacuum_interval = vacuum;
        Arc::new(ShdEngine::new(cfg))
    };
    let iso = |mode| -> Arc<dyn HtapEngine> {
        let mut cfg = IsoConfig { mode, ..IsoConfig::coalesced_default() };
        cfg.engine.vacuum_interval = vacuum;
        cfg.engine.shards = shards.max(1);
        Arc::new(IsoEngine::new(cfg))
    };
    Some(match name {
        "shared" => shd(IsolationLevel::Serializable, IndexProfile::All),
        "shared-rc" => shd(IsolationLevel::ReadCommitted, IndexProfile::All),
        "shared-semi" => shd(IsolationLevel::Serializable, IndexProfile::Semi),
        "shared-noidx" => shd(IsolationLevel::Serializable, IndexProfile::None),
        "isolated-on" => iso(ReplicationMode::SyncOn),
        "isolated-ra" => iso(ReplicationMode::RemoteApply),
        "isolated-async" => iso(ReplicationMode::Async),
        "dual" => Arc::new(DualEngine::new(DualConfig {
            vacuum_interval: vacuum,
            shards,
            ..DualConfig::default()
        })),
        "learner" => Arc::new(LearnerEngine::new(LearnerConfig {
            vacuum_interval: vacuum,
            shards,
            ..LearnerConfig::default()
        })),
        "learner-dist" => Arc::new(LearnerEngine::new(LearnerConfig {
            profile: LearnerProfile::Distributed,
            vacuum_interval: vacuum,
            shards,
            ..LearnerConfig::default()
        })),
        "cow" => {
            let mut cfg = CowConfig::default();
            cfg.engine.vacuum_interval = vacuum;
            cfg.engine.shards = shards.max(1);
            Arc::new(CowEngine::new(cfg))
        }
        _ => return None,
    })
}

/// Parses `--shards <n>` / `--shards <a,b,c>` into the sweep list
/// (default: a single-shard kernel, the pre-ISSUE-8 baseline).
fn parse_shards(args: &Args) -> Option<Vec<u32>> {
    let Some(spec) = args.get(&["shards"]) else { return Some(vec![1]) };
    let counts: Vec<u32> =
        spec.split(',').filter_map(|s| s.trim().parse().ok()).collect();
    if counts.is_empty() || counts.contains(&0) {
        eprintln!("bad --shards {spec}; expected counts like 4 or 1,2,4");
        return None;
    }
    Some(counts)
}

/// Minimal flag parser: `--key value` and `-k value` pairs.
struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].trim_start_matches('-').to_string();
            // A following flag is not this key's value: `--no-vacuum
            // --metrics-out run.json` must leave `--metrics-out` intact.
            if i + 1 < argv.len() && argv[i].starts_with('-') && !argv[i + 1].starts_with('-') {
                pairs.push((key, argv[i + 1].clone()));
                i += 2;
            } else {
                pairs.push((key, String::new()));
                i += 1;
            }
        }
        Args { pairs }
    }

    fn get(&self, names: &[&str]) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| names.contains(&k.as_str()))
            .map(|(_, v)| v.as_str())
    }

    fn f64(&self, names: &[&str], default: f64) -> f64 {
        self.get(names).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn u32(&self, names: &[&str], default: u32) -> u32 {
        self.get(names).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }
}

/// Parses `--durability off|sleep|fsync` (default: sleep, the benchmark
/// baseline). `fsync` opens a real WAL in `--wal-dir` or a fresh temp
/// directory; it applies to the engines built directly from an
/// [`EngineConfig`] (the shared family) — the other designs price
/// durability inside their own replication/consensus waits.
///
/// Two chaos knobs ride along and require `--durability fsync`:
/// `--disk-faults <seed>` arms a seeded [`DiskFaultPlan`] against the WAL
/// (transient EIO, fsync failures, ENOSPC windows, write stalls), and
/// `--max-commit-backlog <frames>` bounds the group-commit queue so a
/// degraded device sheds commits instead of buffering without limit.
fn parse_durability(args: &Args) -> Option<DurabilityMode> {
    let fault_seed = args.get(&["disk-faults"]).map(|v| v.parse::<u64>());
    let max_backlog = args.get(&["max-commit-backlog"]).map(|v| v.parse::<usize>());
    Some(match args.get(&["durability"]) {
        None | Some("sleep") | Some("off") => {
            if fault_seed.is_some() || max_backlog.is_some() {
                eprintln!(
                    "--disk-faults / --max-commit-backlog need a real WAL; \
                     add --durability fsync"
                );
                return None;
            }
            if matches!(args.get(&["durability"]), Some("off")) {
                DurabilityMode::Off
            } else {
                DurabilityMode::SleepDefault
            }
        }
        Some("fsync") => {
            let dir = match args.get(&["wal-dir"]) {
                Some(d) => std::path::PathBuf::from(d),
                None => std::env::temp_dir()
                    .join(format!("hatcli-wal-{}", std::process::id())),
            };
            eprintln!("durability: fsync WAL in {}", dir.display());
            let mut config = WalConfig::new(dir);
            if let Some(parsed) = fault_seed {
                let Ok(seed) = parsed else {
                    eprintln!("bad --disk-faults; expected a u64 seed");
                    return None;
                };
                eprintln!("disk chaos: fault plan seeded with {seed}");
                config.fault_plan = DiskFaultPlan::seeded(seed);
            }
            if let Some(parsed) = max_backlog {
                let Ok(frames) = parsed else {
                    eprintln!("bad --max-commit-backlog; expected a frame count");
                    return None;
                };
                config.max_backlog = frames;
            }
            DurabilityMode::Fsync(config)
        }
        Some(other) => {
            eprintln!("unknown --durability {other}; use off|sleep|fsync");
            return None;
        }
    })
}

/// Parses `--vacuum-interval-ms <ms>` / `--no-vacuum` into the interval
/// every engine's background version-chain vacuum runs at. The default
/// matches [`EngineConfig::DEFAULT_VACUUM_INTERVAL`]; `--no-vacuum`
/// disables the thread entirely (version chains then grow for the whole
/// run — the baseline a memory-plateau comparison needs).
fn parse_vacuum(args: &Args) -> Option<Duration> {
    if args.has("no-vacuum") {
        return None;
    }
    match args.get(&["vacuum-interval-ms"]) {
        Some(ms) => Some(Duration::from_millis(ms.parse().unwrap_or(25))),
        None => Some(EngineConfig::DEFAULT_VACUUM_INTERVAL),
    }
}

fn make_harness(
    engine_name: &str,
    sf: f64,
    seed: u64,
    durability: &DurabilityMode,
    args: &Args,
    shards: u32,
) -> Option<Harness> {
    // `--mix n,p,c`: New Order / Payment / Count Orders weights
    // (default 48,48,4 per §5.3). `--mix 0,96,4` gives an update-only
    // write path — the mix the memory-plateau smoke uses.
    let mix = match args.get(&["mix"]) {
        None => TxnMix::default(),
        Some(spec) => {
            let w: Vec<u32> =
                spec.split(',').filter_map(|s| s.trim().parse().ok()).collect();
            if w.len() != 3 || w.iter().sum::<u32>() == 0 {
                eprintln!("bad --mix {spec}; expected three weights like 48,48,4");
                return None;
            }
            TxnMix { new_order: w[0], payment: w[1], count_orders: w[2] }
        }
    };
    let engine = build_engine(engine_name, durability, parse_vacuum(args), shards)?;
    if shards > 1 {
        eprintln!("kernel split across {shards} commit shards");
    }
    eprintln!("loading {} at SF {sf} ...", engine.name());
    let data = generate(ScaleFactor(sf), seed);
    data.load_into(engine.as_ref()).expect("load failed");
    // `--retry-budget <cap>` arms the shared retry budget (tokens; refill
    // ratio stays at the default 0.1 per in-deadline success). The budget
    // is what turns a metastable retry storm into accounted give-ups;
    // leaving it off is the control arm of the overload experiments.
    let mut retry = hattrick::harness::RetryPolicy::default();
    if let Some(cap) = args.get(&["retry-budget"]) {
        let Ok(cap) = cap.parse::<u32>() else {
            eprintln!("bad --retry-budget {cap}; expected a token count");
            return None;
        };
        retry.budget = Some(RetryBudgetConfig { cap, ..RetryBudgetConfig::default() });
    }
    retry.max_attempts = args.u32(&["max-attempts"], retry.max_attempts);
    Some(Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(args.u32(&["warmup-ms"], 200) as u64),
            measure: Duration::from_millis(args.u32(&["measure-ms"], 600) as u64),
            seed,
            reset_between_points: true,
            retry,
            // `--a-threads <n>` pins the morsel parallelism; without it
            // every analytical query sizes its pool to the machine
            // (clamped — see `QueryOpts::default_parallelism`).
            query_opts: QueryOpts::with_parallelism(
                args.u32(&["a-threads"], QueryOpts::default_parallelism() as u32)
                    as usize,
            ),
            shards,
            ..Default::default()
        },
    )
    .with_mix(mix))
}

/// Parses `--arrival-shape poisson|bursty|step` with its shape knobs
/// (`--burst-period`/`--burst-depth` for bursty, `--burst-mult`/
/// `--burst-from`/`--burst-until` for step).
fn parse_arrival_shape(args: &Args) -> Option<ArrivalShape> {
    match args.get(&["arrival-shape"]).unwrap_or("poisson") {
        "poisson" => Some(ArrivalShape::Poisson),
        "bursty" => Some(ArrivalShape::Bursty {
            period_ticks: args.u32(&["burst-period"], 40),
            depth: args.f64(&["burst-depth"], 0.5),
        }),
        "step" => Some(ArrivalShape::Step {
            mult: args.f64(&["burst-mult"], 10.0),
            from_tick: args.u32(&["burst-from"], 30),
            until_tick: args.u32(&["burst-until"], 50),
        }),
        other => {
            eprintln!("unknown --arrival-shape {other}; try poisson|bursty|step");
            None
        }
    }
}

/// Parses `--sched static|elastic` with the elastic knobs: `--budget`
/// (total cores under the controller), `--dwell` (calm ticks before a
/// give-back), and the per-core backlog watermarks `--high-backlog` /
/// `--low-backlog`. Defaults match [`SchedTarget::default`].
fn parse_sched(args: &Args) -> Option<SchedPolicy> {
    match args.get(&["sched"]).unwrap_or("static") {
        "static" => Some(SchedPolicy::Static),
        "elastic" => {
            let d = SchedTarget::default();
            let target = SchedTarget {
                budget: args.u32(&["budget"], d.budget),
                t_floor: args.u32(&["t-floor"], d.t_floor),
                dwell_ticks: args.u32(&["dwell"], d.dwell_ticks),
                high_backlog_per_core: args
                    .u32(&["high-backlog"], d.high_backlog_per_core as u32)
                    as u64,
                low_backlog_per_core: args
                    .u32(&["low-backlog"], d.low_backlog_per_core as u32)
                    as u64,
            };
            Some(SchedPolicy::Elastic { target })
        }
        "pinned" => {
            let budget = args.u32(&["budget"], SchedTarget::default().budget);
            Some(SchedPolicy::Pinned {
                budget,
                t_cores: args.u32(&["t-cores"], budget / 2),
            })
        }
        other => {
            eprintln!("unknown --sched {other}; try static|elastic|pinned");
            None
        }
    }
}

/// Runs `hatcli point` in open-loop mode (`--arrival-rate` present):
/// offered load comes from a seeded arrival schedule instead of τ
/// waiting clients, and the report leads with goodput and shed-by-cause.
fn cmd_open_loop(args: &Args, engine: &str, sf: f64, harness: &Harness) -> i32 {
    let Some(shape) = parse_arrival_shape(args) else { return 2 };
    let Some(policy) = parse_sched(args) else { return 2 };
    let ol = OpenLoopConfig {
        arrival_rate: args.f64(&["arrival-rate"], 2000.0),
        shape,
        deadline: Duration::from_millis(args.u32(&["deadline-ms"], 20) as u64),
        workers: args.u32(&["workers"], 4),
        queue_cap: args.u32(&["queue-cap"], 4096),
        ticks: args.u32(&["ticks"], 100),
        tick: Duration::from_millis(args.u32(&["tick-ms"], 5) as u64),
        service_pad: Duration::from_micros(
            args.u32(&["service-pad-us"], 0) as u64
        ),
    };
    let m = match harness.run_open_loop_sched(&ol, &policy) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: invalid open-loop configuration: {e}");
            return 2;
        }
    };
    let capacity = match &policy {
        SchedPolicy::Static => format!("{} workers", ol.workers),
        SchedPolicy::Elastic { target } => {
            format!("elastic budget {} cores", target.budget)
        }
        SchedPolicy::Pinned { .. } => {
            let (t, a) = policy.pinned_split().expect("pinned");
            format!("pinned split {t}t/{a}a")
        }
    };
    println!(
        "== {engine} @ SF {sf}, open-loop {:.0}/s {} x {} ticks of {}ms, \
         deadline {}ms, {capacity} ==",
        ol.arrival_rate,
        ol.shape.label(),
        ol.ticks,
        ol.tick.as_millis(),
        ol.deadline.as_millis(),
    );
    println!(
        "offered={} goodput={} ({:.1}%) completed={} late={} shed_overload={} \
         shed_degraded={} retries={} denied={} gave_up={}",
        m.offered(),
        m.goodput(),
        100.0 * m.goodput_ratio(),
        m.completed(),
        m.deadline_missed(),
        m.shed_overload(),
        m.shed_degraded(),
        m.retries(),
        m.retry_denied(),
        m.gave_up()
    );
    if let Some(line) = report::overload_line(&m.point.metrics) {
        println!("{}", line.trim_start());
    }
    if let Some(line) = report::sched_line(&m.point.metrics) {
        println!("{}", line.trim_start());
        println!("a_queries={} qps={:.2}", m.a_queries(), m.point.qps);
    }
    if let Some(line) = report::degradation_line(&m.point.metrics_end) {
        println!("{}", line.trim_start());
    }
    if let Some(path) = args.get(&["overlay-out"]) {
        // Per-tick (goodput tps, analytical qps) trajectory; a sched run
        // traces how the controller walks the throughput plane.
        let traj: Vec<(f64, f64)> = m
            .point
            .timeseries
            .iter()
            .filter(|s| s.phase == SamplePhase::Measure)
            .map(|s| (s.tps, s.qps))
            .collect();
        let svg = hattrick::svg::frontier_overlay_svg(
            &format!("{engine} — per-tick trajectory ({capacity})"),
            &[],
            "per-tick",
            &traj,
        );
        std::fs::write(path, svg).expect("write overlay svg");
        println!("wrote {path}");
    }
    if let Some(path) = args.get(&["metrics-out"]) {
        let mut artifact = RunArtifact::new(run_config(engine, sf, 1, harness));
        artifact.push_point(m.point);
        return write_artifact(path, &artifact);
    }
    0
}

fn print_point(m: &PointMeasurement) {
    println!(
        "tps={:.1} qps={:.2} (commits={} queries={} aborts={})",
        m.tps,
        m.qps,
        m.committed(),
        m.queries(),
        m.aborts()
    );
    println!("{}", report::resilience_line(&m.metrics).trim_start());
    if let Some(line) = report::durability_line(&m.metrics_end) {
        println!("{}", line.trim_start());
    }
    if let Some(line) = report::degradation_line(&m.metrics_end) {
        println!("{}", line.trim_start());
    }
    if let Some(line) = report::analytics_line(&m.metrics_end) {
        println!("{}", line.trim_start());
    }
    if let Some(line) = report::scan_line(&m.metrics_end) {
        println!("{}", line.trim_start());
    }
    if let Some(line) = report::vacuum_line(&m.metrics_end) {
        println!("{}", line.trim_start());
    }
    let agg = FreshnessAgg::from_samples(&m.freshness);
    if agg.count > 0 {
        println!(
            "freshness: mean={:.4}s p99={:.4}s max={:.4}s fresh={:.0}%",
            agg.mean,
            agg.p99,
            agg.max,
            agg.zero_fraction * 100.0
        );
    }
    let txn_latency = m.txn_latency();
    if !txn_latency.is_empty() {
        println!("transaction latency (ms):");
        for (label, s) in &txn_latency {
            println!(
                "  {label:<14} n={:<7} mean={:.3} p95={:.3} max={:.3}",
                s.count, s.mean_ms, s.p95_ms, s.max_ms
            );
        }
    }
    let query_latency = m.query_latency();
    if !query_latency.is_empty() {
        println!("query latency (ms):");
        for (label, s) in &query_latency {
            println!(
                "  {label:<6} n={:<5} mean={:.2} p95={:.2} max={:.2}",
                s.count, s.mean_ms, s.p95_ms, s.max_ms
            );
        }
    }
}

/// The artifact header for a run this process is about to execute.
fn run_config(engine: &str, sf: f64, repeats: u32, harness: &Harness) -> RunConfig {
    let cfg = harness.config();
    RunConfig {
        engine: engine.to_string(),
        scale_factor: sf,
        seed: cfg.seed,
        warmup_secs: cfg.warmup.as_secs_f64(),
        measure_secs: cfg.measure.as_secs_f64(),
        sample_every_secs: cfg.sample_every.as_secs_f64(),
        repeats,
    }
}

/// Validates and writes the artifact where `--metrics-out` points.
fn write_artifact(path: &str, artifact: &RunArtifact) -> i32 {
    if let Err(e) = artifact.validate() {
        eprintln!("error: metrics artifact failed validation: {e}");
        return 1;
    }
    artifact
        .write_to(std::path::Path::new(path))
        .expect("write metrics artifact");
    println!("wrote metrics artifact {path}");
    0
}

fn cmd_point(args: &Args) -> i32 {
    let engine = args.get(&["engine", "e"]).unwrap_or("shared").to_string();
    let sf = args.f64(&["sf"], 0.01);
    let t = args.u32(&["t"], 4);
    let a = args.u32(&["a"], 2);
    let repeats = args.u32(&["repeats", "r"], 1);
    let Some(durability) = parse_durability(args) else { return 2 };
    let Some(shards) = parse_shards(args) else { return 2 };
    let Some(harness) = make_harness(
        &engine,
        sf,
        args.u32(&["seed"], 7) as u64,
        &durability,
        args,
        shards[0],
    ) else {
        eprintln!("unknown engine {engine}; try `hatcli engines`");
        return 2;
    };
    if args.get(&["arrival-rate"]).is_some() {
        return cmd_open_loop(args, &engine, sf, &harness);
    }
    let m = match harness.run_point_avg(t, a, repeats) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: invalid point configuration: {e}");
            return 2;
        }
    };
    println!("== {} @ SF {sf}, T:A = {t}:{a}, {repeats} repeat(s) ==", engine);
    print_point(&m);
    if let Some(path) = args.get(&["metrics-out"]) {
        let mut artifact = RunArtifact::new(run_config(&engine, sf, repeats, &harness));
        artifact.push_point(m);
        return write_artifact(path, &artifact);
    }
    0
}

fn cmd_frontier(args: &Args) -> i32 {
    let engine = args.get(&["engine", "e"]).unwrap_or("shared").to_string();
    let sf = args.f64(&["sf"], 0.01);
    let Some(durability) = parse_durability(args) else { return 2 };
    let Some(shards) = parse_shards(args) else { return 2 };
    let seed = args.u32(&["seed"], 7) as u64;
    let cfg = if args.has("quick") {
        SaturationConfig::quick()
    } else {
        SaturationConfig::default()
    };
    // `--shards a,b,c`: the multi-core sweep — one freshly built engine
    // per shard count, same saturation procedure, scaling table at the
    // end (x_t per count, speedup over the first).
    if shards.len() > 1 {
        let entries = sweep_shards(&shards, &cfg, |n| {
            make_harness(&engine, sf, seed, &durability, args, n)
        });
        if entries.is_empty() {
            eprintln!("unknown engine {engine}; try `hatcli engines`");
            return 2;
        }
        println!("== {engine} @ SF {sf}, shard sweep ==");
        for e in &entries {
            println!(
                "{}",
                report::frontier_ascii(&format!("{engine} x{}", e.shards), &e.frontier)
            );
        }
        print!("{}", report::shard_scaling(&entries));
        return 0;
    }
    let Some(harness) = make_harness(&engine, sf, seed, &durability, args, shards[0])
    else {
        eprintln!("unknown engine {engine}; try `hatcli engines`");
        return 2;
    };
    let grid = build_grid(&harness, &cfg);
    let frontier = Frontier::from_grid(&grid);
    println!("{}", report::frontier_ascii(&engine, &frontier));
    let all_fresh: Vec<f64> = grid
        .measurements
        .iter()
        .flat_map(|m| m.freshness.iter().copied())
        .collect();
    println!(
        "{}",
        report::summary(&engine, &frontier, &FreshnessAgg::from_samples(&all_fresh))
    );
    let (t_ret, a_ret) = grid.workload_retention();
    println!("workload retention: T={t_ret:.2} A={a_ret:.2} (1.0 = unaffected by the other side)");
    if let Some(out) = args.get(&["out", "o"]) {
        std::fs::write(out, hattrick::svg::frontier_svg(&engine, &[(&engine, &frontier)]))
            .expect("write svg");
        println!("wrote {out}");
    }
    if let Some(path) = args.get(&["metrics-out"]) {
        let mut artifact = RunArtifact::new(run_config(&engine, sf, 1, &harness));
        for m in &grid.measurements {
            artifact.push_point(m.clone());
        }
        return write_artifact(path, &artifact);
    }
    0
}

/// Parses, validates, and summarizes a previously written run artifact.
fn cmd_artifact(path: Option<&str>) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: hatcli artifact <run.json>");
        return 2;
    };
    let artifact = match RunArtifact::read_from(std::path::Path::new(path)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if let Err(e) = artifact.validate() {
        eprintln!("error: invalid artifact: {e}");
        return 1;
    }
    let c = &artifact.config;
    println!(
        "artifact schema v{}: {} @ SF {} ({} point(s))",
        artifact.schema_version,
        c.engine,
        c.scale_factor,
        artifact.points.len()
    );
    for m in &artifact.points {
        let samples = m
            .timeseries
            .iter()
            .filter(|s| s.phase == SamplePhase::Measure)
            .count();
        println!(
            "  T:A={}:{} tps={:.1} qps={:.2} commits={} queries={} \
             ({} measurement samples)",
            m.t_clients,
            m.a_clients,
            m.tps,
            m.qps,
            m.committed(),
            m.queries(),
            samples
        );
    }
    0
}

fn cmd_compare(args: &Args) -> i32 {
    let sf = args.f64(&["sf"], 0.01);
    let cfg = if args.has("quick") {
        SaturationConfig::quick()
    } else {
        SaturationConfig::default()
    };
    let names = ["shared", "isolated-on", "dual", "learner"];
    let mut results: Vec<(String, Frontier, FreshnessAgg)> = Vec::new();
    for name in names {
        let harness = make_harness(name, sf, 7, &DurabilityMode::SleepDefault, args, 1)
            .expect("builtin engine");
        let grid = build_grid(&harness, &cfg);
        let frontier = Frontier::from_grid(&grid);
        let fresh: Vec<f64> = grid
            .measurements
            .iter()
            .flat_map(|m| m.freshness.iter().copied())
            .collect();
        results.push((name.to_string(), frontier, FreshnessAgg::from_samples(&fresh)));
    }
    println!("== comparison @ SF {sf} ==");
    for (name, frontier, fresh) in &results {
        println!("{}", report::summary(name, frontier, fresh));
    }
    // §6.6 rule: A beats B if its frontier envelops B's with freshness no
    // worse.
    for (a_name, a_frontier, a_fresh) in &results {
        for (b_name, b_frontier, b_fresh) in &results {
            if a_name != b_name
                && a_frontier.envelops(b_frontier, 40)
                && a_fresh.p99 <= b_fresh.p99 + 1e-9
            {
                println!("{a_name} is better than {b_name} (envelops, freshness no worse)");
            }
        }
    }
    0
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().map(String::as_str).unwrap_or("help");
    let args = Args::parse(&argv[argv.len().min(1)..]);
    let code = match cmd {
        "engines" => {
            for e in ENGINES {
                println!("{e}");
            }
            0
        }
        "point" => cmd_point(&args),
        "frontier" => cmd_frontier(&args),
        "compare" => cmd_compare(&args),
        "artifact" => cmd_artifact(argv.get(1).map(String::as_str)),
        _ => {
            eprintln!(
                "usage: hatcli <engines|point|frontier|compare|artifact> [flags]\n\
                 point:    --engine <name> --sf <f> -t <n> -a <n> [--repeats n]\n\
                 frontier: --engine <name> --sf <f> [--quick] [--out chart.svg]\n\
                 compare:  --sf <f> [--quick]\n\
                 artifact: <run.json> (validate + summarize a metrics artifact)\n\
                 point/frontier also take --metrics-out <run.json> (write the\n\
                 versioned JSON run artifact: config, per-point metric\n\
                 snapshots, latency histograms, time series)\n\
                 point/frontier also take --shards <n> (commit shards the\n\
                 transactional kernel is hash-split across, default 1);\n\
                 frontier --shards <a,b,c> runs the multi-core sweep: one\n\
                 frontier per shard count plus the T-scaling table\n\
                 point/frontier/compare also take --a-threads <n> (morsel\n\
                 parallelism per analytical query, default 1),\n\
                 --vacuum-interval-ms <ms> (background MVCC version-chain\n\
                 vacuum cadence, default 25) or --no-vacuum (disable it),\n\
                 --warmup-ms/--measure-ms <ms> (per-point window lengths,\n\
                 default 200/600), --mix <n,p,c> (New Order / Payment /\n\
                 Count Orders weights, default 48,48,4),\n\
                 and point/frontier --durability\n\
                 off|sleep|fsync [--wal-dir <dir>] (fsync runs a real\n\
                 on-disk WAL); with fsync, --disk-faults <seed> arms a\n\
                 seeded disk-fault plan (EIO, fsync failures, ENOSPC,\n\
                 stalls) and --max-commit-backlog <frames> bounds the\n\
                 group-commit queue (excess commits shed with retryable\n\
                 errors)\n\
                 point --arrival-rate <req/s> switches to an open-loop\n\
                 overload run: offered load is an input, not a client\n\
                 count. Knobs: --arrival-shape poisson|bursty|step\n\
                 (bursty: --burst-period/--burst-depth; step:\n\
                 --burst-mult/--burst-from/--burst-until),\n\
                 --deadline-ms <ms>, --workers <n>, --queue-cap <n>,\n\
                 --ticks <n>, --tick-ms <ms>, --service-pad-us <us>,\n\
                 --retry-budget <tokens> (shared budget; omit for the\n\
                 unbudgeted control arm), --max-attempts <n>\n\
                 open-loop runs also take --sched static|elastic|pinned;\n\
                 elastic\n\
                 holds a fixed core budget and reassigns it between the\n\
                 commit and query sides at tick granularity. Knobs:\n\
                 --budget <cores> (default 4), --t-floor <cores>,\n\
                 --dwell <ticks> (calm ticks before giving a core back),\n\
                 --high-backlog/--low-backlog <per-core> (AIMD\n\
                 watermarks); pinned runs the same dual-population\n\
                 driver at a fixed --t-cores <n> split (the static\n\
                 comparison arm); the per-tick allocation trace lands in\n\
                 the artifact (schema v6) as t_cores/a_cores columns and\n\
                 --overlay-out <chart.svg> draws the per-tick\n\
                 (goodput, qps) trajectory"
            );
            if cmd == "help" {
                0
            } else {
                2
            }
        }
    };
    std::process::exit(code);
}
