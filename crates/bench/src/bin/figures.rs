//! Regenerates every figure of "How Good is My HTAP System?" (SIGMOD'22)
//! against the reproduced engines.
//!
//! Usage: `figures <id>|all` where `<id>` ∈ {fig1, fig2, fig5, fig6a,
//! fig6b, fig7, fig8a, fig8b, fig9, fig10, fig11, fig12, sizes}.
//! Set `HATTRICK_QUICK=1` for a fast smoke pass.
//!
//! Each figure writes CSV series under `results/<id>/` and prints ASCII
//! charts plus the shape metrics; EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use std::sync::Arc;

use hat_bench::{
    dataset, freshness_at_ratios, harness_for, out_dir, panel_artifact, quick_mode,
    run_panel, saturation_config, write_out, SfRole,
};
use hat_engine::{
    DualConfig, DualEngine, EngineConfig, HtapEngine, IndexProfile, IsoConfig,
    IsoEngine, LearnerConfig, LearnerEngine, LearnerProfile, ReplicationMode,
    ShdEngine,
};
use hat_txn::IsolationLevel;
use hattrick::freshness::{cdf, FreshnessAgg};
use hattrick::frontier::{classify, Frontier};
use hattrick::gen::MAX_TXN_CLIENTS;
use hattrick::report::{self, Series};

fn shared_engine(iso: IsolationLevel, idx: IndexProfile) -> Arc<dyn HtapEngine> {
    Arc::new(ShdEngine::new(EngineConfig::builder().isolation(iso).indexes(idx).build()))
}

fn iso_engine(mode: ReplicationMode) -> Arc<dyn HtapEngine> {
    Arc::new(IsoEngine::new(IsoConfig { mode, ..IsoConfig::coalesced_default() }))
}

fn dual_engine() -> Arc<dyn HtapEngine> {
    Arc::new(DualEngine::new(DualConfig::default()))
}

fn learner_engine(profile: LearnerProfile) -> Arc<dyn HtapEngine> {
    Arc::new(LearnerEngine::new(LearnerConfig { profile, ..LearnerConfig::default() }))
}

/// Runs one engine at one scale role through the full saturation method.
fn panel(
    fig: &str,
    panel_name: &str,
    engine: Arc<dyn HtapEngine>,
    role: SfRole,
) -> hat_bench::PanelResult {
    let quick = quick_mode();
    let dir = out_dir(fig);
    let data = dataset(role, quick);
    let harness = harness_for(engine, &data, role, quick);
    run_panel(&dir, panel_name, &harness, &saturation_config(quick))
}

/// Figure 1: sampling method vs saturation method for frontier creation.
fn fig1() {
    println!("== fig1: sampling vs saturation construction ==");
    let quick = quick_mode();
    let dir = out_dir("fig1");
    let role = SfRole::Small;
    let data = dataset(role, quick);
    let harness = harness_for(dual_engine(), &data, role, quick);

    // (a) random sampling of client mixes, published through the run
    // artifact like every other measurement.
    let n = if quick { 8 } else { 30 };
    let mut rng = hat_common::rng::HatRng::seeded(0xF16);
    let samples = hattrick::frontier::sample_random(&harness, n, 12, &mut rng);
    let pts: Vec<(f64, f64)> = samples.iter().map(|m| (m.tps, m.qps)).collect();
    let mut sampling = panel_artifact("sampling", &harness);
    for m in samples {
        sampling.push_point(m);
    }
    write_out(&dir, "sampling.csv", &sampling.points_csv());
    write_out(&dir, "sampling.artifact.json", &sampling.dump());
    println!(
        "{}",
        report::ascii_plot(
            "fig1a — sampling method",
            "T throughput (tps)",
            "A throughput (qps)",
            &[Series { name: "random mixes", marker: 'x', points: pts }],
            64,
            18,
        )
    );

    // (b) saturation method on the same system.
    run_panel(&dir, "saturation", &harness, &saturation_config(quick));
}

/// Figure 2: grid-graph + frontier exemplars of the three shapes.
fn fig2() {
    println!("== fig2: grid graph and frontier exemplars ==");
    // (a, b) isolated design at the large SF: near the bounding box.
    panel("fig2", "pg-sr-large", iso_engine(ReplicationMode::SyncOn), SfRole::Large);
    // (c) learner design at the medium SF: near the proportional line.
    panel("fig2", "tidb-medium", learner_engine(LearnerProfile::SingleNode), SfRole::Medium);
    // (d) dual-format design at the small SF: contention, below the line.
    panel("fig2", "system-x-small", dual_engine(), SfRole::Small);
}

/// Figure 5: the shared engine across scale factors.
fn fig5() {
    println!("== fig5: PostgreSQL-like shared engine across SFs ==");
    for role in SfRole::ALL {
        let r = panel(
            "fig5",
            &format!("shared-{}", role.label()),
            shared_engine(IsolationLevel::Serializable, IndexProfile::All),
            role,
        );
        // The shared design is always fresh; verify via the ratio points.
        if role == SfRole::Medium {
            let quick = quick_mode();
            let data = dataset(role, quick);
            let harness = harness_for(
                shared_engine(IsolationLevel::Serializable, IndexProfile::All),
                &data,
                role,
                quick,
            );
            let ratios = freshness_at_ratios(&harness);
            let mut csv = String::from("ratio,p99_seconds,mean_seconds,samples\n");
            for (label, agg, _) in &ratios {
                csv.push_str(&format!("{label},{:.6},{:.6},{}\n", agg.p99, agg.mean, agg.count));
            }
            write_out(&out_dir("fig5"), "freshness-ratios.csv", &csv);
        }
        drop(r);
    }
}

/// Figure 6a: isolation levels on the shared engine.
fn fig6a() {
    println!("== fig6a: serializable vs read committed ==");
    let ser = panel(
        "fig6a",
        "serializable",
        shared_engine(IsolationLevel::Serializable, IndexProfile::All),
        SfRole::Medium,
    );
    let rc = panel(
        "fig6a",
        "read-committed",
        shared_engine(IsolationLevel::ReadCommitted, IndexProfile::All),
        SfRole::Medium,
    );
    compare_two("fig6a", &ser.frontier, "serializable", &rc.frontier, "read-committed");
}

/// Figure 6b: physical schemas on the shared engine.
fn fig6b() {
    println!("== fig6b: physical schemas (none / semi / all indexes) ==");
    for idx in [IndexProfile::None, IndexProfile::Semi, IndexProfile::All] {
        panel(
            "fig6b",
            idx.label(),
            shared_engine(IsolationLevel::Serializable, idx),
            SfRole::Medium,
        );
    }
}

/// Figure 7: the isolated engine (mode ON) across scale factors, with
/// freshness at the ratio points.
fn fig7() {
    println!("== fig7: PostgreSQL-SR-like isolated engine across SFs ==");
    let quick = quick_mode();
    for role in SfRole::ALL {
        panel(
            "fig7",
            &format!("iso-on-{}", role.label()),
            iso_engine(ReplicationMode::SyncOn),
            role,
        );
        let data = dataset(role, quick);
        let harness =
            harness_for(iso_engine(ReplicationMode::SyncOn), &data, role, quick);
        let ratios = freshness_at_ratios(&harness);
        let mut csv = String::from("ratio,p99_seconds,mean_seconds,zero_fraction,samples\n");
        for (label, agg, _) in &ratios {
            csv.push_str(&format!(
                "{label},{:.6},{:.6},{:.4},{}\n",
                agg.p99, agg.mean, agg.zero_fraction, agg.count
            ));
        }
        write_out(&out_dir("fig7"), &format!("freshness-{}.csv", role.label()), &csv);
    }
}

/// Figure 8a: replication modes ON vs RA.
fn fig8a() {
    println!("== fig8a: replication modes ON vs remote-apply ==");
    let quick = quick_mode();
    let on = panel("fig8a", "mode-on", iso_engine(ReplicationMode::SyncOn), SfRole::Medium);
    let ra = panel(
        "fig8a",
        "mode-remote-apply",
        iso_engine(ReplicationMode::RemoteApply),
        SfRole::Medium,
    );
    compare_two("fig8a", &on.frontier, "mode-on", &ra.frontier, "mode-remote-apply");
    for (mode, engine) in [
        ("on", iso_engine(ReplicationMode::SyncOn)),
        ("remote-apply", iso_engine(ReplicationMode::RemoteApply)),
    ] {
        println!("-- freshness under mode {mode}");
        let data = dataset(SfRole::Medium, quick);
        let harness = harness_for(engine, &data, SfRole::Medium, quick);
        let ratios = freshness_at_ratios(&harness);
        let mut csv = String::from("ratio,p99_seconds,mean_seconds,zero_fraction\n");
        for (label, agg, _) in &ratios {
            csv.push_str(&format!(
                "{label},{:.6},{:.6},{:.4}\n",
                agg.p99, agg.mean, agg.zero_fraction
            ));
        }
        write_out(&out_dir("fig8a"), &format!("freshness-{mode}.csv"), &csv);
    }
}

/// Figure 8b: freshness CDFs at the three client ratios (mode ON).
fn fig8b() {
    println!("== fig8b: freshness CDFs, isolated engine mode ON ==");
    let quick = quick_mode();
    let dir = out_dir("fig8b");
    let data = dataset(SfRole::Medium, quick);
    let harness =
        harness_for(iso_engine(ReplicationMode::SyncOn), &data, SfRole::Medium, quick);
    let mut all_series = Vec::new();
    for (label, agg, samples) in freshness_at_ratios(&harness) {
        let points = cdf(&samples);
        write_out(
            &dir,
            &format!("cdf-{}.csv", label.replace(':', "-")),
            &report::cdf_csv(&points),
        );
        println!(
            "  ratio {label}: {:.0}% fresh, p99 {:.4}s, max {:.4}s",
            agg.zero_fraction * 100.0,
            agg.p99,
            agg.max
        );
        all_series.push((label, points));
    }
    let series: Vec<Series> = all_series
        .iter()
        .zip(['1', '2', '3'])
        .map(|((name, points), marker)| Series {
            name,
            marker,
            points: points.clone(),
        })
        .collect();
    println!(
        "{}",
        report::ascii_plot(
            "fig8b — freshness CDFs (mode ON)",
            "freshness score (s)",
            "fraction of queries",
            &series,
            64,
            18,
        )
    );
    let svg_cdfs: Vec<(&str, &[(f64, f64)])> = all_series
        .iter()
        .map(|(name, points)| (name.as_str(), points.as_slice()))
        .collect();
    write_out(
        &dir,
        "cdfs.svg",
        &hattrick::svg::cdf_svg("fig8b — freshness CDFs (mode ON)", &svg_cdfs),
    );
}

/// Figure 9: the dual-format engine across scale factors.
fn fig9() {
    println!("== fig9: System-X-like dual-format engine across SFs ==");
    for role in SfRole::ALL {
        panel("fig9", &format!("dual-{}", role.label()), dual_engine(), role);
    }
    check_zero_freshness("fig9", dual_engine());
}

/// Figure 10: the learner engine, single node, across scale factors.
fn fig10() {
    println!("== fig10: TiDB-like learner engine (single node) across SFs ==");
    for role in SfRole::ALL {
        panel(
            "fig10",
            &format!("learner-single-{}", role.label()),
            learner_engine(LearnerProfile::SingleNode),
            role,
        );
    }
    check_zero_freshness("fig10", learner_engine(LearnerProfile::SingleNode));
}

/// Figure 11: the learner engine, distributed profile.
fn fig11() {
    println!("== fig11: TiDB-like learner engine (distributed) across SFs ==");
    for role in SfRole::ALL {
        panel(
            "fig11",
            &format!("learner-dist-{}", role.label()),
            learner_engine(LearnerProfile::Distributed),
            role,
        );
    }
    check_zero_freshness("fig11", learner_engine(LearnerProfile::Distributed));
}

/// Figure 12: cross-system comparison at the large scale factor.
fn fig12() {
    println!("== fig12: cross-system comparison at {} ==", SfRole::Large.paper_label());
    let engines: Vec<(&str, Arc<dyn HtapEngine>)> = vec![
        ("shared", shared_engine(IsolationLevel::Serializable, IndexProfile::All)),
        ("isolated-on", iso_engine(ReplicationMode::SyncOn)),
        ("dual-format", dual_engine()),
        ("learner-single", learner_engine(LearnerProfile::SingleNode)),
        ("learner-dist", learner_engine(LearnerProfile::Distributed)),
    ];
    let quick = quick_mode();
    let dir = out_dir("fig12");
    let mut frontiers: Vec<(String, Frontier)> = Vec::new();
    let mut summary = String::new();
    for (name, engine) in engines {
        let design = engine.design();
        let r = panel("fig12", name, engine.clone(), SfRole::Large);
        // Freshness at the 50:50 ratio point, as the paper reports.
        let data = dataset(SfRole::Large, quick);
        let harness = harness_for(engine, &data, SfRole::Large, quick);
        let m = harness.run_point(5, 5).expect("ratio point failed");
        let agg = FreshnessAgg::from_samples(&m.freshness);
        let guess = classify(&r.frontier);
        summary.push_str(&format!(
            "{name}: X_T={:.0} X_A={:.2} area_ratio={:.3} shape={guess:?} \
             design(truth)={} freshness_p99@50:50={:.4}s\n",
            r.frontier.x_t,
            r.frontier.x_a,
            r.frontier.area_ratio(),
            design.label(),
            agg.p99,
        ));
        frontiers.push((name.to_string(), r.frontier));
    }
    // Envelopment matrix (§6.6's comparison rule).
    summary.push_str("\nenvelopment (row envelops column):\n");
    for (a_name, a) in &frontiers {
        for (b_name, b) in &frontiers {
            if a_name != b_name && a.envelops(b, 40) {
                summary.push_str(&format!("  {a_name} envelops {b_name}\n"));
            }
        }
    }
    println!("{summary}");
    write_out(&dir, "comparison.txt", &summary);
    let svg_frontiers: Vec<(&str, &Frontier)> =
        frontiers.iter().map(|(n, f)| (n.as_str(), f)).collect();
    write_out(
        &dir,
        "comparison.svg",
        &hattrick::svg::frontier_svg(
            "fig12 — throughput frontiers of compared systems",
            &svg_frontiers,
        ),
    );

    let series: Vec<Series> = frontiers
        .iter()
        .zip(['s', 'i', 'd', 'l', 'D'])
        .map(|((name, f), marker)| Series {
            name,
            marker,
            points: f.points.iter().map(|p| (p.t, p.a)).collect(),
        })
        .collect();
    println!(
        "{}",
        report::ascii_plot(
            "fig12 — throughput frontiers of compared systems",
            "T throughput (tps)",
            "A throughput (qps)",
            &series,
            72,
            22,
        )
    );
}

/// The schema/size table (Figure 4 / §6.1 raw-size claims).
fn sizes() {
    println!("== sizes: row counts and raw bytes per scale role ==");
    let quick = quick_mode();
    let dir = out_dir("sizes");
    let mut csv =
        String::from("role,scale,customer,supplier,part,date,lineorder,history,freshness,raw_mb\n");
    for role in SfRole::ALL {
        let data = dataset(role, quick);
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{:.1}\n",
            role.label(),
            role.scale(quick).0,
            data.customer.len(),
            data.supplier.len(),
            data.part.len(),
            data.date.len(),
            data.lineorder.len(),
            data.history.len(),
            data.freshness.len(),
            data.approx_bytes() as f64 / 1e6,
        ));
    }
    print!("{csv}");
    write_out(&dir, "sizes.csv", &csv);
}

/// Verifies a hybrid engine reports zero freshness at the ratio points.
fn check_zero_freshness(fig: &str, engine: Arc<dyn HtapEngine>) {
    let quick = quick_mode();
    let data = dataset(SfRole::Small, quick);
    let harness = harness_for(engine, &data, SfRole::Small, quick);
    let ratios = freshness_at_ratios(&harness);
    let mut csv = String::from("ratio,p99_seconds,zero_fraction\n");
    for (label, agg, _) in &ratios {
        csv.push_str(&format!("{label},{:.6},{:.4}\n", agg.p99, agg.zero_fraction));
    }
    write_out(&out_dir(fig), "freshness-ratios.csv", &csv);
}

/// Overlays two frontiers in one ASCII chart (within-system figures).
fn compare_two(fig: &str, a: &Frontier, a_name: &str, b: &Frontier, b_name: &str) {
    println!(
        "{}",
        report::ascii_plot(
            &format!("{fig} — {a_name} vs {b_name}"),
            "T throughput (tps)",
            "A throughput (qps)",
            &[
                Series {
                    name: a_name,
                    marker: 'o',
                    points: a.points.iter().map(|p| (p.t, p.a)).collect(),
                },
                Series {
                    name: b_name,
                    marker: '+',
                    points: b.points.iter().map(|p| (p.t, p.a)).collect(),
                },
            ],
            64,
            20,
        )
    );
}

/// Post-processing: regenerate SVG charts from every CSV already under
/// `results/` (useful when plots are wanted without re-measuring).
fn svgize() {
    let root = std::path::Path::new("results");
    let Ok(entries) = std::fs::read_dir(root) else {
        eprintln!("no results/ directory; run some figures first");
        return;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if !dir.is_dir() {
            continue;
        }
        for file in std::fs::read_dir(&dir).expect("read fig dir").flatten() {
            let path = file.path();
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            if let Some(stem) = name.strip_suffix(".frontier.csv") {
                let Some(frontier) = read_frontier_csv(&path) else { continue };
                let svg = hattrick::svg::frontier_svg(stem, &[(stem, &frontier)]);
                write_out(&dir, &format!("{stem}.frontier.svg"), &svg);
            } else if let Some(stem) = name.strip_suffix(".csv") {
                if name.starts_with("cdf-") {
                    let Some(points) = read_cdf_csv(&path) else { continue };
                    let svg = hattrick::svg::cdf_svg(stem, &[(stem, points.as_slice())]);
                    write_out(&dir, &format!("{stem}.svg"), &svg);
                }
            }
        }
    }
}

/// Parses a `t_clients,a_clients,tps,qps` frontier CSV back to a frontier.
fn read_frontier_csv(path: &std::path::Path) -> Option<Frontier> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut points = Vec::new();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 4 {
            continue;
        }
        points.push(hattrick::frontier::FrontierPoint {
            t_clients: cols[0].parse().ok()?,
            a_clients: cols[1].parse().ok()?,
            t: cols[2].parse().ok()?,
            a: cols[3].parse().ok()?,
        });
    }
    if points.is_empty() {
        None
    } else {
        Some(Frontier::from_points(points))
    }
}

/// Parses a `seconds,fraction` CDF CSV.
fn read_cdf_csv(path: &std::path::Path) -> Option<Vec<(f64, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let points: Vec<(f64, f64)> = text
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (a, b) = line.split_once(',')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        })
        .collect();
    if points.is_empty() {
        None
    } else {
        Some(points)
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let quick = quick_mode();
    println!(
        "HATtrick figure reproduction — mode: {} (max {} T clients)",
        if quick { "QUICK" } else { "full" },
        MAX_TXN_CLIENTS
    );
    let t0 = std::time::Instant::now();
    let run = |id: &str| match id {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig5" => fig5(),
        "fig6a" => fig6a(),
        "fig6b" => fig6b(),
        "fig7" => fig7(),
        "fig8a" => fig8a(),
        "fig8b" => fig8b(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "sizes" => sizes(),
        "svgize" => svgize(),
        other => {
            eprintln!("unknown figure id {other}");
            std::process::exit(2);
        }
    };
    if arg == "all" {
        for id in [
            "sizes", "fig1", "fig2", "fig5", "fig6a", "fig6b", "fig7", "fig8a",
            "fig8b", "fig9", "fig10", "fig11", "fig12",
        ] {
            run(id);
        }
    } else {
        run(&arg);
    }
    println!("done in {:?}", t0.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_csv_roundtrip() {
        let dir = std::env::temp_dir().join("hattrick-figtest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.frontier.csv");
        std::fs::write(
            &path,
            "t_clients,a_clients,tps,qps\n4,0,100.00,0.000\n0,4,0.00,10.000\n2,2,60.00,6.000\n",
        )
        .unwrap();
        let f = read_frontier_csv(&path).unwrap();
        assert_eq!(f.x_t, 100.0);
        assert_eq!(f.x_a, 10.0);
        assert_eq!(f.points.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frontier_csv_rejects_garbage() {
        let dir = std::env::temp_dir().join("hattrick-figtest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.frontier.csv");
        std::fs::write(&path, "t_clients,a_clients,tps,qps\nnot,a,valid,row?extra\n").unwrap();
        assert!(read_frontier_csv(&path).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cdf_csv_roundtrip() {
        let dir = std::env::temp_dir().join("hattrick-figtest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cdf-test.csv");
        std::fs::write(&path, "seconds,fraction\n0.000000,0.500000\n1.500000,1.000000\n")
            .unwrap();
        let points = read_cdf_csv(&path).unwrap();
        assert_eq!(points, vec![(0.0, 0.5), (1.5, 1.0)]);
        std::fs::remove_file(&path).unwrap();
    }
}
