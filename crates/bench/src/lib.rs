//! `hat-bench` — shared support for the per-figure reproduction harness
//! (`figures` binary) and the Criterion micro-benchmarks.
//!
//! The paper's evaluation (§6) runs three scale factors per system. This
//! reproduction maps them onto a single-core-friendly grid (see DESIGN.md's
//! substitution table): the *shapes* are compared, never the absolute
//! numbers.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use hat_engine::HtapEngine;
use hattrick::artifact::{RunArtifact, RunConfig};
use hattrick::frontier::{build_grid, Frontier, SaturationConfig};
use hattrick::gen::{generate, GeneratedData, ScaleFactor};
use hattrick::harness::{BenchmarkConfig, Harness};
use hattrick::freshness::FreshnessAgg;
use hattrick::report;

/// The scale-factor roles of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfRole {
    /// Plays the paper's SF1: small enough that data contention dominates.
    Small,
    /// Plays the paper's SF10.
    Medium,
    /// Plays the paper's SF100: scan costs dominate analytics.
    Large,
}

impl SfRole {
    pub const ALL: [SfRole; 3] = [SfRole::Small, SfRole::Medium, SfRole::Large];

    /// Label used in file names and legends.
    pub fn label(self) -> &'static str {
        match self {
            SfRole::Small => "sf-small",
            SfRole::Medium => "sf-medium",
            SfRole::Large => "sf-large",
        }
    }

    /// The paper figure label this role substitutes for.
    pub fn paper_label(self) -> &'static str {
        match self {
            SfRole::Small => "SF1",
            SfRole::Medium => "SF10",
            SfRole::Large => "SF100",
        }
    }

    /// The actual scale factor, honoring quick mode.
    pub fn scale(self, quick: bool) -> ScaleFactor {
        let sf = match (self, quick) {
            (SfRole::Small, false) => 0.01,
            (SfRole::Medium, false) => 0.05,
            (SfRole::Large, false) => 0.25,
            (SfRole::Small, true) => 0.004,
            (SfRole::Medium, true) => 0.01,
            (SfRole::Large, true) => 0.04,
        };
        ScaleFactor(sf)
    }

    /// Warm-up / measurement durations, scaled with data size like the
    /// paper's per-SF periods (§6.1).
    pub fn durations(self, quick: bool) -> (Duration, Duration) {
        let (w, m) = match self {
            SfRole::Small => (120, 350),
            SfRole::Medium => (180, 500),
            SfRole::Large => (350, 1200),
        };
        let div = if quick { 2 } else { 1 };
        (Duration::from_millis(w / div), Duration::from_millis(m / div))
    }
}

/// Whether quick mode is active (`HATTRICK_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::var("HATTRICK_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The saturation configuration for the current mode.
pub fn saturation_config(quick: bool) -> SaturationConfig {
    if quick {
        SaturationConfig::quick()
    } else {
        SaturationConfig::default()
    }
}

/// Generates (and caches per-process) the dataset for a role.
pub fn dataset(role: SfRole, quick: bool) -> GeneratedData {
    generate(role.scale(quick), 0x5EED)
}

/// Builds a harness over a freshly loaded engine.
pub fn harness_for(
    engine: Arc<dyn HtapEngine>,
    data: &GeneratedData,
    role: SfRole,
    quick: bool,
) -> Harness {
    data.load_into(engine.as_ref()).expect("load failed");
    let (warmup, measure) = role.durations(quick);
    Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig { warmup, measure, seed: 0xBE7C, reset_between_points: true, ..Default::default() },
    )
}

/// Output directory for a figure, created on demand.
pub fn out_dir(fig: &str) -> PathBuf {
    let dir = Path::new("results").join(fig);
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a string to `dir/name`, logging the path.
pub fn write_out(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write result file");
    println!("  wrote {}", path.display());
}

/// Result of one full grid + frontier run for a panel.
pub struct PanelResult {
    pub name: String,
    pub grid: hattrick::frontier::GridGraph,
    pub frontier: Frontier,
    /// Every grid measurement as a versioned run artifact — the same
    /// document `hatcli --metrics-out` writes.
    pub artifact: RunArtifact,
}

/// Builds the artifact for a measured panel from the harness that ran it.
pub fn panel_artifact(panel: &str, harness: &Harness) -> RunArtifact {
    let cfg = harness.config();
    RunArtifact::new(RunConfig {
        engine: format!("{panel} ({})", harness.engine().name()),
        scale_factor: harness.profile().scale,
        seed: cfg.seed,
        warmup_secs: cfg.warmup.as_secs_f64(),
        measure_secs: cfg.measure.as_secs_f64(),
        sample_every_secs: cfg.sample_every.as_secs_f64(),
        repeats: 1,
    })
}

/// Runs the saturation method for one engine/panel, writes CSVs plus the
/// metrics artifact, prints the ASCII frontier.
pub fn run_panel(
    fig_dir: &Path,
    panel: &str,
    harness: &Harness,
    cfg: &SaturationConfig,
) -> PanelResult {
    println!("-- panel {panel}");
    let grid = build_grid(harness, cfg);
    let frontier = Frontier::from_grid(&grid);
    let mut artifact = panel_artifact(panel, harness);
    for m in &grid.measurements {
        artifact.push_point(m.clone());
    }
    write_out(fig_dir, &format!("{panel}.grid.csv"), &report::grid_csv(&grid));
    write_out(
        fig_dir,
        &format!("{panel}.frontier.csv"),
        &report::frontier_csv(&frontier),
    );
    write_out(fig_dir, &format!("{panel}.artifact.json"), &artifact.dump());
    write_out(
        fig_dir,
        &format!("{panel}.timeseries.csv"),
        &artifact.timeseries_csv(),
    );
    write_out(
        fig_dir,
        &format!("{panel}.frontier.svg"),
        &hattrick::svg::frontier_svg(panel, &[(panel, &frontier)]),
    );
    write_out(
        fig_dir,
        &format!("{panel}.grid.svg"),
        &hattrick::svg::grid_svg(&format!("{panel} — grid graph"), &grid),
    );
    println!("{}", report::frontier_ascii(panel, &frontier));
    let (t_ret, a_ret) = grid.workload_retention();
    println!(
        "  tau_max={} alpha_max={} X_T={:.0} X_A={:.2} area_ratio={:.3} \
         class={:?} retention(T={:.2},A={:.2})",
        grid.tau_max,
        grid.alpha_max,
        grid.x_t,
        grid.x_a,
        frontier.area_ratio(),
        hattrick::frontier::classify(&frontier),
        t_ret,
        a_ret,
    );
    PanelResult { name: panel.to_string(), grid, frontier, artifact }
}

/// The paper's freshness ratio points: T:A = 20:80, 50:50, 80:20 over a
/// fixed total client count (§6.1 reports p99 freshness at f2/f5/f8).
pub const RATIO_POINTS: [(u32, u32); 3] = [(2, 8), (5, 5), (8, 2)];

/// Measures the three ratio points and returns `(label, agg, samples)`.
pub fn freshness_at_ratios(
    harness: &Harness,
) -> Vec<(String, FreshnessAgg, Vec<f64>)> {
    RATIO_POINTS
        .iter()
        .map(|&(t, a)| {
            let m = harness.run_point(t, a).expect("ratio point failed");
            let agg = FreshnessAgg::from_samples(&m.freshness);
            let label = format!("{}:{}", t * 10, a * 10);
            println!(
                "  freshness T:A={label}: p99={:.4}s mean={:.4}s over {} queries",
                agg.p99, agg.mean, agg.count
            );
            (label, agg, m.freshness)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_scale_monotonically() {
        for quick in [false, true] {
            let s = SfRole::Small.scale(quick).0;
            let m = SfRole::Medium.scale(quick).0;
            let l = SfRole::Large.scale(quick).0;
            assert!(s < m && m < l);
        }
        assert!(SfRole::Large.scale(true).0 < SfRole::Large.scale(false).0);
    }

    #[test]
    fn durations_scale_with_role() {
        let (_, small) = SfRole::Small.durations(false);
        let (_, large) = SfRole::Large.durations(false);
        assert!(large > small);
        let (_, quick_large) = SfRole::Large.durations(true);
        assert!(quick_large < large);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            SfRole::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_eq!(SfRole::Large.paper_label(), "SF100");
    }
}
