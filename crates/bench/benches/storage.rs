//! Criterion micro-benchmarks for the storage substrates, including two of
//! the ablations DESIGN.md calls out: B+tree fanout and columnar
//! compression.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hat_common::ids::lineorder;
use hat_common::value::row_from;
use hat_common::{Money, Row, TableId, Value};
use hat_query::exec::{execute_with, QueryOpts, ScanMode};
use hat_query::predicate::{ColPredicate, Predicate};
use hat_query::spec::{AggExpr, QueryId, QuerySpec};
use hat_query::view::MixedView;
use hat_storage::bptree::BPlusTree;
use hat_storage::colstore::{ColumnTable, SegmentBuilder};
use hat_storage::rowstore::{RowDb, RowStore};
use std::hint::black_box;

fn history_row(i: u64) -> Row {
    row_from([
        Value::U64(i),
        Value::U32((i % 97) as u32),
        Value::Money(Money::from_cents(i as i64 * 3)),
    ])
}

/// Ablation: B+tree point operations across fanouts (DESIGN.md §5).
fn bptree_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("bptree_fanout");
    group.sample_size(20);
    for order in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("insert_10k", order), &order, |b, &order| {
            b.iter_batched(
                || BPlusTree::<u64, u64>::with_order(order),
                |mut tree| {
                    for i in 0..10_000u64 {
                        tree.insert(black_box(i.wrapping_mul(0x9E3779B9) % 50_000), i);
                    }
                    tree
                },
                BatchSize::SmallInput,
            );
        });
        let mut tree = BPlusTree::<u64, u64>::with_order(order);
        for i in 0..100_000u64 {
            tree.insert(i.wrapping_mul(0x9E3779B9) % 500_000, i);
        }
        group.bench_with_input(BenchmarkId::new("get_100k_tree", order), &order, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(0x9E3779B9) % 500_000;
                black_box(tree.get(&k))
            });
        });
        group.bench_with_input(BenchmarkId::new("range_1k", order), &order, |b, _| {
            b.iter(|| {
                let mut n = 0u32;
                tree.range(
                    std::ops::Bound::Included(&1000),
                    std::ops::Bound::Included(&10_000),
                    |_, _| {
                        n += 1;
                        true
                    },
                );
                black_box(n)
            });
        });
    }
    group.finish();
}

/// MVCC row store: point reads with short vs long version chains, scans.
fn rowstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowstore");
    group.sample_size(20);

    let store = RowStore::new(TableId::History);
    for i in 0..100_000u64 {
        store.install_insert(history_row(i), 2);
    }
    group.bench_function("point_read", |b| {
        let mut rid = 0u64;
        b.iter(|| {
            rid = (rid + 7919) % 100_000;
            black_box(store.read(rid, 2))
        });
    });
    group.bench_function("scan_100k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            store.scan(2, |_, _| n += 1);
            black_box(n)
        });
    });

    // Long version chains: the MVCC traversal cost the paper attributes to
    // analytical reads of hot rows (§2.2).
    let hot = RowStore::new(TableId::History);
    let rid = hot.install_insert(history_row(0), 2);
    for v in 0..64u64 {
        hot.install_update(rid, history_row(v), 3 + v).unwrap();
    }
    group.bench_function("point_read_chain64_old_snapshot", |b| {
        b.iter(|| black_box(hot.read(rid, 2)));
    });
    group.bench_function("point_read_chain64_latest", |b| {
        b.iter(|| black_box(hot.read(rid, u64::MAX)));
    });
    group.finish();
}

/// Vacuum payoff: old-snapshot point reads against version chains of
/// depth 1/64/1024, before and after a prune collapses each chain to
/// newest + load-time base, plus the cost of the prune itself.
fn rowstore_vacuum(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowstore_vacuum");
    group.sample_size(20);
    let deep = |depth: u64| {
        let store = RowStore::new(TableId::History);
        let rid = store.install_insert(history_row(0), 1);
        for v in 0..depth {
            store.install_update(rid, history_row(v), 2 + v).unwrap();
        }
        (store, rid)
    };
    for depth in [1u64, 64, 1024] {
        let (store, rid) = deep(depth);
        // The base snapshot sits at the far end of the chain: the read
        // walks every intermediate version until the vacuum removes them.
        group.bench_with_input(
            BenchmarkId::new("read_base_pre_vacuum", depth),
            &depth,
            |b, _| {
                b.iter(|| black_box(store.read(rid, 1)));
            },
        );
        group.bench_with_input(BenchmarkId::new("prune_chain", depth), &depth, |b, _| {
            b.iter_batched(
                || deep(depth).0,
                |store| black_box(store.prune(u64::MAX)),
                BatchSize::SmallInput,
            );
        });
        let freed = store.prune(u64::MAX);
        assert_eq!(freed, depth.saturating_sub(1), "prune keeps newest + base");
        group.bench_with_input(
            BenchmarkId::new("read_base_post_vacuum", depth),
            &depth,
            |b, _| {
                b.iter(|| black_box(store.read(rid, 1)));
            },
        );
    }
    // Full snapshot scans pay the chain walk on every slot: 1024 rows,
    // each buried under `depth` newer versions, scanned at the base
    // snapshot before and after the vacuum collapses the chains.
    const SCAN_ROWS: u64 = 1024;
    for depth in [1u64, 64, 1024] {
        let store = RowStore::new(TableId::History);
        for i in 0..SCAN_ROWS {
            store.install_insert(history_row(i), 1);
        }
        for v in 0..depth {
            for rid in 0..SCAN_ROWS {
                store.install_update(rid, history_row(v), 2 + v).unwrap();
            }
        }
        group.bench_with_input(
            BenchmarkId::new("scan_base_pre_vacuum", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let mut n = 0u64;
                    store.scan(1, |_, _| n += 1);
                    black_box(n)
                });
            },
        );
        store.prune(u64::MAX);
        group.bench_with_input(
            BenchmarkId::new("scan_base_post_vacuum", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let mut n = 0u64;
                    store.scan(1, |_, _| n += 1);
                    black_box(n)
                });
            },
        );
    }
    group.finish();
}

/// Ablation: columnar scan speed and segment build, compressed vs plain.
fn colstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("colstore");
    group.sample_size(15);

    let rows: Vec<Row> = (0..100_000).map(history_row).collect();
    group.bench_function("build_segment_compressed", |b| {
        b.iter(|| {
            let mut builder = SegmentBuilder::new(TableId::History);
            for row in &rows {
                builder.push(2, Arc::clone(row));
            }
            black_box(builder.build())
        });
    });
    group.bench_function("build_segment_plain", |b| {
        b.iter(|| {
            let mut builder = SegmentBuilder::new(TableId::History).without_compression();
            for row in &rows {
                builder.push(2, Arc::clone(row));
            }
            black_box(builder.build())
        });
    });

    let ct = ColumnTable::new(TableId::History);
    ct.load_segment(2, rows.iter().map(Arc::clone));
    let snap = ct.snapshot(2);
    group.bench_function("column_scan_100k", |b| {
        b.iter(|| {
            let mut total = 0i64;
            for seg in snap.segments() {
                let col = seg.col(2);
                for i in 0..seg.visible_prefix(2) {
                    total += col.money_at(i).cents();
                }
            }
            black_box(total)
        });
    });

    // Row-store scan over the same data, for the row-vs-column headline.
    let store = RowStore::new(TableId::History);
    for row in &rows {
        store.install_insert(Arc::clone(row), 2);
    }
    group.bench_function("row_scan_100k_same_data", |b| {
        b.iter(|| {
            let mut total = 0i64;
            store.scan(2, |_, row| total += row[2].as_money().unwrap().cents());
            black_box(total)
        });
    });

    // Delta merge cost: snapshot with a populated delta (merge-on-read).
    let ct_delta = ColumnTable::new(TableId::History);
    ct_delta.load_segment(2, rows.iter().take(90_000).map(Arc::clone));
    for (i, row) in rows.iter().skip(90_000).enumerate() {
        ct_delta.append_delta(3 + i as u64, Arc::clone(row));
    }
    group.bench_function("snapshot_with_10k_delta", |b| {
        b.iter(|| black_box(ct_delta.snapshot(u64::MAX).visible_rows()));
    });
    group.finish();
}

/// A synthetic lineorder row whose columns land in each encoding: sorted
/// `ORDERDATE` run-length encodes, narrow keys bit-pack, and the two
/// low-cardinality strings dictionary-encode.
fn lineorder_bench_row(i: u64, modes: &[Arc<str>], priorities: &[Arc<str>]) -> Row {
    let extended = Money::from_cents(100 + (i % 5000) as i64);
    row_from([
        Value::U64(i),
        Value::U32((i % 7) as u32 + 1),
        Value::U32((i % 2000) as u32 + 1),
        Value::U32((i % 500) as u32 + 1),
        Value::U32((i % 100) as u32 + 1),
        Value::U32(19920101 + (i / 1000) as u32),
        Value::Str(Arc::clone(&priorities[(i % 5) as usize])),
        Value::Str(Arc::clone(&priorities[0])),
        Value::U32((i % 50) as u32 + 1),
        Value::Money(extended),
        Value::Money(extended),
        Value::U32((i % 11) as u32),
        Value::Money(extended.pct(90)),
        Value::Money(extended.pct(60)),
        Value::U32((i % 9) as u32),
        Value::U32(19920131 + (i / 1000) as u32),
        Value::Str(Arc::clone(&modes[(i % 7) as usize])),
    ])
}

/// Tentpole headline: the vectorized batch kernels against the scalar
/// reference path, on the scans the redesign targets — a selective
/// dictionary predicate (compare codes, not strings), an RLE date range
/// (run-at-a-time plus zone-map pruning), and an unselective full scan
/// (late materialization only).
fn scan_kernels(c: &mut Criterion) {
    const N: u64 = 200_000;
    let modes: Vec<Arc<str>> =
        ["MAIL", "SHIP", "AIR", "TRUCK", "RAIL", "FOB", "REG AIR"].map(Arc::from).to_vec();
    let priorities: Vec<Arc<str>> =
        ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"].map(Arc::from).to_vec();
    let ct = ColumnTable::new(TableId::Lineorder);
    let rows: Vec<Row> = (0..N).map(|i| lineorder_bench_row(i, &modes, &priorities)).collect();
    for chunk in rows.chunks(4096) {
        ct.load_segment(2, chunk.iter().map(Arc::clone));
    }
    let row_db = RowDb::new();

    let spec = |filter: Predicate| QuerySpec {
        id: QueryId::Q1_1,
        fact: TableId::Lineorder,
        fact_filter: filter,
        joins: vec![],
        group_by: vec![],
        agg: AggExpr::SumMoney(lineorder::REVENUE),
    };
    // ~1.3% selectivity: one of 7 ship modes, then a narrow discount band.
    let dict_selective = spec(Predicate::and(vec![
        ColPredicate::StrEq(lineorder::SHIPMODE, "MAIL".into()),
        ColPredicate::U32Between(lineorder::DISCOUNT, 1, 2),
    ]));
    // ~25% of the sorted date column: whole segments prune via zone maps,
    // the straddling ones filter run-at-a-time.
    let rle_date = spec(Predicate::and(vec![ColPredicate::U32Between(
        lineorder::ORDERDATE,
        19920120,
        19920170,
    )]));
    let full_scan = spec(Predicate::all());

    let mut group = c.benchmark_group("scan_kernels");
    group.sample_size(20);
    for (name, spec) in
        [("dict_selective", &dict_selective), ("rle_date", &rle_date), ("full_scan", &full_scan)]
    {
        for (mode_name, mode) in
            [("scalar", ScanMode::Scalar), ("vectorized", ScanMode::Vectorized)]
        {
            group.bench_with_input(BenchmarkId::new(name, mode_name), &mode, |b, &mode| {
                let opts = QueryOpts::with_parallelism(1).scan_mode(mode);
                b.iter(|| {
                    let view = MixedView::rows(&row_db, 2)
                        .with_columnar(TableId::Lineorder, ct.snapshot(2));
                    black_box(execute_with(spec, &view, &opts))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bptree_fanout, rowstore, rowstore_vacuum, colstore, scan_kernels);
criterion_main!(benches);
