//! Criterion benchmarks: the 13 SSB queries on the row-store backend
//! (shared engine) versus the columnar backend (dual-format engine), plus
//! the freshness side-read overhead ablation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hat_engine::{DualConfig, DualEngine, EngineConfig, HtapEngine, ShdEngine, QueryOpts};
use hat_query::spec::QueryId;
use hat_query::ssb;
use hat_query::view::SnapshotView;
use hattrick::gen::{generate, ScaleFactor};
use std::hint::black_box;

const BENCH_SF: f64 = 0.005;

fn engines() -> Vec<(&'static str, Arc<dyn HtapEngine>)> {
    let data = generate(ScaleFactor(BENCH_SF), 0xBEEF);
    let shared: Arc<dyn HtapEngine> = Arc::new(ShdEngine::new(EngineConfig::default()));
    data.load_into(shared.as_ref()).unwrap();
    let dual: Arc<dyn HtapEngine> = Arc::new(DualEngine::new(DualConfig::default()));
    data.load_into(dual.as_ref()).unwrap();
    vec![("row", shared), ("columnar", dual)]
}

/// One bench per SSB query per backend: the per-query latencies behind
/// every frontier figure.
fn ssb_queries(c: &mut Criterion) {
    let engines = engines();
    let mut group = c.benchmark_group("ssb");
    group.sample_size(10);
    for id in QueryId::ALL {
        let spec = ssb::query(id);
        for (backend, engine) in &engines {
            group.bench_with_input(
                BenchmarkId::new(*backend, id.label()),
                &spec,
                |b, spec| {
                    b.iter(|| black_box(engine.query(spec, &QueryOpts::default()).unwrap()));
                },
            );
        }
    }
    group.finish();
}

/// Ablation: the cost of the freshness side-read (§4.2 claims the
/// measurement has "minimal impact"; this measures it).
fn freshness_overhead(c: &mut Criterion) {
    let data = generate(ScaleFactor(BENCH_SF), 0xBEEF);
    let engine = ShdEngine::new(EngineConfig::default());
    data.load_into(&engine).unwrap();
    let kernel = engine.kernel();
    let mut group = c.benchmark_group("freshness_overhead");
    group.sample_size(20);
    // The full query (executor attaches the side-read).
    let spec = ssb::query(QueryId::Q1_2);
    group.bench_function("q12_with_side_read", |b| {
        b.iter(|| black_box(engine.query(&spec, &QueryOpts::default()).unwrap()));
    });
    // The side-read alone.
    group.bench_function("side_read_alone", |b| {
        let ts = kernel.oracle.read_ts();
        let view = hat_query::view::MixedView::rows(&kernel.db, ts);
        b.iter(|| black_box(view.freshness_vector()));
    });
    group.finish();
}

criterion_group!(benches, ssb_queries, freshness_overhead);
criterion_main!(benches);
