//! Criterion benchmarks for the transactional path: per-transaction-type
//! latency on every engine design, lock-manager behaviour under
//! contention, and the dual-format merge-threshold ablation.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hat_common::rng::HatRng;
use hat_common::TableId;
use hat_engine::{
    DualConfig, DualEngine, DurabilityMode, EngineConfig, HtapEngine, IsoConfig,
    IsoEngine, LearnerConfig, LearnerEngine, LearnerProfile, QueryOpts, ReplicationMode,
    ShdEngine,
};
use hat_txn::LockManager;
use hattrick::gen::{generate, GeneratedData, ScaleFactor};
use hattrick::workload::{run_transaction, TxnKind, WorkloadState};
use std::hint::black_box;

const BENCH_SF: f64 = 0.003;

/// Engines with zeroed latency knobs so the bench isolates code-path cost
/// (the latency knobs themselves are measured by the figures harness).
fn engines(data: &GeneratedData) -> Vec<(&'static str, Arc<dyn HtapEngine>)> {
    let zero = EngineConfig::default().without_durability();
    let list: Vec<(&'static str, Arc<dyn HtapEngine>)> = vec![
        ("shared", Arc::new(ShdEngine::new(zero.clone()))),
        (
            "isolated",
            Arc::new(IsoEngine::new(IsoConfig {
                engine: zero,
                mode: ReplicationMode::Async,
                link_one_way: Duration::ZERO,
                replay_cost: Duration::ZERO,
                ..IsoConfig::default()
            })),
        ),
        ("dual", Arc::new(DualEngine::new(DualConfig::default()))),
        (
            "learner",
            Arc::new(LearnerEngine::new(LearnerConfig {
                profile: LearnerProfile::SingleNode,
                apply_cost: Duration::ZERO,
                ..LearnerConfig::default()
            })),
        ),
    ];
    for (_, engine) in &list {
        data.load_into(engine.as_ref()).unwrap();
    }
    list
}

/// Per-transaction-type latency on every design.
fn txn_types(c: &mut Criterion) {
    let data = generate(ScaleFactor(BENCH_SF), 0x7A);
    let engines = engines(&data);
    let mut group = c.benchmark_group("txn");
    group.sample_size(30);
    for kind in [TxnKind::NewOrder, TxnKind::Payment, TxnKind::CountOrders] {
        for (name, engine) in &engines {
            let state = WorkloadState::new(&data.profile);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), name),
                &kind,
                |b, &kind| {
                    let mut rng = HatRng::seeded(0xBE);
                    let mut txnnum = 0u64;
                    b.iter(|| {
                        txnnum += 1;
                        loop {
                            match run_transaction(
                                engine.as_ref(),
                                &data.profile,
                                &state,
                                &mut rng,
                                kind,
                                0,
                                txnnum,
                            ) {
                                Ok(ts) => break black_box(ts),
                                Err(e) if e.is_retryable() => continue,
                                Err(e) => panic!("{e}"),
                            }
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

/// Lock manager: uncontended vs contended no-wait acquisition.
fn locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks");
    group.sample_size(30);
    let lm = LockManager::new();
    group.bench_function("acquire_release_uncontended", |b| {
        let mut rid = 0u64;
        b.iter(|| {
            rid += 1;
            lm.try_lock((TableId::Customer, rid % 10_000), 1).unwrap();
            lm.unlock((TableId::Customer, rid % 10_000), 1);
        });
    });
    group.bench_function("conflict_detection", |b| {
        lm.try_lock((TableId::Supplier, 1), 42).unwrap();
        b.iter(|| black_box(lm.try_lock((TableId::Supplier, 1), 43).is_err()));
    });
    group.finish();
}

/// Ablation: dual-format merge threshold — how delta size at query time
/// trades against compaction frequency.
fn merge_threshold(c: &mut Criterion) {
    let data = generate(ScaleFactor(BENCH_SF), 0x7A);
    let mut group = c.benchmark_group("merge_threshold");
    group.sample_size(10);
    for threshold in [512usize, 4096, 32_768] {
        let engine = DualEngine::new(DualConfig {
            merge_threshold: threshold,
            merge_interval: Duration::from_millis(1),
            ..DualConfig::default()
        });
        data.load_into(&engine).unwrap();
        // Preload a delta roughly half the threshold deep.
        let state = WorkloadState::new(&data.profile);
        let mut rng = HatRng::seeded(1);
        let mut txnnum = 0;
        while engine.stats().delta_rows < threshold as u64 / 2 {
            txnnum += 1;
            let _ = run_transaction(
                &engine,
                &data.profile,
                &state,
                &mut rng,
                TxnKind::NewOrder,
                0,
                txnnum,
            );
        }
        let spec = hat_query::ssb::query(hat_query::spec::QueryId::Q2_1);
        group.bench_with_input(
            BenchmarkId::new("q21_with_half_full_delta", threshold),
            &threshold,
            |b, _| {
                b.iter(|| black_box(engine.query(&spec, &QueryOpts::default()).unwrap()));
            },
        );
    }
    group.finish();
}

/// Ablation: no-wait vs wait-die locking under a payment-heavy contended
/// mix (DESIGN.md §5).
fn lock_policy(c: &mut Criterion) {
    use hat_engine::LockPolicy;
    // Tiny customer domain -> frequent conflicts.
    let data = generate(ScaleFactor(0.0006), 0x10C);
    let mut group = c.benchmark_group("lock_policy");
    group.sample_size(10);
    for policy in [LockPolicy::NoWait, LockPolicy::WaitDie] {
        let engine = ShdEngine::new(
            EngineConfig::builder()
                .lock_policy(policy)
                .durability(DurabilityMode::Off)
                .build(),
        );
        data.load_into(&engine).unwrap();
        let engine = Arc::new(engine);
        group.bench_with_input(
            BenchmarkId::new("contended_payments_4thr", policy.label()),
            &policy,
            |b, _| {
                b.iter(|| {
                    // 4 threads × 25 payments against ~36 customers.
                    std::thread::scope(|scope| {
                        for client in 0..4u32 {
                            let engine = Arc::clone(&engine);
                            let data = &data;
                            scope.spawn(move || {
                                let state = WorkloadState::new(&data.profile);
                                let mut rng = HatRng::derive(9, client as u64);
                                let mut txnnum = 0;
                                for _ in 0..25 {
                                    txnnum += 1;
                                    loop {
                                        match run_transaction(
                                            engine.as_ref(),
                                            &data.profile,
                                            &state,
                                            &mut rng,
                                            TxnKind::Payment,
                                            client,
                                            txnnum,
                                        ) {
                                            Ok(_) => break,
                                            Err(e) if e.is_retryable() => continue,
                                            Err(e) => panic!("{e}"),
                                        }
                                    }
                                }
                            });
                        }
                    });
                    black_box(engine.stats().aborts)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, txn_types, locks, merge_threshold, lock_policy);
criterion_main!(benches);
