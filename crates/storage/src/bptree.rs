//! An in-memory B+tree built from scratch.
//!
//! Used for every index in the workspace: primary-key indexes, the
//! secondary name indexes that the Payment and Count Orders transactions
//! seek on, and the `(custkey, orderkey)` composite index that accelerates
//! per-customer order counting. The paper's "varying physical schemas"
//! experiment (Figure 6b) toggles which of these exist, and its SF100
//! discussion attributes the drop in maximum T-throughput to index
//! maintenance cost — so indexes must be real data structures with real
//! depth, not hash maps.
//!
//! Design notes:
//! * All values live in leaves; internal nodes hold separator keys and
//!   child pointers (a classic B+tree).
//! * `ORDER` is the maximum number of children of an internal node; leaves
//!   hold up to `ORDER - 1` entries. The default of 64 keeps trees shallow
//!   while exercising multi-level splits at benchmark sizes. The fanout
//!   ablation bench (`bptree_fanout`) measures 16/64/256.
//! * Deletion rebalances by borrowing from or merging with siblings, so the
//!   tree never degrades below half-full nodes.
//! * Range scans walk leaf-to-leaf through a visitor, avoiding intermediate
//!   allocation.
//!
//! The tree itself is single-writer; callers wrap it in a lock (the engines
//! use `parking_lot::RwLock` per index, which mirrors the index-latch
//! behaviour the paper's interference analysis implicates).

use std::borrow::Borrow;
use std::fmt::Debug;
use std::ops::Bound;

/// Default maximum fanout of internal nodes.
pub const DEFAULT_ORDER: usize = 64;

enum Node<K, V> {
    Internal { keys: Vec<K>, children: Vec<Node<K, V>> },
    Leaf { keys: Vec<K>, vals: Vec<V> },
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    fn len(&self) -> usize {
        match self {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
        }
    }
}

/// Result of inserting into a subtree: possibly a split.
enum InsertResult<K, V> {
    /// No structural change (value may have been replaced; the old value is
    /// returned).
    Done(Option<V>),
    /// The child split; `sep` separates it from `right`.
    Split { sep: K, right: Node<K, V> },
}

/// An ordered map from `K` to `V` with B+tree structure.
///
/// ```
/// use hat_storage::bptree::BPlusTree;
/// use std::ops::Bound;
///
/// let mut index: BPlusTree<(u32, u64), ()> = BPlusTree::new();
/// for rid in 0..100u64 {
///     index.insert((rid as u32 % 10, rid), ());
/// }
/// // Prefix scan: all rows of customer 3.
/// let mut rids = Vec::new();
/// index.range(Bound::Included(&(3, 0)), Bound::Excluded(&(4, 0)), |&(_, rid), _| {
///     rids.push(rid);
///     true
/// });
/// assert_eq!(rids.len(), 10);
/// ```
pub struct BPlusTree<K, V> {
    root: Node<K, V>,
    order: usize,
    len: usize,
}

impl<K: Ord + Clone + Debug, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Debug, V> BPlusTree<K, V> {
    /// An empty tree with the default order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// An empty tree with a custom order (`order >= 4`).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "B+tree order must be at least 4");
        BPlusTree {
            root: Node::Leaf { keys: Vec::new(), vals: Vec::new() },
            order,
            len: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key -> value`, returning the previous value if the key
    /// existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let order = self.order;
        match Self::insert_rec(&mut self.root, key, value, order) {
            InsertResult::Done(old) => {
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
            InsertResult::Split { sep, right } => {
                // Grow the tree by one level.
                let old_root = std::mem::replace(
                    &mut self.root,
                    Node::Leaf { keys: Vec::new(), vals: Vec::new() },
                );
                self.root = Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                };
                self.len += 1;
                None
            }
        }
    }

    fn insert_rec(node: &mut Node<K, V>, key: K, value: V, order: usize) -> InsertResult<K, V> {
        match node {
            Node::Leaf { keys, vals } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut vals[i], value);
                        InsertResult::Done(Some(old))
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, value);
                        if keys.len() > order - 1 {
                            // Split the leaf in half; the separator is the
                            // first key of the right half (copied up).
                            let mid = keys.len() / 2;
                            let right_keys = keys.split_off(mid);
                            let right_vals = vals.split_off(mid);
                            let sep = right_keys[0].clone();
                            InsertResult::Split {
                                sep,
                                right: Node::Leaf { keys: right_keys, vals: right_vals },
                            }
                        } else {
                            InsertResult::Done(None)
                        }
                    }
                }
            }
            Node::Internal { keys, children } => {
                // Child index: first separator greater than key.
                let idx = keys.partition_point(|k| *k <= key);
                match Self::insert_rec(&mut children[idx], key, value, order) {
                    InsertResult::Done(old) => InsertResult::Done(old),
                    InsertResult::Split { sep, right } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if children.len() > order {
                            // Split this internal node; the middle key moves
                            // up (it does not stay in either half).
                            let mid = keys.len() / 2;
                            let up = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // remove `up`
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split {
                                sep: up,
                                right: Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                },
                            }
                        } else {
                            InsertResult::Done(None)
                        }
                    }
                }
            }
        }
    }

    /// Looks up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys
                        .binary_search_by(|k| k.borrow().cmp(key))
                        .ok()
                        .map(|i| &vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.borrow() <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Whether the key exists.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Removes a key, returning its value if present.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let min_leaf = (self.order - 1) / 2;
        let min_children = self.order.div_ceil(2);
        let removed = Self::remove_rec(&mut self.root, key, min_leaf, min_children);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root that shrank to a single child.
            if let Node::Internal { children, .. } = &mut self.root {
                if children.len() == 1 {
                    let child = children.pop().expect("just checked");
                    self.root = child;
                }
            }
        }
        removed
    }

    fn remove_rec<Q>(
        node: &mut Node<K, V>,
        key: &Q,
        min_leaf: usize,
        min_children: usize,
    ) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match node {
            Node::Leaf { keys, vals } => {
                let i = keys.binary_search_by(|k| k.borrow().cmp(key)).ok()?;
                keys.remove(i);
                Some(vals.remove(i))
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.borrow() <= key);
                let removed = Self::remove_rec(&mut children[idx], key, min_leaf, min_children)?;
                // Rebalance child `idx` if it underflowed.
                let under = match &children[idx] {
                    Node::Leaf { keys, .. } => keys.len() < min_leaf,
                    Node::Internal { children, .. } => children.len() < min_children,
                };
                if under {
                    Self::rebalance_child(keys, children, idx);
                }
                Some(removed)
            }
        }
    }

    /// Restores invariants for `children[idx]` by borrowing from a sibling
    /// or merging with one.
    fn rebalance_child(keys: &mut Vec<K>, children: &mut Vec<Node<K, V>>, idx: usize) {
        // Prefer borrowing from the richer adjacent sibling.
        let left_len = if idx > 0 { children[idx - 1].len() } else { 0 };
        let right_len = if idx + 1 < children.len() { children[idx + 1].len() } else { 0 };

        if left_len >= right_len && left_len > 1 && idx > 0 {
            // Borrow the last entry/child of the left sibling.
            let (left_half, right_half) = children.split_at_mut(idx);
            let left = &mut left_half[idx - 1];
            let cur = &mut right_half[0];
            match (left, cur) {
                (
                    Node::Leaf { keys: lk, vals: lv },
                    Node::Leaf { keys: ck, vals: cv },
                ) => {
                    let k = lk.pop().expect("left sibling non-empty");
                    let v = lv.pop().expect("left sibling non-empty");
                    ck.insert(0, k.clone());
                    cv.insert(0, v);
                    keys[idx - 1] = k;
                }
                (
                    Node::Internal { keys: lk, children: lc },
                    Node::Internal { keys: ck, children: cc },
                ) => {
                    let child = lc.pop().expect("left sibling non-empty");
                    let sep = lk.pop().expect("left sibling non-empty");
                    let old_sep = std::mem::replace(&mut keys[idx - 1], sep);
                    ck.insert(0, old_sep);
                    cc.insert(0, child);
                }
                _ => unreachable!("siblings at the same level share kind"),
            }
        } else if right_len > 1 && idx + 1 < children.len() {
            // Borrow the first entry/child of the right sibling.
            let (left_half, right_half) = children.split_at_mut(idx + 1);
            let cur = &mut left_half[idx];
            let right = &mut right_half[0];
            match (cur, right) {
                (
                    Node::Leaf { keys: ck, vals: cv },
                    Node::Leaf { keys: rk, vals: rv },
                ) => {
                    let k = rk.remove(0);
                    let v = rv.remove(0);
                    ck.push(k);
                    cv.push(v);
                    keys[idx] = rk[0].clone();
                }
                (
                    Node::Internal { keys: ck, children: cc },
                    Node::Internal { keys: rk, children: rc },
                ) => {
                    let child = rc.remove(0);
                    let sep = rk.remove(0);
                    let old_sep = std::mem::replace(&mut keys[idx], sep);
                    ck.push(old_sep);
                    cc.push(child);
                }
                _ => unreachable!("siblings at the same level share kind"),
            }
        } else {
            // Merge with a sibling (both are at minimum occupancy).
            let merge_left = idx > 0;
            let (li, ri) = if merge_left { (idx - 1, idx) } else { (idx, idx + 1) };
            if ri >= children.len() {
                return; // single child; root collapse handles it
            }
            let right_node = children.remove(ri);
            let sep = keys.remove(li);
            match (&mut children[li], right_node) {
                (
                    Node::Leaf { keys: lk, vals: lv },
                    Node::Leaf { keys: mut rk, vals: mut rv },
                ) => {
                    lk.append(&mut rk);
                    lv.append(&mut rv);
                }
                (
                    Node::Internal { keys: lk, children: lc },
                    Node::Internal { keys: mut rk, children: mut rc },
                ) => {
                    lk.push(sep);
                    lk.append(&mut rk);
                    lc.append(&mut rc);
                }
                _ => unreachable!("siblings at the same level share kind"),
            }
        }
    }

    /// Visits entries with keys in `(lo, hi)` bounds in ascending order.
    /// The visitor returns `false` to stop early.
    pub fn range<F>(&self, lo: Bound<&K>, hi: Bound<&K>, mut visit: F)
    where
        F: FnMut(&K, &V) -> bool,
    {
        Self::range_rec(&self.root, lo, hi, &mut visit);
    }

    fn range_rec<F>(node: &Node<K, V>, lo: Bound<&K>, hi: Bound<&K>, visit: &mut F) -> bool
    where
        F: FnMut(&K, &V) -> bool,
    {
        let after_lo = |k: &K| match lo {
            Bound::Unbounded => true,
            Bound::Included(b) => k >= b,
            Bound::Excluded(b) => k > b,
        };
        let before_hi = |k: &K| match hi {
            Bound::Unbounded => true,
            Bound::Included(b) => k <= b,
            Bound::Excluded(b) => k < b,
        };
        match node {
            Node::Leaf { keys, vals } => {
                let start = match lo {
                    Bound::Unbounded => 0,
                    Bound::Included(b) => keys.partition_point(|k| k < b),
                    Bound::Excluded(b) => keys.partition_point(|k| k <= b),
                };
                for i in start..keys.len() {
                    if !before_hi(&keys[i]) {
                        return false;
                    }
                    debug_assert!(after_lo(&keys[i]));
                    if !visit(&keys[i], &vals[i]) {
                        return false;
                    }
                }
                true
            }
            Node::Internal { keys, children } => {
                let start = match lo {
                    Bound::Unbounded => 0,
                    Bound::Included(b) => keys.partition_point(|k| k <= b),
                    Bound::Excluded(b) => keys.partition_point(|k| k <= b),
                };
                for (i, child) in children.iter().enumerate().skip(start) {
                    // Prune subtrees entirely above the range: child i holds
                    // keys >= keys[i-1].
                    if i > 0 && !before_hi(&keys[i - 1]) {
                        return false;
                    }
                    if !Self::range_rec(child, lo, hi, visit) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Collects the values for keys in the inclusive range `[lo, hi]`.
    pub fn range_values(&self, lo: &K, hi: &K) -> Vec<V>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        self.range(Bound::Included(lo), Bound::Included(hi), |_, v| {
            out.push(v.clone());
            true
        });
        out
    }

    /// Visits every entry in ascending key order.
    pub fn for_each<F>(&self, mut visit: F)
    where
        F: FnMut(&K, &V),
    {
        self.range(Bound::Unbounded, Bound::Unbounded, |k, v| {
            visit(k, v);
            true
        });
    }

    /// Tree depth (1 for a lone leaf). Diagnostic; O(depth).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }

    /// Verifies structural invariants; panics with a description on
    /// violation. Test/diagnostic helper, O(n).
    pub fn check_invariants(&self) {
        let counted = Self::check_rec(&self.root, None, None, self.order, true);
        assert_eq!(counted, self.len, "len bookkeeping mismatch");
    }

    fn check_rec(
        node: &Node<K, V>,
        lo: Option<&K>,
        hi: Option<&K>,
        order: usize,
        is_root: bool,
    ) -> usize {
        match node {
            Node::Leaf { keys, vals } => {
                assert_eq!(keys.len(), vals.len(), "leaf key/val arity");
                assert!(keys.len() < order, "leaf overflow");
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
                if let Some(lo) = lo {
                    assert!(keys.iter().all(|k| k >= lo), "leaf key below bound");
                }
                if let Some(hi) = hi {
                    assert!(keys.iter().all(|k| k < hi), "leaf key above bound");
                }
                keys.len()
            }
            Node::Internal { keys, children } => {
                assert!(!is_root || children.len() >= 2, "root internal needs 2+");
                assert_eq!(keys.len() + 1, children.len(), "separator count");
                assert!(children.len() <= order, "internal overflow");
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "separators sorted");
                let mut total = 0;
                for (i, child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    // All children at one level share kind.
                    assert_eq!(child.is_leaf(), children[0].is_leaf());
                    total += Self::check_rec(child, clo, chi, order, false);
                }
                total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<u64, u64> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&0), None);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::with_order(4);
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.insert(k, k * 10), None);
        }
        assert_eq!(t.len(), 5);
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.get(&k), Some(&(k * 10)));
        }
        assert_eq!(t.get(&2), None);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(1u64, "a"), None);
        assert_eq!(t.insert(1u64, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let mut t = BPlusTree::with_order(4);
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.depth() > 2, "order-4 tree with 1000 keys must be deep");
        t.check_invariants();
        for k in 0..1000u64 {
            assert_eq!(t.get(&k), Some(&k));
        }
    }

    #[test]
    fn reverse_inserts() {
        let mut t = BPlusTree::with_order(5);
        for k in (0..500u64).rev() {
            t.insert(k, k + 1);
        }
        t.check_invariants();
        for k in 0..500u64 {
            assert_eq!(t.get(&k), Some(&(k + 1)));
        }
    }

    #[test]
    fn range_scan_inclusive() {
        let mut t = BPlusTree::with_order(4);
        for k in (0..100u64).step_by(2) {
            t.insert(k, k);
        }
        let vals = t.range_values(&10, &20);
        assert_eq!(vals, vec![10, 12, 14, 16, 18, 20]);
        // Bounds that fall between keys.
        let vals = t.range_values(&11, &19);
        assert_eq!(vals, vec![12, 14, 16, 18]);
        // Empty range.
        assert!(t.range_values(&51, &51).is_empty());
    }

    #[test]
    fn range_scan_early_stop() {
        let mut t = BPlusTree::with_order(4);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        let mut seen = Vec::new();
        t.range(Bound::Included(&10), Bound::Unbounded, |k, _| {
            seen.push(*k);
            seen.len() < 5
        });
        assert_eq!(seen, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn range_exclusive_bounds() {
        let mut t = BPlusTree::with_order(4);
        for k in 0..20u64 {
            t.insert(k, ());
        }
        let mut seen = Vec::new();
        t.range(Bound::Excluded(&5), Bound::Excluded(&9), |k, _| {
            seen.push(*k);
            true
        });
        assert_eq!(seen, vec![6, 7, 8]);
    }

    #[test]
    fn composite_keys_prefix_scan() {
        // The lineorder-by-customer index uses (custkey, orderkey) keys;
        // Count Orders scans the prefix.
        let mut t: BPlusTree<(u32, u64), u64> = BPlusTree::new();
        for cust in 1..=10u32 {
            for ord in 0..cust as u64 {
                t.insert((cust, ord), ord);
            }
        }
        let mut count = 0;
        t.range(
            Bound::Included(&(7, 0)),
            Bound::Excluded(&(8, 0)),
            |_, _| {
                count += 1;
                true
            },
        );
        assert_eq!(count, 7);
    }

    #[test]
    fn string_keys() {
        let mut t: BPlusTree<String, u32> = BPlusTree::with_order(4);
        for (i, name) in ["delta", "alpha", "echo", "bravo", "charlie"]
            .iter()
            .enumerate()
        {
            t.insert(name.to_string(), i as u32);
        }
        assert_eq!(t.get("alpha"), Some(&1));
        assert_eq!(t.get("echo"), Some(&2));
        assert_eq!(t.get("zulu"), None);
        let mut order = Vec::new();
        t.for_each(|k, _| order.push(k.clone()));
        assert_eq!(order, ["alpha", "bravo", "charlie", "delta", "echo"]);
    }

    #[test]
    fn remove_simple() {
        let mut t = BPlusTree::with_order(4);
        for k in 0..50u64 {
            t.insert(k, k);
        }
        for k in (0..50u64).step_by(2) {
            assert_eq!(t.remove(&k), Some(k));
        }
        assert_eq!(t.len(), 25);
        t.check_invariants();
        for k in 0..50u64 {
            if k % 2 == 0 {
                assert_eq!(t.get(&k), None);
            } else {
                assert_eq!(t.get(&k), Some(&k));
            }
        }
        assert_eq!(t.remove(&2), None, "double remove");
    }

    #[test]
    fn remove_everything_collapses_root() {
        let mut t = BPlusTree::with_order(4);
        for k in 0..200u64 {
            t.insert(k, k);
        }
        for k in 0..200u64 {
            assert_eq!(t.remove(&k), Some(k));
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn randomized_against_btreemap() {
        let mut rng = SmallRng::seed_from_u64(0xB17E5);
        let mut model = BTreeMap::new();
        let mut tree = BPlusTree::with_order(6);
        for _ in 0..20_000 {
            let k: u16 = rng.gen_range(0..2048);
            match rng.gen_range(0..10) {
                0..=5 => {
                    let v: u32 = rng.gen();
                    assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                6..=8 => {
                    assert_eq!(tree.remove(&k), model.remove(&k));
                }
                _ => {
                    assert_eq!(tree.get(&k), model.get(&k));
                }
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), model.len());
        let mut pairs = Vec::new();
        tree.for_each(|k, v| pairs.push((*k, *v)));
        let model_pairs: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, model_pairs);
    }

    #[test]
    fn random_range_queries_match_model() {
        let mut rng = SmallRng::seed_from_u64(0xCAFE);
        let mut model = BTreeMap::new();
        let mut tree = BPlusTree::with_order(8);
        for _ in 0..3000 {
            let k: u32 = rng.gen_range(0..10_000);
            model.insert(k, k);
            tree.insert(k, k);
        }
        for _ in 0..200 {
            let a: u32 = rng.gen_range(0..10_000);
            let b: u32 = rng.gen_range(0..10_000);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let got = tree.range_values(&lo, &hi);
            let want: Vec<u32> = model.range(lo..=hi).map(|(_, v)| *v).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    #[should_panic(expected = "order must be at least 4")]
    fn tiny_order_rejected() {
        let _ = BPlusTree::<u64, u64>::with_order(3);
    }
}
