//! A columnar store with compression and an in-row-format delta.
//!
//! The hybrid engines (System-X-like and TiDB-like) keep an additional
//! column-format copy of the fact data (§2.2, "hybrid design" / TiFlash).
//! This module provides:
//!
//! * typed, compressed column vectors — dictionary encoding for strings,
//!   run-length encoding for low-cardinality integers ([`ColumnData`]),
//! * immutable sealed [`Segment`]s carrying a commit-timestamp column so
//!   snapshot reads can filter exactly,
//! * a [`DeltaStore`] of recently committed rows still in row format, and
//! * [`ColumnTable`], which combines both and supports atomic compaction
//!   of a delta prefix into a new sealed segment.
//!
//! A reader takes a [`ColumnSnapshot`] — cheap clones of the sealed segment
//! list plus the visible delta prefix — and scans without blocking writers
//! beyond a short lock acquisition.

use std::collections::HashMap;
use std::sync::Arc;

use hat_common::value::{table_column_types, ColumnType};
use hat_common::{Money, Row, TableId};
use hat_txn::Ts;
use parking_lot::RwLock;

/// A run-length-encoded vector of `u32`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleU32 {
    /// `(value, cumulative_end)` pairs; `cumulative_end` is exclusive.
    runs: Vec<(u32, u32)>,
    len: u32,
}

impl RleU32 {
    /// Encodes a slice.
    pub fn encode(values: &[u32]) -> Self {
        let mut runs = Vec::new();
        let mut iter = values.iter();
        if let Some(&first) = iter.next() {
            let mut current = first;
            let mut end: u32 = 1;
            for &v in iter {
                if v == current {
                    end += 1;
                } else {
                    runs.push((current, end));
                    current = v;
                    end += 1;
                }
            }
            runs.push((current, end));
        }
        RleU32 { runs, len: values.len() as u32 }
    }

    /// Number of logical elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (compression diagnostic).
    #[inline]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Random access by logical index.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        debug_assert!(idx < self.len());
        let i = self.runs.partition_point(|&(_, end)| end as usize <= idx);
        self.runs[i].0
    }

    /// Iterates all logical values in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let mut prev_end = 0u32;
        self.runs.iter().flat_map(move |&(v, end)| {
            let count = end - prev_end;
            prev_end = end;
            std::iter::repeat_n(v, count as usize)
        })
    }

    /// Iterates the runs overlapping logical rows `[lo, hi)` as
    /// `(value, start, end)` triples clipped to that window. This is the
    /// run-at-a-time entry point for scan kernels: one predicate
    /// evaluation per run instead of one per row.
    pub fn runs_in(&self, lo: usize, hi: usize) -> impl Iterator<Item = (u32, usize, usize)> + '_ {
        let first = self.runs.partition_point(|&(_, end)| end as usize <= lo);
        let mut start = if first == 0 { 0 } else { self.runs[first - 1].1 as usize };
        self.runs[first..].iter().map_while(move |&(v, end)| {
            if start.max(lo) >= hi {
                return None;
            }
            let clipped = (v, start.max(lo), (end as usize).min(hi));
            start = end as usize;
            Some(clipped)
        })
    }

    /// A sequential-access cursor positioned at the first run.
    pub fn cursor(&self) -> RleCursor {
        RleCursor { run: 0 }
    }
}

/// A cached run position for sequential access into an [`RleU32`].
///
/// `RleU32::get` pays a binary search per call, which is pathological for
/// the executor's late-materialization loops that walk a selection vector
/// in ascending order. The cursor remembers the last run: in-run and
/// next-run accesses are O(1), forward skips advance linearly, and a
/// backward jump falls back to the binary search. Any access pattern is
/// therefore correct; monotone patterns are fast.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCursor {
    run: usize,
}

impl RleCursor {
    /// The value at logical index `idx`, updating the cached position.
    #[inline]
    pub fn value_at(&mut self, rle: &RleU32, idx: usize) -> u32 {
        debug_assert!(idx < rle.len());
        let runs = &rle.runs;
        let run_start =
            |i: usize| if i == 0 { 0 } else { runs[i - 1].1 as usize };
        if self.run >= runs.len() || idx < run_start(self.run) {
            // Backward jump (or stale cursor): reseek.
            self.run = runs.partition_point(|&(_, end)| end as usize <= idx);
        } else {
            // Forward: advance run by run. Amortized O(1) over a monotone
            // walk — each run is stepped past at most once.
            while idx >= runs[self.run].1 as usize {
                self.run += 1;
            }
        }
        runs[self.run].0
    }
}

/// A bit-packed vector of `u32`: every value stored in `bits` bits,
/// little-endian within a `u64` word stream. Chosen for narrow columns
/// (small maxima) where neither runs nor a dictionary help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedU32 {
    bits: u32,
    len: u32,
    words: Vec<u64>,
}

impl PackedU32 {
    /// Packs `values` at the smallest width that fits their maximum
    /// (minimum 1 bit; 32 for a maximum with the top bit set).
    pub fn encode(values: &[u32]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        let bits = (32 - max.leading_zeros()).max(1);
        let total_bits = values.len() * bits as usize;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        for (i, &v) in values.iter().enumerate() {
            let off = i * bits as usize;
            let (word, shift) = (off / 64, (off % 64) as u32);
            words[word] |= (v as u64) << shift;
            if shift + bits > 64 {
                words[word + 1] |= (v as u64) >> (64 - shift);
            }
        }
        PackedU32 { bits, len: values.len() as u32, words }
    }

    /// Number of logical elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per value.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Random access by logical index.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        debug_assert!(idx < self.len());
        let off = idx * self.bits as usize;
        let (word, shift) = (off / 64, (off % 64) as u32);
        let mut v = self.words[word] >> shift;
        if shift + self.bits > 64 {
            v |= self.words[word + 1] << (64 - shift);
        }
        let mask = if self.bits == 32 { u32::MAX as u64 } else { (1u64 << self.bits) - 1 };
        (v & mask) as u32
    }

    /// Iterates all logical values in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Packed size in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A dictionary-encoded string column.
#[derive(Debug, Clone)]
pub struct DictColumn {
    dict: Vec<Arc<str>>,
    codes: Vec<u32>,
}

impl DictColumn {
    /// Encodes a sequence of strings. Codes are assigned in first-seen
    /// order, so encoding is deterministic for a given input sequence.
    pub fn encode<'a, I: IntoIterator<Item = &'a Arc<str>>>(values: I) -> Self {
        // The build map keys on `Arc<str>` clones of the dictionary
        // entries; lookups borrow as `&str`, so no per-value allocation.
        let mut map: HashMap<Arc<str>, u32> = HashMap::new();
        let mut dict: Vec<Arc<str>> = Vec::new();
        let mut codes = Vec::new();
        for v in values {
            let code = match map.get(v.as_ref()) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(Arc::clone(v));
                    map.insert(Arc::clone(v), c);
                    c
                }
            };
            codes.push(code);
        }
        DictColumn { dict, codes }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Distinct-value count.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// The string at `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> &str {
        &self.dict[self.codes[idx] as usize]
    }

    /// The `Arc<str>` at `idx` (cheap clone for group keys).
    #[inline]
    pub fn get_arc(&self, idx: usize) -> &Arc<str> {
        &self.dict[self.codes[idx] as usize]
    }

    /// The dictionary code at `idx`.
    #[inline]
    pub fn code(&self, idx: usize) -> u32 {
        self.codes[idx]
    }

    /// Resolves a string to its code, if present. Linear scan — dicts are
    /// small and this runs once per predicate per segment, not per row.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.dict.iter().position(|s| s.as_ref() == value).map(|i| i as u32)
    }

    /// The dictionary entries, indexed by code. Scan kernels evaluate a
    /// string predicate once per entry here, then compare codes per row.
    #[inline]
    pub fn entries(&self) -> &[Arc<str>] {
        &self.dict
    }

    /// The code vector (kernel fast path: compare codes, never strings).
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }
}

/// Fraction of distinct runs below which a `u32` column is RLE-encoded.
const RLE_THRESHOLD: f64 = 0.5;

/// Bit width above which bit-packing a `u32` column is not worth the
/// shift/mask on access (packing at 30+ bits saves almost nothing).
const PACK_MAX_BITS: u32 = 28;

/// One typed, possibly compressed column vector.
#[derive(Debug, Clone)]
pub enum ColumnData {
    U64(Vec<u64>),
    U32(Vec<u32>),
    U32Rle(RleU32),
    U32Packed(PackedU32),
    Money(Vec<i64>),
    Str(DictColumn),
    Bool(Vec<bool>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::U64(v) => v.len(),
            ColumnData::U32(v) => v.len(),
            ColumnData::U32Rle(v) => v.len(),
            ColumnData::U32Packed(v) => v.len(),
            ColumnData::Money(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `u64` accessor (also widens `u32` variants).
    #[inline]
    pub fn u64_at(&self, idx: usize) -> u64 {
        match self {
            ColumnData::U64(v) => v[idx],
            ColumnData::U32(v) => v[idx] as u64,
            ColumnData::U32Rle(v) => v.get(idx) as u64,
            ColumnData::U32Packed(v) => v.get(idx) as u64,
            _ => panic!("u64_at on non-integer column"),
        }
    }

    /// `u32` accessor.
    #[inline]
    pub fn u32_at(&self, idx: usize) -> u32 {
        match self {
            ColumnData::U32(v) => v[idx],
            ColumnData::U32Rle(v) => v.get(idx),
            ColumnData::U32Packed(v) => v.get(idx),
            _ => panic!("u32_at on non-u32 column"),
        }
    }

    /// Money accessor.
    #[inline]
    pub fn money_at(&self, idx: usize) -> Money {
        match self {
            ColumnData::Money(v) => Money::from_cents(v[idx]),
            _ => panic!("money_at on non-money column"),
        }
    }

    /// String accessor.
    #[inline]
    pub fn str_at(&self, idx: usize) -> &str {
        match self {
            ColumnData::Str(d) => d.get(idx),
            _ => panic!("str_at on non-string column"),
        }
    }

    /// `Arc<str>` accessor.
    #[inline]
    pub fn arc_str_at(&self, idx: usize) -> &Arc<str> {
        match self {
            ColumnData::Str(d) => d.get_arc(idx),
            _ => panic!("arc_str_at on non-string column"),
        }
    }

    /// Bool accessor.
    #[inline]
    pub fn bool_at(&self, idx: usize) -> bool {
        match self {
            ColumnData::Bool(v) => v[idx],
            _ => panic!("bool_at on non-bool column"),
        }
    }

    /// Approximate compressed size in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            ColumnData::U64(v) => v.len() * 8,
            ColumnData::U32(v) => v.len() * 4,
            ColumnData::U32Rle(v) => v.run_count() * 8,
            ColumnData::U32Packed(v) => v.packed_bytes(),
            ColumnData::Money(v) => v.len() * 8,
            ColumnData::Str(d) => {
                d.codes.len() * 4 + d.dict.iter().map(|s| s.len()).sum::<usize>()
            }
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// Size the column would occupy fully decoded (plain vectors; strings
    /// at their byte length). `approx_bytes / decoded_bytes` is the
    /// compression ratio the telemetry gauges report.
    pub fn decoded_bytes(&self) -> usize {
        match self {
            ColumnData::U64(v) => v.len() * 8,
            ColumnData::U32(v) => v.len() * 4,
            ColumnData::U32Rle(v) => v.len() * 4,
            ColumnData::U32Packed(v) => v.len() * 4,
            ColumnData::Money(v) => v.len() * 8,
            ColumnData::Str(d) => {
                d.codes.iter().map(|&c| d.dict[c as usize].len()).sum::<usize>()
            }
            ColumnData::Bool(v) => v.len(),
        }
    }
}

/// An immutable sealed block of columnar rows.
#[derive(Debug)]
pub struct Segment {
    /// Commit timestamp of each row, ascending.
    tss: Vec<Ts>,
    cols: Vec<ColumnData>,
    /// Zone map: per-column `(min, max)` over all rows, for `u32` columns
    /// only (`None` for other types). Covers the whole segment, so it is a
    /// conservative superset of any visible prefix — safe for pruning.
    u32_minmax: Vec<Option<(u32, u32)>>,
    /// Fully-decoded size in bytes, cached at build (the `Str` term is
    /// O(rows) to recompute).
    decoded_bytes: usize,
}

impl Segment {
    /// Number of rows.
    #[inline]
    pub fn row_count(&self) -> usize {
        self.tss.len()
    }

    /// Commit timestamp of row `idx`.
    #[inline]
    pub fn ts_at(&self, idx: usize) -> Ts {
        self.tss[idx]
    }

    /// Highest commit timestamp in the segment.
    pub fn max_ts(&self) -> Ts {
        self.tss.last().copied().unwrap_or(0)
    }

    /// Number of rows visible at snapshot `ts` — a prefix, because rows are
    /// sealed in commit order.
    pub fn visible_prefix(&self, ts: Ts) -> usize {
        self.tss.partition_point(|&t| t <= ts)
    }

    /// The column at `col`.
    #[inline]
    pub fn col(&self, col: usize) -> &ColumnData {
        &self.cols[col]
    }

    /// Approximate compressed size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.tss.len() * 8 + self.cols.iter().map(|c| c.approx_bytes()).sum::<usize>()
    }

    /// Size the segment would occupy with every column fully decoded
    /// (same ts-column term as [`Segment::approx_bytes`]).
    pub fn decoded_bytes(&self) -> usize {
        self.tss.len() * 8 + self.decoded_bytes
    }

    /// Zone-map lookup: the `(min, max)` of a `u32` column over *all* rows
    /// in the segment. `None` for non-u32 columns and empty segments. The
    /// range covers rows beyond any visible prefix too, so a scan that
    /// skips a segment because this range misses its predicate can never
    /// skip a visible matching row.
    #[inline]
    pub fn u32_minmax(&self, col: usize) -> Option<(u32, u32)> {
        self.u32_minmax.get(col).copied().flatten()
    }
}

/// Builds a sealed [`Segment`] from row-format input, choosing an encoding
/// per column.
pub struct SegmentBuilder {
    table: TableId,
    tss: Vec<Ts>,
    rows: Vec<Row>,
    /// When false, integer/string compression is skipped (ablation knob).
    compress: bool,
}

impl SegmentBuilder {
    /// A builder for `table` with compression enabled.
    pub fn new(table: TableId) -> Self {
        SegmentBuilder { table, tss: Vec::new(), rows: Vec::new(), compress: true }
    }

    /// Disables dictionary/RLE compression (used by the compression
    /// ablation bench).
    pub fn without_compression(mut self) -> Self {
        self.compress = false;
        self
    }

    /// Appends one committed row. Rows must arrive in commit-ts order.
    pub fn push(&mut self, ts: Ts, row: Row) {
        debug_assert!(self.tss.last().is_none_or(|&last| last <= ts));
        self.tss.push(ts);
        self.rows.push(row);
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Seals the buffered rows into a segment.
    pub fn build(self) -> Segment {
        let types = table_column_types(self.table);
        let n = self.rows.len();
        let mut cols = Vec::with_capacity(types.len());
        let mut u32_minmax = Vec::with_capacity(types.len());
        for (ci, ty) in types.iter().enumerate() {
            let mut minmax = None;
            let col = match ty {
                ColumnType::U64 => ColumnData::U64(
                    self.rows.iter().map(|r| r[ci].as_u64().expect("typed")).collect(),
                ),
                ColumnType::U32 => {
                    let vals: Vec<u32> =
                        self.rows.iter().map(|r| r[ci].as_u32().expect("typed")).collect();
                    minmax = vals
                        .iter()
                        .fold(None, |acc: Option<(u32, u32)>, &v| match acc {
                            None => Some((v, v)),
                            Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
                        });
                    if self.compress && n > 16 {
                        let rle = RleU32::encode(&vals);
                        if (rle.run_count() as f64) < RLE_THRESHOLD * n as f64 {
                            ColumnData::U32Rle(rle)
                        } else {
                            // No useful runs: bit-pack when the value
                            // domain is narrow enough to pay off.
                            let packed = PackedU32::encode(&vals);
                            if packed.bits() <= PACK_MAX_BITS {
                                ColumnData::U32Packed(packed)
                            } else {
                                ColumnData::U32(vals)
                            }
                        }
                    } else {
                        ColumnData::U32(vals)
                    }
                }
                ColumnType::Money => ColumnData::Money(
                    self.rows
                        .iter()
                        .map(|r| r[ci].as_money().expect("typed").cents())
                        .collect(),
                ),
                ColumnType::Str => {
                    let arcs: Vec<&Arc<str>> = self
                        .rows
                        .iter()
                        .map(|r| match &r[ci] {
                            hat_common::Value::Str(s) => s,
                            other => panic!("expected str, got {}", other.type_name()),
                        })
                        .collect();
                    ColumnData::Str(DictColumn::encode(arcs))
                }
                ColumnType::Bool => ColumnData::Bool(
                    self.rows.iter().map(|r| r[ci].as_bool().expect("typed")).collect(),
                ),
            };
            cols.push(col);
            u32_minmax.push(minmax);
        }
        let decoded_bytes = cols.iter().map(|c| c.decoded_bytes()).sum();
        Segment { tss: self.tss, cols, u32_minmax, decoded_bytes }
    }
}

/// The row-format tail of recently committed rows not yet sealed.
pub type DeltaStore = Vec<(Ts, Row)>;

struct ColInner {
    segments: Vec<Arc<Segment>>,
    delta: DeltaStore,
}

/// A column-format table copy: sealed segments plus a delta tail.
pub struct ColumnTable {
    table: TableId,
    inner: RwLock<ColInner>,
}

impl ColumnTable {
    /// An empty columnar copy of `table`.
    pub fn new(table: TableId) -> Self {
        ColumnTable {
            table,
            inner: RwLock::new(ColInner { segments: Vec::new(), delta: Vec::new() }),
        }
    }

    /// The table this copy mirrors.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Appends a committed row to the delta. Rows must arrive in commit-ts
    /// order (the engines append during commit installation, which the
    /// timestamp oracle serializes).
    pub fn append_delta(&self, ts: Ts, row: Row) {
        let mut inner = self.inner.write();
        debug_assert!(inner.delta.last().is_none_or(|(last, _)| *last <= ts));
        inner.delta.push((ts, row));
    }

    /// Bulk-loads `rows` as a single sealed segment committed at `ts`.
    pub fn load_segment(&self, ts: Ts, rows: impl IntoIterator<Item = Row>) {
        let mut builder = SegmentBuilder::new(self.table);
        for row in rows {
            builder.push(ts, row);
        }
        if builder.is_empty() {
            return;
        }
        let seg = Arc::new(builder.build());
        self.inner.write().segments.push(seg);
    }

    /// Current delta length (compaction trigger input).
    pub fn delta_len(&self) -> usize {
        self.inner.read().delta.len()
    }

    /// Seals every delta row with `ts <= upto` into a new segment and
    /// removes it from the delta, atomically with respect to snapshots.
    /// Returns the number of rows sealed.
    pub fn compact(&self, upto: Ts) -> usize {
        // Build outside the write lock from a snapshot of the prefix, then
        // swap under the lock. The delta prefix is immutable (append-only),
        // so the rebuild races with nothing.
        let prefix: Vec<(Ts, Row)> = {
            let inner = self.inner.read();
            let n = inner.delta.partition_point(|(t, _)| *t <= upto);
            inner.delta[..n].to_vec()
        };
        if prefix.is_empty() {
            return 0;
        }
        let mut builder = SegmentBuilder::new(self.table);
        for (ts, row) in &prefix {
            builder.push(*ts, Arc::clone(row));
        }
        let seg = Arc::new(builder.build());
        let mut inner = self.inner.write();
        inner.delta.drain(..prefix.len());
        inner.segments.push(seg);
        prefix.len()
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// Benchmark reset: keeps only the first `n` sealed segments (the ones
    /// built at load time) and clears the delta. Callers must guarantee no
    /// concurrent writers.
    pub fn reset_keep_segments(&self, n: usize) {
        let mut inner = self.inner.write();
        inner.segments.truncate(n);
        inner.delta.clear();
    }

    /// Takes a consistent snapshot for reading at timestamp `ts`.
    pub fn snapshot(&self, ts: Ts) -> ColumnSnapshot {
        let inner = self.inner.read();
        let delta_visible = inner.delta.partition_point(|(t, _)| *t <= ts);
        ColumnSnapshot {
            ts,
            segments: inner.segments.clone(),
            delta: inner.delta[..delta_visible].to_vec(),
        }
    }

    /// Approximate compressed size in bytes (segments only).
    pub fn approx_bytes(&self) -> usize {
        self.inner.read().segments.iter().map(|s| s.approx_bytes()).sum()
    }

    /// Size the sealed segments would occupy fully decoded (compression
    /// ratio denominator for the `colstore.*` gauges).
    pub fn decoded_bytes_equiv(&self) -> usize {
        self.inner.read().segments.iter().map(|s| s.decoded_bytes()).sum()
    }
}

/// A consistent columnar view at one timestamp.
pub struct ColumnSnapshot {
    ts: Ts,
    segments: Vec<Arc<Segment>>,
    delta: Vec<(Ts, Row)>,
}

impl ColumnSnapshot {
    /// The snapshot timestamp.
    pub fn ts(&self) -> Ts {
        self.ts
    }

    /// Sealed segments (scan the visible prefix of each).
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Visible delta rows in commit order.
    pub fn delta(&self) -> &[(Ts, Row)] {
        &self.delta
    }

    /// Total visible row count.
    pub fn visible_rows(&self) -> usize {
        self.segments.iter().map(|s| s.visible_prefix(self.ts)).sum::<usize>()
            + self.delta.len()
    }
}

/// A columnar copy of an *update-only* table (the dimensions).
///
/// Dimension tables never grow during the benchmark (§5.1) but Payment
/// rewrites `C_PAYMENTCNT` and `S_YTD`. A `DimColumnCopy` keeps one sealed
/// segment (row position == row id, by load order) plus an update log;
/// readers take the segment and an overlay map of the updates visible at
/// their snapshot — merge-on-read for updates, the dual of the insert
/// delta. [`DimColumnCopy::fold`] rebuilds the segment from a log prefix,
/// like a delta-merge.
pub struct DimColumnCopy {
    table: TableId,
    inner: RwLock<DimInner>,
}

struct DimInner {
    /// The segment as originally loaded (for benchmark reset).
    loaded: Option<Arc<Segment>>,
    segment: Option<Arc<Segment>>,
    /// `(commit ts, row id, new row)` in commit order.
    updates: Vec<(Ts, u64, Row)>,
}

impl DimColumnCopy {
    /// An empty copy of `table`.
    pub fn new(table: TableId) -> Self {
        DimColumnCopy {
            table,
            inner: RwLock::new(DimInner { loaded: None, segment: None, updates: Vec::new() }),
        }
    }

    /// The mirrored table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Seals the loaded rows (in row-id order) into the base segment.
    pub fn load(&self, ts: Ts, rows: impl IntoIterator<Item = Row>) {
        let mut builder = SegmentBuilder::new(self.table);
        for row in rows {
            builder.push(ts, row);
        }
        let seg = Arc::new(builder.build());
        let mut inner = self.inner.write();
        inner.loaded = Some(Arc::clone(&seg));
        inner.segment = Some(seg);
        inner.updates.clear();
    }

    /// Records a committed update of row `rid`. Must arrive in ts order.
    pub fn append_update(&self, ts: Ts, rid: u64, row: Row) {
        let mut inner = self.inner.write();
        debug_assert!(inner.updates.last().is_none_or(|(t, _, _)| *t <= ts));
        inner.updates.push((ts, rid, row));
    }

    /// Pending (unfolded) updates.
    pub fn update_len(&self) -> usize {
        self.inner.read().updates.len()
    }

    /// Rebuilds the segment with every update at or before `upto` applied,
    /// and drops that log prefix. Returns the number of updates folded.
    pub fn fold(&self, upto: Ts) -> usize {
        let (segment, prefix) = {
            let inner = self.inner.read();
            let Some(seg) = inner.segment.clone() else { return 0 };
            let n = inner.updates.partition_point(|(t, _, _)| *t <= upto);
            if n == 0 {
                return 0;
            }
            (seg, inner.updates[..n].to_vec())
        };
        // Materialize rows, apply updates, re-seal. Row count is dim-sized
        // (thousands), so this is a cheap background operation.
        let mut rows: Vec<Row> = (0..segment.row_count())
            .map(|i| materialize_row(self.table, &segment, i))
            .collect();
        let mut max_ts = segment.max_ts();
        for (ts, rid, row) in &prefix {
            rows[*rid as usize] = Arc::clone(row);
            max_ts = max_ts.max(*ts);
        }
        let mut builder = SegmentBuilder::new(self.table);
        for row in rows {
            builder.push(max_ts, row);
        }
        let new_seg = Arc::new(builder.build());
        let mut inner = self.inner.write();
        inner.updates.drain(..prefix.len());
        inner.segment = Some(new_seg);
        prefix.len()
    }

    /// Benchmark reset: restore the loaded segment, drop all updates.
    pub fn reset(&self) {
        let mut inner = self.inner.write();
        inner.segment = inner.loaded.clone();
        inner.updates.clear();
    }

    /// A consistent snapshot at `ts`: the base segment and the overlay of
    /// visible updates (last write per row wins).
    pub fn snapshot(&self, ts: Ts) -> DimSnapshot {
        let inner = self.inner.read();
        let visible = inner.updates.partition_point(|(t, _, _)| *t <= ts);
        let mut overlay = HashMap::new();
        for (_, rid, row) in &inner.updates[..visible] {
            overlay.insert(*rid, Arc::clone(row));
        }
        DimSnapshot {
            ts,
            segment: inner.segment.clone(),
            overlay,
        }
    }
}

/// Converts one columnar row back to row format (dim fold path and the
/// scalar fallback batch adapter in the query layer).
pub fn materialize_row(table: TableId, seg: &Segment, idx: usize) -> Row {
    use hat_common::Value;
    let types = table_column_types(table);
    let values: Vec<Value> = types
        .iter()
        .enumerate()
        .map(|(ci, ty)| match ty {
            ColumnType::U64 => Value::U64(seg.col(ci).u64_at(idx)),
            ColumnType::U32 => Value::U32(seg.col(ci).u32_at(idx)),
            ColumnType::Money => Value::Money(seg.col(ci).money_at(idx)),
            ColumnType::Str => Value::Str(Arc::clone(seg.col(ci).arc_str_at(idx))),
            ColumnType::Bool => Value::Bool(seg.col(ci).bool_at(idx)),
        })
        .collect();
    values.into()
}

/// A dimension snapshot: sealed columns plus an update overlay.
pub struct DimSnapshot {
    ts: Ts,
    segment: Option<Arc<Segment>>,
    overlay: HashMap<u64, Row>,
}

impl DimSnapshot {
    /// The snapshot timestamp.
    pub fn ts(&self) -> Ts {
        self.ts
    }

    /// The sealed segment, if loaded.
    pub fn segment(&self) -> Option<&Arc<Segment>> {
        self.segment.as_ref()
    }

    /// The update overlay: row id -> replacement row.
    pub fn overlay(&self) -> &HashMap<u64, Row> {
        &self.overlay
    }

    /// Number of visible rows.
    pub fn visible_rows(&self) -> usize {
        self.segment.as_ref().map_or(0, |s| s.row_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    #[test]
    fn rle_roundtrip() {
        let data = vec![1, 1, 1, 2, 2, 3, 3, 3, 3, 1];
        let rle = RleU32::encode(&data);
        assert_eq!(rle.len(), data.len());
        assert_eq!(rle.run_count(), 4);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(rle.get(i), v, "index {i}");
        }
        assert_eq!(rle.iter().collect::<Vec<_>>(), data);
    }

    #[test]
    fn rle_empty_and_single() {
        let rle = RleU32::encode(&[]);
        assert!(rle.is_empty());
        assert_eq!(rle.iter().count(), 0);
        let rle = RleU32::encode(&[42]);
        assert_eq!(rle.get(0), 42);
        assert_eq!(rle.len(), 1);
    }

    #[test]
    fn dict_roundtrip() {
        let strs: Vec<Arc<str>> =
            ["asia", "europe", "asia", "america", "asia"].iter().map(|s| Arc::from(*s)).collect();
        let dict = DictColumn::encode(strs.iter());
        assert_eq!(dict.len(), 5);
        assert_eq!(dict.cardinality(), 3);
        assert_eq!(dict.get(0), "asia");
        assert_eq!(dict.get(3), "america");
        assert_eq!(dict.code(0), dict.code(2));
        assert_eq!(dict.code_of("europe"), Some(dict.code(1)));
        assert_eq!(dict.code_of("antarctica"), None);
    }

    fn history_row(ok: u64, ck: u32, cents: i64) -> Row {
        row_from([
            Value::U64(ok),
            Value::U32(ck),
            Value::Money(Money::from_cents(cents)),
        ])
    }

    #[test]
    fn segment_builder_types_and_access() {
        let mut b = SegmentBuilder::new(TableId::History);
        for i in 0..100u64 {
            b.push(i + 2, history_row(i, (i % 5) as u32, i as i64 * 10));
        }
        let seg = b.build();
        assert_eq!(seg.row_count(), 100);
        assert_eq!(seg.col(0).u64_at(7), 7);
        assert_eq!(seg.col(1).u32_at(7), 2);
        assert_eq!(seg.col(2).money_at(7).cents(), 70);
        assert_eq!(seg.max_ts(), 101);
        // ts column filtering.
        assert_eq!(seg.visible_prefix(51), 50);
        assert_eq!(seg.visible_prefix(1), 0);
        assert_eq!(seg.visible_prefix(u64::MAX), 100);
    }

    #[test]
    fn zone_map_tracks_u32_columns_only() {
        let mut b = SegmentBuilder::new(TableId::History);
        for i in 0..100u64 {
            b.push(2, history_row(i, 300 + (i % 5) as u32, 0));
        }
        let seg = b.build();
        assert_eq!(seg.u32_minmax(1), Some((300, 304)));
        assert_eq!(seg.u32_minmax(0), None, "u64 column has no u32 zone map");
        assert_eq!(seg.u32_minmax(2), None, "money column has no u32 zone map");
        assert_eq!(seg.u32_minmax(99), None, "out-of-range column is None");
        let empty = SegmentBuilder::new(TableId::History).build();
        assert_eq!(empty.u32_minmax(1), None);
    }

    #[test]
    fn low_cardinality_u32_uses_rle() {
        let mut b = SegmentBuilder::new(TableId::History);
        for i in 0..100u64 {
            // custkey column has long runs of one value.
            b.push(2, history_row(i, (i / 50) as u32, 0));
        }
        let seg = b.build();
        assert!(matches!(seg.col(1), ColumnData::U32Rle(_)));
        assert_eq!(seg.col(1).u32_at(49), 0);
        assert_eq!(seg.col(1).u32_at(50), 1);
    }

    #[test]
    fn narrow_high_cardinality_u32_bit_packs() {
        let mut b = SegmentBuilder::new(TableId::History);
        for i in 0..100u64 {
            // No runs, but the domain fits in 7 bits.
            b.push(2, history_row(i, i as u32, 0));
        }
        let seg = b.build();
        assert!(matches!(seg.col(1), ColumnData::U32Packed(_)));
        for i in 0..100usize {
            assert_eq!(seg.col(1).u32_at(i), i as u32);
        }
        assert!(seg.col(1).approx_bytes() < 100 * 4, "packed must beat plain");
    }

    #[test]
    fn wide_high_cardinality_u32_stays_plain() {
        let mut b = SegmentBuilder::new(TableId::History);
        for i in 0..100u64 {
            // Values need more than PACK_MAX_BITS bits: packing is not
            // worth the shift/mask overhead, keep plain.
            b.push(2, history_row(i, u32::MAX - i as u32, 0));
        }
        let seg = b.build();
        assert!(matches!(seg.col(1), ColumnData::U32(_)));
    }

    #[test]
    fn packed_u32_roundtrip_word_straddle() {
        // 7-bit values straddle u64 word boundaries every 64/7 values.
        let vals: Vec<u32> = (0..1000u32).map(|i| i % 128).collect();
        let packed = PackedU32::encode(&vals);
        assert_eq!(packed.bits(), 7);
        assert_eq!(packed.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(packed.get(i), v, "index {i}");
        }
        assert_eq!(packed.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn packed_u32_edge_widths() {
        // Zero only: minimum width of 1 bit.
        let zeros = vec![0u32; 100];
        let p = PackedU32::encode(&zeros);
        assert_eq!(p.bits(), 1);
        assert!(p.iter().all(|v| v == 0));
        // Full-width values: 32 bits, mask must not overflow.
        let wide = vec![u32::MAX, 0, u32::MAX - 1, 7];
        let p = PackedU32::encode(&wide);
        assert_eq!(p.bits(), 32);
        assert_eq!(p.iter().collect::<Vec<_>>(), wide);
        // Empty input.
        let p = PackedU32::encode(&[]);
        assert!(p.is_empty());
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn rle_cursor_matches_get_on_jumpy_walk() {
        let data: Vec<u32> = (0..500u32).map(|i| i / 7).collect();
        let rle = RleU32::encode(&data);
        let mut cur = rle.cursor();
        // Forward, backward, and repeated accesses all agree with get().
        let walk =
            [0usize, 1, 2, 100, 101, 50, 499, 0, 250, 250, 251, 13, 499, 498];
        for &i in &walk {
            assert_eq!(cur.value_at(&rle, i), rle.get(i), "index {i}");
        }
    }

    #[test]
    fn rle_runs_in_covers_window_exactly() {
        let data = vec![5, 5, 5, 7, 7, 9, 9, 9, 9, 5];
        let rle = RleU32::encode(&data);
        // Window [2, 8): tail of the 5-run, the 7-run, head of the 9-run.
        let runs: Vec<(u32, usize, usize)> = rle.runs_in(2, 8).collect();
        assert_eq!(runs, vec![(5, 2, 3), (7, 3, 5), (9, 5, 8)]);
        // Full window reproduces the data.
        let mut out = Vec::new();
        for (v, s, e) in rle.runs_in(0, data.len()) {
            out.extend(std::iter::repeat_n(v, e - s));
            assert!(s < e);
        }
        assert_eq!(out, data);
        // Empty window.
        assert_eq!(rle.runs_in(4, 4).count(), 0);
    }

    #[test]
    fn dict_encode_stable_and_duplicate_free() {
        // Regression for the former unsafe self-referential build map:
        // codes must be assigned in first-seen order and the entry table
        // must contain each distinct string exactly once.
        let strs: Vec<Arc<str>> = ["b", "a", "b", "c", "a", "b", "d", "c"]
            .iter()
            .map(|s| Arc::from(*s))
            .collect();
        let dict = DictColumn::encode(strs.iter());
        assert_eq!(dict.entries().iter().map(|s| &**s).collect::<Vec<_>>(), [
            "b", "a", "c", "d"
        ]);
        assert_eq!(dict.codes(), [0, 1, 0, 2, 1, 0, 3, 2]);
        let mut seen = std::collections::HashSet::new();
        assert!(dict.entries().iter().all(|s| seen.insert(Arc::clone(s))));
        // Encoding the same input twice is deterministic.
        let again = DictColumn::encode(strs.iter());
        assert_eq!(again.codes(), dict.codes());
        assert_eq!(again.entries(), dict.entries());
    }

    #[test]
    fn decoded_bytes_reflect_compression_ratio() {
        let mut b = SegmentBuilder::new(TableId::Supplier);
        for i in 0..200u32 {
            b.push(2, supplier_row(i % 4, 0));
        }
        let seg = b.build();
        // Heavily repetitive strings: encoded size far below decoded size.
        assert!(seg.approx_bytes() < seg.decoded_bytes());
        // Decoded equivalent counts every string byte once per row.
        assert!(seg.decoded_bytes() > 200 * "Supplier#000000001".len());
    }

    #[test]
    fn without_compression_stays_plain() {
        let mut b = SegmentBuilder::new(TableId::History).without_compression();
        for i in 0..100u64 {
            b.push(2, history_row(i, 1, 0));
        }
        let seg = b.build();
        assert!(matches!(seg.col(1), ColumnData::U32(_)));
    }

    #[test]
    fn column_table_snapshot_and_delta() {
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(1, (0..10).map(|i| history_row(i, 0, 0)));
        for i in 10..20u64 {
            ct.append_delta(i, history_row(i, 0, 0));
        }
        // Snapshot at ts 14 sees segment (10 rows) + delta ts 10..=14.
        let snap = ct.snapshot(14);
        assert_eq!(snap.visible_rows(), 15);
        assert_eq!(snap.delta().len(), 5);
        // Snapshot at ts 1 sees only the loaded segment.
        assert_eq!(ct.snapshot(1).visible_rows(), 10);
    }

    #[test]
    fn compaction_preserves_visibility() {
        let ct = ColumnTable::new(TableId::History);
        for i in 2..50u64 {
            ct.append_delta(i, history_row(i, 0, 0));
        }
        let before = ct.snapshot(30).visible_rows();
        let sealed = ct.compact(30);
        assert_eq!(sealed, 29, "ts 2..=30 sealed");
        assert_eq!(ct.delta_len(), 19);
        let after = ct.snapshot(30).visible_rows();
        assert_eq!(before, after, "compaction must not change visibility");
        assert_eq!(ct.snapshot(u64::MAX).visible_rows(), 48);
        // Compacting again with the same horizon is a no-op.
        assert_eq!(ct.compact(30), 0);
    }

    fn supplier_row(sk: u32, ytd_cents: i64) -> Row {
        row_from([
            Value::U32(sk),
            Value::from(format!("Supplier#{sk:09}")),
            Value::from("addr"),
            Value::from("CITY0"),
            Value::from("CHINA"),
            Value::from("ASIA"),
            Value::from("phone"),
            Value::Money(Money::from_cents(ytd_cents)),
        ])
    }

    #[test]
    fn dim_copy_overlay_reflects_updates_by_snapshot() {
        let dim = DimColumnCopy::new(TableId::Supplier);
        dim.load(1, (1..=5).map(|sk| supplier_row(sk, 0)));
        dim.append_update(3, 1, supplier_row(2, 100));
        dim.append_update(5, 4, supplier_row(5, 200));
        // Snapshot before any update: empty overlay.
        let snap = dim.snapshot(2);
        assert!(snap.overlay().is_empty());
        assert_eq!(snap.visible_rows(), 5);
        // Snapshot between updates.
        let snap = dim.snapshot(4);
        assert_eq!(snap.overlay().len(), 1);
        assert_eq!(snap.overlay()[&1][7].as_money().unwrap().cents(), 100);
        // Snapshot after both.
        let snap = dim.snapshot(10);
        assert_eq!(snap.overlay().len(), 2);
    }

    #[test]
    fn dim_copy_overlay_last_write_wins() {
        let dim = DimColumnCopy::new(TableId::Supplier);
        dim.load(1, (1..=2).map(|sk| supplier_row(sk, 0)));
        dim.append_update(3, 0, supplier_row(1, 100));
        dim.append_update(4, 0, supplier_row(1, 250));
        let snap = dim.snapshot(10);
        assert_eq!(snap.overlay()[&0][7].as_money().unwrap().cents(), 250);
    }

    #[test]
    fn dim_fold_applies_and_preserves_visibility() {
        let dim = DimColumnCopy::new(TableId::Supplier);
        dim.load(1, (1..=4).map(|sk| supplier_row(sk, 0)));
        for (ts, rid) in [(3u64, 0u64), (4, 2), (6, 0)] {
            dim.append_update(ts, rid, supplier_row(rid as u32 + 1, ts as i64 * 10));
        }
        assert_eq!(dim.update_len(), 3);
        let before = dim.snapshot(10);
        assert_eq!(dim.fold(4), 2, "two updates folded");
        assert_eq!(dim.update_len(), 1);
        let after = dim.snapshot(10);
        // Same logical content at ts 10: folded values in segment, rest in
        // overlay.
        let seg = after.segment().unwrap();
        assert_eq!(seg.col(7).money_at(2).cents(), 40);
        assert_eq!(after.overlay()[&0][7].as_money().unwrap().cents(), 60);
        assert_eq!(before.overlay()[&0][7].as_money().unwrap().cents(), 60);
        assert_eq!(dim.fold(4), 0, "idempotent for same horizon");
    }

    #[test]
    fn dim_reset_restores_loaded_content() {
        let dim = DimColumnCopy::new(TableId::Supplier);
        dim.load(1, (1..=3).map(|sk| supplier_row(sk, 0)));
        dim.append_update(3, 1, supplier_row(2, 999));
        dim.fold(3);
        dim.reset();
        let snap = dim.snapshot(10);
        assert!(snap.overlay().is_empty());
        assert_eq!(snap.segment().unwrap().col(7).money_at(1).cents(), 0);
        assert_eq!(dim.update_len(), 0);
    }

    #[test]
    fn materialize_roundtrip() {
        let mut b = SegmentBuilder::new(TableId::Supplier);
        let original = supplier_row(7, 42);
        b.push(1, Arc::clone(&original));
        let seg = b.build();
        let back = materialize_row(TableId::Supplier, &seg, 0);
        assert_eq!(back, original);
    }

    #[test]
    fn reset_keeps_loaded_segments_only() {
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(1, (0..10).map(|i| history_row(i, 0, 0)));
        for i in 2..30u64 {
            ct.append_delta(i, history_row(100 + i, 0, 0));
        }
        ct.compact(20);
        assert_eq!(ct.segment_count(), 2);
        ct.reset_keep_segments(1);
        assert_eq!(ct.segment_count(), 1);
        assert_eq!(ct.delta_len(), 0);
        assert_eq!(ct.snapshot(u64::MAX).visible_rows(), 10);
    }

    #[test]
    fn segment_bytes_reflect_compression() {
        let mut plain = SegmentBuilder::new(TableId::History).without_compression();
        let mut comp = SegmentBuilder::new(TableId::History);
        for i in 0..1000u64 {
            plain.push(2, history_row(i, 1, 0));
            comp.push(2, history_row(i, 1, 0));
        }
        let p = plain.build().approx_bytes();
        let c = comp.build().approx_bytes();
        assert!(c < p, "RLE column must shrink the segment ({c} >= {p})");
    }
}
