//! An MVCC row store with per-slot version chains.
//!
//! This is the transactional backbone of every engine. Each logical row
//! occupies one *slot*; a slot holds a chain of committed versions, newest
//! first, each stamped with its commit timestamp. Readers traverse the
//! chain to the first version visible at their snapshot — the cost the
//! paper calls out for MVCC analytics ("every analytical query ... needs to
//! traverse potentially lengthy version chains", §2.2) is real here.
//!
//! Slots live in fixed-size segments so the store can grow (New Order and
//! Payment keep appending) without ever moving existing slots, and readers
//! can address slots while writers append.
//!
//! Dirty data never enters the store: transactions buffer writes in their
//! [`hat_txn::TxnCtx`] and install them at commit inside the oracle's
//! commit critical section, so a version chain only ever contains committed
//! versions in strictly increasing timestamp order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hat_common::{HatError, Result, Row, TableId};
use hat_txn::Ts;
use parking_lot::{Mutex, RwLock};

/// Index of a logical row within its table. Stable for the row's lifetime.
pub type RowId = u64;

/// Rows per segment. Power of two so slot addressing is shift/mask.
const SEG_SHIFT: usize = 12;
const SEG_SIZE: usize = 1 << SEG_SHIFT;

/// One committed version of a row.
struct Version {
    ts: Ts,
    row: Row,
    next: Option<Box<Version>>,
}

impl Drop for Version {
    fn drop(&mut self) {
        // Iterative chain teardown: hot rows accumulate arbitrarily long
        // version chains between GC passes, and the default recursive drop
        // of a linked list overflows the stack.
        let mut next = self.next.take();
        while let Some(mut v) = next {
            next = v.next.take();
        }
    }
}

/// A fixed block of slots.
struct Segment {
    slots: Box<[Mutex<Option<Version>>]>,
}

impl Segment {
    fn new() -> Arc<Segment> {
        let slots: Vec<Mutex<Option<Version>>> =
            (0..SEG_SIZE).map(|_| Mutex::new(None)).collect();
        Arc::new(Segment { slots: slots.into_boxed_slice() })
    }
}

/// A growable MVCC table of versioned rows.
pub struct RowStore {
    table: TableId,
    segments: RwLock<Vec<Arc<Segment>>>,
    /// Number of allocated slots (== next RowId).
    count: AtomicU64,
}

impl RowStore {
    /// An empty store for `table`.
    pub fn new(table: TableId) -> Self {
        RowStore {
            table,
            segments: RwLock::new(Vec::new()),
            count: AtomicU64::new(0),
        }
    }

    /// The table this store holds.
    #[inline]
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Number of slots ever allocated (visible and not-yet-visible alike).
    #[inline]
    pub fn slot_count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Grabs the segment holding `rid`, growing the directory if needed.
    fn segment_for(&self, rid: RowId) -> Arc<Segment> {
        let seg_idx = (rid >> SEG_SHIFT) as usize;
        {
            let segs = self.segments.read();
            if seg_idx < segs.len() {
                return Arc::clone(&segs[seg_idx]);
            }
        }
        let mut segs = self.segments.write();
        while segs.len() <= seg_idx {
            segs.push(Segment::new());
        }
        Arc::clone(&segs[seg_idx])
    }

    #[inline]
    fn slot_of(seg: &Segment, rid: RowId) -> &Mutex<Option<Version>> {
        &seg.slots[(rid as usize) & (SEG_SIZE - 1)]
    }

    /// Installs a brand-new row committed at `ts`, returning its id.
    ///
    /// Used by the bulk loader, by commit installation, and by replication
    /// replay (which must observe the same allocation order as the primary;
    /// see [`RowStore::install_insert_at`] for the checked variant).
    pub fn install_insert(&self, row: Row, ts: Ts) -> RowId {
        let rid = self.count.fetch_add(1, Ordering::AcqRel);
        let seg = self.segment_for(rid);
        let mut slot = Self::slot_of(&seg, rid).lock();
        debug_assert!(slot.is_none(), "fresh slot must be empty");
        *slot = Some(Version { ts, row, next: None });
        rid
    }

    /// Replay-side insert that asserts the replica allocates the same row
    /// id the primary logged. Physical replication depends on this.
    pub fn install_insert_at(&self, expected_rid: RowId, row: Row, ts: Ts) -> Result<()> {
        let rid = self.install_insert(row, ts);
        if rid != expected_rid {
            return Err(HatError::InvalidConfig(format!(
                "replica rid divergence on {}: expected {expected_rid}, got {rid}",
                self.table.name()
            )));
        }
        Ok(())
    }

    /// Prepends a new version of an existing row, committed at `ts`.
    pub fn install_update(&self, rid: RowId, row: Row, ts: Ts) -> Result<()> {
        if rid >= self.slot_count() {
            return Err(HatError::NotFound { table: self.table.name() });
        }
        let seg = self.segment_for(rid);
        let mut slot = Self::slot_of(&seg, rid).lock();
        let old = slot.take();
        debug_assert!(
            old.as_ref().is_none_or(|v| v.ts < ts),
            "versions must be installed in increasing ts order"
        );
        *slot = Some(Version { ts, row, next: old.map(Box::new) });
        Ok(())
    }

    /// Reads the version of `rid` visible at snapshot `ts`.
    pub fn read(&self, rid: RowId, ts: Ts) -> Option<Row> {
        if rid >= self.slot_count() {
            return None;
        }
        let seg = self.segment_for(rid);
        let slot = Self::slot_of(&seg, rid).lock();
        let mut version = slot.as_ref()?;
        loop {
            if version.ts <= ts {
                return Some(Arc::clone(&version.row));
            }
            version = version.next.as_deref()?;
        }
    }

    /// Reads the newest committed version and its timestamp.
    pub fn read_latest(&self, rid: RowId) -> Option<(Row, Ts)> {
        if rid >= self.slot_count() {
            return None;
        }
        let seg = self.segment_for(rid);
        let slot = Self::slot_of(&seg, rid).lock();
        slot.as_ref().map(|v| (Arc::clone(&v.row), v.ts))
    }

    /// Timestamp of the newest committed version, or `None` if the slot is
    /// still empty. Used for first-committer-wins checks and serializable
    /// read validation.
    pub fn latest_ts(&self, rid: RowId) -> Option<Ts> {
        if rid >= self.slot_count() {
            return None;
        }
        let seg = self.segment_for(rid);
        let slot = Self::slot_of(&seg, rid).lock();
        slot.as_ref().map(|v| v.ts)
    }

    /// Scans every row visible at snapshot `ts` in row-id order, invoking
    /// `visit(rid, &row)`. This is the row-store analytical scan path; it
    /// pays a per-slot lock and a version-chain walk, as MVCC scans do.
    pub fn scan<F>(&self, ts: Ts, mut visit: F)
    where
        F: FnMut(RowId, &Row),
    {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut rid: RowId = 0;
        'outer: for seg in segs {
            for slot in seg.slots.iter() {
                if rid >= count {
                    break 'outer;
                }
                let guard = slot.lock();
                if let Some(mut version) = guard.as_ref() {
                    loop {
                        if version.ts <= ts {
                            visit(rid, &version.row);
                            break;
                        }
                        match version.next.as_deref() {
                            Some(next) => version = next,
                            None => break,
                        }
                    }
                }
                rid += 1;
            }
        }
    }

    /// Scans rows with ids in `[lo, hi)` visible at snapshot `ts`, in
    /// row-id order — the morsel-scan path. `hi` is clamped to the current
    /// slot count; rows installed after the caller sized its range carry a
    /// commit ts newer than any open snapshot, so the visibility walk skips
    /// them even if their slots are reached.
    pub fn scan_range<F>(&self, ts: Ts, lo: RowId, hi: RowId, mut visit: F)
    where
        F: FnMut(RowId, &Row),
    {
        let hi = hi.min(self.slot_count());
        if lo >= hi {
            return;
        }
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        for rid in lo..hi {
            // The directory may lag a racing insert that bumped the count;
            // such rows are newer than `ts` anyway.
            let Some(seg) = segs.get((rid >> SEG_SHIFT) as usize) else { break };
            let guard = Self::slot_of(seg, rid).lock();
            if let Some(mut version) = guard.as_ref() {
                loop {
                    if version.ts <= ts {
                        visit(rid, &version.row);
                        break;
                    }
                    match version.next.as_deref() {
                        Some(next) => version = next,
                        None => break,
                    }
                }
            }
        }
    }

    /// Like [`RowStore::scan`] but the visitor returns `false` to stop
    /// early — the no-index lookup path uses this to stop at the first
    /// matching row.
    pub fn scan_while<F>(&self, ts: Ts, mut visit: F)
    where
        F: FnMut(RowId, &Row) -> bool,
    {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut rid: RowId = 0;
        'outer: for seg in segs {
            for slot in seg.slots.iter() {
                if rid >= count {
                    break 'outer;
                }
                let guard = slot.lock();
                if let Some(mut version) = guard.as_ref() {
                    loop {
                        if version.ts <= ts {
                            if !visit(rid, &version.row) {
                                return;
                            }
                            break;
                        }
                        match version.next.as_deref() {
                            Some(next) => version = next,
                            None => break,
                        }
                    }
                }
                rid += 1;
            }
        }
    }

    /// Number of rows visible at snapshot `ts` (diagnostic; full scan).
    pub fn visible_count(&self, ts: Ts) -> u64 {
        let mut n = 0;
        self.scan(ts, |_, _| n += 1);
        n
    }

    /// Garbage-collects versions that no snapshot at or above `horizon`
    /// can ever read: for each slot, keeps all versions newer than
    /// `horizon` plus the one version visible *at* `horizon`. Returns the
    /// number of versions freed.
    pub fn prune(&self, horizon: Ts) -> u64 {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut freed = 0;
        let mut rid: RowId = 0;
        'outer: for seg in segs {
            for slot in seg.slots.iter() {
                if rid >= count {
                    break 'outer;
                }
                rid += 1;
                let mut guard = slot.lock();
                let Some(head) = guard.as_mut() else { continue };
                // Walk to the first version with ts <= horizon; everything
                // strictly older than that version is unreachable.
                let mut cur: &mut Version = head;
                loop {
                    if cur.ts <= horizon {
                        let mut dropped = cur.next.take();
                        while let Some(mut v) = dropped {
                            freed += 1;
                            dropped = v.next.take();
                        }
                        break;
                    }
                    match cur.next {
                        Some(ref mut next) => cur = next,
                        None => break,
                    }
                }
            }
        }
        freed
    }

    /// Drops every slot at or beyond `n`, shrinking the store back to `n`
    /// rows. Used by benchmark reset to undo the appends of a measurement
    /// run (the paper resets data to its initial state before each run,
    /// §6.1). Callers must guarantee no concurrent writers.
    pub fn truncate_slots(&self, n: u64) {
        let count = self.slot_count();
        if n >= count {
            return;
        }
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        for rid in n..count {
            let seg = &segs[(rid >> SEG_SHIFT) as usize];
            *Self::slot_of(seg, rid).lock() = None;
        }
        self.count.store(n, Ordering::Release);
    }

    /// Removes every version committed after `ts`, restoring each row to
    /// the newest version at or before `ts` (rows inserted after `ts`
    /// become empty slots — combine with [`RowStore::truncate_slots`] for a
    /// full reset). Callers must guarantee no concurrent writers.
    pub fn revert_versions_after(&self, ts: Ts) {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        for rid in 0..count {
            let seg = &segs[(rid >> SEG_SHIFT) as usize];
            let mut slot = Self::slot_of(seg, rid).lock();
            // Pop newest versions until the head is old enough.
            while let Some(head) = slot.as_mut() {
                if head.ts <= ts {
                    break;
                }
                *slot = head.next.take().map(|b| *b);
            }
        }
    }

    /// Approximate bytes of the newest versions (raw-data-size report).
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0;
        self.scan(Ts::MAX, |_, row| {
            total += row.iter().map(|v| v.approx_bytes()).sum::<usize>();
        });
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    fn row(v: u32) -> Row {
        row_from([Value::U32(v)])
    }

    fn store() -> RowStore {
        RowStore::new(TableId::Customer)
    }

    #[test]
    fn insert_and_read() {
        let s = store();
        let rid = s.install_insert(row(7), 5);
        assert_eq!(rid, 0);
        assert_eq!(s.read(rid, 5).unwrap()[0].as_u32().unwrap(), 7);
        assert_eq!(s.read(rid, 4), None, "invisible before commit ts");
        assert_eq!(s.read(999, 100), None, "unknown rid");
    }

    #[test]
    fn scan_range_respects_bounds_and_snapshot() {
        let s = store();
        // Rows 0..10 at ts 2, rows 10..20 at ts 8, spanning a segment
        // boundary is covered by the full-scan tests; here bounds matter.
        for i in 0..20u32 {
            s.install_insert(row(i), if i < 10 { 2 } else { 8 });
        }
        let collect = |ts, lo, hi| {
            let mut got = Vec::new();
            s.scan_range(ts, lo, hi, |rid, r| got.push((rid, r[0].as_u32().unwrap())));
            got
        };
        assert_eq!(collect(10, 3, 6), vec![(3, 3), (4, 4), (5, 5)]);
        // Snapshot hides the second batch even inside the range.
        assert_eq!(collect(5, 8, 12), vec![(8, 8), (9, 9)]);
        // hi clamps to the slot count; empty and inverted ranges are no-ops.
        assert_eq!(collect(10, 18, 1000).len(), 2);
        assert!(collect(10, 7, 7).is_empty());
        assert!(collect(10, 9, 3).is_empty());
        // Ranged scans concatenated over a partition equal one full scan.
        let mut full = Vec::new();
        s.scan(10, |rid, r| full.push((rid, r[0].as_u32().unwrap())));
        let mut pieces = collect(10, 0, 7);
        pieces.extend(collect(10, 7, 20));
        assert_eq!(pieces, full);
    }

    #[test]
    fn versions_visible_by_snapshot() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(2), 5).unwrap();
        s.install_update(rid, row(3), 9).unwrap();
        assert_eq!(s.read(rid, 2).unwrap()[0].as_u32().unwrap(), 1);
        assert_eq!(s.read(rid, 4).unwrap()[0].as_u32().unwrap(), 1);
        assert_eq!(s.read(rid, 5).unwrap()[0].as_u32().unwrap(), 2);
        assert_eq!(s.read(rid, 8).unwrap()[0].as_u32().unwrap(), 2);
        assert_eq!(s.read(rid, 9).unwrap()[0].as_u32().unwrap(), 3);
        assert_eq!(s.read(rid, 100).unwrap()[0].as_u32().unwrap(), 3);
        let (latest, ts) = s.read_latest(rid).unwrap();
        assert_eq!(latest[0].as_u32().unwrap(), 3);
        assert_eq!(ts, 9);
        assert_eq!(s.latest_ts(rid), Some(9));
    }

    #[test]
    fn update_unknown_rid_fails() {
        let s = store();
        assert!(matches!(
            s.install_update(0, row(1), 2),
            Err(HatError::NotFound { .. })
        ));
    }

    #[test]
    fn scan_respects_snapshot() {
        let s = store();
        for i in 0..10u32 {
            s.install_insert(row(i), (i + 1) as u64 * 2);
        }
        // Snapshot 9 sees rows committed at ts 2,4,6,8.
        let mut seen = Vec::new();
        s.scan(9, |rid, r| seen.push((rid, r[0].as_u32().unwrap())));
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(s.visible_count(20), 10);
        assert_eq!(s.visible_count(1), 0);
    }

    #[test]
    fn scan_uses_visible_version_not_latest() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(99), 10).unwrap();
        let mut vals = Vec::new();
        s.scan(5, |_, r| vals.push(r[0].as_u32().unwrap()));
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn growth_across_segments() {
        let s = store();
        let n = (SEG_SIZE * 2 + 100) as u32;
        for i in 0..n {
            s.install_insert(row(i), 2);
        }
        assert_eq!(s.slot_count(), n as u64);
        assert_eq!(s.read(SEG_SIZE as u64 + 5, 2).unwrap()[0].as_u32().unwrap(), SEG_SIZE as u32 + 5);
        assert_eq!(s.visible_count(2), n as u64);
    }

    #[test]
    fn replica_rid_check() {
        let s = store();
        s.install_insert_at(0, row(1), 2).unwrap();
        s.install_insert_at(1, row(2), 2).unwrap();
        assert!(s.install_insert_at(5, row(3), 2).is_err());
    }

    #[test]
    fn prune_drops_unreachable_versions() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(2), 4).unwrap();
        s.install_update(rid, row(3), 6).unwrap();
        s.install_update(rid, row(4), 8).unwrap();
        // Horizon 6: version@6 must stay (visible at 6), 8 stays (newer),
        // versions @4 and @2 freed.
        let freed = s.prune(6);
        assert_eq!(freed, 2);
        assert_eq!(s.read(rid, 6).unwrap()[0].as_u32().unwrap(), 3);
        assert_eq!(s.read(rid, 100).unwrap()[0].as_u32().unwrap(), 4);
        // Reads below the horizon may now miss — that's the GC contract.
        assert_eq!(s.prune(6), 0, "idempotent");
    }

    #[test]
    fn truncate_slots_shrinks() {
        let s = store();
        for i in 0..10u32 {
            s.install_insert(row(i), 2);
        }
        s.truncate_slots(4);
        assert_eq!(s.slot_count(), 4);
        assert_eq!(s.visible_count(10), 4);
        assert_eq!(s.read(5, 10), None);
        // Slots freed by truncate are reusable.
        let rid = s.install_insert(row(99), 3);
        assert_eq!(rid, 4);
        assert_eq!(s.read(4, 3).unwrap()[0].as_u32().unwrap(), 99);
        // Truncating beyond the count is a no-op.
        s.truncate_slots(100);
        assert_eq!(s.slot_count(), 5);
    }

    #[test]
    fn revert_versions_restores_old_state() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(2), 5).unwrap();
        s.install_update(rid, row(3), 8).unwrap();
        let fresh = s.install_insert(row(9), 7);
        s.revert_versions_after(2);
        assert_eq!(s.read(rid, 100).unwrap()[0].as_u32().unwrap(), 1);
        assert_eq!(s.read(fresh, 100), None, "post-ts insert reverted away");
        assert_eq!(s.latest_ts(rid), Some(2));
    }

    #[test]
    fn scan_while_stops_early() {
        let s = store();
        for i in 0..100u32 {
            s.install_insert(row(i), 2);
        }
        let mut seen = 0;
        s.scan_while(2, |_, _| {
            seen += 1;
            seen < 7
        });
        assert_eq!(seen, 7);
    }

    #[test]
    fn concurrent_inserts_get_unique_rids() {
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|i| s.install_insert(row(t * 1000 + i), 2)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<RowId> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<RowId> = (0..4000).collect();
        assert_eq!(all, expect);
        assert_eq!(s.visible_count(2), 4000);
    }

    #[test]
    fn dropping_a_very_long_version_chain_does_not_overflow_stack() {
        let s = store();
        let rid = s.install_insert(row(0), 2);
        for ts in 3..300_000u64 {
            s.install_update(rid, row(1), ts).unwrap();
        }
        drop(s); // must not blow the stack
    }

    #[test]
    fn snapshot_reads_are_repeatable_under_concurrent_updates() {
        // A reader at a fixed snapshot must see the same version no matter
        // how many newer versions writers prepend concurrently.
        let s = Arc::new(store());
        let rid = s.install_insert(row(0), 2);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ts = 3;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    s.install_update(rid, row(ts as u32), ts).unwrap();
                    ts += 1;
                }
                ts
            })
        };
        for _ in 0..2000 {
            let seen = s.read(rid, 2).unwrap()[0].as_u32().unwrap();
            assert_eq!(seen, 0, "snapshot at ts 2 must always see version 0");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let final_ts = writer.join().unwrap();
        // The latest read at a current snapshot sees the newest version.
        let latest = s.read(rid, final_ts).unwrap()[0].as_u32().unwrap();
        assert_eq!(latest as u64, final_ts - 1);
    }

    #[test]
    fn scan_during_concurrent_append_never_sees_future_rows() {
        let s = Arc::new(store());
        for i in 0..100u32 {
            s.install_insert(row(i), 2);
        }
        let appender = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for ts in 10..20_010u64 {
                    s.install_insert(row(999), ts);
                }
            })
        };
        // Scan concurrently with the bounded append storm.
        while s.slot_count() < 20_100 {
            let mut n = 0;
            s.scan(2, |_, r| {
                assert_ne!(r[0].as_u32().unwrap(), 999, "future row leaked");
                n += 1;
            });
            assert_eq!(n, 100);
        }
        appender.join().unwrap();
        assert_eq!(s.visible_count(2), 100);
    }

    #[test]
    fn approx_bytes_counts_latest() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        let before = s.approx_bytes();
        s.install_update(rid, row(2), 3).unwrap();
        assert_eq!(s.approx_bytes(), before, "only newest version counted");
    }
}

/// One [`RowStore`] per table of the HATtrick schema — the row-format
/// "database" used by the shared engine, by replication primaries and
/// replicas, and by the hybrid engines' transactional side.
pub struct RowDb {
    stores: Vec<Arc<RowStore>>,
}

impl RowDb {
    /// Creates empty stores for every table.
    pub fn new() -> Self {
        RowDb {
            stores: TableId::ALL.iter().map(|t| Arc::new(RowStore::new(*t))).collect(),
        }
    }

    /// The store for `table`.
    #[inline]
    pub fn store(&self, table: TableId) -> &RowStore {
        &self.stores[table.index()]
    }

    /// Shared handle to the store for `table`.
    pub fn store_arc(&self, table: TableId) -> Arc<RowStore> {
        Arc::clone(&self.stores[table.index()])
    }

    /// Approximate row-format bytes across all tables.
    pub fn approx_bytes(&self) -> usize {
        self.stores.iter().map(|s| s.approx_bytes()).sum()
    }
}

impl Default for RowDb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod rowdb_tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    #[test]
    fn stores_are_per_table() {
        let db = RowDb::new();
        db.store(TableId::Customer).install_insert(row_from([Value::U32(1)]), 2);
        assert_eq!(db.store(TableId::Customer).slot_count(), 1);
        assert_eq!(db.store(TableId::Supplier).slot_count(), 0);
        assert_eq!(db.store(TableId::Customer).table(), TableId::Customer);
    }

    #[test]
    fn store_arc_aliases_store() {
        let db = RowDb::new();
        let arc = db.store_arc(TableId::History);
        arc.install_insert(
            row_from([
                Value::U64(1),
                Value::U32(2),
                Value::Money(hat_common::Money::ZERO),
            ]),
            2,
        );
        assert_eq!(db.store(TableId::History).slot_count(), 1);
    }
}
