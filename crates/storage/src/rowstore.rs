//! An MVCC row store with per-slot version chains.
//!
//! This is the transactional backbone of every engine. Each logical row
//! occupies one *slot*; a slot holds a chain of committed versions, newest
//! first, each stamped with its commit timestamp. Readers traverse the
//! chain to the first version visible at their snapshot — the cost the
//! paper calls out for MVCC analytics ("every analytical query ... needs to
//! traverse potentially lengthy version chains", §2.2) is real here.
//!
//! Slots live in fixed-size segments so the store can grow (New Order and
//! Payment keep appending) without ever moving existing slots, and readers
//! can address slots while writers append.
//!
//! Dirty data never enters the store: transactions buffer writes in their
//! [`hat_txn::TxnCtx`] and install them at commit inside the oracle's
//! commit critical section, so a version chain only ever contains committed
//! versions in strictly increasing timestamp order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hat_common::{HatError, Result, Row, TableId};
use hat_txn::Ts;
use parking_lot::{Mutex, RwLock};

/// Index of a logical row within its table. Stable for the row's lifetime.
pub type RowId = u64;

/// Rows per segment. Power of two so slot addressing is shift/mask.
const SEG_SHIFT: usize = 12;
const SEG_SIZE: usize = 1 << SEG_SHIFT;

/// Words in a segment's dirty-slot bitmap (one bit per slot).
const DIRTY_WORDS: usize = SEG_SIZE / 64;

/// Timestamp of bulk-loaded base versions (`hat-txn`'s `LOAD_TS`).
/// Pruning always preserves a row's base version: benchmark reset
/// restores the loaded state via `revert_versions_after(BASE_TS)`, which
/// must find it even after vacuum reclaimed every intermediate version.
/// The cost is bounded — at most one extra version per updated row.
pub const BASE_TS: Ts = 1;

/// One committed version of a row.
struct Version {
    ts: Ts,
    row: Row,
    next: Option<Box<Version>>,
}

impl Drop for Version {
    fn drop(&mut self) {
        // Iterative chain teardown: hot rows accumulate arbitrarily long
        // version chains between GC passes, and the default recursive drop
        // of a linked list overflows the stack.
        let mut next = self.next.take();
        while let Some(mut v) = next {
            next = v.next.take();
        }
    }
}

/// A fixed block of slots, plus a dirty bitmap driving vacuum.
///
/// `dirty` has one bit per slot, set by [`RowStore::install_update`] after
/// prepending a version. A vacuum pass claims whole words with `swap(0)`
/// and visits only the set bits, so GC cost tracks the *update* rate, not
/// the table size; slots whose chain still holds versions above the prune
/// horizon are re-marked so a later pass (with a higher horizon) returns.
struct Segment {
    slots: Box<[Mutex<Option<Version>>]>,
    dirty: Box<[AtomicU64]>,
}

impl Segment {
    fn new() -> Arc<Segment> {
        let slots: Vec<Mutex<Option<Version>>> =
            (0..SEG_SIZE).map(|_| Mutex::new(None)).collect();
        let dirty: Vec<AtomicU64> = (0..DIRTY_WORDS).map(|_| AtomicU64::new(0)).collect();
        Arc::new(Segment {
            slots: slots.into_boxed_slice(),
            dirty: dirty.into_boxed_slice(),
        })
    }

    /// Marks the slot at in-segment `offset` as a vacuum candidate.
    #[inline]
    fn mark_dirty(&self, offset: usize) {
        self.dirty[offset / 64].fetch_or(1u64 << (offset % 64), Ordering::Release);
    }
}

/// Outcome of one vacuum pass over a store (or summed over a database).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Versions reclaimed.
    pub freed: u64,
    /// Slots examined (for candidate passes: how many dirty bits fired).
    pub visited: u64,
}

impl PruneStats {
    pub fn absorb(&mut self, other: PruneStats) {
        self.freed += other.freed;
        self.visited += other.visited;
    }
}

/// A growable MVCC table of versioned rows.
pub struct RowStore {
    table: TableId,
    segments: RwLock<Vec<Arc<Segment>>>,
    /// Number of allocated slots (== next RowId).
    count: AtomicU64,
    /// Live versions across all chains (slots + their history). Kept
    /// exact by install/prune/truncate/revert so the memory gauge is O(1).
    versions: AtomicU64,
}

impl RowStore {
    /// An empty store for `table`.
    pub fn new(table: TableId) -> Self {
        RowStore {
            table,
            segments: RwLock::new(Vec::new()),
            count: AtomicU64::new(0),
            versions: AtomicU64::new(0),
        }
    }

    /// The table this store holds.
    #[inline]
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Number of slots ever allocated (visible and not-yet-visible alike).
    #[inline]
    pub fn slot_count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Total live versions across every chain in the store. One insert or
    /// update contributes one version until vacuum (or reset) reclaims it.
    #[inline]
    pub fn live_versions(&self) -> u64 {
        self.versions.load(Ordering::Acquire)
    }

    /// Grabs the segment holding `rid`, growing the directory if needed.
    fn segment_for(&self, rid: RowId) -> Arc<Segment> {
        let seg_idx = (rid >> SEG_SHIFT) as usize;
        {
            let segs = self.segments.read();
            if seg_idx < segs.len() {
                return Arc::clone(&segs[seg_idx]);
            }
        }
        let mut segs = self.segments.write();
        while segs.len() <= seg_idx {
            segs.push(Segment::new());
        }
        Arc::clone(&segs[seg_idx])
    }

    #[inline]
    fn slot_of(seg: &Segment, rid: RowId) -> &Mutex<Option<Version>> {
        &seg.slots[(rid as usize) & (SEG_SIZE - 1)]
    }

    /// Installs a brand-new row committed at `ts`, returning its id.
    ///
    /// Used by the bulk loader, by commit installation, and by replication
    /// replay (which must observe the same allocation order as the primary;
    /// see [`RowStore::install_insert_at`] for the checked variant).
    pub fn install_insert(&self, row: Row, ts: Ts) -> RowId {
        let rid = self.count.fetch_add(1, Ordering::AcqRel);
        let seg = self.segment_for(rid);
        let mut slot = Self::slot_of(&seg, rid).lock();
        debug_assert!(slot.is_none(), "fresh slot must be empty");
        *slot = Some(Version { ts, row, next: None });
        self.versions.fetch_add(1, Ordering::AcqRel);
        rid
    }

    /// Replay-side insert that asserts the replica allocates the same row
    /// id the primary logged. Physical replication depends on this.
    pub fn install_insert_at(&self, expected_rid: RowId, row: Row, ts: Ts) -> Result<()> {
        let rid = self.install_insert(row, ts);
        if rid != expected_rid {
            return Err(HatError::InvalidConfig(format!(
                "replica rid divergence on {}: expected {expected_rid}, got {rid}",
                self.table.name()
            )));
        }
        Ok(())
    }

    /// Recovery-side insert at an exact row id, tolerating allocation
    /// gaps. Per-shard WALs ack commits independently, so a crash can
    /// durably record rid `r+1` (coordinator flushed) while rid `r`'s
    /// commit — never acknowledged — is lost with its shard's tail. Replay
    /// then needs to land `r+1` at its logged id, leaving `r` an empty
    /// slot forever: readers and scans already skip empty slots, and the
    /// vacuum's index sweep unhooks any index entry pointing at one.
    pub fn install_insert_gapped(&self, rid: RowId, row: Row, ts: Ts) -> Result<()> {
        let mut cur = self.count.load(Ordering::Acquire);
        while cur <= rid {
            match self.count.compare_exchange(
                cur,
                rid + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let seg = self.segment_for(rid);
        let mut slot = Self::slot_of(&seg, rid).lock();
        if slot.is_some() {
            return Err(HatError::WalCorrupt {
                detail: format!(
                    "duplicate insert for {} rid {rid} during replay",
                    self.table.name()
                ),
            });
        }
        *slot = Some(Version { ts, row, next: None });
        drop(slot);
        self.versions.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Prepends a new version of an existing row, committed at `ts`.
    pub fn install_update(&self, rid: RowId, row: Row, ts: Ts) -> Result<()> {
        if rid >= self.slot_count() {
            return Err(HatError::NotFound { table: self.table.name() });
        }
        let seg = self.segment_for(rid);
        let mut slot = Self::slot_of(&seg, rid).lock();
        let old = slot.take();
        debug_assert!(
            old.as_ref().is_none_or(|v| v.ts < ts),
            "versions must be installed in increasing ts order"
        );
        *slot = Some(Version { ts, row, next: old.map(Box::new) });
        drop(slot);
        self.versions.fetch_add(1, Ordering::AcqRel);
        // Mark *after* installing: a vacuum pass that already claimed this
        // slot's bit re-finds it on its next pass; marking first could let
        // the claim race hide the new version's chain forever.
        seg.mark_dirty((rid as usize) & (SEG_SIZE - 1));
        Ok(())
    }

    /// Reads the version of `rid` visible at snapshot `ts`.
    pub fn read(&self, rid: RowId, ts: Ts) -> Option<Row> {
        if rid >= self.slot_count() {
            return None;
        }
        let seg = self.segment_for(rid);
        let slot = Self::slot_of(&seg, rid).lock();
        let mut version = slot.as_ref()?;
        loop {
            if version.ts <= ts {
                return Some(Arc::clone(&version.row));
            }
            version = version.next.as_deref()?;
        }
    }

    /// Reads the newest committed version and its timestamp.
    pub fn read_latest(&self, rid: RowId) -> Option<(Row, Ts)> {
        if rid >= self.slot_count() {
            return None;
        }
        let seg = self.segment_for(rid);
        let slot = Self::slot_of(&seg, rid).lock();
        slot.as_ref().map(|v| (Arc::clone(&v.row), v.ts))
    }

    /// Timestamp of the newest committed version, or `None` if the slot is
    /// still empty. Used for first-committer-wins checks and serializable
    /// read validation.
    pub fn latest_ts(&self, rid: RowId) -> Option<Ts> {
        if rid >= self.slot_count() {
            return None;
        }
        let seg = self.segment_for(rid);
        let slot = Self::slot_of(&seg, rid).lock();
        slot.as_ref().map(|v| v.ts)
    }

    /// Scans every row visible at snapshot `ts` in row-id order, invoking
    /// `visit(rid, &row)`. This is the row-store analytical scan path; it
    /// pays a per-slot lock and a version-chain walk, as MVCC scans do.
    pub fn scan<F>(&self, ts: Ts, mut visit: F)
    where
        F: FnMut(RowId, &Row),
    {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut rid: RowId = 0;
        'outer: for seg in segs {
            for slot in seg.slots.iter() {
                if rid >= count {
                    break 'outer;
                }
                let guard = slot.lock();
                if let Some(mut version) = guard.as_ref() {
                    loop {
                        if version.ts <= ts {
                            visit(rid, &version.row);
                            break;
                        }
                        match version.next.as_deref() {
                            Some(next) => version = next,
                            None => break,
                        }
                    }
                }
                rid += 1;
            }
        }
    }

    /// Scans rows with ids in `[lo, hi)` visible at snapshot `ts`, in
    /// row-id order — the morsel-scan path. `hi` is clamped to the current
    /// slot count; rows installed after the caller sized its range carry a
    /// commit ts newer than any open snapshot, so the visibility walk skips
    /// them even if their slots are reached.
    pub fn scan_range<F>(&self, ts: Ts, lo: RowId, hi: RowId, mut visit: F)
    where
        F: FnMut(RowId, &Row),
    {
        let hi = hi.min(self.slot_count());
        if lo >= hi {
            return;
        }
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        for rid in lo..hi {
            // The directory may lag a racing insert that bumped the count;
            // such rows are newer than `ts` anyway.
            let Some(seg) = segs.get((rid >> SEG_SHIFT) as usize) else { break };
            let guard = Self::slot_of(seg, rid).lock();
            if let Some(mut version) = guard.as_ref() {
                loop {
                    if version.ts <= ts {
                        visit(rid, &version.row);
                        break;
                    }
                    match version.next.as_deref() {
                        Some(next) => version = next,
                        None => break,
                    }
                }
            }
        }
    }

    /// Like [`RowStore::scan`] but the visitor returns `false` to stop
    /// early — the no-index lookup path uses this to stop at the first
    /// matching row.
    pub fn scan_while<F>(&self, ts: Ts, mut visit: F)
    where
        F: FnMut(RowId, &Row) -> bool,
    {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut rid: RowId = 0;
        'outer: for seg in segs {
            for slot in seg.slots.iter() {
                if rid >= count {
                    break 'outer;
                }
                let guard = slot.lock();
                if let Some(mut version) = guard.as_ref() {
                    loop {
                        if version.ts <= ts {
                            if !visit(rid, &version.row) {
                                return;
                            }
                            break;
                        }
                        match version.next.as_deref() {
                            Some(next) => version = next,
                            None => break,
                        }
                    }
                }
                rid += 1;
            }
        }
    }

    /// Number of rows visible at snapshot `ts` (diagnostic; full scan).
    pub fn visible_count(&self, ts: Ts) -> u64 {
        let mut n = 0;
        self.scan(ts, |_, _| n += 1);
        n
    }

    /// Prunes one slot: keeps every version newer than `horizon`, the one
    /// visible *at* `horizon`, and the load-time base version (see
    /// [`BASE_TS`]), drops the rest. Returns `(versions freed, chain
    /// length before, chain length after, revisit)` where `revisit` says
    /// whether a later pass with a higher horizon could reclaim more.
    fn prune_slot(slot: &Mutex<Option<Version>>, horizon: Ts) -> (u64, u64, u64, bool) {
        let mut guard = slot.lock();
        let Some(head) = guard.as_mut() else { return (0, 0, 0, false) };
        let mut freed = 0;
        let mut kept: u64 = 1;
        let mut has_base = false;
        // Walk to the first version with ts <= horizon; everything
        // strictly older than that version is unreachable — except the
        // base version at the chain's tail, which is re-attached.
        let mut cur: &mut Version = head;
        loop {
            if cur.ts <= horizon {
                has_base = cur.ts <= BASE_TS;
                let mut dropped = cur.next.take();
                let mut base: Option<Box<Version>> = None;
                while let Some(mut v) = dropped {
                    dropped = v.next.take();
                    if dropped.is_none() && v.ts <= BASE_TS {
                        base = Some(v);
                    } else {
                        freed += 1;
                    }
                }
                if let Some(b) = base {
                    cur.next = Some(b);
                    kept += 1;
                    has_base = true;
                }
                break;
            }
            match cur.next {
                Some(ref mut next) => {
                    kept += 1;
                    cur = next;
                }
                None => break,
            }
        }
        // Fully vacuumed, this chain converges to the newest version plus
        // (if distinct) the base; anything beyond that is future work.
        let head_ts = guard.as_ref().expect("chain non-empty").ts;
        let converged = 1 + u64::from(has_base && head_ts > BASE_TS);
        (freed, kept + freed, kept, kept > converged)
    }

    /// Garbage-collects versions that no snapshot at or above `horizon`
    /// can ever read, scanning **every** slot. Returns the number of
    /// versions freed. Each row's load-time base version survives
    /// regardless (see [`BASE_TS`]); reset depends on it. The background
    /// vacuum uses [`RowStore::prune_dirty`] instead; the full scan
    /// remains for resets, tests, and one-shot compaction.
    pub fn prune(&self, horizon: Ts) -> u64 {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut freed = 0;
        let mut rid: RowId = 0;
        'outer: for seg in segs {
            for slot in seg.slots.iter() {
                if rid >= count {
                    break 'outer;
                }
                rid += 1;
                let (f, _, _, _) = Self::prune_slot(slot, horizon);
                freed += f;
            }
        }
        self.versions.fetch_sub(freed, Ordering::AcqRel);
        freed
    }

    /// Candidate-driven vacuum pass: visits only slots updated since the
    /// last pass (per-segment dirty bitmaps claimed with `swap(0)`), so
    /// cost scales with update traffic rather than table size. Slots whose
    /// chain still holds more than one version after pruning are re-marked
    /// — a later pass with a higher horizon will reclaim them.
    ///
    /// `observe_chain` receives the pre-prune chain length of every
    /// non-empty slot visited (the chain-length telemetry histogram).
    pub fn prune_dirty(
        &self,
        horizon: Ts,
        mut observe_chain: impl FnMut(u64),
    ) -> PruneStats {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut stats = PruneStats::default();
        for (seg_idx, seg) in segs.iter().enumerate() {
            let base = (seg_idx << SEG_SHIFT) as u64;
            if base >= count {
                break;
            }
            for (word_idx, word) in seg.dirty.iter().enumerate() {
                if word.load(Ordering::Acquire) == 0 {
                    continue;
                }
                // Claim the whole word; updates landing after this swap
                // simply re-mark and are handled next pass.
                let mut bits = word.swap(0, Ordering::AcqRel);
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let offset = word_idx * 64 + bit;
                    if base + offset as u64 >= count {
                        continue;
                    }
                    stats.visited += 1;
                    let (freed, before, _after, revisit) =
                        Self::prune_slot(&seg.slots[offset], horizon);
                    if before > 0 {
                        observe_chain(before);
                    }
                    stats.freed += freed;
                    if revisit {
                        seg.mark_dirty(offset);
                    }
                }
            }
        }
        self.versions.fetch_sub(stats.freed, Ordering::AcqRel);
        stats
    }

    /// Drops every slot at or beyond `n`, shrinking the store back to `n`
    /// rows. Used by benchmark reset to undo the appends of a measurement
    /// run (the paper resets data to its initial state before each run,
    /// §6.1). Callers must guarantee no concurrent writers.
    pub fn truncate_slots(&self, n: u64) {
        let count = self.slot_count();
        if n >= count {
            return;
        }
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut dropped = 0;
        for rid in n..count {
            let seg = &segs[(rid >> SEG_SHIFT) as usize];
            let mut slot = Self::slot_of(seg, rid).lock();
            let mut v = slot.as_ref();
            while let Some(x) = v {
                dropped += 1;
                v = x.next.as_deref();
            }
            *slot = None;
        }
        self.versions.fetch_sub(dropped, Ordering::AcqRel);
        self.count.store(n, Ordering::Release);
    }

    /// Removes every version committed after `ts`, restoring each row to
    /// the newest version at or before `ts` (rows inserted after `ts`
    /// become empty slots — combine with [`RowStore::truncate_slots`] for a
    /// full reset). Callers must guarantee no concurrent writers.
    pub fn revert_versions_after(&self, ts: Ts) {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut popped = 0;
        for rid in 0..count {
            let seg = &segs[(rid >> SEG_SHIFT) as usize];
            let mut slot = Self::slot_of(seg, rid).lock();
            // Pop newest versions until the head is old enough.
            while let Some(head) = slot.as_mut() {
                if head.ts <= ts {
                    break;
                }
                popped += 1;
                *slot = head.next.take().map(|b| *b);
            }
        }
        self.versions.fetch_sub(popped, Ordering::AcqRel);
    }

    /// Approximate bytes of row data held live, **including every version
    /// in every chain** — this is what the memory gauge and the vacuum's
    /// plateau claim are measured against. (It used to count only newest
    /// versions, which hid unbounded chain growth entirely.)
    pub fn approx_bytes(&self) -> usize {
        let count = self.slot_count();
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let mut total = 0;
        let mut rid: RowId = 0;
        'outer: for seg in segs {
            for slot in seg.slots.iter() {
                if rid >= count {
                    break 'outer;
                }
                rid += 1;
                let guard = slot.lock();
                let mut version = guard.as_ref();
                while let Some(v) = version {
                    total += v.row.iter().map(|val| val.approx_bytes()).sum::<usize>();
                    version = v.next.as_deref();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    fn row(v: u32) -> Row {
        row_from([Value::U32(v)])
    }

    fn store() -> RowStore {
        RowStore::new(TableId::Customer)
    }

    #[test]
    fn insert_and_read() {
        let s = store();
        let rid = s.install_insert(row(7), 5);
        assert_eq!(rid, 0);
        assert_eq!(s.read(rid, 5).unwrap()[0].as_u32().unwrap(), 7);
        assert_eq!(s.read(rid, 4), None, "invisible before commit ts");
        assert_eq!(s.read(999, 100), None, "unknown rid");
    }

    #[test]
    fn scan_range_respects_bounds_and_snapshot() {
        let s = store();
        // Rows 0..10 at ts 2, rows 10..20 at ts 8, spanning a segment
        // boundary is covered by the full-scan tests; here bounds matter.
        for i in 0..20u32 {
            s.install_insert(row(i), if i < 10 { 2 } else { 8 });
        }
        let collect = |ts, lo, hi| {
            let mut got = Vec::new();
            s.scan_range(ts, lo, hi, |rid, r| got.push((rid, r[0].as_u32().unwrap())));
            got
        };
        assert_eq!(collect(10, 3, 6), vec![(3, 3), (4, 4), (5, 5)]);
        // Snapshot hides the second batch even inside the range.
        assert_eq!(collect(5, 8, 12), vec![(8, 8), (9, 9)]);
        // hi clamps to the slot count; empty and inverted ranges are no-ops.
        assert_eq!(collect(10, 18, 1000).len(), 2);
        assert!(collect(10, 7, 7).is_empty());
        assert!(collect(10, 9, 3).is_empty());
        // Ranged scans concatenated over a partition equal one full scan.
        let mut full = Vec::new();
        s.scan(10, |rid, r| full.push((rid, r[0].as_u32().unwrap())));
        let mut pieces = collect(10, 0, 7);
        pieces.extend(collect(10, 7, 20));
        assert_eq!(pieces, full);
    }

    #[test]
    fn versions_visible_by_snapshot() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(2), 5).unwrap();
        s.install_update(rid, row(3), 9).unwrap();
        assert_eq!(s.read(rid, 2).unwrap()[0].as_u32().unwrap(), 1);
        assert_eq!(s.read(rid, 4).unwrap()[0].as_u32().unwrap(), 1);
        assert_eq!(s.read(rid, 5).unwrap()[0].as_u32().unwrap(), 2);
        assert_eq!(s.read(rid, 8).unwrap()[0].as_u32().unwrap(), 2);
        assert_eq!(s.read(rid, 9).unwrap()[0].as_u32().unwrap(), 3);
        assert_eq!(s.read(rid, 100).unwrap()[0].as_u32().unwrap(), 3);
        let (latest, ts) = s.read_latest(rid).unwrap();
        assert_eq!(latest[0].as_u32().unwrap(), 3);
        assert_eq!(ts, 9);
        assert_eq!(s.latest_ts(rid), Some(9));
    }

    #[test]
    fn update_unknown_rid_fails() {
        let s = store();
        assert!(matches!(
            s.install_update(0, row(1), 2),
            Err(HatError::NotFound { .. })
        ));
    }

    #[test]
    fn scan_respects_snapshot() {
        let s = store();
        for i in 0..10u32 {
            s.install_insert(row(i), (i + 1) as u64 * 2);
        }
        // Snapshot 9 sees rows committed at ts 2,4,6,8.
        let mut seen = Vec::new();
        s.scan(9, |rid, r| seen.push((rid, r[0].as_u32().unwrap())));
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(s.visible_count(20), 10);
        assert_eq!(s.visible_count(1), 0);
    }

    #[test]
    fn scan_uses_visible_version_not_latest() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(99), 10).unwrap();
        let mut vals = Vec::new();
        s.scan(5, |_, r| vals.push(r[0].as_u32().unwrap()));
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn growth_across_segments() {
        let s = store();
        let n = (SEG_SIZE * 2 + 100) as u32;
        for i in 0..n {
            s.install_insert(row(i), 2);
        }
        assert_eq!(s.slot_count(), n as u64);
        assert_eq!(s.read(SEG_SIZE as u64 + 5, 2).unwrap()[0].as_u32().unwrap(), SEG_SIZE as u32 + 5);
        assert_eq!(s.visible_count(2), n as u64);
    }

    #[test]
    fn replica_rid_check() {
        let s = store();
        s.install_insert_at(0, row(1), 2).unwrap();
        s.install_insert_at(1, row(2), 2).unwrap();
        assert!(s.install_insert_at(5, row(3), 2).is_err());
    }

    #[test]
    fn prune_drops_unreachable_versions() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(2), 4).unwrap();
        s.install_update(rid, row(3), 6).unwrap();
        s.install_update(rid, row(4), 8).unwrap();
        // Horizon 6: version@6 must stay (visible at 6), 8 stays (newer),
        // versions @4 and @2 freed.
        let freed = s.prune(6);
        assert_eq!(freed, 2);
        assert_eq!(s.read(rid, 6).unwrap()[0].as_u32().unwrap(), 3);
        assert_eq!(s.read(rid, 100).unwrap()[0].as_u32().unwrap(), 4);
        // Reads below the horizon may now miss — that's the GC contract.
        assert_eq!(s.prune(6), 0, "idempotent");
    }

    #[test]
    fn truncate_slots_shrinks() {
        let s = store();
        for i in 0..10u32 {
            s.install_insert(row(i), 2);
        }
        s.truncate_slots(4);
        assert_eq!(s.slot_count(), 4);
        assert_eq!(s.visible_count(10), 4);
        assert_eq!(s.read(5, 10), None);
        // Slots freed by truncate are reusable.
        let rid = s.install_insert(row(99), 3);
        assert_eq!(rid, 4);
        assert_eq!(s.read(4, 3).unwrap()[0].as_u32().unwrap(), 99);
        // Truncating beyond the count is a no-op.
        s.truncate_slots(100);
        assert_eq!(s.slot_count(), 5);
    }

    #[test]
    fn revert_versions_restores_old_state() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(2), 5).unwrap();
        s.install_update(rid, row(3), 8).unwrap();
        let fresh = s.install_insert(row(9), 7);
        s.revert_versions_after(2);
        assert_eq!(s.read(rid, 100).unwrap()[0].as_u32().unwrap(), 1);
        assert_eq!(s.read(fresh, 100), None, "post-ts insert reverted away");
        assert_eq!(s.latest_ts(rid), Some(2));
    }

    #[test]
    fn scan_while_stops_early() {
        let s = store();
        for i in 0..100u32 {
            s.install_insert(row(i), 2);
        }
        let mut seen = 0;
        s.scan_while(2, |_, _| {
            seen += 1;
            seen < 7
        });
        assert_eq!(seen, 7);
    }

    #[test]
    fn concurrent_inserts_get_unique_rids() {
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|i| s.install_insert(row(t * 1000 + i), 2)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<RowId> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<RowId> = (0..4000).collect();
        assert_eq!(all, expect);
        assert_eq!(s.visible_count(2), 4000);
    }

    #[test]
    fn dropping_a_very_long_version_chain_does_not_overflow_stack() {
        let s = store();
        let rid = s.install_insert(row(0), 2);
        for ts in 3..300_000u64 {
            s.install_update(rid, row(1), ts).unwrap();
        }
        drop(s); // must not blow the stack
    }

    #[test]
    fn snapshot_reads_are_repeatable_under_concurrent_updates() {
        // A reader at a fixed snapshot must see the same version no matter
        // how many newer versions writers prepend concurrently.
        let s = Arc::new(store());
        let rid = s.install_insert(row(0), 2);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ts = 3;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    s.install_update(rid, row(ts as u32), ts).unwrap();
                    ts += 1;
                }
                ts
            })
        };
        for _ in 0..2000 {
            let seen = s.read(rid, 2).unwrap()[0].as_u32().unwrap();
            assert_eq!(seen, 0, "snapshot at ts 2 must always see version 0");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let final_ts = writer.join().unwrap();
        // The latest read at a current snapshot sees the newest version.
        let latest = s.read(rid, final_ts).unwrap()[0].as_u32().unwrap();
        assert_eq!(latest as u64, final_ts - 1);
    }

    #[test]
    fn scan_during_concurrent_append_never_sees_future_rows() {
        let s = Arc::new(store());
        for i in 0..100u32 {
            s.install_insert(row(i), 2);
        }
        let appender = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for ts in 10..20_010u64 {
                    s.install_insert(row(999), ts);
                }
            })
        };
        // Scan concurrently with the bounded append storm.
        while s.slot_count() < 20_100 {
            let mut n = 0;
            s.scan(2, |_, r| {
                assert_ne!(r[0].as_u32().unwrap(), 999, "future row leaked");
                n += 1;
            });
            assert_eq!(n, 100);
        }
        appender.join().unwrap();
        assert_eq!(s.visible_count(2), 100);
    }

    #[test]
    fn approx_bytes_counts_every_version_in_the_chain() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        let one = s.approx_bytes();
        assert!(one > 0);
        // A hand-built chain of 4 identical-width versions weighs 4x the
        // base version; pruning back to one version restores the base.
        s.install_update(rid, row(2), 3).unwrap();
        s.install_update(rid, row(3), 4).unwrap();
        s.install_update(rid, row(4), 5).unwrap();
        assert_eq!(s.approx_bytes(), 4 * one, "full chain counted");
        assert_eq!(s.prune(5), 3);
        assert_eq!(s.approx_bytes(), one, "vacuum shrinks the gauge");
    }

    #[test]
    fn live_versions_tracks_installs_prunes_and_resets() {
        let s = store();
        assert_eq!(s.live_versions(), 0);
        let a = s.install_insert(row(1), 2);
        let b = s.install_insert(row(2), 2);
        s.install_update(a, row(3), 4).unwrap();
        s.install_update(a, row(4), 6).unwrap();
        assert_eq!(s.live_versions(), 4);
        assert_eq!(s.prune(6), 2);
        assert_eq!(s.live_versions(), 2);
        s.install_update(b, row(5), 8).unwrap();
        // Revert pops the @8 update and `a`'s @6 head; `a`'s chain was
        // pruned above, so its slot empties entirely.
        s.revert_versions_after(2);
        assert_eq!(s.live_versions(), 1);
        s.truncate_slots(1);
        assert_eq!(s.live_versions(), 0, "only the empty slot survives");
    }

    #[test]
    fn prune_preserves_the_load_time_base_version() {
        let s = store();
        let rid = s.install_insert(row(1), BASE_TS);
        s.install_update(rid, row(2), 4).unwrap();
        s.install_update(rid, row(3), 6).unwrap();
        s.install_update(rid, row(4), 8).unwrap();
        // Horizon past every version: intermediates go, newest + base stay.
        assert_eq!(s.prune(10), 2);
        assert_eq!(s.live_versions(), 2);
        assert_eq!(s.read(rid, 100).unwrap()[0].as_u32().unwrap(), 4);
        // Benchmark reset still restores the loaded row after vacuum.
        s.revert_versions_after(BASE_TS);
        assert_eq!(s.read(rid, 100).unwrap()[0].as_u32().unwrap(), 1);
        assert_eq!(s.latest_ts(rid), Some(BASE_TS));
    }

    #[test]
    fn prune_dirty_converged_base_chain_is_not_remarked() {
        let s = store();
        let rid = s.install_insert(row(1), BASE_TS);
        s.install_update(rid, row(2), 4).unwrap();
        s.install_update(rid, row(3), 6).unwrap();
        let stats = s.prune_dirty(10, |_| {});
        assert_eq!(stats, PruneStats { freed: 1, visited: 1 });
        assert_eq!(s.live_versions(), 2, "newest plus base");
        // Fully converged: the dirty bit must not be re-set, or vacuum
        // would revisit every ever-updated slot on every pass forever.
        assert_eq!(s.prune_dirty(10, |_| {}), PruneStats { freed: 0, visited: 0 });
    }

    #[test]
    fn prune_dirty_visits_only_updated_slots() {
        let s = store();
        for i in 0..500u32 {
            s.install_insert(row(i), 2);
        }
        // Only three rows ever get updated.
        for &rid in &[7u64, 300, 499] {
            s.install_update(rid, row(1000), 5).unwrap();
        }
        let mut chains = Vec::new();
        let stats = s.prune_dirty(10, |len| chains.push(len));
        assert_eq!(stats.visited, 3, "candidate pass skips clean slots");
        assert_eq!(stats.freed, 3);
        chains.sort_unstable();
        assert_eq!(chains, vec![2, 2, 2], "pre-prune chain lengths observed");
        // Chains are back to length 1 and the bits were consumed: the
        // next pass has nothing to do.
        let stats = s.prune_dirty(10, |_| {});
        assert_eq!(stats, PruneStats { freed: 0, visited: 0 });
    }

    #[test]
    fn prune_dirty_remarks_chains_still_above_the_horizon() {
        let s = store();
        let rid = s.install_insert(row(1), 2);
        s.install_update(rid, row(2), 10).unwrap();
        // Horizon 5 cannot touch the @10 version, and the @2 version is
        // still visible at 5 — nothing freed, slot re-marked.
        let stats = s.prune_dirty(5, |_| {});
        assert_eq!(stats, PruneStats { freed: 0, visited: 1 });
        assert_eq!(s.live_versions(), 2);
        // A later pass with a horizon past the update reclaims it without
        // any new write having re-marked the slot.
        let stats = s.prune_dirty(10, |_| {});
        assert_eq!(stats, PruneStats { freed: 1, visited: 1 });
        assert_eq!(s.live_versions(), 1);
        assert_eq!(s.prune_dirty(10, |_| {}).visited, 0, "bit consumed");
    }

    #[test]
    fn prune_dirty_under_concurrent_updates_loses_no_candidates() {
        // Updates racing a vacuum pass must never strand a reclaimable
        // version: whatever a pass misses, a later pass (after writers
        // stop) must fully reclaim.
        let s = Arc::new(store());
        for i in 0..64u32 {
            s.install_insert(row(i), 2);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ts = 3;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for rid in 0..64u64 {
                        s.install_update(rid, row(ts as u32), ts).unwrap();
                        ts += 1;
                    }
                }
                ts
            })
        };
        for _ in 0..50 {
            s.prune_dirty(s.latest_ts(0).unwrap_or(2), |_| {});
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let final_ts = writer.join().unwrap();
        // Writers quiesced: one pass at the final horizon must leave
        // exactly one version per slot.
        s.prune_dirty(final_ts, |_| {});
        assert_eq!(s.live_versions(), 64, "every chain collapsed to one version");
        assert_eq!(s.visible_count(final_ts), 64);
    }
}

/// One [`RowStore`] per table of the HATtrick schema — the row-format
/// "database" used by the shared engine, by replication primaries and
/// replicas, and by the hybrid engines' transactional side.
pub struct RowDb {
    stores: Vec<Arc<RowStore>>,
}

impl RowDb {
    /// Creates empty stores for every table.
    pub fn new() -> Self {
        RowDb {
            stores: TableId::ALL.iter().map(|t| Arc::new(RowStore::new(*t))).collect(),
        }
    }

    /// The store for `table`.
    #[inline]
    pub fn store(&self, table: TableId) -> &RowStore {
        &self.stores[table.index()]
    }

    /// Shared handle to the store for `table`.
    pub fn store_arc(&self, table: TableId) -> Arc<RowStore> {
        Arc::clone(&self.stores[table.index()])
    }

    /// Approximate row-format bytes across all tables, full version
    /// chains included.
    pub fn approx_bytes(&self) -> usize {
        self.stores.iter().map(|s| s.approx_bytes()).sum()
    }

    /// Total live versions across all tables (O(1); see
    /// [`RowStore::live_versions`]).
    pub fn live_versions(&self) -> u64 {
        self.stores.iter().map(|s| s.live_versions()).sum()
    }

    /// One candidate-driven vacuum pass over every table. See
    /// [`RowStore::prune_dirty`] for the safety contract: `horizon` must
    /// not exceed the oldest active snapshot on this database.
    pub fn vacuum(&self, horizon: Ts, mut observe_chain: impl FnMut(u64)) -> PruneStats {
        let mut stats = PruneStats::default();
        for s in &self.stores {
            stats.absorb(s.prune_dirty(horizon, &mut observe_chain));
        }
        stats
    }
}

impl Default for RowDb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod rowdb_tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    #[test]
    fn stores_are_per_table() {
        let db = RowDb::new();
        db.store(TableId::Customer).install_insert(row_from([Value::U32(1)]), 2);
        assert_eq!(db.store(TableId::Customer).slot_count(), 1);
        assert_eq!(db.store(TableId::Supplier).slot_count(), 0);
        assert_eq!(db.store(TableId::Customer).table(), TableId::Customer);
    }

    #[test]
    fn store_arc_aliases_store() {
        let db = RowDb::new();
        let arc = db.store_arc(TableId::History);
        arc.install_insert(
            row_from([
                Value::U64(1),
                Value::U32(2),
                Value::Money(hat_common::Money::ZERO),
            ]),
            2,
        );
        assert_eq!(db.store(TableId::History).slot_count(), 1);
    }
}
