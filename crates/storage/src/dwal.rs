//! Durable on-disk write-ahead log with group commit, checksummed
//! segments, checkpoints, and crash recovery.
//!
//! The in-memory [`crate::wal::Wal`] models *shipping* (replication fan-out
//! with bounded retention); this module models *durability* — the cost the
//! paper's evaluated systems pay at `synchronous_commit = on` (PostgreSQL)
//! or on the Raft-log fsync path (TiDB, §6.3).
//!
//! # Segment format
//!
//! The log is a sequence of fixed-size-ish segment files named
//! `wal-<first_lsn>.seg`:
//!
//! ```text
//! +----------------------+----------------------------------------------+
//! | header (16 bytes)    | frames ...                                   |
//! | magic "HATWAL01" (8) | [len: u32][crc32: u32][payload: len bytes]   |
//! | first_lsn: u64 LE    | [len: u32][crc32: u32][payload]  ...         |
//! +----------------------+----------------------------------------------+
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. The payload is one commit
//! record: `lsn, commit_ts, op_count, ops…` (all integers little-endian).
//! Records never split across segments; a segment rotates once it exceeds
//! [`WalConfig::segment_bytes`].
//!
//! # Torn tails vs. corruption
//!
//! On recovery, an *incomplete* frame at the end of the **last** segment is
//! a torn write (the crash interrupted an unacknowledged flush): the tail
//! is truncated at the last complete record and counted in
//! `torn_tail_truncations`. A *complete* frame whose CRC does not match is
//! silent corruption and fails recovery with
//! [`HatError::ChecksumMismatch`]; structural damage anywhere else (bad
//! magic, LSN discontinuity, torn frame in a sealed segment) fails with
//! [`HatError::WalCorrupt`].
//!
//! # Group commit
//!
//! [`DurableWal::append`] only enqueues the encoded frame (it is called
//! inside the commit critical section, so frames are enqueued in
//! commit-timestamp order); a dedicated flusher thread drains the queue,
//! writes the whole batch, and issues **one** fsync for every waiter that
//! accumulated meanwhile. [`DurableWal::wait_durable`] blocks until the
//! flusher's durable horizon covers the record — many concurrent commits
//! share one fsync, which is exactly PostgreSQL's group commit.
//!
//! # Checkpoints
//!
//! [`DurableWal::checkpoint`] durably persists a snapshot of the table
//! stores (built by the caller) tagged with a low-water LSN: it is written
//! to a `.tmp` file, fsynced, and atomically renamed to
//! `ckpt-<lsn>.ckpt`, after which sealed segments entirely below the
//! low-water mark are deleted. Recovery loads the newest valid checkpoint
//! and replays only the WAL tail past its LSN.
//!
//! # Disk faults & graceful degradation
//!
//! Every file operation goes through a [`WalIo`] layer driven by a seeded
//! [`DiskFaultPlan`] — a schedule of injected faults (EIO/ENOSPC on
//! write, fsync failure, write stalls, read-side bit-rot) generalizing
//! the one-shot [`KillPoint`] into something a chaos harness can script.
//!
//! A failed write or fsync is **fatal for that batch's durability
//! claim**: the WAL never re-fsyncs the same dirty range and pretends
//! (the fsyncgate lesson). Instead the active segment is *quarantined* —
//! truncated back to its durable prefix and sealed — the unacknowledged
//! frames are re-queued to be rewritten from memory onto a fresh segment,
//! waiters receive [`HatError::DurabilityInDoubt`] (their commit is
//! installed and will become durable on re-admission, so it must never
//! be blindly re-executed), and the WAL enters the
//! `Healthy → Degraded → Recovering → Healthy` ladder:
//!
//! * **Degraded** — the flusher parks; [`DurableWal::admit`] sheds new
//!   commits with [`HatError::Degraded`] (bounded backlog, never an
//!   unbounded queue), so the engine serves reads/analytics only.
//! * a background *scrubber* re-verifies sealed-segment checksums and
//!   probes the device each tick; when both pass it moves to
//!   **Recovering** and wakes the flusher.
//! * **Recovering** — the flusher drains the re-queued backlog onto a
//!   fresh segment; once the durable horizon catches up the WAL is
//!   **Healthy** again and commits are re-admitted.
//!
//! If a scrub finds a sealed segment with a bad checksum the storage has
//! lost durable bytes: commits are shed with the non-retryable
//! [`HatError::Quarantined`] until an operator intervenes.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hat_common::rng::HatRng;
use hat_common::telemetry::{Histogram, HistogramSnapshot};
use hat_common::{HatError, Money, Result, Row, TableId, Value};
use hat_txn::Ts;
use parking_lot::{Condvar, Mutex};

use crate::wal::{Lsn, TableOp};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"HATWAL01";
/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"HATCKPT1";
/// Segment header: magic + first LSN.
const SEGMENT_HEADER_BYTES: u64 = 16;
/// Frame header: length + CRC32.
const FRAME_HEADER_BYTES: usize = 8;

/// Configuration of the on-disk WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Directory holding segment and checkpoint files (created on open).
    pub dir: PathBuf,
    /// Rotate to a new segment once the active one exceeds this size.
    pub segment_bytes: u64,
    /// Issue real `fsync` syscalls. `false` keeps the full group-commit
    /// protocol (batching, durable horizon, counters) but skips the
    /// syscall — useful for CI where the backing store is a ramdisk
    /// anyway.
    pub sync: bool,
    /// If set, the owning engine runs a background checkpoint at this
    /// interval (after load completes).
    pub checkpoint_every: Option<Duration>,
    /// Injected-fault schedule for chaos runs; empty means no injection.
    pub fault_plan: DiskFaultPlan,
    /// Shed commits with [`HatError::Degraded`] once this many frames are
    /// queued ahead of the flusher ([`DurableWal::admit`]). Bounds the
    /// group-commit backlog so a stalled or degraded device back-pressures
    /// clients instead of growing an unbounded queue.
    pub max_backlog: usize,
    /// Cadence of the background scrubber (checksum re-verification and,
    /// while degraded, the device probe driving re-admission). With an
    /// empty fault plan the scrubber parks while `Healthy` — zero
    /// background I/O or CPU in fault-free benchmark runs — and only
    /// starts ticking if a real I/O failure degrades the WAL.
    pub scrub_interval: Duration,
}

impl WalConfig {
    /// Defaults: 4 MiB segments, real fsync, no background checkpoints,
    /// no fault injection, 4096-frame backlog bound, 5 ms scrub cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            sync: true,
            checkpoint_every: None,
            fault_plan: DiskFaultPlan::default(),
            max_backlog: 4096,
            scrub_interval: Duration::from_millis(5),
        }
    }
}

/// Engine/WAL health, the ladder a storage fault walks: a failed
/// write/fsync moves `Healthy → Degraded` (commits shed, analytics keep
/// serving), a clean scrub plus device probe moves `Degraded →
/// Recovering` (the flusher drains the re-queued backlog onto a fresh
/// segment), and a caught-up durable horizon moves `Recovering →
/// Healthy` (commits re-admitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    #[default]
    Healthy,
    Degraded,
    Recovering,
}

impl HealthState {
    /// Stable numeric encoding for the `health.state` telemetry gauge.
    pub fn as_u64(self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Recovering => 2,
        }
    }

    /// Human label for reports.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Recovering => "recovering",
        }
    }
}

/// One kind of storage misbehavior [`WalIo`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// `write(2)` fails with `EIO`.
    WriteEio,
    /// `write(2)` fails with `ENOSPC` (device full).
    WriteEnospc,
    /// `fsync(2)` fails with `EIO` — the fsyncgate case: the batch's
    /// durability claim is void and must never be re-fsynced-and-trusted.
    FsyncFail,
    /// The write completes but only after stalling for the duration
    /// (a dying device or saturated queue).
    WriteStall(Duration),
    /// A read of a segment or checkpoint returns one flipped bit
    /// (silent bit-rot, caught by CRC verification).
    ReadBitRot,
}

impl DiskFaultKind {
    /// Which I/O class this fault intercepts.
    fn class(self) -> IoClass {
        match self {
            DiskFaultKind::WriteEio
            | DiskFaultKind::WriteEnospc
            | DiskFaultKind::WriteStall(_) => IoClass::Write,
            DiskFaultKind::FsyncFail => IoClass::Sync,
            DiskFaultKind::ReadBitRot => IoClass::Read,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IoClass {
    Write,
    Sync,
    Read,
}

impl IoClass {
    /// Index into [`WalIo`]'s per-class op clocks.
    fn idx(self) -> usize {
        match self {
            IoClass::Write => 0,
            IoClass::Sync => 1,
            IoClass::Read => 2,
        }
    }
}

/// One scheduled fault window: ops `at_op .. at_op + for_ops` of the
/// matching [`IoClass`] misbehave. `for_ops == 1` is a transient fault;
/// `u64::MAX` is a persistent one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    pub kind: DiskFaultKind,
    /// First operation index (0-based) the fault covers, counted on the
    /// clock of the fault's own I/O class (writes, fsyncs, and reads
    /// each tick independently).
    pub at_op: u64,
    /// Number of consecutive operations covered.
    pub for_ops: u64,
}

/// A deterministic schedule of [`DiskFault`]s, consulted by [`WalIo`] on
/// every file operation. Generalizes the one-shot [`KillPoint`] (which
/// still exists for crash-recovery tests) into something the chaos
/// harness can script: faults fire at fixed operation indices, so a run
/// is reproducible from its seed.
///
/// Reproducibility is guaranteed per I/O class: each class has its own
/// op clock, write/sync clocks are advanced only by the durability path
/// (flusher and checkpoint writes/fsyncs), and the wall-clock-driven
/// scrubber consults them *without* advancing ([`WalIo::probe_gate`],
/// which instead consumes a covering window on failure). The read clock
/// is advanced by recovery reads — which happen at open, before any
/// background thread runs — and by scrub verification reads, so
/// read-side windows aimed past recovery fire at scrubber-timing-
/// dependent points ([`DiskFaultPlan::seeded`] excludes them for this
/// reason).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    faults: Vec<DiskFault>,
}

impl DiskFaultPlan {
    /// An empty plan (no injection).
    pub fn new() -> Self {
        DiskFaultPlan::default()
    }

    /// Adds one fault window (builder-style).
    pub fn with(mut self, fault: DiskFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// A reproducible random schedule: 1–3 short write/sync fault windows
    /// at increasing operation indices. Read-side faults are excluded so
    /// a seeded chaos run degrades and recovers rather than failing its
    /// own recovery scan.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = HatRng::seeded(seed ^ 0xD15C_FA17);
        let mut faults = Vec::new();
        let windows = 1 + rng.next_u64() % 3;
        let mut at = 10 + rng.next_u64() % 40;
        for _ in 0..windows {
            let kind = match rng.next_u64() % 4 {
                0 => DiskFaultKind::FsyncFail,
                1 => DiskFaultKind::WriteEio,
                2 => DiskFaultKind::WriteEnospc,
                _ => DiskFaultKind::WriteStall(Duration::from_micros(500)),
            };
            faults.push(DiskFault { kind, at_op: at, for_ops: 1 + rng.next_u64() % 6 });
            at += 40 + rng.next_u64() % 80;
        }
        DiskFaultPlan { faults }
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault window (if any) covering operation `op` of class
    /// `class`.
    fn window_at(&self, op: u64, class: IoClass) -> Option<DiskFault> {
        self.faults
            .iter()
            .find(|f| {
                f.kind.class() == class
                    && op >= f.at_op
                    && op - f.at_op < f.for_ops
            })
            .copied()
    }

    /// The fault kind (if any) covering operation `op` of class `class`.
    fn fault_at(&self, op: u64, class: IoClass) -> Option<DiskFaultKind> {
        self.window_at(op, class).map(|f| f.kind)
    }
}

/// The pluggable I/O layer every segment/checkpoint file operation goes
/// through. Counts operations, consults the [`DiskFaultPlan`], and
/// injects the scheduled errors; with an empty plan it is a transparent
/// pass-through (two relaxed atomic ops per call).
struct WalIo {
    plan: DiskFaultPlan,
    /// Per-class monotonic op clocks ([`IoClass::idx`]). The write/sync
    /// clocks are the *fault clocks* the durability path (flusher,
    /// checkpoints) advances; scrub probes consult them without
    /// advancing, so seeded fault windows fire at the same flusher ops
    /// regardless of scrubber timing.
    ops: [AtomicU64; 3],
    /// Faults actually injected (the `disk.faults_injected` counter).
    injected: AtomicU64,
}

impl WalIo {
    fn new(plan: DiskFaultPlan) -> Self {
        WalIo {
            plan,
            ops: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            injected: AtomicU64::new(0),
        }
    }

    fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Injects the scheduled misbehavior of the fault (if any) covering
    /// operation `op` of class `class`: returns the injected error, or
    /// sleeps through a stall. Does not advance any clock.
    fn inject_at(&self, op: u64, class: IoClass) -> std::io::Result<()> {
        match self.plan.fault_at(op, class) {
            None => Ok(()),
            Some(DiskFaultKind::WriteStall(d)) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                Ok(())
            }
            Some(DiskFaultKind::WriteEnospc) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                // ENOSPC
                Err(std::io::Error::from_raw_os_error(28))
            }
            Some(DiskFaultKind::WriteEio) | Some(DiskFaultKind::FsyncFail) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                // EIO
                Err(std::io::Error::from_raw_os_error(5))
            }
            // Bit-rot is applied by `read`, not here.
            Some(DiskFaultKind::ReadBitRot) => Ok(()),
        }
    }

    /// Consults the plan for the next operation of `class`, advancing
    /// that class's fault clock.
    fn gate(&self, class: IoClass) -> std::io::Result<()> {
        let op = self.ops[class.idx()].fetch_add(1, Ordering::Relaxed);
        self.inject_at(op, class)
    }

    /// Scrub-probe gate: consults the `class` fault clock **without
    /// advancing it** — probes run on wall-clock cadence and must not
    /// perturb where flusher/checkpoint ops land. A covering fault
    /// window still fails the probe, and that failure *consumes* the
    /// window (the clock jumps to its end), so a transient fault expires
    /// after one failed probe instead of after a timing-dependent number
    /// of scrub ticks. Persistent windows (`at_op + for_ops` overflows)
    /// are never consumed: the probe keeps failing.
    fn probe_gate(&self, class: IoClass) -> std::io::Result<()> {
        let clock = &self.ops[class.idx()];
        let op = clock.load(Ordering::Relaxed);
        if let Some(f) = self.plan.window_at(op, class) {
            if let Some(end) = f.at_op.checked_add(f.for_ops) {
                clock.fetch_max(end, Ordering::Relaxed);
            }
        }
        self.inject_at(op, class)
    }

    fn write_all(&self, file: &mut File, buf: &[u8]) -> std::io::Result<()> {
        self.gate(IoClass::Write)?;
        file.write_all(buf)
    }

    /// The real fsync when `sync` is set; the injection gate either way,
    /// so chaos runs work on CI ramdisks with `sync: false` too.
    fn sync(&self, file: &File, sync: bool) -> std::io::Result<()> {
        self.gate(IoClass::Sync)?;
        if sync {
            file.sync_all()
        } else {
            Ok(())
        }
    }

    /// Reads a whole file, applying a scheduled bit-flip past the header
    /// (deterministic position from the operation index).
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path).and_then(|mut f| f.read_to_end(&mut bytes))?;
        let op = self.ops[IoClass::Read.idx()].fetch_add(1, Ordering::Relaxed);
        if let Some(DiskFaultKind::ReadBitRot) = self.plan.fault_at(op, IoClass::Read) {
            let body = SEGMENT_HEADER_BYTES as usize;
            if bytes.len() > body {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let idx = body + (op as usize).wrapping_mul(131) % (bytes.len() - body);
                bytes[idx] ^= 0x10;
            }
        }
        Ok(bytes)
    }

    /// Creates (truncating) a file for writing, gated as a write.
    fn create(&self, path: &Path) -> std::io::Result<File> {
        self.gate(IoClass::Write)?;
        OpenOptions::new().write(true).create(true).truncate(true).open(path)
    }
}

/// Crash-injection points used by the recovery harness. Arming one makes
/// the WAL "die" at that point: the flusher stops, pending work is
/// dropped, and every in-flight or future `wait_durable`/`append` fails
/// with [`HatError::EngineStopped`] — the in-process analogue of
/// `kill -9` between two specific instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die before the next batch reaches the file: nothing of it survives.
    BeforeFlush,
    /// Die after the next batch is written but **not** fsynced: its bytes
    /// may survive in any prefix (the harness injects the torn tail).
    TornFlush,
    /// Die right after the next fsync: the batch is durable, waiters are
    /// acknowledged, everything later is lost.
    AfterFlush,
    /// Die midway through the next checkpoint, leaving a partial `.tmp`.
    MidCheckpoint,
}

/// One recovered commit record.
#[derive(Debug, Clone)]
pub struct RecoveredRecord {
    pub lsn: Lsn,
    pub commit_ts: Ts,
    pub ops: Vec<TableOp>,
    /// Commit shards the transaction touched (empty = single-shard commit
    /// on the stream's own shard). A cross-shard record is logged **only**
    /// on its coordinator's stream, so recovery resolves an in-doubt 2PC
    /// commit by one deterministic rule: committed iff the record is
    /// durable in the coordinator's WAL. The participant set makes the
    /// decision auditable and lets the recovery merge assert that the
    /// record's ops never appear on a second stream.
    pub participants: Vec<u8>,
}

/// Snapshot of one table store inside a checkpoint: `(rid, version_ts,
/// row)` for every row visible at the checkpoint timestamp, in rid order.
#[derive(Debug, Clone)]
pub struct TableCheckpoint {
    pub table: TableId,
    pub rows: Vec<(u64, Ts, Row)>,
}

/// A durable snapshot of the table stores plus its low-water mark: every
/// commit with `ts <= last_ts` is contained, and exactly the WAL records
/// with `lsn <= lsn` are reflected.
#[derive(Debug, Clone)]
pub struct CheckpointData {
    pub lsn: Lsn,
    pub last_ts: Ts,
    pub tables: Vec<TableCheckpoint>,
}

/// What `DurableWal::open` found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Newest valid checkpoint, if any.
    pub checkpoint: Option<CheckpointData>,
    /// WAL records past the checkpoint's low-water mark, in LSN order.
    pub tail: Vec<RecoveredRecord>,
    /// Incomplete trailing frames removed from the last segment.
    pub torn_tail_truncations: u64,
    /// LSN the next append will receive.
    pub next_lsn: Lsn,
}

impl WalRecovery {
    /// Number of records replayed from the WAL tail.
    pub fn replayed_records(&self) -> u64 {
        self.tail.len() as u64
    }

    /// Highest commit timestamp contained in the recovered state.
    pub fn max_ts(&self) -> Ts {
        let ckpt = self.checkpoint.as_ref().map(|c| c.last_ts).unwrap_or(0);
        let tail = self.tail.last().map(|r| r.commit_ts).unwrap_or(0);
        ckpt.max(tail)
    }
}

/// Counters surfaced through the kernel's `MetricsSnapshot` → reports.
#[derive(Debug, Clone, Default)]
pub struct DurableWalStats {
    /// Flush batches made durable (one fsync each).
    pub fsyncs: u64,
    /// Highest LSN guaranteed on disk.
    pub durable_lsn: Lsn,
    /// Median records per fsync batch.
    pub group_commit_p50: f64,
    /// 99th-percentile records per fsync batch.
    pub group_commit_p99: f64,
    /// Full records-per-fsync distribution (mergeable across runs).
    pub group_commit_batches: HistogramSnapshot,
    /// Records replayed from the WAL tail at open.
    pub recovery_replayed_records: u64,
    /// Incomplete trailing frames truncated at open.
    pub torn_tail_truncations: u64,
    /// Checkpoints durably written.
    pub checkpoints: u64,
    /// Sealed segments deleted below the checkpoint low-water mark.
    pub segments_deleted: u64,
    /// Current health-ladder position.
    pub health: HealthState,
    /// Faults injected by the configured [`DiskFaultPlan`].
    pub disk_faults: u64,
    /// Commits shed with [`HatError::Degraded`]/[`HatError::Quarantined`]
    /// by [`DurableWal::admit`].
    pub shed_commits: u64,
    /// Scrub ticks spent outside `Healthy`.
    pub degraded_ticks: u64,
    /// Scrub passes completed (checksum verification / device probes).
    pub scrub_passes: u64,
    /// Active segments quarantined after a failed write or fsync.
    pub quarantined_segments: u64,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected, table-driven)
// ---------------------------------------------------------------------------

/// The standard CRC-32 lookup table for polynomial 0xEDB88320.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// IEEE CRC-32 of `bytes` (the checksum zlib/gzip/Ethernet use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::U64(x) => {
            buf.push(0);
            put_u64(buf, *x);
        }
        Value::U32(x) => {
            buf.push(1);
            put_u32(buf, *x);
        }
        Value::Money(m) => {
            buf.push(2);
            put_u64(buf, m.cents() as u64);
        }
        Value::Str(s) => {
            buf.push(3);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(*b as u8);
        }
    }
}

fn encode_row(buf: &mut Vec<u8>, row: &Row) {
    put_u16(buf, row.len() as u16);
    for v in row.iter() {
        encode_value(buf, v);
    }
}

/// Serializes one commit record's payload (without framing). The
/// participant set (2PC: every commit shard the transaction touched) is a
/// trailing section so single-shard streams pay one byte and pre-shard
/// records (no trailing bytes) decode as participant-free.
fn encode_record_payload(
    lsn: Lsn,
    commit_ts: Ts,
    ops: &[TableOp],
    participants: &[u8],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 * ops.len().max(1));
    put_u64(&mut buf, lsn);
    put_u64(&mut buf, commit_ts);
    put_u32(&mut buf, ops.len() as u32);
    for op in ops {
        let (tag, table, rid, row) = match op {
            TableOp::Insert { table, rid, row } => (0u8, table, rid, row),
            TableOp::Update { table, rid, row } => (1u8, table, rid, row),
        };
        buf.push(tag);
        buf.push(table.index() as u8);
        put_u64(&mut buf, *rid);
        encode_row(&mut buf, row);
    }
    buf.push(participants.len() as u8);
    buf.extend_from_slice(participants);
    buf
}

/// Wraps a payload in `[len][crc32]` framing.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(payload));
    frame.extend_from_slice(payload);
    frame
}

/// Bounded little-endian reader over a byte slice; any overrun or invalid
/// tag decodes to [`HatError::WalCorrupt`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "record truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn corrupt(detail: impl Into<String>) -> HatError {
    HatError::WalCorrupt { detail: detail.into() }
}

/// Bounds-checked little-endian u32 at `off`; a truncated buffer is
/// [`HatError::WalCorrupt`], never a panic (recovery runs on arbitrary
/// crash debris).
fn le_u32(bytes: &[u8], off: usize) -> Result<u32> {
    match off.checked_add(4).and_then(|end| bytes.get(off..end)) {
        Some(s) => Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]])),
        None => Err(corrupt(format!("truncated u32 at offset {off}"))),
    }
}

/// Bounds-checked little-endian u64 at `off` (see [`le_u32`]).
fn le_u64(bytes: &[u8], off: usize) -> Result<u64> {
    match off.checked_add(8).and_then(|end| bytes.get(off..end)) {
        Some(s) => {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            Ok(u64::from_le_bytes(b))
        }
        None => Err(corrupt(format!("truncated u64 at offset {off}"))),
    }
}

fn io_err(ctx: &str, e: std::io::Error) -> HatError {
    HatError::WalCorrupt { detail: format!("{ctx}: {e}") }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::U64(r.u64()?),
        1 => Value::U32(r.u32()?),
        2 => Value::Money(Money::from_cents(r.u64()? as i64)),
        3 => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| corrupt("string value is not utf-8"))?;
            Value::Str(Arc::from(s))
        }
        4 => Value::Bool(r.u8()? != 0),
        tag => return Err(corrupt(format!("unknown value tag {tag}"))),
    })
}

fn decode_row(r: &mut Reader<'_>) -> Result<Row> {
    let ncols = r.u16()? as usize;
    let mut values = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        values.push(decode_value(r)?);
    }
    Ok(values.into())
}

fn decode_table(r: &mut Reader<'_>) -> Result<TableId> {
    let idx = r.u8()? as usize;
    TableId::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| corrupt(format!("unknown table index {idx}")))
}

fn decode_record_payload(payload: &[u8]) -> Result<RecoveredRecord> {
    let mut r = Reader::new(payload);
    let lsn = r.u64()?;
    let commit_ts = r.u64()?;
    let nops = r.u32()? as usize;
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        let tag = r.u8()?;
        let table = decode_table(&mut r)?;
        let rid = r.u64()?;
        let row = decode_row(&mut r)?;
        ops.push(match tag {
            0 => TableOp::Insert { table, rid, row },
            1 => TableOp::Update { table, rid, row },
            t => return Err(corrupt(format!("unknown op tag {t}"))),
        });
    }
    // Trailing participant-set section; absent on pre-shard records.
    let participants = if r.remaining() == 0 {
        Vec::new()
    } else {
        let n = r.u8()? as usize;
        r.take(n)?.to_vec()
    };
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after record payload"));
    }
    Ok(RecoveredRecord { lsn, commit_ts, ops, participants })
}

fn encode_checkpoint_body(data: &CheckpointData) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, data.lsn);
    put_u64(&mut buf, data.last_ts);
    buf.push(data.tables.len() as u8);
    for t in &data.tables {
        buf.push(t.table.index() as u8);
        put_u64(&mut buf, t.rows.len() as u64);
        for (rid, ts, row) in &t.rows {
            put_u64(&mut buf, *rid);
            put_u64(&mut buf, *ts);
            encode_row(&mut buf, row);
        }
    }
    buf
}

fn decode_checkpoint_body(body: &[u8]) -> Result<CheckpointData> {
    let mut r = Reader::new(body);
    let lsn = r.u64()?;
    let last_ts = r.u64()?;
    let ntables = r.u8()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let table = decode_table(&mut r)?;
        let nrows = r.u64()? as usize;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let rid = r.u64()?;
            let ts = r.u64()?;
            rows.push((rid, ts, decode_row(&mut r)?));
        }
        tables.push(TableCheckpoint { table, rows });
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after checkpoint body"));
    }
    Ok(CheckpointData { lsn, last_ts, tables })
}

// ---------------------------------------------------------------------------
// File naming
// ---------------------------------------------------------------------------

fn segment_path(dir: &Path, first_lsn: Lsn) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.seg"))
}

fn checkpoint_path(dir: &Path, lsn: Lsn) -> PathBuf {
    dir.join(format!("ckpt-{lsn:020}.ckpt"))
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

fn sync_dir(dir: &Path, sync: bool) -> Result<()> {
    if sync {
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("fsync wal dir", e))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The durable WAL
// ---------------------------------------------------------------------------

/// Shared state between appenders, durability waiters, the flusher
/// thread, and the checkpointer.
struct FlushState {
    /// Encoded frames awaiting the flusher, in LSN order.
    pending: Vec<(Lsn, Vec<u8>)>,
    /// LSN the next append receives.
    next_lsn: Lsn,
    /// `(lsn, commit_ts)` of the most recent append — the consistent
    /// low-water pair a checkpoint snapshots at.
    last_appended: (Lsn, Ts),
    /// Every record with `lsn <=` this is on disk (or durably recovered).
    durable_lsn: Lsn,
    /// Set by kill points, I/O errors, or [`DurableWal::crash`]: the
    /// simulated process death. No further work is accepted.
    crashed: bool,
    /// Set by Drop for a clean shutdown (flush everything, then exit).
    shutdown: bool,
    kill: Option<KillPoint>,
    fsyncs: u64,
    checkpoints: u64,
    segments_deleted: u64,
    /// Position on the degradation ladder (see [`HealthState`]).
    health: HealthState,
    /// First LSN of a sealed segment a scrub found corrupt, if any:
    /// commits then shed with [`HatError::Quarantined`] instead of the
    /// retryable [`HatError::Degraded`].
    corrupt_segment: Option<Lsn>,
    /// Commits shed by [`DurableWal::admit`].
    shed: u64,
    /// Active segments quarantined after a failed write/fsync.
    quarantined: u64,
    /// Scrub ticks spent outside `Healthy`.
    degraded_ticks: u64,
    /// Completed scrub passes.
    scrub_passes: u64,
}

/// State shared with the flusher thread. The thread holds only this, not
/// the [`DurableWal`] handle, so dropping the last handle can signal
/// shutdown and join the thread.
struct WalShared {
    config: WalConfig,
    state: Mutex<FlushState>,
    /// Wakes the flusher when pending work or shutdown arrives.
    work: Condvar,
    /// Wakes `wait_durable` callers when the durable horizon advances or
    /// the WAL crashes.
    durable: Condvar,
    /// Wakes the scrubber early on shutdown/crash (it otherwise ticks at
    /// `config.scrub_interval`).
    scrub: Condvar,
    /// First LSN of the segment the flusher currently appends to; the
    /// checkpointer must never delete that file.
    active_first_lsn: std::sync::atomic::AtomicU64,
    /// Records per flush batch (lock-free; read by `stats`).
    batch_hist: Histogram,
    /// Fault-injecting I/O layer all file operations go through.
    io: WalIo,
}

/// See the module docs: segment files + group-commit flusher +
/// checkpoints + recovery.
pub struct DurableWal {
    inner: Arc<WalShared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
    scrubber: Mutex<Option<JoinHandle<()>>>,
    recovery_replayed: u64,
    recovery_torn: u64,
}

impl std::fmt::Debug for DurableWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableWal")
            .field("dir", &self.inner.config.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The flusher's file handle plus rotation bookkeeping.
struct ActiveSegment {
    file: File,
    bytes: u64,
}

impl ActiveSegment {
    /// Creates (or truncates) the segment for `first_lsn` and writes its
    /// header, all through the fault-injecting I/O layer. Callers fsync
    /// the directory afterwards if configured.
    fn create(io: &WalIo, dir: &Path, first_lsn: Lsn) -> std::io::Result<Self> {
        let mut file = io.create(&segment_path(dir, first_lsn))?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&first_lsn.to_le_bytes());
        io.write_all(&mut file, &header)?;
        Ok(ActiveSegment { file, bytes: SEGMENT_HEADER_BYTES })
    }
}

impl DurableWal {
    /// Opens (creating if needed) the WAL at `config.dir`, running
    /// recovery: the newest valid checkpoint is loaded, the WAL tail past
    /// it is decoded and CRC-verified, a torn trailing frame is truncated,
    /// and the group-commit flusher thread is started at the recovered
    /// LSN horizon.
    pub fn open(config: WalConfig) -> Result<(Arc<DurableWal>, WalRecovery)> {
        fs::create_dir_all(&config.dir).map_err(|e| io_err("create wal dir", e))?;
        let io = WalIo::new(config.fault_plan.clone());
        let recovery = recover(&config, &io)?;

        let inner = Arc::new(WalShared {
            state: Mutex::new(FlushState {
                pending: Vec::new(),
                next_lsn: recovery.next_lsn,
                last_appended: (recovery.next_lsn - 1, recovery.max_ts()),
                durable_lsn: recovery.next_lsn - 1,
                crashed: false,
                shutdown: false,
                kill: None,
                fsyncs: 0,
                checkpoints: 0,
                segments_deleted: 0,
                health: HealthState::Healthy,
                corrupt_segment: None,
                shed: 0,
                quarantined: 0,
                degraded_ticks: 0,
                scrub_passes: 0,
            }),
            work: Condvar::new(),
            durable: Condvar::new(),
            scrub: Condvar::new(),
            active_first_lsn: std::sync::atomic::AtomicU64::new(recovery.next_lsn),
            batch_hist: Histogram::new(),
            io,
            config,
        });

        // A fresh active segment at the recovered horizon: recovered
        // segments stay sealed, so a second crash can only tear the new
        // file.
        let seg = ActiveSegment::create(&inner.io, &inner.config.dir, recovery.next_lsn)
            .map_err(|e| io_err("create active segment", e))?;
        sync_dir(&inner.config.dir, inner.config.sync)?;

        let thread_shared = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("wal-flusher".into())
            .spawn(move || flusher_loop(thread_shared, seg))
            .map_err(|e| io_err("spawn wal flusher", e))?;
        let scrub_shared = Arc::clone(&inner);
        let scrub_handle = std::thread::Builder::new()
            .name("wal-scrubber".into())
            .spawn(move || scrubber_loop(scrub_shared))
            .map_err(|e| io_err("spawn wal scrubber", e))?;
        let wal = Arc::new(DurableWal {
            inner,
            flusher: Mutex::new(Some(handle)),
            scrubber: Mutex::new(Some(scrub_handle)),
            recovery_replayed: recovery.replayed_records(),
            recovery_torn: recovery.torn_tail_truncations,
        });
        Ok((wal, recovery))
    }

    /// Enqueues one commit record and returns its LSN. Must be called
    /// inside the commit critical section so that LSN order equals
    /// commit-timestamp order. The record is **not** durable until
    /// [`DurableWal::wait_durable`] returns for it.
    pub fn append(&self, commit_ts: Ts, ops: &[TableOp]) -> Result<Lsn> {
        self.append_with(commit_ts, ops, &[])
    }

    /// [`DurableWal::append`] carrying a 2PC participant set: the commit
    /// shards the transaction touched. A cross-shard commit appends one
    /// record — ops of *all* participants — to its coordinator's stream
    /// only, which is the whole in-doubt resolution protocol (see
    /// [`RecoveredRecord::participants`]).
    pub fn append_with(
        &self,
        commit_ts: Ts,
        ops: &[TableOp],
        participants: &[u8],
    ) -> Result<Lsn> {
        let mut st = self.inner.state.lock();
        if st.crashed {
            return Err(HatError::EngineStopped);
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.last_appended = (lsn, commit_ts);
        let frame = encode_frame(&encode_record_payload(lsn, commit_ts, ops, participants));
        st.pending.push((lsn, frame));
        self.inner.work.notify_one();
        Ok(lsn)
    }

    /// Admission control, called by the kernel **before** a transaction
    /// installs anything: sheds the commit with a clean, retryable
    /// [`HatError::Degraded`] when the WAL is degraded/recovering or the
    /// group-commit backlog is at its bound, and with the non-retryable
    /// [`HatError::Quarantined`] when a scrub has confirmed durable-byte
    /// loss. Shedding here (not at [`DurableWal::append`], which runs
    /// after install) is what keeps a shed commit invisible: nothing was
    /// installed, so recovery can never surface half of it.
    pub fn admit(&self) -> Result<()> {
        let mut st = self.inner.state.lock();
        if st.crashed {
            return Err(HatError::EngineStopped);
        }
        if let Some(segment) = st.corrupt_segment {
            st.shed += 1;
            return Err(HatError::Quarantined { segment });
        }
        if st.health != HealthState::Healthy
            || st.pending.len() >= self.inner.config.max_backlog
        {
            st.shed += 1;
            return Err(HatError::Degraded);
        }
        Ok(())
    }

    /// Current position on the health ladder.
    pub fn health(&self) -> HealthState {
        self.inner.state.lock().health
    }

    /// Blocks until `lsn` is on disk (one shared fsync per batch of
    /// waiters). Fails with [`HatError::EngineStopped`] if the WAL
    /// crashed before covering `lsn` — the commit's durability is then
    /// unknown to the caller, exactly like a process crash between write
    /// and acknowledgement. Fails with [`HatError::DurabilityInDoubt`]
    /// if a storage fault degraded the WAL first: the caller's commit is
    /// *installed* (its frame is re-queued and becomes durable on
    /// re-admission), so this is committed-in-doubt — never the clean
    /// pre-install abort [`HatError::Degraded`] signals, and never safe
    /// to blindly re-execute.
    pub fn wait_durable(&self, lsn: Lsn) -> Result<()> {
        let mut st = self.inner.state.lock();
        loop {
            if st.durable_lsn >= lsn {
                return Ok(());
            }
            if st.crashed {
                return Err(HatError::EngineStopped);
            }
            // A storage fault voided this batch's durability claim: the
            // commit was installed but never acknowledged. Waiters fail
            // with the commit-in-doubt error instead of blocking until
            // (if ever) the re-queued frames land on a fresh segment.
            if st.health != HealthState::Healthy {
                return Err(HatError::DurabilityInDoubt);
            }
            self.inner.durable.wait(&mut st);
        }
    }

    /// `(lsn, commit_ts)` of the most recent append — the consistent
    /// pair a checkpoint snapshot is taken at.
    pub fn last_appended(&self) -> (Lsn, Ts) {
        self.inner.state.lock().last_appended
    }

    /// Highest LSN guaranteed on disk.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.state.lock().durable_lsn
    }

    /// Durably writes `data` (tmp + fsync + atomic rename), then deletes
    /// sealed segments entirely below its low-water LSN and superseded
    /// checkpoint files.
    pub fn checkpoint(&self, data: &CheckpointData) -> Result<()> {
        {
            let mut st = self.inner.state.lock();
            if st.crashed {
                return Err(HatError::EngineStopped);
            }
            // Never checkpoint onto sick storage: the tmp write would
            // just fail (or worse, claim coverage of frames that are not
            // durable yet while the flusher backlog drains).
            if st.health != HealthState::Healthy {
                return Err(HatError::Degraded);
            }
            if st.kill == Some(KillPoint::MidCheckpoint) {
                st.kill = None;
                st.crashed = true;
                st.pending.clear();
                drop(st);
                // Simulate dying halfway through the tmp write: a partial
                // file with a valid magic but truncated body.
                let mut body = encode_checkpoint_body(data);
                body.truncate(body.len() / 2);
                let tmp = self.inner.config.dir.join(format!("ckpt-{:020}.tmp", data.lsn));
                let _ = fs::write(&tmp, [CHECKPOINT_MAGIC.as_slice(), &body].concat());
                self.inner.durable.notify_all();
                self.inner.work.notify_all();
                return Err(HatError::EngineStopped);
            }
        }

        let body = encode_checkpoint_body(data);
        let tmp = self.inner.config.dir.join(format!("ckpt-{:020}.tmp", data.lsn));
        let io = &self.inner.io;
        let written = (|| -> std::io::Result<()> {
            let mut file = io.create(&tmp)?;
            let mut buf = Vec::with_capacity(8 + body.len() + 4);
            buf.extend_from_slice(CHECKPOINT_MAGIC);
            buf.extend_from_slice(&body);
            buf.extend_from_slice(&crc32(&body).to_le_bytes());
            io.write_all(&mut file, &buf)?;
            io.sync(&file, self.inner.config.sync)
        })();
        if written.is_err() {
            // A checkpoint failure claims nothing (the tmp is never
            // renamed), but the device is misbehaving: degrade so the
            // scrubber decides when to trust it again.
            let _ = fs::remove_file(&tmp);
            let mut st = self.inner.state.lock();
            st.health = HealthState::Degraded;
            drop(st);
            self.inner.durable.notify_all();
            // Wake the scrubber: with an empty fault plan it parks while
            // healthy and must be told the device went sick for real.
            self.inner.scrub.notify_all();
            return Err(HatError::Degraded);
        }
        fs::rename(&tmp, checkpoint_path(&self.inner.config.dir, data.lsn))
            .map_err(|e| io_err("rename ckpt", e))?;
        sync_dir(&self.inner.config.dir, self.inner.config.sync)?;

        let deleted = self.prune_below(data.lsn)?;
        let mut st = self.inner.state.lock();
        st.checkpoints += 1;
        st.segments_deleted += deleted;
        Ok(())
    }

    /// Deletes sealed segments whose every record is `<= low_water`, plus
    /// checkpoint files older than the one at `low_water`. Returns the
    /// number of segments removed.
    fn prune_below(&self, low_water: Lsn) -> Result<u64> {
        let dir = &self.inner.config.dir;
        let mut segs: Vec<Lsn> = Vec::new();
        let mut old_ckpts: Vec<Lsn> = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| io_err("read wal dir", e))? {
            let entry = entry.map_err(|e| io_err("read wal dir", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(lsn) = parse_numbered(&name, "wal-", ".seg") {
                segs.push(lsn);
            } else if let Some(lsn) = parse_numbered(&name, "ckpt-", ".ckpt") {
                if lsn < low_water {
                    old_ckpts.push(lsn);
                }
            }
        }
        segs.sort_unstable();
        let active = self.inner.active_first_lsn.load(std::sync::atomic::Ordering::Relaxed);
        let mut deleted = 0;
        // Segment i covers [segs[i], segs[i+1] - 1]; deletable when that
        // whole range is at or below the low-water mark and the flusher is
        // not appending to it.
        for w in segs.windows(2) {
            let (first, next_first) = (w[0], w[1]);
            if next_first <= low_water + 1 && first < active {
                fs::remove_file(segment_path(dir, first))
                    .map_err(|e| io_err("delete sealed segment", e))?;
                deleted += 1;
            }
        }
        for lsn in old_ckpts {
            let _ = fs::remove_file(checkpoint_path(dir, lsn));
        }
        Ok(deleted)
    }

    /// Arms a one-shot crash injection point (see [`KillPoint`]).
    pub fn arm_kill(&self, kp: KillPoint) {
        // The kill fires when the flusher next touches a batch (or the
        // checkpointer runs); an idle flusher observes it with the next
        // append's wakeup.
        self.inner.state.lock().kill = Some(kp);
    }

    /// Immediate simulated process death: pending (unflushed) records are
    /// dropped, the flusher stops without a final flush, and all waiters
    /// fail. Disk state is whatever previous fsyncs made durable.
    pub fn crash(&self) {
        let mut st = self.inner.state.lock();
        st.crashed = true;
        st.pending.clear();
        drop(st);
        self.inner.work.notify_all();
        self.inner.durable.notify_all();
        self.inner.scrub.notify_all();
        self.join_flusher();
    }

    /// Whether a crash (injected or real I/O failure) has stopped the WAL.
    pub fn is_crashed(&self) -> bool {
        self.inner.state.lock().crashed
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.inner.config.dir
    }

    /// The configuration this WAL was opened with.
    pub fn config(&self) -> &WalConfig {
        &self.inner.config
    }

    /// Current counters.
    pub fn stats(&self) -> DurableWalStats {
        let batches = self.inner.batch_hist.snapshot();
        let st = self.inner.state.lock();
        DurableWalStats {
            fsyncs: st.fsyncs,
            durable_lsn: st.durable_lsn,
            group_commit_p50: batches.quantile(0.50) as f64,
            group_commit_p99: batches.quantile(0.99) as f64,
            group_commit_batches: batches,
            recovery_replayed_records: self.recovery_replayed,
            torn_tail_truncations: self.recovery_torn,
            checkpoints: st.checkpoints,
            segments_deleted: st.segments_deleted,
            health: st.health,
            disk_faults: self.inner.io.injected(),
            shed_commits: st.shed,
            degraded_ticks: st.degraded_ticks,
            scrub_passes: st.scrub_passes,
            quarantined_segments: st.quarantined,
        }
    }

    fn join_flusher(&self) {
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scrubber.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DurableWal {
    fn drop(&mut self) {
        self.inner.state.lock().shutdown = true;
        self.inner.work.notify_all();
        self.inner.scrub.notify_all();
        self.join_flusher();
    }
}

/// The group-commit flusher: drains whole batches of pending frames,
/// writes them (rotating segments), issues one fsync, then advances the
/// durable horizon and wakes every covered waiter.
///
/// A failed write/fsync no longer kills the WAL: the batch's durability
/// claim is voided, the active segment is quarantined at its durable
/// prefix, the suspect frames are re-queued, and the health ladder drops
/// to `Degraded` ([`degrade_flusher`]). The flusher then parks until the
/// scrubber re-admits the device (`Recovering`), drains the backlog onto
/// a fresh segment, and declares `Healthy` once the horizon catches up.
/// Armed [`KillPoint`]s keep their original terminal-crash semantics.
fn flusher_loop(wal: Arc<WalShared>, seg: ActiveSegment) {
    let die = |wal: &WalShared| {
        let mut st = wal.state.lock();
        st.crashed = true;
        st.pending.clear();
        drop(st);
        wal.durable.notify_all();
    };

    // `None` between a quarantine and the recovery that replaces it.
    let mut seg = Some(seg);

    loop {
        let batch = {
            let mut st = wal.state.lock();
            while (st.pending.is_empty() || st.health == HealthState::Degraded)
                && !st.shutdown
                && !st.crashed
            {
                wal.work.wait(&mut st);
            }
            if st.crashed {
                drop(st);
                wal.durable.notify_all();
                return;
            }
            if st.shutdown && st.health == HealthState::Degraded {
                // Clean shutdown on sick storage: the backlog was never
                // acknowledged, so dropping it honors every claim made.
                return;
            }
            if st.pending.is_empty() {
                // Clean shutdown with nothing left to write.
                if wal.config.sync {
                    if let Some(s) = seg.as_ref() {
                        let _ = s.file.sync_all();
                    }
                }
                return;
            }
            if st.kill == Some(KillPoint::BeforeFlush) {
                st.kill = None;
                st.crashed = true;
                st.pending.clear();
                drop(st);
                wal.durable.notify_all();
                return;
            }
            std::mem::take(&mut st.pending)
        };

        // Harden against the impossible: an empty batch is skipped, not
        // an `expect` panic inside the one thread that must never die.
        let last_lsn = match batch.last() {
            Some((lsn, _)) => *lsn,
            None => continue,
        };
        let count = batch.len() as u64;

        // After a quarantine there is no active segment: start a fresh
        // one at the first re-queued frame (the rewrite-from-memory leg
        // of fsync-failure handling — the old segment is never reused).
        if seg.is_none() {
            let first = batch[0].0;
            let created = ActiveSegment::create(&wal.io, &wal.config.dir, first)
                .and_then(|ns| {
                    if wal.config.sync {
                        File::open(&wal.config.dir).and_then(|d| d.sync_all())?;
                    }
                    Ok(ns)
                });
            match created {
                Ok(ns) => {
                    wal.active_first_lsn.store(first, Ordering::Relaxed);
                    seg = Some(ns);
                }
                Err(_) => {
                    if !degrade_flusher(&wal, None, batch, 0, None) {
                        die(&wal);
                        return;
                    }
                    continue;
                }
            }
        }
        let mut s = match seg.take() {
            Some(s) => s,
            None => continue,
        };

        // `synced_upto`: batch frames below this index sit in sealed,
        // fsynced segments and are durable whatever happens next.
        // `batch_start`: file offset of this batch's first frame within
        // the *current* segment — the truncation point that restores the
        // segment to its durable prefix on failure.
        let mut synced_upto = 0usize;
        let mut batch_start = s.bytes;
        // `(suspect_from, truncate_current)` on failure.
        let mut failure: Option<(usize, bool)> = None;
        for (i, (lsn, frame)) in batch.iter().enumerate() {
            if s.bytes >= wal.config.segment_bytes {
                // Seal the full segment and rotate to a new one starting
                // at this record's LSN.
                if wal.io.sync(&s.file, wal.config.sync).is_err() {
                    failure = Some((synced_upto, true));
                    break;
                }
                synced_upto = i;
                let rotated = ActiveSegment::create(&wal.io, &wal.config.dir, *lsn)
                    .and_then(|ns| {
                        if wal.config.sync {
                            File::open(&wal.config.dir).and_then(|d| d.sync_all())?;
                        }
                        Ok(ns)
                    });
                match rotated {
                    Ok(ns) => {
                        wal.active_first_lsn.store(*lsn, Ordering::Relaxed);
                        s = ns;
                        batch_start = s.bytes;
                    }
                    Err(_) => {
                        // The old segment sealed cleanly — everything in
                        // it is durable; only the unwritten tail is
                        // suspect, and there is nothing to truncate.
                        failure = Some((i, false));
                        break;
                    }
                }
            }
            if wal.io.write_all(&mut s.file, frame).is_err() {
                failure = Some((synced_upto, true));
                break;
            }
            s.bytes += frame.len() as u64;
        }

        if failure.is_none() {
            let torn_kill = {
                let mut st = wal.state.lock();
                if st.kill == Some(KillPoint::TornFlush) {
                    st.kill = None;
                    true
                } else {
                    false
                }
            };
            if torn_kill {
                // Written but never fsynced: the harness may now shear
                // the file at an arbitrary byte to model a torn page.
                die(&wal);
                return;
            }
            if wal.io.sync(&s.file, wal.config.sync).is_err() {
                // fsyncgate: this fsync's failure voids the whole
                // unsynced suffix of the batch — never re-fsync it.
                failure = Some((synced_upto, true));
            }
        }

        if let Some((suspect_from, truncate)) = failure {
            let trunc_to = if truncate { Some(batch_start) } else { None };
            if !degrade_flusher(&wal, Some(s), batch, suspect_from, trunc_to) {
                die(&wal);
                return;
            }
            continue;
        }

        wal.batch_hist.record(count);
        let mut st = wal.state.lock();
        st.durable_lsn = last_lsn;
        st.fsyncs += 1;
        if st.health == HealthState::Recovering && st.pending.is_empty() {
            // The re-queued backlog is fully rewritten and fsynced on the
            // fresh segment: re-admission complete.
            st.health = HealthState::Healthy;
        }
        let after_kill = st.kill == Some(KillPoint::AfterFlush);
        if after_kill {
            st.kill = None;
            st.crashed = true;
            st.pending.clear();
        }
        drop(st);
        wal.durable.notify_all();
        if after_kill {
            return;
        }
        seg = Some(s);
    }
}

/// Voids the durability claim of `batch[suspect_from..]` after a failed
/// write/fsync: truncates the active segment back to its durable prefix
/// (`truncate_to`), seals and quarantines it, advances the durable
/// horizon over the prefix that *did* land in sealed+fsynced segments,
/// re-queues the suspect frames (to be rewritten from memory onto a
/// fresh segment — never re-fsynced in place), and walks the health
/// ladder to `Degraded`. Returns `false` when even the truncation
/// failed, in which case the caller must fall back to a terminal crash.
fn degrade_flusher(
    wal: &WalShared,
    seg: Option<ActiveSegment>,
    mut batch: Vec<(Lsn, Vec<u8>)>,
    suspect_from: usize,
    truncate_to: Option<u64>,
) -> bool {
    if let (Some(s), Some(off)) = (seg.as_ref(), truncate_to) {
        if s.file.set_len(off).is_err() {
            return false;
        }
    }
    // Dropping the handle seals the quarantined segment at its durable
    // prefix; the flusher opens a fresh file on re-admission.
    drop(seg);
    let durable_to =
        if suspect_from > 0 { Some(batch[suspect_from - 1].0) } else { None };
    let mut requeue = batch.split_off(suspect_from);
    let mut st = wal.state.lock();
    if let Some(lsn) = durable_to {
        if lsn > st.durable_lsn {
            st.durable_lsn = lsn;
        }
    }
    st.health = HealthState::Degraded;
    if truncate_to.is_some() {
        st.quarantined += 1;
    }
    // Suspect frames go back ahead of anything appended since, keeping
    // the LSN chain contiguous for the eventual rewrite.
    requeue.append(&mut st.pending);
    st.pending = requeue;
    // Point the checkpointer's do-not-delete marker at the first frame
    // the fresh segment will hold.
    let next_first = st.pending.first().map(|(l, _)| *l).unwrap_or(st.next_lsn);
    wal.active_first_lsn.store(next_first, Ordering::Relaxed);
    drop(st);
    // Waiters observe `Degraded` and fail with the commit-in-doubt
    // error; admission control sheds new commits before they install
    // anything. The scrubber may be parked (empty fault plan) — wake it
    // so it drives re-admission.
    wal.durable.notify_all();
    wal.scrub.notify_all();
    true
}

/// The background scrubber: ticks at `config.scrub_interval`, counts
/// degraded time, and drives re-admission. A degraded WAL returns to
/// service only when every sealed segment re-verifies its checksums AND
/// a fresh write+fsync probe succeeds — never by trusting a retried
/// fsync of old data. A sealed segment that fails verification pins the
/// WAL in quarantine ([`HatError::Quarantined`]) for an operator.
///
/// With an empty fault plan the scrubber parks while `Healthy` instead
/// of ticking: a fault-free benchmark run pays zero background I/O and
/// CPU for it. Degrade paths (`degrade_flusher`, a failed checkpoint)
/// notify `scrub` to wake it when a real device failure needs it.
fn scrubber_loop(wal: Arc<WalShared>) {
    let mut tick: u64 = 0;
    loop {
        {
            let mut st = wal.state.lock();
            if st.shutdown || st.crashed {
                return;
            }
            if st.health == HealthState::Healthy && wal.config.fault_plan.is_empty() {
                wal.scrub.wait(&mut st);
            } else {
                wal.scrub.wait_for(&mut st, wal.config.scrub_interval);
            }
            if st.shutdown || st.crashed {
                return;
            }
        }
        tick += 1;
        let health = {
            let mut st = wal.state.lock();
            if st.health != HealthState::Healthy {
                st.degraded_ticks += 1;
            }
            st.health
        };
        match health {
            HealthState::Degraded => {
                let verified = verify_sealed_segments(&wal);
                let probe_ok = verified.is_ok() && probe_device(&wal).is_ok();
                let mut st = wal.state.lock();
                st.scrub_passes += 1;
                match verified {
                    Err(segment) => {
                        // Durable bytes are gone: hold quarantine until an
                        // operator intervenes.
                        st.corrupt_segment = Some(segment);
                    }
                    Ok(()) if probe_ok => {
                        st.corrupt_segment = None;
                        if st.pending.is_empty() {
                            st.health = HealthState::Healthy;
                        } else {
                            st.health = HealthState::Recovering;
                        }
                        drop(st);
                        wal.work.notify_all();
                    }
                    Ok(()) => {}
                }
            }
            // A light periodic pass while healthy: bit-rot is noticed
            // before the next recovery depends on the bytes.
            HealthState::Healthy if tick.is_multiple_of(64) => {
                let verified = verify_sealed_segments(&wal);
                let mut st = wal.state.lock();
                st.scrub_passes += 1;
                if let Err(segment) = verified {
                    st.corrupt_segment = Some(segment);
                    st.health = HealthState::Degraded;
                    drop(st);
                    wal.durable.notify_all();
                }
            }
            _ => {}
        }
    }
}

/// Re-verifies the frame CRCs of every sealed segment (structure and
/// checksums; payloads are not decoded). Returns the first LSN of the
/// first bad segment. Reads go through the fault-injection layer, so
/// scheduled bit-rot is caught here like anywhere else.
fn verify_sealed_segments(wal: &WalShared) -> std::result::Result<(), Lsn> {
    let active = wal.active_first_lsn.load(Ordering::Relaxed);
    let entries = match fs::read_dir(&wal.config.dir) {
        Ok(e) => e,
        // An unlistable directory is the probe's problem, not proof of
        // lost durable bytes.
        Err(_) => return Ok(()),
    };
    let mut firsts: Vec<Lsn> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| parse_numbered(&e.file_name().to_string_lossy(), "wal-", ".seg"))
        .filter(|&first| first < active)
        .collect();
    firsts.sort_unstable();
    for first in firsts {
        if verify_segment(wal, first).is_err() {
            return Err(first);
        }
    }
    Ok(())
}

fn verify_segment(wal: &WalShared, first_lsn: Lsn) -> Result<()> {
    let path = segment_path(&wal.config.dir, first_lsn);
    let bytes = match wal.io.read(&path) {
        Ok(bytes) => bytes,
        // The checkpointer races this scan: it may prune a sealed
        // segment below the low-water mark between the directory listing
        // and this read. A vanished file is benign GC, not durable-byte
        // loss — only a segment that exists and fails its checks may
        // quarantine the WAL.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(io_err("scrub read", e)),
    };
    if bytes.len() < SEGMENT_HEADER_BYTES as usize || &bytes[..8] != SEGMENT_MAGIC {
        return Err(corrupt("bad header"));
    }
    let mut offset = SEGMENT_HEADER_BYTES as usize;
    while offset < bytes.len() {
        let len = le_u32(&bytes, offset)? as usize;
        let crc = le_u32(&bytes, offset + 4)?;
        let payload = offset
            .checked_add(FRAME_HEADER_BYTES)
            .and_then(|start| start.checked_add(len).map(|end| (start, end)))
            .and_then(|(start, end)| bytes.get(start..end))
            .ok_or_else(|| corrupt("torn frame in sealed segment"))?;
        if crc32(payload) != crc {
            return Err(HatError::ChecksumMismatch { lsn: first_lsn });
        }
        offset += FRAME_HEADER_BYTES + len;
    }
    Ok(())
}

/// Writes and fsyncs a small probe file through the fault-injection
/// layer: the device is considered writable again only when a *fresh*
/// write succeeds end to end. Probes use the non-advancing
/// [`WalIo::probe_gate`] so their wall-clock cadence never shifts where
/// the flusher's own ops land on the fault clocks (a failed probe
/// consumes the covering window instead — that is what lets a transient
/// window expire while the flusher is parked).
fn probe_device(wal: &WalShared) -> std::io::Result<()> {
    let path = wal.config.dir.join("probe.tmp");
    let result = (|| {
        wal.io.probe_gate(IoClass::Write)?;
        let mut f =
            OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        f.write_all(b"hat-scrub-probe")?;
        wal.io.probe_gate(IoClass::Sync)?;
        if wal.config.sync {
            f.sync_all()
        } else {
            Ok(())
        }
    })();
    let _ = fs::remove_file(&path);
    result
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Scans `config.dir`: loads the newest valid checkpoint, replays the WAL
/// tail, truncates a torn final frame, and removes leftover `.tmp` files.
///
/// Every byte is read through the [`WalIo`] fault-injection layer, and
/// every slice access is bounds-checked: arbitrarily truncated or
/// bit-flipped input yields `Ok` (torn tail) or a classified
/// [`HatError::WalCorrupt`]/[`HatError::ChecksumMismatch`] — never a
/// panic, and never a ghost commit.
fn recover(config: &WalConfig, io: &WalIo) -> Result<WalRecovery> {
    let mut seg_lsns: Vec<Lsn> = Vec::new();
    let mut ckpt_lsns: Vec<Lsn> = Vec::new();
    for entry in fs::read_dir(&config.dir).map_err(|e| io_err("read wal dir", e))? {
        let entry = entry.map_err(|e| io_err("read wal dir", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(lsn) = parse_numbered(&name, "wal-", ".seg") {
            seg_lsns.push(lsn);
        } else if let Some(lsn) = parse_numbered(&name, "ckpt-", ".ckpt") {
            ckpt_lsns.push(lsn);
        } else if name.ends_with(".tmp") {
            // A checkpoint the crash interrupted before its atomic
            // rename; never valid, always discarded.
            let _ = fs::remove_file(entry.path());
        }
    }
    seg_lsns.sort_unstable();
    ckpt_lsns.sort_unstable();

    let checkpoint = match ckpt_lsns.last() {
        Some(&lsn) => Some(load_checkpoint(io, &checkpoint_path(&config.dir, lsn), lsn)?),
        None => None,
    };
    let start_lsn = checkpoint.as_ref().map(|c| c.lsn + 1).unwrap_or(1);

    if let Some(&first) = seg_lsns.first() {
        if first > start_lsn {
            return Err(corrupt(format!(
                "gap between checkpoint (low water {}) and first segment (lsn {first})",
                start_lsn - 1
            )));
        }
    }

    let mut tail: Vec<RecoveredRecord> = Vec::new();
    let mut torn = 0u64;
    let mut next_lsn = start_lsn;
    let mut expected = seg_lsns.first().copied().unwrap_or(start_lsn);
    for (i, &first_lsn) in seg_lsns.iter().enumerate() {
        if first_lsn != expected {
            return Err(corrupt(format!(
                "segment chain broken: expected lsn {expected}, found segment at {first_lsn}"
            )));
        }
        let is_last = i == seg_lsns.len() - 1;
        let scanned = scan_segment(config, io, first_lsn, is_last)?;
        torn += scanned.torn;
        expected = first_lsn + scanned.records.len() as u64;
        for rec in scanned.records {
            next_lsn = rec.lsn + 1;
            if rec.lsn >= start_lsn {
                tail.push(rec);
            }
        }
    }
    next_lsn = next_lsn.max(start_lsn);

    Ok(WalRecovery { checkpoint, tail, torn_tail_truncations: torn, next_lsn })
}

struct ScannedSegment {
    records: Vec<RecoveredRecord>,
    torn: u64,
}

/// Decodes every frame of one segment. A short trailing frame is torn:
/// in the last segment it is truncated away and counted; in a sealed
/// segment it is corruption. A complete frame with a bad CRC is
/// [`HatError::ChecksumMismatch`] everywhere.
fn scan_segment(
    config: &WalConfig,
    io: &WalIo,
    first_lsn: Lsn,
    is_last: bool,
) -> Result<ScannedSegment> {
    let path = segment_path(&config.dir, first_lsn);
    let bytes = io.read(&path).map_err(|e| io_err("read segment", e))?;
    if bytes.len() < SEGMENT_HEADER_BYTES as usize || &bytes[..8] != SEGMENT_MAGIC {
        return Err(corrupt(format!("segment {} has a bad header", path.display())));
    }
    let header_lsn = le_u64(&bytes, 8)?;
    if header_lsn != first_lsn {
        return Err(corrupt(format!(
            "segment {} header lsn {header_lsn} does not match its name",
            path.display()
        )));
    }

    let mut records = Vec::new();
    let mut torn = 0u64;
    let mut offset = SEGMENT_HEADER_BYTES as usize;
    let mut expected = first_lsn;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        let complete = remaining >= FRAME_HEADER_BYTES && {
            let len = le_u32(&bytes, offset)? as usize;
            // `checked_add` guards against a bit-flipped length field
            // overflowing the comparison on 32-bit targets.
            FRAME_HEADER_BYTES
                .checked_add(len)
                .map(|need| remaining >= need)
                .unwrap_or(false)
        };
        if !complete {
            if !is_last {
                return Err(corrupt(format!(
                    "torn frame inside sealed segment {}",
                    path.display()
                )));
            }
            // Torn tail: shear the incomplete frame off so the segment
            // ends at the last whole record.
            OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(offset as u64))
                .map_err(|e| io_err("truncate torn tail", e))?;
            torn += 1;
            break;
        }
        let len = le_u32(&bytes, offset)? as usize;
        let crc = le_u32(&bytes, offset + 4)?;
        let payload = offset
            .checked_add(FRAME_HEADER_BYTES)
            .and_then(|start| start.checked_add(len).map(|end| (start, end)))
            .and_then(|(start, end)| bytes.get(start..end))
            .ok_or_else(|| corrupt("frame payload out of bounds"))?;
        if crc32(payload) != crc {
            return Err(HatError::ChecksumMismatch { lsn: expected });
        }
        let rec = decode_record_payload(payload)?;
        if rec.lsn != expected {
            return Err(corrupt(format!(
                "lsn discontinuity in {}: expected {expected}, found {}",
                path.display(),
                rec.lsn
            )));
        }
        expected += 1;
        offset += FRAME_HEADER_BYTES + len;
        records.push(rec);
    }
    Ok(ScannedSegment { records, torn })
}

fn load_checkpoint(io: &WalIo, path: &Path, lsn: Lsn) -> Result<CheckpointData> {
    let bytes = io.read(path).map_err(|e| io_err("read checkpoint", e))?;
    if bytes.len() < 12 || &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt(format!("checkpoint {} has a bad header", path.display())));
    }
    let body = &bytes[8..bytes.len() - 4];
    let crc = le_u32(&bytes, bytes.len() - 4)?;
    if crc32(body) != crc {
        return Err(HatError::ChecksumMismatch { lsn });
    }
    let data = decode_checkpoint_body(body)?;
    if data.lsn != lsn {
        return Err(corrupt(format!(
            "checkpoint {} body lsn {} does not match its name",
            path.display(),
            data.lsn
        )));
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("hat-dwal-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg(dir: &Path) -> WalConfig {
        WalConfig { sync: false, ..WalConfig::new(dir) }
    }

    fn op(v: u32) -> TableOp {
        TableOp::Insert {
            table: TableId::History,
            rid: v as u64,
            row: row_from([
                Value::U32(v),
                Value::U64(v as u64 * 10),
                Value::Money(Money::from_cents(-25)),
                Value::Str(Arc::from("note")),
                Value::Bool(v.is_multiple_of(2)),
            ]),
        }
    }

    fn append_n(wal: &DurableWal, n: u32) {
        for i in 0..n {
            let lsn = wal.append(i as u64 + 2, &[op(i)]).unwrap();
            wal.wait_durable(lsn).unwrap();
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip_preserves_all_value_types() {
        let ops = vec![op(1), TableOp::Update { table: TableId::Supplier, rid: 3, row: row_from([Value::U32(9)]) }];
        let payload = encode_record_payload(42, 17, &ops, &[0, 2]);
        let rec = decode_record_payload(&payload).unwrap();
        assert_eq!(rec.lsn, 42);
        assert_eq!(rec.commit_ts, 17);
        assert_eq!(rec.participants, vec![0, 2]);
        assert_eq!(rec.ops.len(), 2);
        match &rec.ops[0] {
            TableOp::Insert { table, rid, row } => {
                assert_eq!(*table, TableId::History);
                assert_eq!(*rid, 1);
                assert_eq!(row[0], Value::U32(1));
                assert_eq!(row[1], Value::U64(10));
                assert_eq!(row[2], Value::Money(Money::from_cents(-25)));
                assert_eq!(row[3].as_str().unwrap(), "note");
                assert_eq!(row[4], Value::Bool(false));
            }
            other => panic!("wrong op {other:?}"),
        }
        match &rec.ops[1] {
            TableOp::Update { table, rid, .. } => {
                assert_eq!(*table, TableId::Supplier);
                assert_eq!(*rid, 3);
            }
            other => panic!("wrong op {other:?}"),
        }
    }

    #[test]
    fn append_flush_reopen_recovers_everything() {
        let dir = test_dir("reopen");
        {
            let (wal, rec) = DurableWal::open(cfg(&dir)).unwrap();
            assert!(rec.checkpoint.is_none());
            assert_eq!(rec.next_lsn, 1);
            append_n(&wal, 20);
            assert_eq!(wal.durable_lsn(), 20);
        }
        let (wal, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 20);
        assert_eq!(rec.tail[0].lsn, 1);
        assert_eq!(rec.tail[19].lsn, 20);
        assert_eq!(rec.next_lsn, 21);
        assert_eq!(rec.torn_tail_truncations, 0);
        assert_eq!(wal.stats().recovery_replayed_records, 20);
    }

    #[test]
    fn segments_rotate_and_recover_across_files() {
        let dir = test_dir("rotate");
        let config = WalConfig { segment_bytes: 256, ..cfg(&dir) };
        {
            let (wal, _) = DurableWal::open(config.clone()).unwrap();
            append_n(&wal, 40);
        }
        let segs = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".seg")
            })
            .count();
        assert!(segs > 2, "expected rotation, got {segs} segment(s)");
        let (_, rec) = DurableWal::open(config).unwrap();
        assert_eq!(rec.tail.len(), 40);
        assert_eq!(rec.tail.last().unwrap().lsn, 40);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = test_dir("torn");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 5);
        }
        // Shear the newest non-empty segment mid-frame (the last segment
        // is the empty one the second open created; records live in the
        // previous one).
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.to_string_lossy().ends_with(".seg"))
            .collect();
        segs.sort();
        let target = segs
            .iter()
            .rev()
            .find(|p| fs::metadata(p).unwrap().len() > SEGMENT_HEADER_BYTES)
            .unwrap();
        let len = fs::metadata(target).unwrap().len();
        OpenOptions::new().write(true).open(target).unwrap().set_len(len - 3).unwrap();

        let (wal, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.torn_tail_truncations, 1);
        assert_eq!(rec.tail.len(), 4, "last record sheared off");
        assert_eq!(rec.next_lsn, 5);
        assert_eq!(wal.stats().torn_tail_truncations, 1);
        drop(wal);
        // After truncation the directory recovers cleanly again.
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.torn_tail_truncations, 0);
        assert_eq!(rec.tail.len(), 4);
    }

    #[test]
    fn bit_flip_fails_with_checksum_mismatch() {
        let dir = test_dir("flip");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 3);
        }
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        // Flip one payload bit of the second record (well past the first
        // frame's header).
        let idx = bytes.len() - 5;
        bytes[idx] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let err = DurableWal::open(cfg(&dir)).unwrap_err();
        assert!(
            matches!(err, HatError::ChecksumMismatch { .. }),
            "got {err:?}"
        );
        assert!(!err.is_retryable());
    }

    #[test]
    fn garbage_header_is_wal_corrupt() {
        let dir = test_dir("garbage");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 1);
        }
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[0] = b'X';
        fs::write(&seg, &bytes).unwrap();
        let err = DurableWal::open(cfg(&dir)).unwrap_err();
        assert!(matches!(err, HatError::WalCorrupt { .. }), "got {err:?}");
    }

    #[test]
    fn checkpoint_truncates_sealed_segments_and_bounds_replay() {
        let dir = test_dir("ckpt");
        let config = WalConfig { segment_bytes: 256, ..cfg(&dir) };
        {
            let (wal, _) = DurableWal::open(config.clone()).unwrap();
            append_n(&wal, 40);
            let (lsn, ts) = wal.last_appended();
            wal.checkpoint(&CheckpointData {
                lsn,
                last_ts: ts,
                tables: vec![TableCheckpoint {
                    table: TableId::History,
                    rows: vec![(0, 2, row_from([Value::U32(7)]))],
                }],
            })
            .unwrap();
            let stats = wal.stats();
            assert_eq!(stats.checkpoints, 1);
            assert!(stats.segments_deleted > 0, "sealed segments below low water");
            // The log keeps accepting appends after a checkpoint.
            let lsn = wal.append(100, &[op(41)]).unwrap();
            wal.wait_durable(lsn).unwrap();
        }
        let (_, rec) = DurableWal::open(config).unwrap();
        let ckpt = rec.checkpoint.expect("checkpoint recovered");
        assert_eq!(ckpt.lsn, 40);
        assert_eq!(ckpt.last_ts, 41);
        assert_eq!(ckpt.tables[0].rows[0].2[0], Value::U32(7));
        assert_eq!(rec.tail.len(), 1, "only the post-checkpoint record replays");
        assert_eq!(rec.tail[0].lsn, 41);
        assert_eq!(rec.next_lsn, 42);
    }

    #[test]
    fn kill_before_flush_loses_only_unacknowledged_records() {
        let dir = test_dir("kill-before");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 3);
            wal.arm_kill(KillPoint::BeforeFlush);
            let lsn = wal.append(50, &[op(99)]).unwrap();
            assert_eq!(wal.wait_durable(lsn), Err(HatError::EngineStopped));
            assert!(wal.is_crashed());
            assert!(wal.append(51, &[op(100)]).is_err(), "no appends after death");
        }
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 3, "acknowledged records survive, the doomed one doesn't");
    }

    #[test]
    fn kill_after_flush_preserves_acknowledged_batch() {
        let dir = test_dir("kill-after");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 2);
            wal.arm_kill(KillPoint::AfterFlush);
            let lsn = wal.append(50, &[op(9)]).unwrap();
            assert_eq!(wal.wait_durable(lsn), Ok(()), "fsync completed before death");
        }
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 3);
    }

    #[test]
    fn mid_checkpoint_kill_leaves_no_visible_checkpoint() {
        let dir = test_dir("kill-ckpt");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 4);
            wal.arm_kill(KillPoint::MidCheckpoint);
            let (lsn, ts) = wal.last_appended();
            let err = wal
                .checkpoint(&CheckpointData { lsn, last_ts: ts, tables: vec![] })
                .unwrap_err();
            assert_eq!(err, HatError::EngineStopped);
        }
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert!(rec.checkpoint.is_none(), "partial tmp must be ignored");
        assert_eq!(rec.tail.len(), 4, "wal tail still replays fully");
        let tmps = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(tmps, 0, "recovery removes the partial tmp");
    }

    #[test]
    fn group_commit_batches_concurrent_waiters() {
        let dir = test_dir("group");
        let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for j in 0..50u32 {
                        let lsn = wal.append(2 + (i * 50 + j) as u64, &[op(j)]).unwrap();
                        wal.wait_durable(lsn).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.durable_lsn, 400);
        assert!(
            stats.fsyncs < 400,
            "some of the 400 commits must share an fsync (got {})",
            stats.fsyncs
        );
        assert!(stats.group_commit_p99 >= stats.group_commit_p50);
        assert!(stats.group_commit_p50 >= 1.0);
    }

    #[test]
    fn any_byte_prefix_recovers_a_record_prefix() {
        // Satellite property: shear a valid segment at EVERY byte offset;
        // recovery must yield an exact prefix of the committed history and
        // never fail.
        let dir = test_dir("prefix");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 6);
        }
        let seg = segment_path(&dir, 1);
        let full = fs::read(&seg).unwrap();
        let scratch = test_dir("prefix-scratch");
        for cut in SEGMENT_HEADER_BYTES as usize..=full.len() {
            let _ = fs::remove_dir_all(&scratch);
            fs::create_dir_all(&scratch).unwrap();
            fs::write(segment_path(&scratch, 1), &full[..cut]).unwrap();
            let (_, rec) = DurableWal::open(cfg(&scratch)).unwrap();
            // An exact prefix: lsns 1..=n with payloads intact.
            for (i, r) in rec.tail.iter().enumerate() {
                assert_eq!(r.lsn, i as u64 + 1, "cut at {cut}");
                assert_eq!(r.commit_ts, i as u64 + 2, "cut at {cut}");
            }
            assert_eq!(
                rec.torn_tail_truncations,
                u64::from(rec.tail.len() < 6 && cut > SEGMENT_HEADER_BYTES as usize && {
                    // A cut exactly on a frame boundary is a clean end,
                    // not a torn record.
                    let mut off = SEGMENT_HEADER_BYTES as usize;
                    let mut on_boundary = cut == off;
                    while off < cut {
                        let len = u32::from_le_bytes(full[off..off + 4].try_into().unwrap())
                            as usize;
                        off += FRAME_HEADER_BYTES + len;
                        if off == cut {
                            on_boundary = true;
                        }
                    }
                    !on_boundary
                }),
                "cut at {cut}"
            );
        }
        let _ = fs::remove_dir_all(&scratch);
    }

    #[test]
    fn crash_discards_pending_without_flush() {
        let dir = test_dir("crash");
        let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
        append_n(&wal, 2);
        wal.crash();
        assert!(wal.is_crashed());
        assert_eq!(wal.append(9, &[op(1)]), Err(HatError::EngineStopped));
        drop(wal);
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 2);
    }

    // -- disk-fault injection & graceful degradation ------------------------

    #[test]
    fn fsync_fault_degrades_then_scrubber_readmits() {
        let dir = test_dir("fsync-fault");
        // Sync-clock ops are batch fsyncs only (per-class clocks): each
        // serial single-record batch is one fsync, so op 6 is the 7th
        // batch's. The second window op is consumed by the scrubber's
        // failed probe, so exactly one durability claim is voided.
        let plan = DiskFaultPlan::new()
            .with(DiskFault { kind: DiskFaultKind::FsyncFail, at_op: 6, for_ops: 2 });
        let config = WalConfig {
            fault_plan: plan,
            scrub_interval: Duration::from_millis(1),
            ..cfg(&dir)
        };
        let (wal, _) = DurableWal::open(config).unwrap();
        let mut acked: Vec<Lsn> = Vec::new();
        let mut shed = 0u32;
        let mut i = 0u32;
        while acked.len() < 12 {
            i += 1;
            assert!(i < 10_000, "scrubber never re-admitted the device");
            if wal.admit().is_err() {
                shed += 1;
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let lsn = wal.append(i as u64 + 1, &[op(i)]).unwrap();
            match wal.wait_durable(lsn) {
                Ok(()) => acked.push(lsn),
                // Post-install failures are committed-in-doubt, never the
                // clean pre-install `Degraded` (a client honoring the
                // contract would double-apply on blind retry otherwise).
                Err(HatError::DurabilityInDoubt) => shed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let stats = wal.stats();
        assert!(stats.disk_faults >= 1, "fault never injected");
        assert!(shed >= 1, "failed fsync never voided a durability claim");
        assert_eq!(stats.quarantined_segments, 1);
        assert!(stats.scrub_passes >= 1);
        assert!(stats.degraded_ticks >= 1);
        assert_eq!(wal.health(), HealthState::Healthy);
        drop(wal);
        // Reopen on healed storage: every acked commit survived, and
        // nothing appears that was never appended.
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        let recovered: std::collections::HashSet<Lsn> =
            rec.tail.iter().map(|r| r.lsn).collect();
        for lsn in &acked {
            assert!(recovered.contains(lsn), "acked lsn {lsn} lost");
        }
        assert!(recovered.len() <= i as usize, "ghost commits recovered");
    }

    #[test]
    fn persistent_enospc_sheds_writes_but_stays_up() {
        let dir = test_dir("enospc");
        // Write-clock ops: segment create (0), header (1), first batch's
        // frame (2) — the disk fills at op 3 (the second batch's write)
        // and never frees: the WAL must shed, not crash.
        let plan = DiskFaultPlan::new().with(DiskFault {
            kind: DiskFaultKind::WriteEnospc,
            at_op: 3,
            for_ops: u64::MAX,
        });
        let config = WalConfig {
            fault_plan: plan,
            scrub_interval: Duration::from_millis(1),
            ..cfg(&dir)
        };
        let (wal, _) = DurableWal::open(config).unwrap();
        let l1 = wal.append(2, &[op(1)]).unwrap();
        wal.wait_durable(l1).unwrap();
        let l2 = wal.append(3, &[op(2)]).unwrap();
        // The wait-path error is committed-in-doubt (l2 is installed and
        // re-queued); the admission-path error is a clean retryable abort.
        let err = wal.wait_durable(l2).unwrap_err();
        assert_eq!(err, HatError::DurabilityInDoubt);
        assert!(err.is_commit_in_doubt() && err.is_retryable());
        // The scrubber keeps probing, but the device never heals.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(wal.health(), HealthState::Degraded);
        let shed_err = wal.admit().unwrap_err();
        assert_eq!(shed_err, HatError::Degraded);
        assert!(shed_err.is_retryable() && !shed_err.is_commit_in_doubt());
        assert!(!wal.is_crashed(), "a full disk must degrade, not crash");
        let stats = wal.stats();
        assert_eq!(stats.durable_lsn, 1);
        assert!(stats.disk_faults >= 1);
        assert!(stats.scrub_passes >= 1);
        assert!(stats.degraded_ticks >= 1);
        assert!(stats.shed_commits >= 1);
        assert_eq!(stats.quarantined_segments, 1);
        drop(wal);
        // Reopen on healed storage: the acked commit survived; the shed
        // one was never written — no ghosts.
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.tail[0].lsn, 1);
    }

    #[test]
    fn full_backlog_sheds_commits_while_healthy() {
        let dir = test_dir("backlog");
        // Stall the flusher's writes so appends pile up behind it.
        let plan = DiskFaultPlan::new().with(DiskFault {
            kind: DiskFaultKind::WriteStall(Duration::from_millis(100)),
            at_op: 2,
            for_ops: 4,
        });
        let config = WalConfig { fault_plan: plan, max_backlog: 4, ..cfg(&dir) };
        let (wal, _) = DurableWal::open(config).unwrap();
        let mut shed = false;
        let mut last = 0;
        for i in 0..64u32 {
            if wal.admit().is_err() {
                shed = true;
                break;
            }
            last = wal.append(i as u64 + 2, &[op(i)]).unwrap();
        }
        assert!(shed, "backlog bound never shed a commit");
        // Overload is not a fault: health stays green, and everything
        // admitted drains once the stall clears.
        assert_eq!(wal.health(), HealthState::Healthy);
        assert!(wal.stats().shed_commits >= 1);
        wal.wait_durable(last).unwrap();
    }

    #[test]
    fn scrub_treats_vanished_segment_as_benign_gc() {
        // The scrubber lists sealed segments without the state lock, so
        // the checkpointer may prune one below the low-water mark between
        // the listing and the read. A vanished file must verify as benign
        // GC — treating it as corruption would pin `admit()` on the
        // terminal `Quarantined` for what was routine cleanup.
        let dir = test_dir("scrub-race");
        let config = WalConfig { segment_bytes: 256, ..cfg(&dir) };
        let (wal, _) = DurableWal::open(config).unwrap();
        append_n(&wal, 40);
        assert!(
            verify_segment(&wal.inner, 999_999).is_ok(),
            "a pruned segment is not durable-byte loss"
        );
        // The WAL still serves and stays healthy after such a scan.
        assert_eq!(wal.health(), HealthState::Healthy);
        append_n(&wal, 1);
    }

    #[test]
    fn idle_scrubber_does_no_background_io_without_a_fault_plan() {
        // Fault-free benchmark configs must not pay for the scrubber: with
        // an empty plan it parks instead of ticking, so a measured run has
        // zero background verify reads competing with the workload.
        let dir = test_dir("idle-scrub");
        let config = WalConfig { scrub_interval: Duration::from_millis(1), ..cfg(&dir) };
        let (wal, _) = DurableWal::open(config).unwrap();
        append_n(&wal, 8);
        // 200 ms at a 1 ms cadence would be ~3 full verify passes under an
        // always-on scrubber; a parked one never reads a byte.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(wal.stats().scrub_passes, 0, "scrubber ticked while parked");
        append_n(&wal, 1);
        assert_eq!(wal.health(), HealthState::Healthy);
    }

    #[test]
    fn fault_clocks_are_immune_to_scrubber_timing() {
        // Per-class op clocks: the wall-clock-driven scrubber (verify
        // reads, device probes) must not shift where write/sync fault
        // windows land on the flusher. Two identical serial runs under
        // very different scrub cadences inject the same fault count and
        // quarantine the same number of segments.
        let run = |tag: &str, scrub: Duration| -> (u64, u64) {
            let dir = test_dir(tag);
            let plan = DiskFaultPlan::new()
                .with(DiskFault { kind: DiskFaultKind::FsyncFail, at_op: 5, for_ops: 3 })
                .with(DiskFault { kind: DiskFaultKind::WriteEio, at_op: 20, for_ops: 2 });
            let config = WalConfig { fault_plan: plan, scrub_interval: scrub, ..cfg(&dir) };
            let (wal, _) = DurableWal::open(config).unwrap();
            let mut i = 0u32;
            let mut acked = 0u32;
            while acked < 30 {
                i += 1;
                assert!(i < 50_000, "never recovered ({tag})");
                if wal.admit().is_err() {
                    std::thread::sleep(Duration::from_micros(100));
                    continue;
                }
                let lsn = wal.append(i as u64 + 1, &[op(i)]).unwrap();
                match wal.wait_durable(lsn) {
                    Ok(()) => acked += 1,
                    Err(HatError::DurabilityInDoubt) => {}
                    Err(e) => panic!("unexpected error ({tag}): {e}"),
                }
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while wal.health() != HealthState::Healthy {
                assert!(std::time::Instant::now() < deadline, "stuck degraded ({tag})");
                std::thread::sleep(Duration::from_millis(1));
            }
            let stats = wal.stats();
            (stats.disk_faults, stats.quarantined_segments)
        };
        // Each window fails the flusher once and one probe once (the
        // probe's failure consumes the window), whatever the cadence.
        let fast = run("det-fast", Duration::from_millis(1));
        let slow = run("det-slow", Duration::from_millis(10));
        assert_eq!(fast, slow, "scrubber cadence changed the fault schedule");
        assert_eq!(fast, (4, 2));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        assert_eq!(DiskFaultPlan::seeded(7), DiskFaultPlan::seeded(7));
        assert!(!DiskFaultPlan::seeded(7).is_empty());
        // Not guaranteed for every pair, but these must differ for the
        // CI seed matrix to explore distinct schedules.
        assert_ne!(DiskFaultPlan::seeded(1), DiskFaultPlan::seeded(2));
    }

    #[test]
    fn seeded_chaos_never_loses_acked_commits() {
        for seed in [1u64, 2, 3] {
            let dir = test_dir(&format!("chaos-{seed}"));
            let config = WalConfig {
                fault_plan: DiskFaultPlan::seeded(seed),
                scrub_interval: Duration::from_millis(1),
                segment_bytes: 512,
                ..cfg(&dir)
            };
            let (wal, _) = DurableWal::open(config).unwrap();
            let mut acked: Vec<Lsn> = Vec::new();
            let mut attempts = 0u32;
            while acked.len() < 30 {
                attempts += 1;
                assert!(attempts < 50_000, "seed {seed}: never recovered");
                if wal.admit().is_err() {
                    std::thread::sleep(Duration::from_micros(200));
                    continue;
                }
                let lsn = wal.append(attempts as u64 + 1, &[op(attempts)]).unwrap();
                match wal.wait_durable(lsn) {
                    Ok(()) => acked.push(lsn),
                    Err(HatError::DurabilityInDoubt) => {}
                    Err(e) => panic!("seed {seed}: unexpected error: {e}"),
                }
            }
            drop(wal);
            let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
            let recovered: std::collections::HashSet<Lsn> =
                rec.tail.iter().map(|r| r.lsn).collect();
            for lsn in &acked {
                assert!(recovered.contains(lsn), "seed {seed}: acked lsn {lsn} lost");
            }
        }
    }

    #[test]
    fn fuzzed_wal_bytes_never_panic_or_ghost() {
        // Satellite property: recovery over arbitrarily truncated or
        // bit-flipped WAL directories returns Ok (torn tail) or a
        // classified WalCorrupt/ChecksumMismatch — never a panic, and on
        // Ok never a record that was not appended.
        let base = test_dir("fuzz-base");
        {
            let config = WalConfig { segment_bytes: 256, ..cfg(&base) };
            let (wal, _) = DurableWal::open(config).unwrap();
            append_n(&wal, 24);
            // A mid-history checkpoint so the ckpt parse path is fuzzed
            // too (low water at lsn 8 keeps several segments live).
            wal.checkpoint(&CheckpointData { lsn: 8, last_ts: 10, tables: Vec::new() })
                .unwrap();
        }
        let scratch = test_dir("fuzz-scratch");
        let mut rng = HatRng::seeded(0xF00D);
        for iter in 0..200u32 {
            let _ = fs::remove_dir_all(&scratch);
            fs::create_dir_all(&scratch).unwrap();
            let mut files = Vec::new();
            for e in fs::read_dir(&base).unwrap() {
                let e = e.unwrap();
                let dst = scratch.join(e.file_name());
                fs::copy(e.path(), &dst).unwrap();
                files.push(dst);
            }
            files.sort();
            // Mutate one file: truncate, flip a bit, or both.
            let victim = &files[rng.next_u64() as usize % files.len()];
            let mut bytes = fs::read(victim).unwrap();
            let mode = rng.next_u64() % 3;
            if mode != 1 {
                bytes.truncate(rng.next_u64() as usize % (bytes.len() + 1));
            }
            if mode != 0 && !bytes.is_empty() {
                let at = rng.next_u64() as usize % bytes.len();
                bytes[at] ^= 1 << (rng.next_u64() % 8);
            }
            fs::write(victim, &bytes).unwrap();

            match DurableWal::open(cfg(&scratch)) {
                Ok((_, rec)) => {
                    for r in &rec.tail {
                        // append_n writes commit_ts = lsn + 1; anything
                        // else would be a ghost commit.
                        assert!(
                            r.lsn <= 24 && r.commit_ts == r.lsn + 1,
                            "iter {iter}: ghost record lsn {} ts {}",
                            r.lsn,
                            r.commit_ts
                        );
                    }
                }
                Err(HatError::WalCorrupt { .. }) | Err(HatError::ChecksumMismatch { .. }) => {}
                Err(e) => panic!("iter {iter}: unclassified recovery error: {e}"),
            }
        }
        let _ = fs::remove_dir_all(&scratch);
    }
}
