//! Durable on-disk write-ahead log with group commit, checksummed
//! segments, checkpoints, and crash recovery.
//!
//! The in-memory [`crate::wal::Wal`] models *shipping* (replication fan-out
//! with bounded retention); this module models *durability* — the cost the
//! paper's evaluated systems pay at `synchronous_commit = on` (PostgreSQL)
//! or on the Raft-log fsync path (TiDB, §6.3).
//!
//! # Segment format
//!
//! The log is a sequence of fixed-size-ish segment files named
//! `wal-<first_lsn>.seg`:
//!
//! ```text
//! +----------------------+----------------------------------------------+
//! | header (16 bytes)    | frames ...                                   |
//! | magic "HATWAL01" (8) | [len: u32][crc32: u32][payload: len bytes]   |
//! | first_lsn: u64 LE    | [len: u32][crc32: u32][payload]  ...         |
//! +----------------------+----------------------------------------------+
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. The payload is one commit
//! record: `lsn, commit_ts, op_count, ops…` (all integers little-endian).
//! Records never split across segments; a segment rotates once it exceeds
//! [`WalConfig::segment_bytes`].
//!
//! # Torn tails vs. corruption
//!
//! On recovery, an *incomplete* frame at the end of the **last** segment is
//! a torn write (the crash interrupted an unacknowledged flush): the tail
//! is truncated at the last complete record and counted in
//! `torn_tail_truncations`. A *complete* frame whose CRC does not match is
//! silent corruption and fails recovery with
//! [`HatError::ChecksumMismatch`]; structural damage anywhere else (bad
//! magic, LSN discontinuity, torn frame in a sealed segment) fails with
//! [`HatError::WalCorrupt`].
//!
//! # Group commit
//!
//! [`DurableWal::append`] only enqueues the encoded frame (it is called
//! inside the commit critical section, so frames are enqueued in
//! commit-timestamp order); a dedicated flusher thread drains the queue,
//! writes the whole batch, and issues **one** fsync for every waiter that
//! accumulated meanwhile. [`DurableWal::wait_durable`] blocks until the
//! flusher's durable horizon covers the record — many concurrent commits
//! share one fsync, which is exactly PostgreSQL's group commit.
//!
//! # Checkpoints
//!
//! [`DurableWal::checkpoint`] durably persists a snapshot of the table
//! stores (built by the caller) tagged with a low-water LSN: it is written
//! to a `.tmp` file, fsynced, and atomically renamed to
//! `ckpt-<lsn>.ckpt`, after which sealed segments entirely below the
//! low-water mark are deleted. Recovery loads the newest valid checkpoint
//! and replays only the WAL tail past its LSN.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hat_common::telemetry::{Histogram, HistogramSnapshot};
use hat_common::{HatError, Money, Result, Row, TableId, Value};
use hat_txn::Ts;
use parking_lot::{Condvar, Mutex};

use crate::wal::{Lsn, TableOp};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"HATWAL01";
/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"HATCKPT1";
/// Segment header: magic + first LSN.
const SEGMENT_HEADER_BYTES: u64 = 16;
/// Frame header: length + CRC32.
const FRAME_HEADER_BYTES: usize = 8;

/// Configuration of the on-disk WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Directory holding segment and checkpoint files (created on open).
    pub dir: PathBuf,
    /// Rotate to a new segment once the active one exceeds this size.
    pub segment_bytes: u64,
    /// Issue real `fsync` syscalls. `false` keeps the full group-commit
    /// protocol (batching, durable horizon, counters) but skips the
    /// syscall — useful for CI where the backing store is a ramdisk
    /// anyway.
    pub sync: bool,
    /// If set, the owning engine runs a background checkpoint at this
    /// interval (after load completes).
    pub checkpoint_every: Option<Duration>,
}

impl WalConfig {
    /// Defaults: 4 MiB segments, real fsync, no background checkpoints.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            sync: true,
            checkpoint_every: None,
        }
    }
}

/// Crash-injection points used by the recovery harness. Arming one makes
/// the WAL "die" at that point: the flusher stops, pending work is
/// dropped, and every in-flight or future `wait_durable`/`append` fails
/// with [`HatError::EngineStopped`] — the in-process analogue of
/// `kill -9` between two specific instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die before the next batch reaches the file: nothing of it survives.
    BeforeFlush,
    /// Die after the next batch is written but **not** fsynced: its bytes
    /// may survive in any prefix (the harness injects the torn tail).
    TornFlush,
    /// Die right after the next fsync: the batch is durable, waiters are
    /// acknowledged, everything later is lost.
    AfterFlush,
    /// Die midway through the next checkpoint, leaving a partial `.tmp`.
    MidCheckpoint,
}

/// One recovered commit record.
#[derive(Debug, Clone)]
pub struct RecoveredRecord {
    pub lsn: Lsn,
    pub commit_ts: Ts,
    pub ops: Vec<TableOp>,
}

/// Snapshot of one table store inside a checkpoint: `(rid, version_ts,
/// row)` for every row visible at the checkpoint timestamp, in rid order.
#[derive(Debug, Clone)]
pub struct TableCheckpoint {
    pub table: TableId,
    pub rows: Vec<(u64, Ts, Row)>,
}

/// A durable snapshot of the table stores plus its low-water mark: every
/// commit with `ts <= last_ts` is contained, and exactly the WAL records
/// with `lsn <= lsn` are reflected.
#[derive(Debug, Clone)]
pub struct CheckpointData {
    pub lsn: Lsn,
    pub last_ts: Ts,
    pub tables: Vec<TableCheckpoint>,
}

/// What `DurableWal::open` found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Newest valid checkpoint, if any.
    pub checkpoint: Option<CheckpointData>,
    /// WAL records past the checkpoint's low-water mark, in LSN order.
    pub tail: Vec<RecoveredRecord>,
    /// Incomplete trailing frames removed from the last segment.
    pub torn_tail_truncations: u64,
    /// LSN the next append will receive.
    pub next_lsn: Lsn,
}

impl WalRecovery {
    /// Number of records replayed from the WAL tail.
    pub fn replayed_records(&self) -> u64 {
        self.tail.len() as u64
    }

    /// Highest commit timestamp contained in the recovered state.
    pub fn max_ts(&self) -> Ts {
        let ckpt = self.checkpoint.as_ref().map(|c| c.last_ts).unwrap_or(0);
        let tail = self.tail.last().map(|r| r.commit_ts).unwrap_or(0);
        ckpt.max(tail)
    }
}

/// Counters surfaced through the kernel's `MetricsSnapshot` → reports.
#[derive(Debug, Clone, Default)]
pub struct DurableWalStats {
    /// Flush batches made durable (one fsync each).
    pub fsyncs: u64,
    /// Highest LSN guaranteed on disk.
    pub durable_lsn: Lsn,
    /// Median records per fsync batch.
    pub group_commit_p50: f64,
    /// 99th-percentile records per fsync batch.
    pub group_commit_p99: f64,
    /// Full records-per-fsync distribution (mergeable across runs).
    pub group_commit_batches: HistogramSnapshot,
    /// Records replayed from the WAL tail at open.
    pub recovery_replayed_records: u64,
    /// Incomplete trailing frames truncated at open.
    pub torn_tail_truncations: u64,
    /// Checkpoints durably written.
    pub checkpoints: u64,
    /// Sealed segments deleted below the checkpoint low-water mark.
    pub segments_deleted: u64,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected, table-driven)
// ---------------------------------------------------------------------------

/// The standard CRC-32 lookup table for polynomial 0xEDB88320.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// IEEE CRC-32 of `bytes` (the checksum zlib/gzip/Ethernet use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::U64(x) => {
            buf.push(0);
            put_u64(buf, *x);
        }
        Value::U32(x) => {
            buf.push(1);
            put_u32(buf, *x);
        }
        Value::Money(m) => {
            buf.push(2);
            put_u64(buf, m.cents() as u64);
        }
        Value::Str(s) => {
            buf.push(3);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(*b as u8);
        }
    }
}

fn encode_row(buf: &mut Vec<u8>, row: &Row) {
    put_u16(buf, row.len() as u16);
    for v in row.iter() {
        encode_value(buf, v);
    }
}

/// Serializes one commit record's payload (without framing).
fn encode_record_payload(lsn: Lsn, commit_ts: Ts, ops: &[TableOp]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 * ops.len().max(1));
    put_u64(&mut buf, lsn);
    put_u64(&mut buf, commit_ts);
    put_u32(&mut buf, ops.len() as u32);
    for op in ops {
        let (tag, table, rid, row) = match op {
            TableOp::Insert { table, rid, row } => (0u8, table, rid, row),
            TableOp::Update { table, rid, row } => (1u8, table, rid, row),
        };
        buf.push(tag);
        buf.push(table.index() as u8);
        put_u64(&mut buf, *rid);
        encode_row(&mut buf, row);
    }
    buf
}

/// Wraps a payload in `[len][crc32]` framing.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(payload));
    frame.extend_from_slice(payload);
    frame
}

/// Bounded little-endian reader over a byte slice; any overrun or invalid
/// tag decodes to [`HatError::WalCorrupt`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "record truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn corrupt(detail: impl Into<String>) -> HatError {
    HatError::WalCorrupt { detail: detail.into() }
}

fn io_err(ctx: &str, e: std::io::Error) -> HatError {
    HatError::WalCorrupt { detail: format!("{ctx}: {e}") }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::U64(r.u64()?),
        1 => Value::U32(r.u32()?),
        2 => Value::Money(Money::from_cents(r.u64()? as i64)),
        3 => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| corrupt("string value is not utf-8"))?;
            Value::Str(Arc::from(s))
        }
        4 => Value::Bool(r.u8()? != 0),
        tag => return Err(corrupt(format!("unknown value tag {tag}"))),
    })
}

fn decode_row(r: &mut Reader<'_>) -> Result<Row> {
    let ncols = r.u16()? as usize;
    let mut values = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        values.push(decode_value(r)?);
    }
    Ok(values.into())
}

fn decode_table(r: &mut Reader<'_>) -> Result<TableId> {
    let idx = r.u8()? as usize;
    TableId::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| corrupt(format!("unknown table index {idx}")))
}

fn decode_record_payload(payload: &[u8]) -> Result<RecoveredRecord> {
    let mut r = Reader::new(payload);
    let lsn = r.u64()?;
    let commit_ts = r.u64()?;
    let nops = r.u32()? as usize;
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        let tag = r.u8()?;
        let table = decode_table(&mut r)?;
        let rid = r.u64()?;
        let row = decode_row(&mut r)?;
        ops.push(match tag {
            0 => TableOp::Insert { table, rid, row },
            1 => TableOp::Update { table, rid, row },
            t => return Err(corrupt(format!("unknown op tag {t}"))),
        });
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after record payload"));
    }
    Ok(RecoveredRecord { lsn, commit_ts, ops })
}

fn encode_checkpoint_body(data: &CheckpointData) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, data.lsn);
    put_u64(&mut buf, data.last_ts);
    buf.push(data.tables.len() as u8);
    for t in &data.tables {
        buf.push(t.table.index() as u8);
        put_u64(&mut buf, t.rows.len() as u64);
        for (rid, ts, row) in &t.rows {
            put_u64(&mut buf, *rid);
            put_u64(&mut buf, *ts);
            encode_row(&mut buf, row);
        }
    }
    buf
}

fn decode_checkpoint_body(body: &[u8]) -> Result<CheckpointData> {
    let mut r = Reader::new(body);
    let lsn = r.u64()?;
    let last_ts = r.u64()?;
    let ntables = r.u8()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let table = decode_table(&mut r)?;
        let nrows = r.u64()? as usize;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let rid = r.u64()?;
            let ts = r.u64()?;
            rows.push((rid, ts, decode_row(&mut r)?));
        }
        tables.push(TableCheckpoint { table, rows });
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after checkpoint body"));
    }
    Ok(CheckpointData { lsn, last_ts, tables })
}

// ---------------------------------------------------------------------------
// File naming
// ---------------------------------------------------------------------------

fn segment_path(dir: &Path, first_lsn: Lsn) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.seg"))
}

fn checkpoint_path(dir: &Path, lsn: Lsn) -> PathBuf {
    dir.join(format!("ckpt-{lsn:020}.ckpt"))
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

fn sync_dir(dir: &Path, sync: bool) -> Result<()> {
    if sync {
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("fsync wal dir", e))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The durable WAL
// ---------------------------------------------------------------------------

/// Shared state between appenders, durability waiters, the flusher
/// thread, and the checkpointer.
struct FlushState {
    /// Encoded frames awaiting the flusher, in LSN order.
    pending: Vec<(Lsn, Vec<u8>)>,
    /// LSN the next append receives.
    next_lsn: Lsn,
    /// `(lsn, commit_ts)` of the most recent append — the consistent
    /// low-water pair a checkpoint snapshots at.
    last_appended: (Lsn, Ts),
    /// Every record with `lsn <=` this is on disk (or durably recovered).
    durable_lsn: Lsn,
    /// Set by kill points, I/O errors, or [`DurableWal::crash`]: the
    /// simulated process death. No further work is accepted.
    crashed: bool,
    /// Set by Drop for a clean shutdown (flush everything, then exit).
    shutdown: bool,
    kill: Option<KillPoint>,
    fsyncs: u64,
    checkpoints: u64,
    segments_deleted: u64,
}

/// State shared with the flusher thread. The thread holds only this, not
/// the [`DurableWal`] handle, so dropping the last handle can signal
/// shutdown and join the thread.
struct WalShared {
    config: WalConfig,
    state: Mutex<FlushState>,
    /// Wakes the flusher when pending work or shutdown arrives.
    work: Condvar,
    /// Wakes `wait_durable` callers when the durable horizon advances or
    /// the WAL crashes.
    durable: Condvar,
    /// First LSN of the segment the flusher currently appends to; the
    /// checkpointer must never delete that file.
    active_first_lsn: std::sync::atomic::AtomicU64,
    /// Records per flush batch (lock-free; read by `stats`).
    batch_hist: Histogram,
}

/// See the module docs: segment files + group-commit flusher +
/// checkpoints + recovery.
pub struct DurableWal {
    inner: Arc<WalShared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
    recovery_replayed: u64,
    recovery_torn: u64,
}

impl std::fmt::Debug for DurableWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableWal")
            .field("dir", &self.inner.config.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The flusher's file handle plus rotation bookkeeping.
struct ActiveSegment {
    file: File,
    bytes: u64,
}

impl ActiveSegment {
    /// Creates (or truncates) the segment for `first_lsn` and writes its
    /// header. Callers fsync the directory afterwards if configured.
    fn create(dir: &Path, first_lsn: Lsn) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(segment_path(dir, first_lsn))?;
        file.write_all(SEGMENT_MAGIC)?;
        file.write_all(&first_lsn.to_le_bytes())?;
        Ok(ActiveSegment { file, bytes: SEGMENT_HEADER_BYTES })
    }
}

impl DurableWal {
    /// Opens (creating if needed) the WAL at `config.dir`, running
    /// recovery: the newest valid checkpoint is loaded, the WAL tail past
    /// it is decoded and CRC-verified, a torn trailing frame is truncated,
    /// and the group-commit flusher thread is started at the recovered
    /// LSN horizon.
    pub fn open(config: WalConfig) -> Result<(Arc<DurableWal>, WalRecovery)> {
        fs::create_dir_all(&config.dir).map_err(|e| io_err("create wal dir", e))?;
        let recovery = recover(&config)?;

        let inner = Arc::new(WalShared {
            state: Mutex::new(FlushState {
                pending: Vec::new(),
                next_lsn: recovery.next_lsn,
                last_appended: (recovery.next_lsn - 1, recovery.max_ts()),
                durable_lsn: recovery.next_lsn - 1,
                crashed: false,
                shutdown: false,
                kill: None,
                fsyncs: 0,
                checkpoints: 0,
                segments_deleted: 0,
            }),
            work: Condvar::new(),
            durable: Condvar::new(),
            active_first_lsn: std::sync::atomic::AtomicU64::new(recovery.next_lsn),
            batch_hist: Histogram::new(),
            config,
        });

        // A fresh active segment at the recovered horizon: recovered
        // segments stay sealed, so a second crash can only tear the new
        // file.
        let seg = ActiveSegment::create(&inner.config.dir, recovery.next_lsn)
            .map_err(|e| io_err("create active segment", e))?;
        sync_dir(&inner.config.dir, inner.config.sync)?;

        let thread_shared = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("wal-flusher".into())
            .spawn(move || flusher_loop(thread_shared, seg))
            .map_err(|e| io_err("spawn wal flusher", e))?;
        let wal = Arc::new(DurableWal {
            inner,
            flusher: Mutex::new(Some(handle)),
            recovery_replayed: recovery.replayed_records(),
            recovery_torn: recovery.torn_tail_truncations,
        });
        Ok((wal, recovery))
    }

    /// Enqueues one commit record and returns its LSN. Must be called
    /// inside the commit critical section so that LSN order equals
    /// commit-timestamp order. The record is **not** durable until
    /// [`DurableWal::wait_durable`] returns for it.
    pub fn append(&self, commit_ts: Ts, ops: &[TableOp]) -> Result<Lsn> {
        let mut st = self.inner.state.lock();
        if st.crashed {
            return Err(HatError::EngineStopped);
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.last_appended = (lsn, commit_ts);
        let frame = encode_frame(&encode_record_payload(lsn, commit_ts, ops));
        st.pending.push((lsn, frame));
        self.inner.work.notify_one();
        Ok(lsn)
    }

    /// Blocks until `lsn` is on disk (one shared fsync per batch of
    /// waiters). Fails with [`HatError::EngineStopped`] if the WAL
    /// crashed before covering `lsn` — the commit's durability is then
    /// unknown to the caller, exactly like a process crash between write
    /// and acknowledgement.
    pub fn wait_durable(&self, lsn: Lsn) -> Result<()> {
        let mut st = self.inner.state.lock();
        while st.durable_lsn < lsn && !st.crashed {
            self.inner.durable.wait(&mut st);
        }
        if st.durable_lsn >= lsn {
            Ok(())
        } else {
            Err(HatError::EngineStopped)
        }
    }

    /// `(lsn, commit_ts)` of the most recent append — the consistent
    /// pair a checkpoint snapshot is taken at.
    pub fn last_appended(&self) -> (Lsn, Ts) {
        self.inner.state.lock().last_appended
    }

    /// Highest LSN guaranteed on disk.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.state.lock().durable_lsn
    }

    /// Durably writes `data` (tmp + fsync + atomic rename), then deletes
    /// sealed segments entirely below its low-water LSN and superseded
    /// checkpoint files.
    pub fn checkpoint(&self, data: &CheckpointData) -> Result<()> {
        {
            let mut st = self.inner.state.lock();
            if st.crashed {
                return Err(HatError::EngineStopped);
            }
            if st.kill == Some(KillPoint::MidCheckpoint) {
                st.kill = None;
                st.crashed = true;
                st.pending.clear();
                drop(st);
                // Simulate dying halfway through the tmp write: a partial
                // file with a valid magic but truncated body.
                let mut body = encode_checkpoint_body(data);
                body.truncate(body.len() / 2);
                let tmp = self.inner.config.dir.join(format!("ckpt-{:020}.tmp", data.lsn));
                let _ = fs::write(&tmp, [CHECKPOINT_MAGIC.as_slice(), &body].concat());
                self.inner.durable.notify_all();
                self.inner.work.notify_all();
                return Err(HatError::EngineStopped);
            }
        }

        let body = encode_checkpoint_body(data);
        let tmp = self.inner.config.dir.join(format!("ckpt-{:020}.tmp", data.lsn));
        let mut file = File::create(&tmp).map_err(|e| io_err("create ckpt tmp", e))?;
        file.write_all(CHECKPOINT_MAGIC).map_err(|e| io_err("write ckpt", e))?;
        file.write_all(&body).map_err(|e| io_err("write ckpt", e))?;
        file.write_all(&crc32(&body).to_le_bytes())
            .map_err(|e| io_err("write ckpt", e))?;
        if self.inner.config.sync {
            file.sync_all().map_err(|e| io_err("fsync ckpt", e))?;
        }
        drop(file);
        fs::rename(&tmp, checkpoint_path(&self.inner.config.dir, data.lsn))
            .map_err(|e| io_err("rename ckpt", e))?;
        sync_dir(&self.inner.config.dir, self.inner.config.sync)?;

        let deleted = self.prune_below(data.lsn)?;
        let mut st = self.inner.state.lock();
        st.checkpoints += 1;
        st.segments_deleted += deleted;
        Ok(())
    }

    /// Deletes sealed segments whose every record is `<= low_water`, plus
    /// checkpoint files older than the one at `low_water`. Returns the
    /// number of segments removed.
    fn prune_below(&self, low_water: Lsn) -> Result<u64> {
        let dir = &self.inner.config.dir;
        let mut segs: Vec<Lsn> = Vec::new();
        let mut old_ckpts: Vec<Lsn> = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| io_err("read wal dir", e))? {
            let entry = entry.map_err(|e| io_err("read wal dir", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(lsn) = parse_numbered(&name, "wal-", ".seg") {
                segs.push(lsn);
            } else if let Some(lsn) = parse_numbered(&name, "ckpt-", ".ckpt") {
                if lsn < low_water {
                    old_ckpts.push(lsn);
                }
            }
        }
        segs.sort_unstable();
        let active = self.inner.active_first_lsn.load(std::sync::atomic::Ordering::Relaxed);
        let mut deleted = 0;
        // Segment i covers [segs[i], segs[i+1] - 1]; deletable when that
        // whole range is at or below the low-water mark and the flusher is
        // not appending to it.
        for w in segs.windows(2) {
            let (first, next_first) = (w[0], w[1]);
            if next_first <= low_water + 1 && first < active {
                fs::remove_file(segment_path(dir, first))
                    .map_err(|e| io_err("delete sealed segment", e))?;
                deleted += 1;
            }
        }
        for lsn in old_ckpts {
            let _ = fs::remove_file(checkpoint_path(dir, lsn));
        }
        Ok(deleted)
    }

    /// Arms a one-shot crash injection point (see [`KillPoint`]).
    pub fn arm_kill(&self, kp: KillPoint) {
        // The kill fires when the flusher next touches a batch (or the
        // checkpointer runs); an idle flusher observes it with the next
        // append's wakeup.
        self.inner.state.lock().kill = Some(kp);
    }

    /// Immediate simulated process death: pending (unflushed) records are
    /// dropped, the flusher stops without a final flush, and all waiters
    /// fail. Disk state is whatever previous fsyncs made durable.
    pub fn crash(&self) {
        let mut st = self.inner.state.lock();
        st.crashed = true;
        st.pending.clear();
        drop(st);
        self.inner.work.notify_all();
        self.inner.durable.notify_all();
        self.join_flusher();
    }

    /// Whether a crash (injected or real I/O failure) has stopped the WAL.
    pub fn is_crashed(&self) -> bool {
        self.inner.state.lock().crashed
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.inner.config.dir
    }

    /// The configuration this WAL was opened with.
    pub fn config(&self) -> &WalConfig {
        &self.inner.config
    }

    /// Current counters.
    pub fn stats(&self) -> DurableWalStats {
        let batches = self.inner.batch_hist.snapshot();
        let st = self.inner.state.lock();
        DurableWalStats {
            fsyncs: st.fsyncs,
            durable_lsn: st.durable_lsn,
            group_commit_p50: batches.quantile(0.50) as f64,
            group_commit_p99: batches.quantile(0.99) as f64,
            group_commit_batches: batches,
            recovery_replayed_records: self.recovery_replayed,
            torn_tail_truncations: self.recovery_torn,
            checkpoints: st.checkpoints,
            segments_deleted: st.segments_deleted,
        }
    }

    fn join_flusher(&self) {
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DurableWal {
    fn drop(&mut self) {
        self.inner.state.lock().shutdown = true;
        self.inner.work.notify_all();
        self.join_flusher();
    }
}

/// The group-commit flusher: drains whole batches of pending frames,
/// writes them (rotating segments), issues one fsync, then advances the
/// durable horizon and wakes every covered waiter.
fn flusher_loop(wal: Arc<WalShared>, mut seg: ActiveSegment) {
    let die = |wal: &WalShared| {
        let mut st = wal.state.lock();
        st.crashed = true;
        st.pending.clear();
        drop(st);
        wal.durable.notify_all();
    };

    loop {
        let batch = {
            let mut st = wal.state.lock();
            while st.pending.is_empty() && !st.shutdown && !st.crashed {
                wal.work.wait(&mut st);
            }
            if st.crashed {
                drop(st);
                wal.durable.notify_all();
                return;
            }
            if st.pending.is_empty() {
                // Clean shutdown with nothing left to write.
                if wal.config.sync {
                    let _ = seg.file.sync_all();
                }
                return;
            }
            if st.kill == Some(KillPoint::BeforeFlush) {
                st.kill = None;
                st.crashed = true;
                st.pending.clear();
                drop(st);
                wal.durable.notify_all();
                return;
            }
            std::mem::take(&mut st.pending)
        };

        let last_lsn = batch.last().expect("non-empty batch").0;
        let count = batch.len() as u64;
        let mut write_failed = false;
        for (lsn, frame) in &batch {
            if seg.bytes >= wal.config.segment_bytes {
                // Seal the full segment and rotate to a new one starting
                // at this record's LSN.
                let sealed = if wal.config.sync { seg.file.sync_all() } else { Ok(()) };
                let rotated = ActiveSegment::create(&wal.config.dir, *lsn)
                    .and_then(|s| {
                        wal.active_first_lsn
                            .store(*lsn, std::sync::atomic::Ordering::Relaxed);
                        seg = s;
                        if wal.config.sync {
                            File::open(&wal.config.dir).and_then(|d| d.sync_all())
                        } else {
                            Ok(())
                        }
                    });
                if sealed.is_err() || rotated.is_err() {
                    write_failed = true;
                    break;
                }
            }
            if seg.file.write_all(frame).is_err() {
                write_failed = true;
                break;
            }
            seg.bytes += frame.len() as u64;
        }
        if write_failed {
            die(&wal);
            return;
        }

        let torn_kill = {
            let mut st = wal.state.lock();
            if st.kill == Some(KillPoint::TornFlush) {
                st.kill = None;
                true
            } else {
                false
            }
        };
        if torn_kill {
            // Written but never fsynced: the harness may now shear the
            // file at an arbitrary byte to model a torn page.
            die(&wal);
            return;
        }

        if wal.config.sync && seg.file.sync_all().is_err() {
            die(&wal);
            return;
        }

        wal.batch_hist.record(count);
        let mut st = wal.state.lock();
        st.durable_lsn = last_lsn;
        st.fsyncs += 1;
        let after_kill = st.kill == Some(KillPoint::AfterFlush);
        if after_kill {
            st.kill = None;
            st.crashed = true;
            st.pending.clear();
        }
        drop(st);
        wal.durable.notify_all();
        if after_kill {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Scans `config.dir`: loads the newest valid checkpoint, replays the WAL
/// tail, truncates a torn final frame, and removes leftover `.tmp` files.
fn recover(config: &WalConfig) -> Result<WalRecovery> {
    let mut seg_lsns: Vec<Lsn> = Vec::new();
    let mut ckpt_lsns: Vec<Lsn> = Vec::new();
    for entry in fs::read_dir(&config.dir).map_err(|e| io_err("read wal dir", e))? {
        let entry = entry.map_err(|e| io_err("read wal dir", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(lsn) = parse_numbered(&name, "wal-", ".seg") {
            seg_lsns.push(lsn);
        } else if let Some(lsn) = parse_numbered(&name, "ckpt-", ".ckpt") {
            ckpt_lsns.push(lsn);
        } else if name.ends_with(".tmp") {
            // A checkpoint the crash interrupted before its atomic
            // rename; never valid, always discarded.
            let _ = fs::remove_file(entry.path());
        }
    }
    seg_lsns.sort_unstable();
    ckpt_lsns.sort_unstable();

    let checkpoint = match ckpt_lsns.last() {
        Some(&lsn) => Some(load_checkpoint(&checkpoint_path(&config.dir, lsn), lsn)?),
        None => None,
    };
    let start_lsn = checkpoint.as_ref().map(|c| c.lsn + 1).unwrap_or(1);

    if let Some(&first) = seg_lsns.first() {
        if first > start_lsn {
            return Err(corrupt(format!(
                "gap between checkpoint (low water {}) and first segment (lsn {first})",
                start_lsn - 1
            )));
        }
    }

    let mut tail: Vec<RecoveredRecord> = Vec::new();
    let mut torn = 0u64;
    let mut next_lsn = start_lsn;
    let mut expected = seg_lsns.first().copied().unwrap_or(start_lsn);
    for (i, &first_lsn) in seg_lsns.iter().enumerate() {
        if first_lsn != expected {
            return Err(corrupt(format!(
                "segment chain broken: expected lsn {expected}, found segment at {first_lsn}"
            )));
        }
        let is_last = i == seg_lsns.len() - 1;
        let scanned = scan_segment(config, first_lsn, is_last)?;
        torn += scanned.torn;
        expected = first_lsn + scanned.records.len() as u64;
        for rec in scanned.records {
            next_lsn = rec.lsn + 1;
            if rec.lsn >= start_lsn {
                tail.push(rec);
            }
        }
    }
    next_lsn = next_lsn.max(start_lsn);

    Ok(WalRecovery { checkpoint, tail, torn_tail_truncations: torn, next_lsn })
}

struct ScannedSegment {
    records: Vec<RecoveredRecord>,
    torn: u64,
}

/// Decodes every frame of one segment. A short trailing frame is torn:
/// in the last segment it is truncated away and counted; in a sealed
/// segment it is corruption. A complete frame with a bad CRC is
/// [`HatError::ChecksumMismatch`] everywhere.
fn scan_segment(config: &WalConfig, first_lsn: Lsn, is_last: bool) -> Result<ScannedSegment> {
    let path = segment_path(&config.dir, first_lsn);
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read segment", e))?;
    if bytes.len() < SEGMENT_HEADER_BYTES as usize || &bytes[..8] != SEGMENT_MAGIC {
        return Err(corrupt(format!("segment {} has a bad header", path.display())));
    }
    let header_lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if header_lsn != first_lsn {
        return Err(corrupt(format!(
            "segment {} header lsn {header_lsn} does not match its name",
            path.display()
        )));
    }

    let mut records = Vec::new();
    let mut torn = 0u64;
    let mut offset = SEGMENT_HEADER_BYTES as usize;
    let mut expected = first_lsn;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        let complete = remaining >= FRAME_HEADER_BYTES && {
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            remaining >= FRAME_HEADER_BYTES + len
        };
        if !complete {
            if !is_last {
                return Err(corrupt(format!(
                    "torn frame inside sealed segment {}",
                    path.display()
                )));
            }
            // Torn tail: shear the incomplete frame off so the segment
            // ends at the last whole record.
            OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(offset as u64))
                .map_err(|e| io_err("truncate torn tail", e))?;
            torn += 1;
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        let payload = &bytes[offset + FRAME_HEADER_BYTES..offset + FRAME_HEADER_BYTES + len];
        if crc32(payload) != crc {
            return Err(HatError::ChecksumMismatch { lsn: expected });
        }
        let rec = decode_record_payload(payload)?;
        if rec.lsn != expected {
            return Err(corrupt(format!(
                "lsn discontinuity in {}: expected {expected}, found {}",
                path.display(),
                rec.lsn
            )));
        }
        expected += 1;
        offset += FRAME_HEADER_BYTES + len;
        records.push(rec);
    }
    Ok(ScannedSegment { records, torn })
}

fn load_checkpoint(path: &Path, lsn: Lsn) -> Result<CheckpointData> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read checkpoint", e))?;
    if bytes.len() < 12 || &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt(format!("checkpoint {} has a bad header", path.display())));
    }
    let body = &bytes[8..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != crc {
        return Err(HatError::ChecksumMismatch { lsn });
    }
    let data = decode_checkpoint_body(body)?;
    if data.lsn != lsn {
        return Err(corrupt(format!(
            "checkpoint {} body lsn {} does not match its name",
            path.display(),
            data.lsn
        )));
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("hat-dwal-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg(dir: &Path) -> WalConfig {
        WalConfig { sync: false, ..WalConfig::new(dir) }
    }

    fn op(v: u32) -> TableOp {
        TableOp::Insert {
            table: TableId::History,
            rid: v as u64,
            row: row_from([
                Value::U32(v),
                Value::U64(v as u64 * 10),
                Value::Money(Money::from_cents(-25)),
                Value::Str(Arc::from("note")),
                Value::Bool(v % 2 == 0),
            ]),
        }
    }

    fn append_n(wal: &DurableWal, n: u32) {
        for i in 0..n {
            let lsn = wal.append(i as u64 + 2, &[op(i)]).unwrap();
            wal.wait_durable(lsn).unwrap();
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip_preserves_all_value_types() {
        let ops = vec![op(1), TableOp::Update { table: TableId::Supplier, rid: 3, row: row_from([Value::U32(9)]) }];
        let payload = encode_record_payload(42, 17, &ops);
        let rec = decode_record_payload(&payload).unwrap();
        assert_eq!(rec.lsn, 42);
        assert_eq!(rec.commit_ts, 17);
        assert_eq!(rec.ops.len(), 2);
        match &rec.ops[0] {
            TableOp::Insert { table, rid, row } => {
                assert_eq!(*table, TableId::History);
                assert_eq!(*rid, 1);
                assert_eq!(row[0], Value::U32(1));
                assert_eq!(row[1], Value::U64(10));
                assert_eq!(row[2], Value::Money(Money::from_cents(-25)));
                assert_eq!(row[3].as_str().unwrap(), "note");
                assert_eq!(row[4], Value::Bool(false));
            }
            other => panic!("wrong op {other:?}"),
        }
        match &rec.ops[1] {
            TableOp::Update { table, rid, .. } => {
                assert_eq!(*table, TableId::Supplier);
                assert_eq!(*rid, 3);
            }
            other => panic!("wrong op {other:?}"),
        }
    }

    #[test]
    fn append_flush_reopen_recovers_everything() {
        let dir = test_dir("reopen");
        {
            let (wal, rec) = DurableWal::open(cfg(&dir)).unwrap();
            assert!(rec.checkpoint.is_none());
            assert_eq!(rec.next_lsn, 1);
            append_n(&wal, 20);
            assert_eq!(wal.durable_lsn(), 20);
        }
        let (wal, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 20);
        assert_eq!(rec.tail[0].lsn, 1);
        assert_eq!(rec.tail[19].lsn, 20);
        assert_eq!(rec.next_lsn, 21);
        assert_eq!(rec.torn_tail_truncations, 0);
        assert_eq!(wal.stats().recovery_replayed_records, 20);
    }

    #[test]
    fn segments_rotate_and_recover_across_files() {
        let dir = test_dir("rotate");
        let config = WalConfig { segment_bytes: 256, ..cfg(&dir) };
        {
            let (wal, _) = DurableWal::open(config.clone()).unwrap();
            append_n(&wal, 40);
        }
        let segs = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".seg")
            })
            .count();
        assert!(segs > 2, "expected rotation, got {segs} segment(s)");
        let (_, rec) = DurableWal::open(config).unwrap();
        assert_eq!(rec.tail.len(), 40);
        assert_eq!(rec.tail.last().unwrap().lsn, 40);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = test_dir("torn");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 5);
        }
        // Shear the newest non-empty segment mid-frame (the last segment
        // is the empty one the second open created; records live in the
        // previous one).
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.to_string_lossy().ends_with(".seg"))
            .collect();
        segs.sort();
        let target = segs
            .iter()
            .rev()
            .find(|p| fs::metadata(p).unwrap().len() > SEGMENT_HEADER_BYTES)
            .unwrap();
        let len = fs::metadata(target).unwrap().len();
        OpenOptions::new().write(true).open(target).unwrap().set_len(len - 3).unwrap();

        let (wal, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.torn_tail_truncations, 1);
        assert_eq!(rec.tail.len(), 4, "last record sheared off");
        assert_eq!(rec.next_lsn, 5);
        assert_eq!(wal.stats().torn_tail_truncations, 1);
        drop(wal);
        // After truncation the directory recovers cleanly again.
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.torn_tail_truncations, 0);
        assert_eq!(rec.tail.len(), 4);
    }

    #[test]
    fn bit_flip_fails_with_checksum_mismatch() {
        let dir = test_dir("flip");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 3);
        }
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        // Flip one payload bit of the second record (well past the first
        // frame's header).
        let idx = bytes.len() - 5;
        bytes[idx] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let err = DurableWal::open(cfg(&dir)).unwrap_err();
        assert!(
            matches!(err, HatError::ChecksumMismatch { .. }),
            "got {err:?}"
        );
        assert!(!err.is_retryable());
    }

    #[test]
    fn garbage_header_is_wal_corrupt() {
        let dir = test_dir("garbage");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 1);
        }
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[0] = b'X';
        fs::write(&seg, &bytes).unwrap();
        let err = DurableWal::open(cfg(&dir)).unwrap_err();
        assert!(matches!(err, HatError::WalCorrupt { .. }), "got {err:?}");
    }

    #[test]
    fn checkpoint_truncates_sealed_segments_and_bounds_replay() {
        let dir = test_dir("ckpt");
        let config = WalConfig { segment_bytes: 256, ..cfg(&dir) };
        {
            let (wal, _) = DurableWal::open(config.clone()).unwrap();
            append_n(&wal, 40);
            let (lsn, ts) = wal.last_appended();
            wal.checkpoint(&CheckpointData {
                lsn,
                last_ts: ts,
                tables: vec![TableCheckpoint {
                    table: TableId::History,
                    rows: vec![(0, 2, row_from([Value::U32(7)]))],
                }],
            })
            .unwrap();
            let stats = wal.stats();
            assert_eq!(stats.checkpoints, 1);
            assert!(stats.segments_deleted > 0, "sealed segments below low water");
            // The log keeps accepting appends after a checkpoint.
            let lsn = wal.append(100, &[op(41)]).unwrap();
            wal.wait_durable(lsn).unwrap();
        }
        let (_, rec) = DurableWal::open(config).unwrap();
        let ckpt = rec.checkpoint.expect("checkpoint recovered");
        assert_eq!(ckpt.lsn, 40);
        assert_eq!(ckpt.last_ts, 41);
        assert_eq!(ckpt.tables[0].rows[0].2[0], Value::U32(7));
        assert_eq!(rec.tail.len(), 1, "only the post-checkpoint record replays");
        assert_eq!(rec.tail[0].lsn, 41);
        assert_eq!(rec.next_lsn, 42);
    }

    #[test]
    fn kill_before_flush_loses_only_unacknowledged_records() {
        let dir = test_dir("kill-before");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 3);
            wal.arm_kill(KillPoint::BeforeFlush);
            let lsn = wal.append(50, &[op(99)]).unwrap();
            assert_eq!(wal.wait_durable(lsn), Err(HatError::EngineStopped));
            assert!(wal.is_crashed());
            assert!(wal.append(51, &[op(100)]).is_err(), "no appends after death");
        }
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 3, "acknowledged records survive, the doomed one doesn't");
    }

    #[test]
    fn kill_after_flush_preserves_acknowledged_batch() {
        let dir = test_dir("kill-after");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 2);
            wal.arm_kill(KillPoint::AfterFlush);
            let lsn = wal.append(50, &[op(9)]).unwrap();
            assert_eq!(wal.wait_durable(lsn), Ok(()), "fsync completed before death");
        }
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 3);
    }

    #[test]
    fn mid_checkpoint_kill_leaves_no_visible_checkpoint() {
        let dir = test_dir("kill-ckpt");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 4);
            wal.arm_kill(KillPoint::MidCheckpoint);
            let (lsn, ts) = wal.last_appended();
            let err = wal
                .checkpoint(&CheckpointData { lsn, last_ts: ts, tables: vec![] })
                .unwrap_err();
            assert_eq!(err, HatError::EngineStopped);
        }
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert!(rec.checkpoint.is_none(), "partial tmp must be ignored");
        assert_eq!(rec.tail.len(), 4, "wal tail still replays fully");
        let tmps = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(tmps, 0, "recovery removes the partial tmp");
    }

    #[test]
    fn group_commit_batches_concurrent_waiters() {
        let dir = test_dir("group");
        let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for j in 0..50u32 {
                        let lsn = wal.append(2 + (i * 50 + j) as u64, &[op(j)]).unwrap();
                        wal.wait_durable(lsn).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.durable_lsn, 400);
        assert!(
            stats.fsyncs < 400,
            "some of the 400 commits must share an fsync (got {})",
            stats.fsyncs
        );
        assert!(stats.group_commit_p99 >= stats.group_commit_p50);
        assert!(stats.group_commit_p50 >= 1.0);
    }

    #[test]
    fn any_byte_prefix_recovers_a_record_prefix() {
        // Satellite property: shear a valid segment at EVERY byte offset;
        // recovery must yield an exact prefix of the committed history and
        // never fail.
        let dir = test_dir("prefix");
        {
            let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
            append_n(&wal, 6);
        }
        let seg = segment_path(&dir, 1);
        let full = fs::read(&seg).unwrap();
        let scratch = test_dir("prefix-scratch");
        for cut in SEGMENT_HEADER_BYTES as usize..=full.len() {
            let _ = fs::remove_dir_all(&scratch);
            fs::create_dir_all(&scratch).unwrap();
            fs::write(segment_path(&scratch, 1), &full[..cut]).unwrap();
            let (_, rec) = DurableWal::open(cfg(&scratch)).unwrap();
            // An exact prefix: lsns 1..=n with payloads intact.
            for (i, r) in rec.tail.iter().enumerate() {
                assert_eq!(r.lsn, i as u64 + 1, "cut at {cut}");
                assert_eq!(r.commit_ts, i as u64 + 2, "cut at {cut}");
            }
            assert_eq!(
                rec.torn_tail_truncations,
                u64::from(rec.tail.len() < 6 && cut > SEGMENT_HEADER_BYTES as usize && {
                    // A cut exactly on a frame boundary is a clean end,
                    // not a torn record.
                    let mut off = SEGMENT_HEADER_BYTES as usize;
                    let mut on_boundary = cut == off;
                    while off < cut {
                        let len = u32::from_le_bytes(full[off..off + 4].try_into().unwrap())
                            as usize;
                        off += FRAME_HEADER_BYTES + len;
                        if off == cut {
                            on_boundary = true;
                        }
                    }
                    !on_boundary
                }),
                "cut at {cut}"
            );
        }
        let _ = fs::remove_dir_all(&scratch);
    }

    #[test]
    fn crash_discards_pending_without_flush() {
        let dir = test_dir("crash");
        let (wal, _) = DurableWal::open(cfg(&dir)).unwrap();
        append_n(&wal, 2);
        wal.crash();
        assert!(wal.is_crashed());
        assert_eq!(wal.append(9, &[op(1)]), Err(HatError::EngineStopped));
        drop(wal);
        let (_, rec) = DurableWal::open(cfg(&dir)).unwrap();
        assert_eq!(rec.tail.len(), 2);
    }
}
