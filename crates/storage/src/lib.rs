//! `hat-storage` — storage substrates for the HTAP engines.
//!
//! * [`bptree`] — an in-memory B+tree with range scans, built from scratch;
//!   used for primary and secondary indexes.
//! * [`rowstore`] — an MVCC row store with per-slot version chains and
//!   timestamp-based visibility; the transactional backbone of every engine.
//! * [`colstore`] — a columnar store with dictionary and run-length
//!   compression plus an in-row-format delta; the analytical backbone of the
//!   hybrid engines.
//! * [`wal`] — commit log records and an in-memory write-ahead log with
//!   subscriber channels, used for streaming replication and the columnar
//!   learner.
//! * [`dwal`] — the durable on-disk write-ahead log: checksummed segment
//!   files, a group-commit flusher, checkpoints, and crash recovery.

pub mod bptree;
pub mod colstore;
pub mod dwal;
pub mod rowstore;
pub mod wal;

pub use bptree::BPlusTree;
pub use colstore::{ColumnSnapshot, ColumnTable, DeltaStore, DimColumnCopy, DimSnapshot, Segment, SegmentBuilder};
pub use dwal::{
    CheckpointData, DurableWal, DurableWalStats, KillPoint, TableCheckpoint, WalConfig,
    WalRecovery,
};
pub use rowstore::{PruneStats, RowDb, RowId, RowStore};
pub use wal::{LogRecord, TableOp, Wal};
