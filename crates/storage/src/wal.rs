//! Commit log records and an in-memory write-ahead log with subscribers.
//!
//! The isolated engine ships these records to its replica ("streaming WAL
//! records ... as they are generated", §6.3) and the TiDB-like engine ships
//! them to its columnar learner. Records are *physical*: inserts carry the
//! row id the primary allocated, so a replica that applies records in LSN
//! order reproduces the primary's row addressing exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use hat_common::clock::BenchClock;
use hat_common::{Nanos, Row, TableId};
use hat_txn::Ts;
use parking_lot::Mutex;

/// Log sequence number; dense, starting at 1.
pub type Lsn = u64;

/// One redo operation within a committed transaction.
#[derive(Debug, Clone)]
pub enum TableOp {
    /// A row inserted at `rid`.
    Insert { table: TableId, rid: u64, row: Row },
    /// A new version of row `rid`.
    Update { table: TableId, rid: u64, row: Row },
}

impl TableOp {
    /// The table this operation touches.
    pub fn table(&self) -> TableId {
        match self {
            TableOp::Insert { table, .. } | TableOp::Update { table, .. } => *table,
        }
    }
}

/// The redo record of one committed transaction.
#[derive(Debug)]
pub struct LogRecord {
    pub lsn: Lsn,
    pub commit_ts: Ts,
    /// Wall-clock send time on the global benchmark clock, used by
    /// receivers to model network transit without a shared sleep.
    pub sent_at: Nanos,
    pub ops: Vec<TableOp>,
}

/// An in-memory write-ahead log that fans records out to subscribers.
///
/// Appends are expected to happen inside the commit critical section, so
/// records arrive at subscribers in strictly increasing (lsn, commit_ts)
/// order.
pub struct Wal {
    next_lsn: AtomicU64,
    subscribers: Mutex<Vec<Sender<Arc<LogRecord>>>>,
}

impl Wal {
    /// An empty log with no subscribers.
    pub fn new() -> Self {
        Wal { next_lsn: AtomicU64::new(1), subscribers: Mutex::new(Vec::new()) }
    }

    /// Registers a subscriber. Must be called before traffic starts;
    /// records appended earlier are not replayed.
    pub fn subscribe(&self) -> Receiver<Arc<LogRecord>> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Appends a commit record and fans it out. Returns the record's LSN.
    pub fn append(&self, commit_ts: Ts, ops: Vec<TableOp>) -> Lsn {
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        let record = Arc::new(LogRecord {
            lsn,
            commit_ts,
            sent_at: BenchClock::global().now(),
            ops,
        });
        let mut subs = self.subscribers.lock();
        // Drop subscribers whose receiving end hung up.
        subs.retain(|tx| tx.send(Arc::clone(&record)).is_ok());
        lsn
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn.load(Ordering::Relaxed)
    }

    /// Number of records appended so far.
    pub fn appended(&self) -> u64 {
        self.next_lsn() - 1
    }

    /// Disconnects every subscriber, letting receiver threads exit their
    /// `recv` loops. Used on engine shutdown.
    pub fn close(&self) {
        self.subscribers.lock().clear();
    }
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    fn op(v: u32) -> TableOp {
        TableOp::Insert {
            table: TableId::History,
            rid: v as u64,
            row: row_from([Value::U32(v)]),
        }
    }

    #[test]
    fn lsns_are_dense() {
        let wal = Wal::new();
        assert_eq!(wal.append(2, vec![op(1)]), 1);
        assert_eq!(wal.append(3, vec![op(2)]), 2);
        assert_eq!(wal.next_lsn(), 3);
    }

    #[test]
    fn subscribers_receive_in_order() {
        let wal = Wal::new();
        let rx = wal.subscribe();
        for i in 0..10u32 {
            wal.append(i as u64 + 2, vec![op(i)]);
        }
        let lsns: Vec<Lsn> = (0..10).map(|_| rx.recv().unwrap().lsn).collect();
        assert_eq!(lsns, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_subscribers_each_get_everything() {
        let wal = Wal::new();
        let a = wal.subscribe();
        let b = wal.subscribe();
        wal.append(2, vec![op(1), op(2)]);
        assert_eq!(a.recv().unwrap().ops.len(), 2);
        assert_eq!(b.recv().unwrap().ops.len(), 2);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let wal = Wal::new();
        let rx = wal.subscribe();
        drop(rx);
        // Append must not fail or leak the dead channel.
        wal.append(2, vec![op(1)]);
        assert_eq!(wal.subscribers.lock().len(), 0);
    }

    #[test]
    fn records_before_subscription_are_not_replayed() {
        let wal = Wal::new();
        wal.append(2, vec![op(1)]);
        let rx = wal.subscribe();
        wal.append(3, vec![op(2)]);
        let rec = rx.recv().unwrap();
        assert_eq!(rec.lsn, 2);
        assert!(rx.try_recv().is_err());
    }
}
