//! Commit log records and an in-memory write-ahead log with subscribers
//! and a bounded retention ring.
//!
//! The isolated engine ships these records to its replica ("streaming WAL
//! records ... as they are generated", §6.3) and the TiDB-like engine ships
//! them to its columnar learner. Records are *physical*: inserts carry the
//! row id the primary allocated, so a replica that applies records in LSN
//! order reproduces the primary's row addressing exactly.
//!
//! # Retention and rejoin
//!
//! The log keeps the most recent [`Wal::retention`] records in a ring (the
//! in-memory analogue of `wal_keep_size` / a Raft log's unsnapshotted
//! suffix). A replica that crashed can rejoin with
//! [`Wal::subscribe_from`]`(last_applied_lsn + 1)`: retained records from
//! that LSN are replayed into the new channel atomically with subscriber
//! registration, so no record is lost or duplicated at the hand-off. If
//! the requested LSN has already been evicted from the ring, the call
//! fails with [`HatError::WalTruncated`] and the subscriber must take a
//! full basebackup instead of log catch-up.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use hat_common::clock::BenchClock;
use hat_common::{HatError, Nanos, Result, Row, TableId};
use hat_txn::Ts;
use parking_lot::Mutex;

/// Log sequence number; dense, starting at 1.
pub type Lsn = u64;

/// Records retained for catch-up unless overridden with
/// [`Wal::with_retention`].
pub const DEFAULT_RETENTION: usize = 65_536;

/// One redo operation within a committed transaction.
#[derive(Debug, Clone)]
pub enum TableOp {
    /// A row inserted at `rid`.
    Insert { table: TableId, rid: u64, row: Row },
    /// A new version of row `rid`.
    Update { table: TableId, rid: u64, row: Row },
}

impl TableOp {
    /// The table this operation touches.
    pub fn table(&self) -> TableId {
        match self {
            TableOp::Insert { table, .. } | TableOp::Update { table, .. } => *table,
        }
    }
}

/// The redo record of one committed transaction.
#[derive(Debug)]
pub struct LogRecord {
    pub lsn: Lsn,
    pub commit_ts: Ts,
    /// Wall-clock send time on the global benchmark clock, used by
    /// receivers to model network transit without a shared sleep.
    pub sent_at: Nanos,
    pub ops: Vec<TableOp>,
}

/// Subscriber list and retention ring, guarded together so that
/// `subscribe_from`'s replay + registration is atomic with respect to
/// concurrent appends.
struct WalInner {
    subscribers: Vec<Sender<Arc<LogRecord>>>,
    /// Most recent records, oldest first; contiguous LSNs.
    ring: VecDeque<Arc<LogRecord>>,
}

/// An in-memory write-ahead log that fans records out to subscribers.
///
/// Appends are expected to happen inside the commit critical section, so
/// records arrive at subscribers in strictly increasing (lsn, commit_ts)
/// order.
pub struct Wal {
    next_lsn: AtomicU64,
    retention: usize,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// An empty log with no subscribers and default retention.
    pub fn new() -> Self {
        Self::with_retention(DEFAULT_RETENTION)
    }

    /// An empty log retaining at most `retention` records for catch-up.
    pub fn with_retention(retention: usize) -> Self {
        Wal {
            next_lsn: AtomicU64::new(1),
            retention,
            inner: Mutex::new(WalInner {
                subscribers: Vec::new(),
                ring: VecDeque::new(),
            }),
        }
    }

    /// The retention bound (maximum records replayable on rejoin).
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Registers a subscriber receiving only records appended from now on.
    ///
    /// Equivalent to `subscribe_from(next_lsn())`, which cannot fail: the
    /// next LSN is never truncated.
    pub fn subscribe(&self) -> Receiver<Arc<LogRecord>> {
        self.subscribe_from(self.next_lsn())
            .expect("next_lsn is always retained")
    }

    /// Registers a subscriber starting at `from`: retained records with
    /// `lsn >= from` are replayed into the channel before registration
    /// completes, atomically with concurrent appends, so the subscriber
    /// sees every record from `from` on, exactly once and in order.
    ///
    /// Fails with [`HatError::WalTruncated`] if `from` precedes the
    /// oldest retained record — the caller's state is too stale for log
    /// catch-up and needs a full resync.
    pub fn subscribe_from(&self, from: Lsn) -> Result<Receiver<Arc<LogRecord>>> {
        let (tx, rx) = unbounded();
        let mut inner = self.inner.lock();
        let oldest = match inner.ring.front() {
            Some(first) => first.lsn,
            // Empty ring: everything up to next_lsn-1 is gone (or nothing
            // was ever appended); only a subscription at the head works.
            None => self.next_lsn(),
        };
        if from < oldest {
            return Err(HatError::WalTruncated { requested: from, oldest });
        }
        if let Some(first) = inner.ring.front() {
            let skip = (from - first.lsn) as usize;
            for record in inner.ring.iter().skip(skip) {
                // The receiver is local; send cannot fail.
                let _ = tx.send(Arc::clone(record));
            }
        }
        inner.subscribers.push(tx);
        Ok(rx)
    }

    /// Appends a commit record, retains it, and fans it out. Returns the
    /// record's LSN.
    pub fn append(&self, commit_ts: Ts, ops: Vec<TableOp>) -> Lsn {
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        let record = Arc::new(LogRecord {
            lsn,
            commit_ts,
            sent_at: BenchClock::global().now(),
            ops,
        });
        let mut inner = self.inner.lock();
        if self.retention > 0 {
            if inner.ring.len() == self.retention {
                inner.ring.pop_front();
            }
            inner.ring.push_back(Arc::clone(&record));
        }
        // Drop subscribers whose receiving end hung up.
        inner.subscribers.retain(|tx| tx.send(Arc::clone(&record)).is_ok());
        lsn
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn.load(Ordering::Relaxed)
    }

    /// Number of records appended so far.
    pub fn appended(&self) -> u64 {
        self.next_lsn() - 1
    }

    /// Oldest LSN still retained, if any records are retained.
    pub fn oldest_retained(&self) -> Option<Lsn> {
        self.inner.lock().ring.front().map(|r| r.lsn)
    }

    /// Disconnects every subscriber, letting receiver threads exit their
    /// `recv` loops. Retained records survive, so a later
    /// [`Wal::subscribe_from`] can still catch up — this is a connection
    /// teardown, not a log reset.
    pub fn close(&self) {
        self.inner.lock().subscribers.clear();
    }
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    fn op(v: u32) -> TableOp {
        TableOp::Insert {
            table: TableId::History,
            rid: v as u64,
            row: row_from([Value::U32(v)]),
        }
    }

    #[test]
    fn lsns_are_dense() {
        let wal = Wal::new();
        assert_eq!(wal.append(2, vec![op(1)]), 1);
        assert_eq!(wal.append(3, vec![op(2)]), 2);
        assert_eq!(wal.next_lsn(), 3);
    }

    #[test]
    fn subscribers_receive_in_order() {
        let wal = Wal::new();
        let rx = wal.subscribe();
        for i in 0..10u32 {
            wal.append(i as u64 + 2, vec![op(i)]);
        }
        let lsns: Vec<Lsn> = (0..10).map(|_| rx.recv().unwrap().lsn).collect();
        assert_eq!(lsns, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_subscribers_each_get_everything() {
        let wal = Wal::new();
        let a = wal.subscribe();
        let b = wal.subscribe();
        wal.append(2, vec![op(1), op(2)]);
        assert_eq!(a.recv().unwrap().ops.len(), 2);
        assert_eq!(b.recv().unwrap().ops.len(), 2);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let wal = Wal::new();
        let rx = wal.subscribe();
        drop(rx);
        // Append must not fail or leak the dead channel.
        wal.append(2, vec![op(1)]);
        assert_eq!(wal.inner.lock().subscribers.len(), 0);
    }

    #[test]
    fn records_before_subscription_are_not_replayed() {
        let wal = Wal::new();
        wal.append(2, vec![op(1)]);
        let rx = wal.subscribe();
        wal.append(3, vec![op(2)]);
        let rec = rx.recv().unwrap();
        assert_eq!(rec.lsn, 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn subscribe_from_replays_retained_suffix() {
        let wal = Wal::new();
        for i in 0..10u32 {
            wal.append(i as u64 + 2, vec![op(i)]);
        }
        // Rejoin as if we had applied through LSN 6.
        let rx = wal.subscribe_from(7).unwrap();
        wal.append(100, vec![op(99)]);
        let lsns: Vec<Lsn> = (0..5).map(|_| rx.recv().unwrap().lsn).collect();
        assert_eq!(lsns, vec![7, 8, 9, 10, 11], "catch-up then live tail");
    }

    #[test]
    fn subscribe_from_head_of_empty_log() {
        let wal = Wal::new();
        let rx = wal.subscribe_from(1).unwrap();
        wal.append(2, vec![op(1)]);
        assert_eq!(rx.recv().unwrap().lsn, 1);
    }

    #[test]
    fn truncated_lsn_is_an_explicit_error() {
        let wal = Wal::with_retention(4);
        for i in 0..10u32 {
            wal.append(i as u64 + 2, vec![op(i)]);
        }
        // LSNs 1..=6 were evicted; oldest retained is 7.
        assert_eq!(wal.oldest_retained(), Some(7));
        let err = wal.subscribe_from(3).unwrap_err();
        assert_eq!(err, HatError::WalTruncated { requested: 3, oldest: 7 });
        assert!(!err.is_retryable(), "needs a basebackup, not a retry");
        // The boundary LSN still works.
        let rx = wal.subscribe_from(7).unwrap();
        let lsns: Vec<Lsn> = (0..4).map(|_| rx.recv().unwrap().lsn).collect();
        assert_eq!(lsns, vec![7, 8, 9, 10]);
    }

    #[test]
    fn subscribe_boundary_at_exact_ring_eviction_edge() {
        // Pin the off-by-one at the eviction edge: with retention 4, each
        // append past the 4th evicts exactly one record, so after N
        // appends the oldest retained LSN is N-3. At every step,
        // `oldest` must subscribe cleanly and `oldest - 1` must fail
        // with a WalTruncated naming both sides of the edge.
        let wal = Wal::with_retention(4);
        for i in 0..8u32 {
            wal.append(i as u64 + 2, vec![op(i)]);
            let appended = i as u64 + 1;
            let oldest = appended.saturating_sub(3).max(1);
            assert_eq!(wal.oldest_retained(), Some(oldest));
            // The edge itself: full retained suffix replays.
            let rx = wal.subscribe_from(oldest).unwrap();
            let replayed: Vec<Lsn> =
                (oldest..=appended).map(|_| rx.recv().unwrap().lsn).collect();
            assert_eq!(replayed, (oldest..=appended).collect::<Vec<_>>());
            // One before the edge: evicted, explicit error (only once
            // eviction has actually happened).
            if oldest > 1 {
                let err = wal.subscribe_from(oldest - 1).unwrap_err();
                assert_eq!(
                    err,
                    HatError::WalTruncated { requested: oldest - 1, oldest },
                    "after {appended} appends"
                );
            }
        }
    }

    #[test]
    fn close_preserves_retention_for_rejoin() {
        let wal = Wal::new();
        let rx = wal.subscribe();
        wal.append(2, vec![op(1)]);
        assert_eq!(rx.recv().unwrap().lsn, 1);
        wal.close();
        assert!(rx.recv().is_err(), "channel torn down");
        // A rejoin from LSN 1 still replays the retained record.
        let rx2 = wal.subscribe_from(1).unwrap();
        assert_eq!(rx2.recv().unwrap().lsn, 1);
    }
}
