//! Date-range hints extracted from query specs.
//!
//! Several SSB queries restrict the fact table to a contiguous
//! `lo_orderdate` range via their date-dimension filter. The executor and
//! the engines both exploit that: row-store engines feed the hint to the
//! orderdate index prefilter, and the morsel planner uses it to prune
//! columnar segments through their zone maps. Keeping the extraction here
//! (next to the executor) guarantees both consumers agree on the hint.

use hat_common::dates;
use hat_common::ids::{date, lineorder};
use hat_common::TableId;

use crate::predicate::ColPredicate;
use crate::spec::QuerySpec;

/// If `spec`'s date join restricts orders to one contiguous, selective
/// date-key range, returns `(lo, hi)` inclusive.
///
/// Recognized filters: `d_year = y` and `d_yearmonthnum = yyyymm`, plus the
/// string form `d_yearmonth = "MonYYYY"`. Ranges wider than a year (the
/// flight-3 `d_year between` filters) are not worth an index pass and
/// return `None`. The hint may be a superset of the true filter (e.g. the
/// week-level Q1.3 hints its whole year) — the date join re-applies the
/// exact predicate, so correctness never depends on hint tightness.
pub fn date_range_hint(spec: &QuerySpec) -> Option<(u32, u32)> {
    let join = spec
        .joins
        .iter()
        .find(|j| j.dim == TableId::Date && j.fact_key == lineorder::ORDERDATE)?;
    for pred in &join.dim_filter.conjuncts {
        match pred {
            ColPredicate::U32Eq(col, y) if *col == date::YEAR => {
                return Some((y * 10000 + 101, y * 10000 + 1231));
            }
            ColPredicate::U32Eq(col, ym) if *col == date::YEARMONTHNUM => {
                let (y, m) = (ym / 100, ym % 100);
                let last = dates::days_in_month(y, m);
                return Some((ym * 100 + 1, ym * 100 + last));
            }
            ColPredicate::StrEq(col, s) if *col == date::YEARMONTH => {
                return parse_yearmonth(s).map(|(y, m)| {
                    let ym = y * 100 + m;
                    (ym * 100 + 1, ym * 100 + dates::days_in_month(y, m))
                });
            }
            _ => {}
        }
    }
    None
}

fn parse_yearmonth(s: &str) -> Option<(u32, u32)> {
    if s.len() != 7 {
        return None;
    }
    let month = match &s[..3] {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    s[3..].parse::<u32>().ok().map(|y| (y, month))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QueryId;
    use crate::ssb;

    #[test]
    fn hints_for_flight1_and_q34() {
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_1)),
            Some((19930101, 19931231))
        );
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_2)),
            Some((19940101, 19940131))
        );
        // Week-level filter: the year conjunct still yields a (superset)
        // year range — the join re-applies the exact filter.
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_3)),
            Some((19940101, 19941231))
        );
        // Q3.4 filters d_yearmonth = Dec1997.
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q3_4)),
            Some((19971201, 19971231))
        );
    }

    #[test]
    fn no_hint_for_wide_or_absent_filters() {
        for id in [QueryId::Q2_1, QueryId::Q3_1, QueryId::Q4_1] {
            assert_eq!(date_range_hint(&ssb::query(id)), None, "{}", id.label());
        }
    }

    #[test]
    fn parse_yearmonth_cases() {
        assert_eq!(parse_yearmonth("Dec1997"), Some((1997, 12)));
        assert_eq!(parse_yearmonth("Jan1992"), Some((1992, 1)));
        assert_eq!(parse_yearmonth("xyz1997"), None);
        assert_eq!(parse_yearmonth("Dec97"), None);
    }
}
