//! Scan-pruning hints extracted from query specs.
//!
//! Several SSB queries restrict the fact table to a contiguous
//! `lo_orderdate` range via their date-dimension filter. The executor and
//! the engines both exploit that: row-store engines feed the hint to the
//! orderdate index prefilter, and the morsel planner uses it to prune
//! columnar segments through their zone maps. Keeping the extraction here
//! (next to the executor) guarantees both consumers agree on the hint.
//!
//! [`ScanPruner`] generalizes the date hint to *every* `u32` conjunct of
//! the fact filter: each becomes a zone check the morsel planner matches
//! against the per-segment `u32_minmax` zone maps, so a `lo_discount` or
//! `lo_quantity` range prunes morsels exactly like the date range does.

use hat_common::dates;
use hat_common::ids::{date, lineorder};
use hat_common::{ColId, TableId};

use crate::predicate::ColPredicate;
use crate::spec::QuerySpec;

/// One zone-map check against a `u32` column: "could any value in
/// `[min, max]` satisfy the predicate?"
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneCheck {
    /// Inclusive `[lo, hi]` range (equality is a one-point range).
    Range(u32, u32),
    /// Small IN list.
    In(Vec<u32>),
}

impl ZoneCheck {
    /// Whether a column whose values all lie in `[min, max]` could contain
    /// a passing row. Conservative: `true` keeps the morsel.
    pub fn may_overlap(&self, min: u32, max: u32) -> bool {
        match self {
            ZoneCheck::Range(lo, hi) => max >= *lo && min <= *hi,
            ZoneCheck::In(vs) => vs.iter().any(|&v| min <= v && v <= max),
        }
    }
}

/// The executor's zone-map pruning plan for one query: every `u32` check
/// the morsel planner should match against segment zone maps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanPruner {
    /// `(fact column, check)` pairs. A morsel survives only if every check
    /// whose column has a known zone overlaps that zone.
    pub checks: Vec<(ColId, ZoneCheck)>,
}

impl ScanPruner {
    /// A pruner with no checks (prunes nothing).
    pub fn none() -> Self {
        ScanPruner::default()
    }

    /// Builds the pruning plan for `spec`: the date-range hint (when one
    /// exists) plus every `U32Eq` / `U32Between` / `U32In` conjunct of the
    /// fact filter. Each check is a superset of the true predicate over
    /// any candidate morsel, so pruning never drops a passing row.
    pub fn for_spec(spec: &QuerySpec) -> Self {
        let mut checks = Vec::new();
        if let Some((lo, hi)) = date_range_hint(spec) {
            checks.push((lineorder::ORDERDATE, ZoneCheck::Range(lo, hi)));
        }
        for pred in &spec.fact_filter.conjuncts {
            match pred {
                ColPredicate::U32Eq(c, v) => checks.push((*c, ZoneCheck::Range(*v, *v))),
                ColPredicate::U32Between(c, lo, hi) => {
                    checks.push((*c, ZoneCheck::Range(*lo, *hi)));
                }
                ColPredicate::U32In(c, vs) => checks.push((*c, ZoneCheck::In(vs.clone()))),
                _ => {}
            }
        }
        ScanPruner { checks }
    }

    /// Whether the pruner has no checks at all.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// The columns the planner should collect zone maps for.
    pub fn cols(&self) -> impl Iterator<Item = ColId> + '_ {
        self.checks.iter().map(|(c, _)| *c)
    }
}

/// If `spec`'s date join restricts orders to one contiguous, selective
/// date-key range, returns `(lo, hi)` inclusive.
///
/// Recognized filters: `d_year = y` and `d_yearmonthnum = yyyymm`, plus the
/// string form `d_yearmonth = "MonYYYY"`. Ranges wider than a year (the
/// flight-3 `d_year between` filters) are not worth an index pass and
/// return `None`. The hint may be a superset of the true filter (e.g. the
/// week-level Q1.3 hints its whole year) — the date join re-applies the
/// exact predicate, so correctness never depends on hint tightness.
pub fn date_range_hint(spec: &QuerySpec) -> Option<(u32, u32)> {
    let join = spec
        .joins
        .iter()
        .find(|j| j.dim == TableId::Date && j.fact_key == lineorder::ORDERDATE)?;
    for pred in &join.dim_filter.conjuncts {
        match pred {
            ColPredicate::U32Eq(col, y) if *col == date::YEAR => {
                return Some((y * 10000 + 101, y * 10000 + 1231));
            }
            ColPredicate::U32Eq(col, ym) if *col == date::YEARMONTHNUM => {
                let (y, m) = (ym / 100, ym % 100);
                let last = dates::days_in_month(y, m);
                return Some((ym * 100 + 1, ym * 100 + last));
            }
            ColPredicate::StrEq(col, s) if *col == date::YEARMONTH => {
                return parse_yearmonth(s).map(|(y, m)| {
                    let ym = y * 100 + m;
                    (ym * 100 + 1, ym * 100 + dates::days_in_month(y, m))
                });
            }
            _ => {}
        }
    }
    None
}

fn parse_yearmonth(s: &str) -> Option<(u32, u32)> {
    if s.len() != 7 {
        return None;
    }
    let month = match &s[..3] {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    s[3..].parse::<u32>().ok().map(|y| (y, month))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QueryId;
    use crate::ssb;

    #[test]
    fn hints_for_flight1_and_q34() {
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_1)),
            Some((19930101, 19931231))
        );
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_2)),
            Some((19940101, 19940131))
        );
        // Week-level filter: the year conjunct still yields a (superset)
        // year range — the join re-applies the exact filter.
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q1_3)),
            Some((19940101, 19941231))
        );
        // Q3.4 filters d_yearmonth = Dec1997.
        assert_eq!(
            date_range_hint(&ssb::query(QueryId::Q3_4)),
            Some((19971201, 19971231))
        );
    }

    #[test]
    fn no_hint_for_wide_or_absent_filters() {
        for id in [QueryId::Q2_1, QueryId::Q3_1, QueryId::Q4_1] {
            assert_eq!(date_range_hint(&ssb::query(id)), None, "{}", id.label());
        }
    }

    #[test]
    fn parse_yearmonth_cases() {
        assert_eq!(parse_yearmonth("Dec1997"), Some((1997, 12)));
        assert_eq!(parse_yearmonth("Jan1992"), Some((1992, 1)));
        assert_eq!(parse_yearmonth("xyz1997"), None);
        assert_eq!(parse_yearmonth("Dec97"), None);
    }

    #[test]
    fn zone_check_overlap_semantics() {
        assert!(ZoneCheck::Range(10, 20).may_overlap(15, 30));
        assert!(ZoneCheck::Range(10, 20).may_overlap(20, 30), "inclusive edge");
        assert!(!ZoneCheck::Range(10, 20).may_overlap(21, 30));
        assert!(!ZoneCheck::Range(10, 20).may_overlap(1, 9));
        assert!(ZoneCheck::In(vec![5, 25]).may_overlap(20, 30));
        assert!(!ZoneCheck::In(vec![5, 35]).may_overlap(20, 30));
        assert!(!ZoneCheck::In(vec![]).may_overlap(0, u32::MAX), "empty IN admits nothing");
    }

    #[test]
    fn pruner_combines_date_hint_and_fact_conjuncts() {
        // Q1.1: d_year = 1993 plus discount BETWEEN and quantity <.
        let pruner = ScanPruner::for_spec(&ssb::query(QueryId::Q1_1));
        assert_eq!(pruner.checks[0], (
            lineorder::ORDERDATE,
            ZoneCheck::Range(19930101, 19931231)
        ));
        assert!(
            pruner.cols().any(|c| c == lineorder::DISCOUNT),
            "fact-filter u32 conjuncts become zone checks"
        );
        assert!(!pruner.is_empty());
        // A query with neither date hint nor u32 fact conjuncts.
        let pruner = ScanPruner::for_spec(&ssb::query(QueryId::Q2_1));
        assert!(pruner.is_empty(), "Q2.1 filters only via dimension joins");
        assert!(ScanPruner::none().is_empty());
    }
}
