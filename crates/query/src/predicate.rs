//! Column predicates (conjunctive filters) evaluated against [`RowRef`]s.
//!
//! The SSB query suite only needs equality, inclusive ranges, and small IN
//! lists over integers and strings, so predicates are a closed enum the
//! executor can evaluate without boxing or dynamic dispatch.

use hat_common::ColId;

use crate::view::RowRef;

/// A single-column filter.
#[derive(Debug, Clone, PartialEq)]
pub enum ColPredicate {
    /// `col = v`
    U32Eq(ColId, u32),
    /// `col BETWEEN lo AND hi` (inclusive)
    U32Between(ColId, u32, u32),
    /// `col IN (..)`
    U32In(ColId, Vec<u32>),
    /// `col = s`
    StrEq(ColId, String),
    /// `col IN (..)`
    StrIn(ColId, Vec<String>),
    /// `col BETWEEN lo AND hi` (inclusive, lexicographic)
    StrBetween(ColId, String, String),
}

impl ColPredicate {
    /// The column this predicate filters.
    pub fn col(&self) -> ColId {
        match self {
            ColPredicate::U32Eq(c, _)
            | ColPredicate::U32Between(c, _, _)
            | ColPredicate::U32In(c, _)
            | ColPredicate::StrEq(c, _)
            | ColPredicate::StrIn(c, _)
            | ColPredicate::StrBetween(c, _, _) => *c,
        }
    }

    /// Evaluates against one row.
    #[inline]
    pub fn eval(&self, row: &RowRef<'_>) -> bool {
        match self {
            ColPredicate::U32Eq(c, v) => row.u32(*c) == *v,
            ColPredicate::U32Between(c, lo, hi) => {
                let v = row.u32(*c);
                *lo <= v && v <= *hi
            }
            ColPredicate::U32In(c, vs) => vs.contains(&row.u32(*c)),
            ColPredicate::StrEq(c, s) => row.str(*c) == s.as_str(),
            ColPredicate::StrIn(c, vs) => {
                let v = row.str(*c);
                vs.iter().any(|s| s == v)
            }
            ColPredicate::StrBetween(c, lo, hi) => {
                let v = row.str(*c);
                lo.as_str() <= v && v <= hi.as_str()
            }
        }
    }
}

/// A conjunction of column predicates. Empty means "accept everything".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Predicate {
    pub conjuncts: Vec<ColPredicate>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn all() -> Self {
        Predicate::default()
    }

    /// A conjunction of the given filters.
    pub fn and(conjuncts: Vec<ColPredicate>) -> Self {
        Predicate { conjuncts }
    }

    /// Evaluates against one row.
    #[inline]
    pub fn eval(&self, row: &RowRef<'_>) -> bool {
        self.conjuncts.iter().all(|p| p.eval(row))
    }

    /// Whether this predicate filters nothing.
    pub fn is_trivial(&self) -> bool {
        self.conjuncts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    fn test_row() -> hat_common::Row {
        row_from([Value::U32(7), Value::from("ASIA"), Value::U32(1994)])
    }

    #[test]
    fn u32_predicates() {
        let row = test_row();
        let r = RowRef::Row(&row);
        assert!(ColPredicate::U32Eq(0, 7).eval(&r));
        assert!(!ColPredicate::U32Eq(0, 8).eval(&r));
        assert!(ColPredicate::U32Between(2, 1992, 1997).eval(&r));
        assert!(ColPredicate::U32Between(2, 1994, 1994).eval(&r));
        assert!(!ColPredicate::U32Between(2, 1995, 1997).eval(&r));
        assert!(ColPredicate::U32In(0, vec![1, 7, 9]).eval(&r));
        assert!(!ColPredicate::U32In(0, vec![1, 9]).eval(&r));
    }

    #[test]
    fn str_predicates() {
        let row = test_row();
        let r = RowRef::Row(&row);
        assert!(ColPredicate::StrEq(1, "ASIA".into()).eval(&r));
        assert!(!ColPredicate::StrEq(1, "EUROPE".into()).eval(&r));
        assert!(ColPredicate::StrIn(1, vec!["ASIA".into(), "EUROPE".into()]).eval(&r));
        assert!(ColPredicate::StrBetween(1, "AMERICA".into(), "EUROPE".into()).eval(&r));
        assert!(!ColPredicate::StrBetween(1, "EUROPE".into(), "ZZZ".into()).eval(&r));
        // Inclusive at both ends.
        assert!(ColPredicate::StrBetween(1, "ASIA".into(), "ASIA".into()).eval(&r));
    }

    #[test]
    fn conjunction() {
        let row = test_row();
        let r = RowRef::Row(&row);
        assert!(Predicate::all().eval(&r));
        assert!(Predicate::all().is_trivial());
        let p = Predicate::and(vec![
            ColPredicate::U32Eq(0, 7),
            ColPredicate::StrEq(1, "ASIA".into()),
        ]);
        assert!(p.eval(&r));
        let p = Predicate::and(vec![
            ColPredicate::U32Eq(0, 7),
            ColPredicate::StrEq(1, "EUROPE".into()),
        ]);
        assert!(!p.eval(&r));
    }

    #[test]
    fn col_accessor() {
        assert_eq!(ColPredicate::U32Eq(3, 1).col(), 3);
        assert_eq!(ColPredicate::StrBetween(5, "a".into(), "b".into()).col(), 5);
    }
}
