//! Declarative query plans: star joins over the fact table with grouped
//! aggregation.
//!
//! Every SSB query is a star join — the fact table filtered and probed
//! against hashed dimension tables — with at most one aggregate and up to
//! three group-by keys. [`QuerySpec`] captures exactly that shape as data;
//! [`crate::exec::execute`] interprets it against any
//! [`crate::view::SnapshotView`].

use std::sync::Arc;

use hat_common::{ColId, TableId};

use crate::predicate::Predicate;

/// Identifies one of the 13 SSB queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryId {
    Q1_1,
    Q1_2,
    Q1_3,
    Q2_1,
    Q2_2,
    Q2_3,
    Q3_1,
    Q3_2,
    Q3_3,
    Q3_4,
    Q4_1,
    Q4_2,
    Q4_3,
}

impl QueryId {
    /// All queries, in flight order Q1.1 .. Q4.3.
    pub const ALL: [QueryId; 13] = [
        QueryId::Q1_1,
        QueryId::Q1_2,
        QueryId::Q1_3,
        QueryId::Q2_1,
        QueryId::Q2_2,
        QueryId::Q2_3,
        QueryId::Q3_1,
        QueryId::Q3_2,
        QueryId::Q3_3,
        QueryId::Q3_4,
        QueryId::Q4_1,
        QueryId::Q4_2,
        QueryId::Q4_3,
    ];

    /// Conventional label, e.g. `"Q2.3"`.
    pub fn label(self) -> &'static str {
        match self {
            QueryId::Q1_1 => "Q1.1",
            QueryId::Q1_2 => "Q1.2",
            QueryId::Q1_3 => "Q1.3",
            QueryId::Q2_1 => "Q2.1",
            QueryId::Q2_2 => "Q2.2",
            QueryId::Q2_3 => "Q2.3",
            QueryId::Q3_1 => "Q3.1",
            QueryId::Q3_2 => "Q3.2",
            QueryId::Q3_3 => "Q3.3",
            QueryId::Q3_4 => "Q3.4",
            QueryId::Q4_1 => "Q4.1",
            QueryId::Q4_2 => "Q4.2",
            QueryId::Q4_3 => "Q4.3",
        }
    }

    /// The SSB query flight (1–4), used in reporting.
    pub fn flight(self) -> u8 {
        match self {
            QueryId::Q1_1 | QueryId::Q1_2 | QueryId::Q1_3 => 1,
            QueryId::Q2_1 | QueryId::Q2_2 | QueryId::Q2_3 => 2,
            QueryId::Q3_1 | QueryId::Q3_2 | QueryId::Q3_3 | QueryId::Q3_4 => 3,
            QueryId::Q4_1 | QueryId::Q4_2 | QueryId::Q4_3 => 4,
        }
    }
}

/// One dimension join of the star.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// The dimension table.
    pub dim: TableId,
    /// Fact-side join key column (u32).
    pub fact_key: ColId,
    /// Dimension-side key column (u32).
    pub dim_key: ColId,
    /// Filter applied while building the dimension hash table. Rows that
    /// fail are absent from the table, so the join doubles as a filter.
    pub dim_filter: Predicate,
    /// Dimension columns carried through the join (group-by payload).
    pub payload: Vec<ColId>,
}

/// A group-by key source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKey {
    /// A fact-table column (u32).
    FactU32(ColId),
    /// A `u32` column of the `idx`-th join's payload: `(join idx, payload idx)`.
    DimU32(usize, usize),
    /// A string column of the `idx`-th join's payload.
    DimStr(usize, usize),
}

/// The aggregate computed per group. All SSB aggregates are money sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggExpr {
    /// `sum(col)` — e.g. `sum(lo_revenue)`.
    SumMoney(ColId),
    /// `sum(money_col * pct_col / 100)` — SSB flight 1's
    /// `sum(lo_extendedprice * lo_discount)` with discount in percent.
    SumMoneyTimesPct(ColId, ColId),
    /// `sum(a - b)` — SSB flight 4's profit
    /// `sum(lo_revenue - lo_supplycost)`.
    SumMoneyDiff(ColId, ColId),
    /// `count(*)` per group.
    CountRows,
}

/// A full star-join aggregation plan.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub id: QueryId,
    /// The fact table (always `LINEORDER` in SSB).
    pub fact: TableId,
    /// Filter applied to fact rows before probing.
    pub fact_filter: Predicate,
    /// The dimension joins.
    pub joins: Vec<JoinSpec>,
    /// Group-by keys; empty means a single global aggregate row.
    pub group_by: Vec<GroupKey>,
    /// The aggregate.
    pub agg: AggExpr,
}

/// A materialized group-key component.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupVal {
    U32(u32),
    Str(Arc<str>),
}

impl std::fmt::Display for GroupVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupVal::U32(v) => write!(f, "{v}"),
            GroupVal::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_queries() {
        assert_eq!(QueryId::ALL.len(), 13);
        let labels: std::collections::HashSet<_> =
            QueryId::ALL.iter().map(|q| q.label()).collect();
        assert_eq!(labels.len(), 13);
    }

    #[test]
    fn flights() {
        let mut per_flight = [0usize; 5];
        for q in QueryId::ALL {
            per_flight[q.flight() as usize] += 1;
        }
        assert_eq!(per_flight[1..], [3, 3, 4, 3]);
    }

    #[test]
    fn group_val_ordering_and_display() {
        assert!(GroupVal::U32(1) < GroupVal::U32(2));
        assert!(GroupVal::Str(Arc::from("a")) < GroupVal::Str(Arc::from("b")));
        assert_eq!(GroupVal::U32(1994).to_string(), "1994");
        assert_eq!(GroupVal::Str(Arc::from("ASIA")).to_string(), "ASIA");
    }
}
