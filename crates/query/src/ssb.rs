//! The 13 Star-Schema-Benchmark queries (Q1.1–Q4.3) as [`QuerySpec`]s.
//!
//! Constants follow the SSB specification (O'Neil et al., 2009). HATtrick
//! runs these unmodified except for the freshness side-read, which the
//! executor attaches to every query (§5.2.2 of the paper).

use hat_common::ids::{customer, date, lineorder, part, supplier};
use hat_common::TableId;

use crate::predicate::{ColPredicate, Predicate};
use crate::spec::{AggExpr, GroupKey, JoinSpec, QueryId, QuerySpec};

fn date_join(filter: Predicate, payload: Vec<usize>) -> JoinSpec {
    JoinSpec {
        dim: TableId::Date,
        fact_key: lineorder::ORDERDATE,
        dim_key: date::DATEKEY,
        dim_filter: filter,
        payload,
    }
}

fn part_join(filter: Predicate, payload: Vec<usize>) -> JoinSpec {
    JoinSpec {
        dim: TableId::Part,
        fact_key: lineorder::PARTKEY,
        dim_key: part::PARTKEY,
        dim_filter: filter,
        payload,
    }
}

fn supplier_join(filter: Predicate, payload: Vec<usize>) -> JoinSpec {
    JoinSpec {
        dim: TableId::Supplier,
        fact_key: lineorder::SUPPKEY,
        dim_key: supplier::SUPPKEY,
        dim_filter: filter,
        payload,
    }
}

fn customer_join(filter: Predicate, payload: Vec<usize>) -> JoinSpec {
    JoinSpec {
        dim: TableId::Customer,
        fact_key: lineorder::CUSTKEY,
        dim_key: customer::CUSTKEY,
        dim_filter: filter,
        payload,
    }
}

/// Returns the plan for `id`.
pub fn query(id: QueryId) -> QuerySpec {
    match id {
        // --- Flight 1: revenue impact of discount ranges -----------------
        // select sum(lo_extendedprice*lo_discount) from lineorder, date
        // where lo_orderdate = d_datekey and d_year = 1993
        //   and lo_discount between 1 and 3 and lo_quantity < 25
        QueryId::Q1_1 => QuerySpec {
            id,
            fact: TableId::Lineorder,
            fact_filter: Predicate::and(vec![
                ColPredicate::U32Between(lineorder::DISCOUNT, 1, 3),
                ColPredicate::U32Between(lineorder::QUANTITY, 0, 24),
            ]),
            joins: vec![date_join(
                Predicate::and(vec![ColPredicate::U32Eq(date::YEAR, 1993)]),
                vec![],
            )],
            group_by: vec![],
            agg: AggExpr::SumMoneyTimesPct(lineorder::EXTENDEDPRICE, lineorder::DISCOUNT),
        },
        // d_yearmonthnum = 199401, discount 4..6, quantity 26..35
        QueryId::Q1_2 => QuerySpec {
            id,
            fact: TableId::Lineorder,
            fact_filter: Predicate::and(vec![
                ColPredicate::U32Between(lineorder::DISCOUNT, 4, 6),
                ColPredicate::U32Between(lineorder::QUANTITY, 26, 35),
            ]),
            joins: vec![date_join(
                Predicate::and(vec![ColPredicate::U32Eq(date::YEARMONTHNUM, 199401)]),
                vec![],
            )],
            group_by: vec![],
            agg: AggExpr::SumMoneyTimesPct(lineorder::EXTENDEDPRICE, lineorder::DISCOUNT),
        },
        // d_weeknuminyear = 6 and d_year = 1994, discount 5..7, quantity 26..35
        QueryId::Q1_3 => QuerySpec {
            id,
            fact: TableId::Lineorder,
            fact_filter: Predicate::and(vec![
                ColPredicate::U32Between(lineorder::DISCOUNT, 5, 7),
                ColPredicate::U32Between(lineorder::QUANTITY, 26, 35),
            ]),
            joins: vec![date_join(
                Predicate::and(vec![
                    ColPredicate::U32Eq(date::WEEKNUMINYEAR, 6),
                    ColPredicate::U32Eq(date::YEAR, 1994),
                ]),
                vec![],
            )],
            group_by: vec![],
            agg: AggExpr::SumMoneyTimesPct(lineorder::EXTENDEDPRICE, lineorder::DISCOUNT),
        },

        // --- Flight 2: revenue by brand over years -----------------------
        // select sum(lo_revenue), d_year, p_brand1 ... where p_category =
        // 'MFGR#12' and s_region = 'AMERICA' group by d_year, p_brand1
        QueryId::Q2_1 => q2(id, ColPredicate::StrEq(part::CATEGORY, "MFGR#12".into()), "AMERICA"),
        QueryId::Q2_2 => q2(
            id,
            ColPredicate::StrBetween(part::BRAND1, "MFGR#2221".into(), "MFGR#2228".into()),
            "ASIA",
        ),
        QueryId::Q2_3 => q2(id, ColPredicate::StrEq(part::BRAND1, "MFGR#2239".into()), "EUROPE"),

        // --- Flight 3: revenue by customer/supplier geography ------------
        QueryId::Q3_1 => QuerySpec {
            id,
            fact: TableId::Lineorder,
            fact_filter: Predicate::all(),
            joins: vec![
                customer_join(
                    Predicate::and(vec![ColPredicate::StrEq(customer::REGION, "ASIA".into())]),
                    vec![customer::NATION],
                ),
                supplier_join(
                    Predicate::and(vec![ColPredicate::StrEq(supplier::REGION, "ASIA".into())]),
                    vec![supplier::NATION],
                ),
                date_join(
                    Predicate::and(vec![ColPredicate::U32Between(date::YEAR, 1992, 1997)]),
                    vec![date::YEAR],
                ),
            ],
            group_by: vec![
                GroupKey::DimStr(0, 0),
                GroupKey::DimStr(1, 0),
                GroupKey::DimU32(2, 0),
            ],
            agg: AggExpr::SumMoney(lineorder::REVENUE),
        },
        QueryId::Q3_2 => q3_cities(
            id,
            ColPredicate::StrEq(customer::NATION, "UNITED STATES".into()),
            ColPredicate::StrEq(supplier::NATION, "UNITED STATES".into()),
            ColPredicate::U32Between(date::YEAR, 1992, 1997),
        ),
        QueryId::Q3_3 => q3_cities(
            id,
            ColPredicate::StrIn(
                customer::CITY,
                vec!["UNITED KI1".into(), "UNITED KI5".into()],
            ),
            ColPredicate::StrIn(
                supplier::CITY,
                vec!["UNITED KI1".into(), "UNITED KI5".into()],
            ),
            ColPredicate::U32Between(date::YEAR, 1992, 1997),
        ),
        QueryId::Q3_4 => q3_cities(
            id,
            ColPredicate::StrIn(
                customer::CITY,
                vec!["UNITED KI1".into(), "UNITED KI5".into()],
            ),
            ColPredicate::StrIn(
                supplier::CITY,
                vec!["UNITED KI1".into(), "UNITED KI5".into()],
            ),
            ColPredicate::StrEq(date::YEARMONTH, "Dec1997".into()),
        ),

        // --- Flight 4: profit drill-down ---------------------------------
        QueryId::Q4_1 => QuerySpec {
            id,
            fact: TableId::Lineorder,
            fact_filter: Predicate::all(),
            joins: vec![
                customer_join(
                    Predicate::and(vec![ColPredicate::StrEq(
                        customer::REGION,
                        "AMERICA".into(),
                    )]),
                    vec![customer::NATION],
                ),
                supplier_join(
                    Predicate::and(vec![ColPredicate::StrEq(
                        supplier::REGION,
                        "AMERICA".into(),
                    )]),
                    vec![],
                ),
                part_join(
                    Predicate::and(vec![ColPredicate::StrIn(
                        part::MFGR,
                        vec!["MFGR#1".into(), "MFGR#2".into()],
                    )]),
                    vec![],
                ),
                date_join(Predicate::all(), vec![date::YEAR]),
            ],
            group_by: vec![GroupKey::DimU32(3, 0), GroupKey::DimStr(0, 0)],
            agg: AggExpr::SumMoneyDiff(lineorder::REVENUE, lineorder::SUPPLYCOST),
        },
        QueryId::Q4_2 => QuerySpec {
            id,
            fact: TableId::Lineorder,
            fact_filter: Predicate::all(),
            joins: vec![
                customer_join(
                    Predicate::and(vec![ColPredicate::StrEq(
                        customer::REGION,
                        "AMERICA".into(),
                    )]),
                    vec![],
                ),
                supplier_join(
                    Predicate::and(vec![ColPredicate::StrEq(
                        supplier::REGION,
                        "AMERICA".into(),
                    )]),
                    vec![supplier::NATION],
                ),
                part_join(
                    Predicate::and(vec![ColPredicate::StrIn(
                        part::MFGR,
                        vec!["MFGR#1".into(), "MFGR#2".into()],
                    )]),
                    vec![part::CATEGORY],
                ),
                date_join(
                    Predicate::and(vec![ColPredicate::U32In(date::YEAR, vec![1997, 1998])]),
                    vec![date::YEAR],
                ),
            ],
            group_by: vec![
                GroupKey::DimU32(3, 0),
                GroupKey::DimStr(1, 0),
                GroupKey::DimStr(2, 0),
            ],
            agg: AggExpr::SumMoneyDiff(lineorder::REVENUE, lineorder::SUPPLYCOST),
        },
        QueryId::Q4_3 => QuerySpec {
            id,
            fact: TableId::Lineorder,
            fact_filter: Predicate::all(),
            joins: vec![
                customer_join(
                    Predicate::and(vec![ColPredicate::StrEq(
                        customer::REGION,
                        "AMERICA".into(),
                    )]),
                    vec![],
                ),
                supplier_join(
                    Predicate::and(vec![ColPredicate::StrEq(
                        supplier::NATION,
                        "UNITED STATES".into(),
                    )]),
                    vec![supplier::CITY],
                ),
                part_join(
                    Predicate::and(vec![ColPredicate::StrEq(
                        part::CATEGORY,
                        "MFGR#14".into(),
                    )]),
                    vec![part::BRAND1],
                ),
                date_join(
                    Predicate::and(vec![ColPredicate::U32In(date::YEAR, vec![1997, 1998])]),
                    vec![date::YEAR],
                ),
            ],
            group_by: vec![
                GroupKey::DimU32(3, 0),
                GroupKey::DimStr(1, 0),
                GroupKey::DimStr(2, 0),
            ],
            agg: AggExpr::SumMoneyDiff(lineorder::REVENUE, lineorder::SUPPLYCOST),
        },
    }
}

/// Flight-2 template: part filter + supplier-region filter, grouped by
/// `(d_year, p_brand1)`, summing `lo_revenue`.
fn q2(id: QueryId, part_filter: ColPredicate, s_region: &str) -> QuerySpec {
    QuerySpec {
        id,
        fact: TableId::Lineorder,
        fact_filter: Predicate::all(),
        joins: vec![
            part_join(Predicate::and(vec![part_filter]), vec![part::BRAND1]),
            supplier_join(
                Predicate::and(vec![ColPredicate::StrEq(supplier::REGION, s_region.into())]),
                vec![],
            ),
            date_join(Predicate::all(), vec![date::YEAR]),
        ],
        group_by: vec![GroupKey::DimU32(2, 0), GroupKey::DimStr(0, 0)],
        agg: AggExpr::SumMoney(lineorder::REVENUE),
    }
}

/// Flight-3 template for the city-level variants: grouped by
/// `(c_city, s_city, d_year)`, summing `lo_revenue`.
fn q3_cities(
    id: QueryId,
    c_filter: ColPredicate,
    s_filter: ColPredicate,
    d_filter: ColPredicate,
) -> QuerySpec {
    QuerySpec {
        id,
        fact: TableId::Lineorder,
        fact_filter: Predicate::all(),
        joins: vec![
            customer_join(Predicate::and(vec![c_filter]), vec![customer::CITY]),
            supplier_join(Predicate::and(vec![s_filter]), vec![supplier::CITY]),
            date_join(Predicate::and(vec![d_filter]), vec![date::YEAR]),
        ],
        group_by: vec![
            GroupKey::DimStr(0, 0),
            GroupKey::DimStr(1, 0),
            GroupKey::DimU32(2, 0),
        ],
        agg: AggExpr::SumMoney(lineorder::REVENUE),
    }
}

/// All 13 plans in flight order.
pub fn all_queries() -> Vec<QuerySpec> {
    QueryId::ALL.iter().map(|&id| query(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_build() {
        let qs = all_queries();
        assert_eq!(qs.len(), 13);
        for q in &qs {
            assert_eq!(q.fact, TableId::Lineorder);
            assert!(q.joins.len() <= 4);
        }
    }

    #[test]
    fn flight1_has_no_group_by() {
        for id in [QueryId::Q1_1, QueryId::Q1_2, QueryId::Q1_3] {
            let q = query(id);
            assert!(q.group_by.is_empty());
            assert_eq!(q.joins.len(), 1, "date join only");
            assert!(matches!(q.agg, AggExpr::SumMoneyTimesPct(_, _)));
        }
    }

    #[test]
    fn flight2_groups_by_year_brand() {
        for id in [QueryId::Q2_1, QueryId::Q2_2, QueryId::Q2_3] {
            let q = query(id);
            assert_eq!(q.group_by.len(), 2);
            assert_eq!(q.joins.len(), 3);
            assert!(matches!(q.agg, AggExpr::SumMoney(_)));
        }
    }

    #[test]
    fn flight3_groups_three_keys() {
        for id in [QueryId::Q3_1, QueryId::Q3_2, QueryId::Q3_3, QueryId::Q3_4] {
            let q = query(id);
            assert_eq!(q.group_by.len(), 3);
            assert_eq!(q.joins.len(), 3, "customer, supplier, date");
        }
    }

    #[test]
    fn flight4_uses_all_four_dims_and_profit() {
        for id in [QueryId::Q4_1, QueryId::Q4_2, QueryId::Q4_3] {
            let q = query(id);
            assert_eq!(q.joins.len(), 4);
            assert!(matches!(q.agg, AggExpr::SumMoneyDiff(_, _)));
        }
    }

    #[test]
    fn group_keys_reference_existing_payloads() {
        for q in all_queries() {
            for gk in &q.group_by {
                match gk {
                    GroupKey::FactU32(_) => {}
                    GroupKey::DimU32(ji, pi) | GroupKey::DimStr(ji, pi) => {
                        assert!(*ji < q.joins.len(), "{}: join idx", q.id.label());
                        assert!(
                            *pi < q.joins[*ji].payload.len(),
                            "{}: payload idx",
                            q.id.label()
                        );
                    }
                }
            }
        }
    }
}
