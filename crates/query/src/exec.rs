//! The morsel-driven star-join aggregation executor.
//!
//! Interprets a [`QuerySpec`] against a [`SnapshotView`] in two phases:
//!
//! 1. **Build** — for each dimension join, scan the (small) dimension table
//!    once, apply its filter, and hash `dim_key -> payload columns`. This
//!    phase is serial; the tables are shared read-only with every probe
//!    worker.
//! 2. **Probe** — split the fact table into morsels
//!    ([`SnapshotView::morsels`]), prune morsels whose date zone map cannot
//!    intersect the query's date hint, then scan them. Each fact row that
//!    passes the fact filter probes every dimension hash table (a miss
//!    filters the row), assembles its group key, and folds into a
//!    *per-worker* partial aggregate map. With [`QueryOpts::parallelism`]
//!    `> 1` the morsels are pulled from a shared cursor by a scoped worker
//!    pool; partials are then merged and the groups sorted by key.
//!
//! Parallel output is bit-identical to serial: aggregates accumulate in
//! `i128` (exact, so merge order is irrelevant), the merged map is keyed by
//! value, and the final sort fixes the order. Overflow past `i64` is
//! detected once at output and saturated, counted in
//! [`ExecStats::agg_saturations`] — never silently wrapped.
//!
//! The output also carries the HATtrick freshness vector read from the same
//! snapshot (§4.2's UNION + cross-join, expressed as a side read — the
//! visibility semantics are identical because both reads observe one
//! snapshot timestamp, and every probe worker scans under that same
//! timestamp).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hat_common::Money;

use crate::batch::{filter_batch, BatchReader, KernelCache};
use crate::hint::ScanPruner;
use crate::spec::{AggExpr, GroupKey, GroupVal, QuerySpec};
use crate::view::{Morsel, RowRef, SnapshotView};

/// One output row: the group key values and the aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRow {
    pub key: Vec<GroupVal>,
    /// Money sums in cents, or a row count for `CountRows`.
    pub agg: i64,
    /// Number of fact rows folded into this group.
    pub rows: u64,
}

/// Per-query execution diagnostics. Plan-dependent: two executions of the
/// same query may differ here while their results compare equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Fact-table morsels the probe phase actually scanned.
    pub morsels_scanned: u64,
    /// Morsels skipped because their date zone map cannot intersect the
    /// query's date-range hint.
    pub morsels_pruned: u64,
    /// Wall time of the dimension hash-build phase, nanoseconds.
    pub build_nanos: u64,
    /// Wall time of the probe phase, nanoseconds.
    pub probe_nanos: u64,
    /// Worker threads the probe phase ran on (1 = serial).
    pub workers: u32,
    /// Output groups whose aggregate exceeded `i64` and was saturated.
    pub agg_saturations: u64,
    /// Scan batches the vectorized probe path pulled (0 on the scalar
    /// path).
    pub batches: u64,
    /// Fact rows skipped without scanning because their morsel's zone
    /// maps cannot satisfy the query's zone checks.
    pub rows_pruned_zonemap: u64,
    /// Fact rows removed by the vectorized filter kernels (scanned rows
    /// minus selection-vector survivors; 0 on the scalar path).
    pub rows_filtered_vectorized: u64,
}

/// The result of executing a query.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Group rows, sorted by key for deterministic comparison.
    pub groups: Vec<OutputRow>,
    /// Fact rows that survived filter + joins (diagnostic).
    pub matched_rows: u64,
    /// The freshness side-read: `(client, txnnum)` pairs visible in the
    /// query's snapshot.
    pub freshness: Vec<(u32, u64)>,
    /// Execution diagnostics. Excluded from equality: plans with different
    /// parallelism or pruning still compare equal when their results match.
    pub stats: ExecStats,
}

impl PartialEq for QueryOutput {
    fn eq(&self, other: &Self) -> bool {
        self.groups == other.groups
            && self.matched_rows == other.matched_rows
            && self.freshness == other.freshness
    }
}

impl Eq for QueryOutput {}

impl QueryOutput {
    /// Total aggregate across all groups.
    pub fn total(&self) -> i64 {
        self.groups.iter().map(|g| g.agg).sum()
    }
}

/// How the probe phase reads the fact table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ScanMode {
    /// Batch execution: selection-vector kernels over encoded columns,
    /// late materialization of survivors. The default.
    #[default]
    Vectorized,
    /// Row-at-a-time visitation through [`SnapshotView::scan_morsel`].
    /// Kept as the reference implementation the vectorized path must
    /// match byte for byte.
    Scalar,
}

/// A shared, live-updatable ceiling on probe workers.
///
/// The elastic scheduler narrows analytical parallelism at tick
/// granularity by storing into this gauge; every [`ExecContext::run`]
/// holding a clone reads it once when sizing its worker pool, so the new
/// ceiling applies from the next query onward without replumbing
/// [`QueryOpts`] through callers. `0` means uncapped. Results stay
/// bit-identical at any cap — the cap only changes how many threads pull
/// from the shared morsel cursor.
#[derive(Debug, Clone)]
pub struct WorkerCap(Arc<AtomicUsize>);

impl Default for WorkerCap {
    /// An uncapped gauge.
    fn default() -> Self {
        WorkerCap(Arc::new(AtomicUsize::new(0)))
    }
}

/// Identity equality: two `QueryOpts` compare equal only when they share
/// the same gauge (or both hold fresh uncapped defaults is *not* enough —
/// distinct allocations differ). Value equality would make two contexts
/// "equal" yet diverge as soon as one gauge moves.
impl PartialEq for WorkerCap {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for WorkerCap {}

impl WorkerCap {
    /// A new uncapped gauge.
    pub fn unlimited() -> Self {
        WorkerCap::default()
    }

    /// Sets the ceiling; `0` removes it.
    pub fn set(&self, workers: usize) {
        self.0.store(workers, Ordering::Relaxed);
    }

    /// The current ceiling, `None` when uncapped.
    pub fn get(&self) -> Option<usize> {
        match self.0.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// `requested` clamped to the current ceiling (and to ≥ 1 — a cap of
    /// 1 serializes the probe, it never blocks it).
    pub fn clamp(&self, requested: usize) -> usize {
        match self.get() {
            Some(cap) => requested.min(cap).max(1),
            None => requested,
        }
    }
}

/// Tuning knobs for one query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOpts {
    /// Worker threads for the probe phase. `1` runs serial on the calling
    /// thread; higher values fan the fact scan out over morsels. Results
    /// are bit-identical across parallelism levels.
    pub parallelism: usize,
    /// Probe-phase scan strategy. Results are bit-identical across modes.
    pub scan: ScanMode,
    /// Shared live ceiling on probe workers, consulted (once) at run time
    /// on top of `parallelism`. Defaults to uncapped.
    pub cap: WorkerCap,
}

impl Default for QueryOpts {
    /// Defaults to one probe worker per hardware thread (clamped), so
    /// out-of-the-box runs use the machine. Pin `parallelism` explicitly
    /// (e.g. [`QueryOpts::with_parallelism`]) where reproducible worker
    /// counts matter more than speed.
    fn default() -> Self {
        QueryOpts {
            parallelism: QueryOpts::default_parallelism(),
            scan: ScanMode::default(),
            cap: WorkerCap::default(),
        }
    }
}

impl QueryOpts {
    /// The default probe parallelism: `std::thread::available_parallelism()`
    /// clamped to `1..=8`. The upper clamp keeps default-sized pools from
    /// oversubscribing big machines with per-query thread spawns; beyond 8
    /// workers the shared-cursor probe is memory-bound on SSB-scale data.
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 8)
    }

    /// Options with `parallelism` probe workers (clamped to ≥ 1).
    pub fn with_parallelism(parallelism: usize) -> Self {
        QueryOpts { parallelism: parallelism.max(1), ..QueryOpts::default() }
    }

    /// The same options with an explicit scan mode.
    pub fn scan_mode(mut self, scan: ScanMode) -> Self {
        self.scan = scan;
        self
    }

    /// The same options sharing `cap` as their live worker ceiling.
    pub fn with_cap(mut self, cap: WorkerCap) -> Self {
        self.cap = cap;
        self
    }
}

/// Hashed payload of one dimension join.
struct DimTable {
    map: HashMap<u32, Vec<GroupVal>>,
}

/// Per-worker probe result: exact (`i128`) partial aggregates plus the
/// worker's matched-row count and scan diagnostics.
struct Partial {
    groups: HashMap<Vec<GroupVal>, (i128, u64)>,
    matched: u64,
    /// Batches pulled (vectorized path only).
    batches: u64,
    /// Rows the filter kernels removed (vectorized path only).
    filtered: u64,
}

/// One query execution: a spec, a snapshot view, and options. The
/// redesigned entry point — [`execute`] and [`execute_with`] are thin
/// wrappers over it.
pub struct ExecContext<'a> {
    spec: &'a QuerySpec,
    view: &'a dyn SnapshotView,
    opts: QueryOpts,
}

impl<'a> ExecContext<'a> {
    /// A context with default options (serial probe).
    pub fn new(spec: &'a QuerySpec, view: &'a dyn SnapshotView) -> Self {
        ExecContext { spec, view, opts: QueryOpts::default() }
    }

    /// A context with explicit options.
    pub fn with_opts(spec: &'a QuerySpec, view: &'a dyn SnapshotView, opts: QueryOpts) -> Self {
        ExecContext { spec, view, opts }
    }

    /// Runs the query.
    pub fn run(&self) -> QueryOutput {
        let spec = self.spec;
        assert!(spec.joins.len() <= 4, "SSB stars have at most 4 dimensions");

        // Phase 1: build dimension hash tables (serial — dims are small).
        let build_start = Instant::now();
        let mut dims: Vec<DimTable> = Vec::with_capacity(spec.joins.len());
        for join in &spec.joins {
            let mut map: HashMap<u32, Vec<GroupVal>> = HashMap::new();
            self.view.scan(join.dim, &mut |row| {
                if join.dim_filter.eval(row) {
                    let key = row.u32(join.dim_key);
                    let payload: Vec<GroupVal> = join
                        .payload
                        .iter()
                        .map(|&col| payload_val(row, join.dim, col))
                        .collect();
                    map.insert(key, payload);
                }
            });
            dims.push(DimTable { map });
        }
        let build_nanos = build_start.elapsed().as_nanos() as u64;

        // Phase 2: probe the fact table morsel by morsel. Each zone check
        // is a superset of the true predicate (the date hint covers every
        // date the date filter admits; fact-filter checks restate the
        // filter itself), so pruning never changes `groups` or
        // `matched_rows`.
        let pruner = ScanPruner::for_spec(spec);
        let (morsels, pruned): (Vec<Morsel>, Vec<Morsel>) = self
            .view
            .morsels(spec.fact, &pruner)
            .into_iter()
            .partition(|m| m.may_overlap(&pruner));
        let rows_pruned: u64 = pruned.iter().map(|m| m.rows().unwrap_or(0)).sum();
        let workers = self.opts.cap.clamp(self.opts.parallelism).clamp(1, morsels.len().max(1));
        let scan_mode = self.opts.scan;

        let probe_start = Instant::now();
        let cursor = AtomicUsize::new(0);
        let probe = |cursor: &AtomicUsize| match scan_mode {
            ScanMode::Scalar => probe_morsels(spec, self.view, &dims, &morsels, cursor),
            ScanMode::Vectorized => {
                probe_morsels_vectorized(spec, self.view, &dims, &morsels, cursor)
            }
        };
        let partials: Vec<Partial> = if workers <= 1 {
            vec![probe(&cursor)]
        } else {
            let (probe, cursor) = (&probe, &cursor);
            std::thread::scope(|scope| {
                let handles: Vec<_> =
                    (0..workers).map(|_| scope.spawn(move || probe(cursor))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("probe worker panicked"))
                    .collect()
            })
        };
        let probe_nanos = probe_start.elapsed().as_nanos() as u64;

        // Merge partials. Addition over `i128` is exact, so the merged
        // values are independent of worker scheduling and merge order.
        let matched: u64 = partials.iter().map(|p| p.matched).sum();
        let batches: u64 = partials.iter().map(|p| p.batches).sum();
        let rows_filtered: u64 = partials.iter().map(|p| p.filtered).sum();
        let mut merged: HashMap<Vec<GroupVal>, (i128, u64)> = HashMap::new();
        for partial in partials {
            if merged.is_empty() {
                merged = partial.groups;
                continue;
            }
            for (key, (agg, rows)) in partial.groups {
                match merged.get_mut(&key) {
                    Some((a, r)) => {
                        *a += agg;
                        *r += rows;
                    }
                    None => {
                        merged.insert(key, (agg, rows));
                    }
                }
            }
        }

        // Global aggregates produce one row even over zero matches,
        // matching SQL `SUM` over an empty input (0 rather than NULL).
        if merged.is_empty() && spec.group_by.is_empty() {
            merged.insert(Vec::new(), (0, 0));
        }

        let mut agg_saturations = 0u64;
        let mut out: Vec<OutputRow> = merged
            .into_iter()
            .map(|(key, (agg, rows))| {
                let agg = if agg > i64::MAX as i128 {
                    agg_saturations += 1;
                    i64::MAX
                } else if agg < i64::MIN as i128 {
                    agg_saturations += 1;
                    i64::MIN
                } else {
                    agg as i64
                };
                OutputRow { key, agg, rows }
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));

        QueryOutput {
            groups: out,
            matched_rows: matched,
            freshness: self.view.freshness_vector(),
            stats: ExecStats {
                morsels_scanned: morsels.len() as u64,
                morsels_pruned: pruned.len() as u64,
                build_nanos,
                probe_nanos,
                workers: workers as u32,
                agg_saturations,
                batches,
                rows_pruned_zonemap: rows_pruned,
                rows_filtered_vectorized: rows_filtered,
            },
        }
    }
}

/// Probe-phase worker: pulls morsel indices from the shared cursor and
/// folds matching fact rows into a private partial map. Aggregates
/// accumulate in `i128` so merging partials is exact regardless of how the
/// cursor distributed morsels across workers.
fn probe_morsels(
    spec: &QuerySpec,
    view: &dyn SnapshotView,
    dims: &[DimTable],
    morsels: &[Morsel],
    cursor: &AtomicUsize,
) -> Partial {
    let mut groups: HashMap<Vec<GroupVal>, (i128, u64)> = HashMap::new();
    let mut matched: u64 = 0;
    let mut key_buf: Vec<GroupVal> = Vec::with_capacity(spec.group_by.len());
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(morsel) = morsels.get(i) else { break };
        view.scan_morsel(spec.fact, morsel, &mut |row| {
            if !spec.fact_filter.eval(row) {
                return;
            }
            // Probe every join; a miss filters the row.
            let mut payloads: [Option<&Vec<GroupVal>>; 4] = [None; 4];
            for (ji, join) in spec.joins.iter().enumerate() {
                match dims[ji].map.get(&row.u32(join.fact_key)) {
                    Some(p) => payloads[ji] = Some(p),
                    None => return,
                }
            }
            matched += 1;
            key_buf.clear();
            for gk in &spec.group_by {
                key_buf.push(match gk {
                    GroupKey::FactU32(col) => GroupVal::U32(row.u32(*col)),
                    GroupKey::DimU32(ji, pi) | GroupKey::DimStr(ji, pi) => {
                        payloads[*ji].expect("probed above")[*pi].clone()
                    }
                });
            }
            let delta = match spec.agg {
                AggExpr::SumMoney(col) => row.money(col).cents(),
                AggExpr::SumMoneyTimesPct(mcol, pcol) => {
                    row.money(mcol).pct(row.u32(pcol) as i64).cents()
                }
                AggExpr::SumMoneyDiff(a, b) => (row.money(a) - row.money(b)).cents(),
                AggExpr::CountRows => 1,
            };
            match groups.get_mut(key_buf.as_slice()) {
                Some((agg, rows)) => {
                    *agg += delta as i128;
                    *rows += 1;
                }
                None => {
                    groups.insert(key_buf.clone(), (delta as i128, 1));
                }
            }
        });
    }
    Partial { groups, matched, batches: 0, filtered: 0 }
}

/// The vectorized probe worker: pulls morsels from the shared cursor,
/// scans them through [`SnapshotView::scan_batches`], tightens a
/// selection vector with the filter kernels, and late-materializes only
/// the survivors through a [`BatchReader`] (amortized-O(1) RLE access)
/// for join probing and aggregation.
///
/// The per-row fold mirrors [`probe_morsels`] exactly — same probe order,
/// same key assembly, same `i128` accumulation — so the two paths are
/// result-identical by construction.
fn probe_morsels_vectorized(
    spec: &QuerySpec,
    view: &dyn SnapshotView,
    dims: &[DimTable],
    morsels: &[Morsel],
    cursor: &AtomicUsize,
) -> Partial {
    let mut groups: HashMap<Vec<GroupVal>, (i128, u64)> = HashMap::new();
    let mut matched: u64 = 0;
    let mut batches: u64 = 0;
    let mut filtered: u64 = 0;
    let mut key_buf: Vec<GroupVal> = Vec::with_capacity(spec.group_by.len());
    let mut sel: Vec<u32> = Vec::new();
    let mut cache = KernelCache::new();
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(morsel) = morsels.get(i) else { break };
        view.scan_batches(spec.fact, morsel, &mut |batch| {
            batches += 1;
            filter_batch(&spec.fact_filter, batch, &mut sel, &mut cache);
            filtered += (batch.len() - sel.len()) as u64;
            let mut reader = BatchReader::new(batch);
            'row: for &si in &sel {
                let si = si as usize;
                // Probe every join; a miss filters the row.
                let mut payloads: [Option<&Vec<GroupVal>>; 4] = [None; 4];
                for (ji, join) in spec.joins.iter().enumerate() {
                    match dims[ji].map.get(&reader.u32(join.fact_key, si)) {
                        Some(p) => payloads[ji] = Some(p),
                        None => continue 'row,
                    }
                }
                matched += 1;
                key_buf.clear();
                for gk in &spec.group_by {
                    key_buf.push(match gk {
                        GroupKey::FactU32(col) => GroupVal::U32(reader.u32(*col, si)),
                        GroupKey::DimU32(ji, pi) | GroupKey::DimStr(ji, pi) => {
                            payloads[*ji].expect("probed above")[*pi].clone()
                        }
                    });
                }
                let delta = match spec.agg {
                    AggExpr::SumMoney(col) => reader.money(col, si).cents(),
                    AggExpr::SumMoneyTimesPct(mcol, pcol) => {
                        reader.money(mcol, si).pct(reader.u32(pcol, si) as i64).cents()
                    }
                    AggExpr::SumMoneyDiff(a, b) => {
                        (reader.money(a, si) - reader.money(b, si)).cents()
                    }
                    AggExpr::CountRows => 1,
                };
                match groups.get_mut(key_buf.as_slice()) {
                    Some((agg, rows)) => {
                        *agg += delta as i128;
                        *rows += 1;
                    }
                    None => {
                        groups.insert(key_buf.clone(), (delta as i128, 1));
                    }
                }
            }
        });
    }
    Partial { groups, matched, batches, filtered }
}

/// Executes `spec` against `view` with default options (serial probe).
pub fn execute(spec: &QuerySpec, view: &dyn SnapshotView) -> QueryOutput {
    ExecContext::new(spec, view).run()
}

/// Executes `spec` against `view` with explicit options.
pub fn execute_with(spec: &QuerySpec, view: &dyn SnapshotView, opts: &QueryOpts) -> QueryOutput {
    ExecContext::with_opts(spec, view, opts.clone()).run()
}

/// Extracts a payload value with the right [`GroupVal`] variant based on
/// the column's declared type.
fn payload_val(row: &RowRef<'_>, table: hat_common::TableId, col: usize) -> GroupVal {
    use hat_common::value::{table_column_types, ColumnType};
    match table_column_types(table)[col] {
        ColumnType::U32 => GroupVal::U32(row.u32(col)),
        ColumnType::Str => GroupVal::Str(row.arc_str(col)),
        other => panic!("unsupported payload column type {other:?}"),
    }
}

/// Convenience: the sum a money aggregate would produce over `values`.
/// Used by tests to compute expected results.
pub fn sum_cents(values: impl IntoIterator<Item = Money>) -> i64 {
    values.into_iter().map(|m| m.cents()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColPredicate, Predicate};
    use crate::spec::{JoinSpec, QueryId};
    use hat_common::ids::{customer, history};
    use hat_common::value::row_from;
    use hat_common::{Money, Row, TableId, Value};
    use hat_storage::rowstore::RowDb;

    /// A miniature star: HISTORY as "fact" (orderkey, custkey, amount),
    /// CUSTOMER as dimension.
    fn tiny_db() -> RowDb {
        let db = RowDb::new();
        let c = db.store(TableId::Customer);
        for (ck, nation, region) in [
            (1u32, "CHINA", "ASIA"),
            (2, "FRANCE", "EUROPE"),
            (3, "JAPAN", "ASIA"),
        ] {
            c.install_insert(customer_row(ck, nation, region), 1);
        }
        let h = db.store(TableId::History);
        for (ok, ck, cents) in
            [(1u64, 1u32, 100i64), (2, 2, 200), (3, 3, 300), (4, 1, 400), (5, 9, 999)]
        {
            h.install_insert(history_row(ok, ck, cents), 1);
        }
        db
    }

    fn customer_row(ck: u32, nation: &str, region: &str) -> Row {
        row_from([
            Value::U32(ck),
            Value::from(format!("Customer#{ck:09}")),
            Value::from("addr"),
            Value::from("CITY0"),
            Value::from(nation),
            Value::from(region),
            Value::from("phone"),
            Value::from("AUTOMOBILE"),
            Value::U32(0),
        ])
    }

    fn history_row(ok: u64, ck: u32, cents: i64) -> Row {
        row_from([
            Value::U64(ok),
            Value::U32(ck),
            Value::Money(Money::from_cents(cents)),
        ])
    }

    fn base_spec() -> QuerySpec {
        QuerySpec {
            id: QueryId::Q1_1,
            fact: TableId::History,
            fact_filter: Predicate::all(),
            joins: vec![],
            group_by: vec![],
            agg: AggExpr::SumMoney(history::AMOUNT),
        }
    }

    #[test]
    fn global_sum_no_joins() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].agg, 100 + 200 + 300 + 400 + 999);
        assert_eq!(out.matched_rows, 5);
    }

    #[test]
    fn fact_filter_applies() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.fact_filter =
            Predicate::and(vec![ColPredicate::U32Between(history::CUSTKEY, 1, 2)]);
        let out = execute(&spec, &view);
        assert_eq!(out.groups[0].agg, 100 + 200 + 400);
    }

    #[test]
    fn join_filters_and_groups() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.joins = vec![JoinSpec {
            dim: TableId::Customer,
            fact_key: history::CUSTKEY,
            dim_key: customer::CUSTKEY,
            dim_filter: Predicate::and(vec![ColPredicate::StrEq(
                customer::REGION,
                "ASIA".into(),
            )]),
            payload: vec![customer::NATION],
        }];
        spec.group_by = vec![GroupKey::DimStr(0, 0)];
        let out = execute(&spec, &view);
        // ASIA customers: 1 (CHINA: 100+400) and 3 (JAPAN: 300). Customer 9
        // doesn't exist -> join miss. Customer 2 is EUROPE -> filtered.
        assert_eq!(out.groups.len(), 2);
        let china = out.groups.iter().find(|g| g.key[0].to_string() == "CHINA").unwrap();
        assert_eq!(china.agg, 500);
        assert_eq!(china.rows, 2);
        let japan = out.groups.iter().find(|g| g.key[0].to_string() == "JAPAN").unwrap();
        assert_eq!(japan.agg, 300);
        assert_eq!(out.matched_rows, 3);
        // Sorted by key: CHINA < JAPAN.
        assert!(out.groups[0].key < out.groups[1].key);
    }

    #[test]
    fn group_by_fact_column() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.group_by = vec![GroupKey::FactU32(history::CUSTKEY)];
        spec.agg = AggExpr::CountRows;
        let out = execute(&spec, &view);
        let counts: Vec<(String, i64)> =
            out.groups.iter().map(|g| (g.key[0].to_string(), g.agg)).collect();
        assert_eq!(
            counts,
            vec![
                ("1".into(), 2),
                ("2".into(), 1),
                ("3".into(), 1),
                ("9".into(), 1)
            ]
        );
    }

    #[test]
    fn sum_diff_aggregate() {
        let db = RowDb::new();
        let h = db.store(TableId::History);
        // Reuse AMOUNT as both operands: a - a = 0.
        h.install_insert(history_row(1, 1, 500), 1);
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.agg = AggExpr::SumMoneyDiff(history::AMOUNT, history::AMOUNT);
        let out = execute(&spec, &view);
        assert_eq!(out.groups[0].agg, 0);
    }

    #[test]
    fn pct_aggregate() {
        let db = RowDb::new();
        let h = db.store(TableId::History);
        // custkey doubles as a "discount percent" of 7.
        h.install_insert(history_row(1, 7, 1000), 1);
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.agg = AggExpr::SumMoneyTimesPct(history::AMOUNT, history::CUSTKEY);
        let out = execute(&spec, &view);
        assert_eq!(out.groups[0].agg, 70, "7% of 1000 cents");
    }

    #[test]
    fn empty_input_global_agg_yields_zero_row() {
        let db = RowDb::new();
        let view = crate::view::MixedView::rows(&db, 10);
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].agg, 0);
        assert_eq!(out.matched_rows, 0);
        assert_eq!(out.total(), 0);
    }

    #[test]
    fn empty_input_grouped_agg_yields_no_rows() {
        let db = RowDb::new();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.group_by = vec![GroupKey::FactU32(history::CUSTKEY)];
        let out = execute(&spec, &view);
        assert!(out.groups.is_empty());
    }

    #[test]
    fn columnar_backend_matches_row_backend() {
        // Same data served row-format and column-format must aggregate
        // identically, including rows arriving through the delta.
        use hat_storage::colstore::ColumnTable;
        let db = tiny_db();
        let row_view = crate::view::MixedView::rows(&db, 10);

        let ct = ColumnTable::new(TableId::History);
        // Sealed segment: first three rows; delta: the last two.
        ct.load_segment(
            1,
            [
                history_row(1, 1, 100),
                history_row(2, 2, 200),
                history_row(3, 3, 300),
            ],
        );
        ct.append_delta(2, history_row(4, 1, 400));
        ct.append_delta(3, history_row(5, 9, 999));
        let empty_db = RowDb::new();
        // Customer dim stays row-format in this hybrid view.
        for (ck, nation, region) in [
            (1u32, "CHINA", "ASIA"),
            (2, "FRANCE", "EUROPE"),
            (3, "JAPAN", "ASIA"),
        ] {
            empty_db
                .store(TableId::Customer)
                .install_insert(customer_row(ck, nation, region), 1);
        }
        let col_view = crate::view::MixedView::rows(&empty_db, 10)
            .with_columnar(TableId::History, ct.snapshot(10));

        let mut spec = base_spec();
        spec.joins = vec![JoinSpec {
            dim: TableId::Customer,
            fact_key: history::CUSTKEY,
            dim_key: customer::CUSTKEY,
            dim_filter: Predicate::all(),
            payload: vec![customer::NATION],
        }];
        spec.group_by = vec![GroupKey::DimStr(0, 0)];
        let via_rows = execute(&spec, &row_view);
        let via_cols = execute(&spec, &col_view);
        assert_eq!(via_rows.groups, via_cols.groups);
        assert_eq!(via_rows.matched_rows, via_cols.matched_rows);
    }

    #[test]
    fn dim_u32_group_key_from_payload() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.joins = vec![JoinSpec {
            dim: TableId::Customer,
            fact_key: history::CUSTKEY,
            dim_key: customer::CUSTKEY,
            dim_filter: Predicate::all(),
            payload: vec![customer::PAYMENTCNT], // u32 payload column
        }];
        spec.group_by = vec![GroupKey::DimU32(0, 0)];
        let out = execute(&spec, &view);
        // All customers have paymentcnt 0 -> a single group.
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].key[0].to_string(), "0");
    }

    #[test]
    fn snapshot_ts_filters_columnar_delta() {
        use hat_storage::colstore::ColumnTable;
        let db = RowDb::new();
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(1, [history_row(1, 1, 100)]);
        ct.append_delta(5, history_row(2, 1, 200));
        // Snapshot before the delta row: only the sealed row counts.
        let view = crate::view::MixedView::rows(&db, 4)
            .with_columnar(TableId::History, ct.snapshot(4));
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups[0].agg, 100);
        // Snapshot after: both.
        let view = crate::view::MixedView::rows(&db, 5)
            .with_columnar(TableId::History, ct.snapshot(5));
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups[0].agg, 300);
    }

    #[test]
    fn freshness_vector_attached() {
        let db = tiny_db();
        db.store(TableId::Freshness)
            .install_insert(row_from([Value::U32(0), Value::U64(41)]), 1);
        let view = crate::view::MixedView::rows(&db, 10);
        let out = execute(&base_spec(), &view);
        assert_eq!(out.freshness, vec![(0, 41)]);
    }

    /// A larger star spread over many morsels, grouped, so the parallel
    /// path exercises work distribution and partial-map merging.
    fn many_row_db(n: u64) -> RowDb {
        let db = tiny_db();
        let h = db.store(TableId::History);
        for i in 0..n {
            h.install_insert(history_row(100 + i, (i % 3) as u32 + 1, i as i64), 2);
        }
        db
    }

    fn grouped_spec() -> QuerySpec {
        let mut spec = base_spec();
        spec.joins = vec![JoinSpec {
            dim: TableId::Customer,
            fact_key: history::CUSTKEY,
            dim_key: customer::CUSTKEY,
            dim_filter: Predicate::all(),
            payload: vec![customer::NATION],
        }];
        spec.group_by = vec![GroupKey::DimStr(0, 0)];
        spec
    }

    #[test]
    fn parallel_probe_matches_serial_bit_for_bit() {
        let n = crate::view::MORSEL_ROWS as u64 * 3 + 17;
        let db = many_row_db(n);
        let view = crate::view::MixedView::rows(&db, 10);
        let spec = grouped_spec();
        let serial = execute_with(&spec, &view, &QueryOpts::with_parallelism(1));
        assert_eq!(serial.stats.workers, 1);
        assert!(serial.stats.morsels_scanned >= 4);
        for p in [2, 3, 8] {
            let par = execute_with(&spec, &view, &QueryOpts::with_parallelism(p));
            assert_eq!(par, serial, "parallelism {p}");
            // Byte-identical, not just PartialEq: same order, same counts.
            assert_eq!(
                format!("{:?} {:?} {:?}", par.groups, par.matched_rows, par.freshness),
                format!(
                    "{:?} {:?} {:?}",
                    serial.groups, serial.matched_rows, serial.freshness
                ),
                "parallelism {p}"
            );
            assert_eq!(par.stats.workers as usize, p.min(par.stats.morsels_scanned as usize));
        }
    }

    #[test]
    fn parallelism_clamps_to_morsel_count() {
        let db = tiny_db(); // 5 fact rows -> 1 morsel
        let view = crate::view::MixedView::rows(&db, 10);
        let out = execute_with(&base_spec(), &view, &QueryOpts::with_parallelism(8));
        assert_eq!(out.stats.workers, 1, "no point spawning idle workers");
        assert_eq!(out.groups[0].agg, 100 + 200 + 300 + 400 + 999);
    }

    #[test]
    fn aggregate_saturates_instead_of_wrapping() {
        let db = RowDb::new();
        let h = db.store(TableId::History);
        // Two near-max values: their i64 sum wraps negative; the executor
        // must saturate and count it instead.
        h.install_insert(history_row(1, 1, i64::MAX - 10), 1);
        h.install_insert(history_row(2, 1, i64::MAX - 10), 1);
        let view = crate::view::MixedView::rows(&db, 10);
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups[0].agg, i64::MAX);
        assert_eq!(out.stats.agg_saturations, 1);
        // Sanity: a non-overflowing query reports zero saturations.
        let small = execute(&base_spec(), &crate::view::MixedView::rows(&tiny_db(), 10));
        assert_eq!(small.stats.agg_saturations, 0);
    }

    #[test]
    fn zone_map_pruning_counts_and_preserves_results() {
        // Build a columnar LINEORDER with one 1993 segment and one 1994
        // segment, join on DATE with d_year = 1994: the 1993 segment's
        // morsels must be pruned without changing the result.
        use hat_common::ids::{date, lineorder};
        use hat_storage::colstore::ColumnTable;
        use std::sync::Arc as StdArc;

        fn lo_row(ok: u64, orderdate: u32, cents: i64) -> Row {
            row_from([
                Value::U64(ok),
                Value::U32(1),
                Value::U32(1),
                Value::U32(1),
                Value::U32(1),
                Value::U32(orderdate),
                Value::Str(StdArc::from("p")),
                Value::Str(StdArc::from("s")),
                Value::U32(1),
                Value::Money(Money::from_cents(cents)),
                Value::Money(Money::from_cents(cents)),
                Value::U32(0),
                Value::Money(Money::from_cents(cents)),
                Value::Money(Money::from_cents(0)),
                Value::U32(0),
                Value::U32(orderdate),
                Value::Str(StdArc::from("RAIL")),
            ])
        }
        fn date_row(datekey: u32, year: u32) -> Row {
            row_from([
                Value::U32(datekey),
                Value::from("d"),
                Value::from("Monday"),
                Value::from("January"),
                Value::U32(year),
                Value::U32(year * 100 + 1),
                Value::from("Jan1994"),
                Value::U32(1),
                Value::U32(1),
                Value::U32(1),
                Value::U32(year * 10000 + 101),
                Value::U32(31),
                Value::from("Winter"),
                Value::from(false),
                Value::from(true),
                Value::from(false),
            ])
        }

        let db = RowDb::new();
        let d = db.store(TableId::Date);
        d.install_insert(date_row(19930105, 1993), 1);
        d.install_insert(date_row(19940105, 1994), 1);

        let ct = ColumnTable::new(TableId::Lineorder);
        ct.load_segment(1, (0..20).map(|i| lo_row(i, 19930105, 10)));
        ct.load_segment(1, (0..20).map(|i| lo_row(100 + i, 19940105, 10)));
        let view = crate::view::MixedView::rows(&db, 10)
            .with_columnar(TableId::Lineorder, ct.snapshot(10));

        let spec = QuerySpec {
            id: QueryId::Q1_1,
            fact: TableId::Lineorder,
            fact_filter: Predicate::all(),
            joins: vec![JoinSpec {
                dim: TableId::Date,
                fact_key: lineorder::ORDERDATE,
                dim_key: date::DATEKEY,
                dim_filter: Predicate::and(vec![ColPredicate::U32Eq(date::YEAR, 1994)]),
                payload: vec![],
            }],
            group_by: vec![],
            agg: AggExpr::SumMoney(lineorder::REVENUE),
        };
        let out = execute(&spec, &view);
        assert_eq!(out.stats.morsels_pruned, 1, "the 1993 segment prunes");
        assert_eq!(out.stats.morsels_scanned, 1);
        assert_eq!(out.stats.rows_pruned_zonemap, 20, "20 rows skipped unscanned");
        assert_eq!(out.matched_rows, 20, "only 1994 rows join");
        assert_eq!(out.groups[0].agg, 200);

        // Same query through plain scans (no zone maps): identical output.
        struct NoMorselView<'a>(&'a crate::view::MixedView<'a>);
        impl SnapshotView for NoMorselView<'_> {
            fn ts(&self) -> hat_txn::Ts {
                self.0.ts()
            }
            fn scan(&self, table: TableId, visit: &mut dyn FnMut(&RowRef<'_>)) {
                self.0.scan(table, visit)
            }
        }
        let unpruned = execute(&spec, &NoMorselView(&view));
        assert_eq!(unpruned.stats.morsels_pruned, 0);
        assert_eq!(out, unpruned);
    }

    /// A columnar star with every encoding in play: RLE (custkey runs),
    /// dictionary (nation via the Customer dim is row-format, but the
    /// fact's own str column exercises dict kernels when filtered), a
    /// delta tail, and a row-format dim.
    fn columnar_star(n: u64) -> (RowDb, hat_storage::colstore::ColumnTable) {
        use hat_storage::colstore::ColumnTable;
        let db = RowDb::new();
        for (ck, nation, region) in [
            (1u32, "CHINA", "ASIA"),
            (2, "FRANCE", "EUROPE"),
            (3, "JAPAN", "ASIA"),
        ] {
            db.store(TableId::Customer).install_insert(customer_row(ck, nation, region), 1);
        }
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(1, (0..n).map(|i| history_row(i, (i % 3) as u32 + 1, i as i64)));
        // Delta tail: row-format rows the fallback adapter must cover.
        for i in 0..50u64 {
            ct.append_delta(2 + i, history_row(n + i, (i % 3) as u32 + 1, 7));
        }
        (db, ct)
    }

    #[test]
    fn vectorized_matches_scalar_byte_for_byte() {
        let n = crate::view::MORSEL_ROWS as u64 * 2 + 33;
        let (db, ct) = columnar_star(n);
        let view = crate::view::MixedView::rows(&db, 1000)
            .with_columnar(TableId::History, ct.snapshot(1000));
        let mut spec = grouped_spec();
        spec.fact_filter =
            Predicate::and(vec![ColPredicate::U32Between(history::CUSTKEY, 1, 2)]);
        for p in [1usize, 2, 8] {
            let scalar = execute_with(
                &spec,
                &view,
                &QueryOpts::with_parallelism(p).scan_mode(ScanMode::Scalar),
            );
            let vectorized = execute_with(
                &spec,
                &view,
                &QueryOpts::with_parallelism(p).scan_mode(ScanMode::Vectorized),
            );
            assert_eq!(
                format!(
                    "{:?} {:?} {:?}",
                    scalar.groups, scalar.matched_rows, scalar.freshness
                ),
                format!(
                    "{:?} {:?} {:?}",
                    vectorized.groups, vectorized.matched_rows, vectorized.freshness
                ),
                "parallelism {p}"
            );
            assert!(vectorized.stats.batches > 0, "vectorized path pulls batches");
            assert!(
                vectorized.stats.rows_filtered_vectorized > 0,
                "custkey 3 rows are kernel-filtered"
            );
            assert_eq!(scalar.stats.batches, 0, "scalar path never batches");
        }
    }

    #[test]
    fn non_date_u32_filter_prunes_by_zone_map() {
        // Two segments with disjoint custkey ranges; a fact-filter
        // equality on custkey must prune one segment via its zone map —
        // the pruner generalized past the date hint — without changing
        // the result.
        use hat_storage::colstore::ColumnTable;
        let db = RowDb::new();
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(1, (0..30).map(|i| history_row(i, 100 + (i % 5) as u32, 10)));
        ct.load_segment(1, (0..30).map(|i| history_row(50 + i, 500 + (i % 5) as u32, 10)));
        let view = crate::view::MixedView::rows(&db, 10)
            .with_columnar(TableId::History, ct.snapshot(10));
        let mut spec = base_spec();
        spec.fact_filter = Predicate::and(vec![ColPredicate::U32Eq(history::CUSTKEY, 502)]);
        let out = execute(&spec, &view);
        assert_eq!(out.stats.morsels_pruned, 1, "custkeys 100..104 prune");
        assert!(out.stats.rows_pruned_zonemap >= 30);
        assert_eq!(out.matched_rows, 6);
        assert_eq!(out.groups[0].agg, 60);
        let scalar = execute_with(
            &spec,
            &view,
            &QueryOpts::default().scan_mode(ScanMode::Scalar),
        );
        assert_eq!(out, scalar);
    }
}
