//! The star-join aggregation executor.
//!
//! Interprets a [`QuerySpec`] against a [`SnapshotView`] in two phases:
//!
//! 1. **Build** — for each dimension join, scan the (small) dimension table
//!    once, apply its filter, and hash `dim_key -> payload columns`.
//! 2. **Probe** — scan the fact table once; each fact row that passes the
//!    fact filter probes every dimension hash table (a miss filters the
//!    row), assembles its group key from fact columns and join payloads,
//!    and folds into the aggregate accumulator.
//!
//! The output also carries the HATtrick freshness vector read from the same
//! snapshot (§4.2's UNION + cross-join, expressed as a side read — the
//! visibility semantics are identical because both reads observe one
//! snapshot timestamp).

use std::collections::HashMap;

use hat_common::Money;

use crate::spec::{AggExpr, GroupKey, GroupVal, QuerySpec};
use crate::view::{RowRef, SnapshotView};

/// One output row: the group key values and the aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRow {
    pub key: Vec<GroupVal>,
    /// Money sums in cents, or a row count for `CountRows`.
    pub agg: i64,
    /// Number of fact rows folded into this group.
    pub rows: u64,
}

/// The result of executing a query.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Group rows, sorted by key for deterministic comparison.
    pub groups: Vec<OutputRow>,
    /// Fact rows that survived filter + joins (diagnostic).
    pub matched_rows: u64,
    /// The freshness side-read: `(client, txnnum)` pairs visible in the
    /// query's snapshot.
    pub freshness: Vec<(u32, u64)>,
}

impl QueryOutput {
    /// Total aggregate across all groups.
    pub fn total(&self) -> i64 {
        self.groups.iter().map(|g| g.agg).sum()
    }
}

/// Hashed payload of one dimension join.
struct DimTable {
    map: HashMap<u32, Vec<GroupVal>>,
}

/// Executes `spec` against `view`.
pub fn execute(spec: &QuerySpec, view: &dyn SnapshotView) -> QueryOutput {
    assert!(spec.joins.len() <= 4, "SSB stars have at most 4 dimensions");
    // Phase 1: build dimension hash tables.
    let mut dims: Vec<DimTable> = Vec::with_capacity(spec.joins.len());
    for join in &spec.joins {
        let mut map: HashMap<u32, Vec<GroupVal>> = HashMap::new();
        view.scan(join.dim, &mut |row| {
            if join.dim_filter.eval(row) {
                let key = row.u32(join.dim_key);
                let payload: Vec<GroupVal> = join
                    .payload
                    .iter()
                    .map(|&col| payload_val(row, join.dim, col))
                    .collect();
                map.insert(key, payload);
            }
        });
        dims.push(DimTable { map });
    }

    // Phase 2: probe the fact table and aggregate.
    let mut groups: HashMap<Vec<GroupVal>, (i64, u64)> = HashMap::new();
    let mut matched: u64 = 0;
    let mut key_buf: Vec<GroupVal> = Vec::with_capacity(spec.group_by.len());
    view.scan(spec.fact, &mut |row| {
        if !spec.fact_filter.eval(row) {
            return;
        }
        // Probe every join; a miss filters the row. Collect payload refs.
        let mut payloads: [Option<&Vec<GroupVal>>; 4] = [None; 4];
        for (ji, join) in spec.joins.iter().enumerate() {
            match dims[ji].map.get(&row.u32(join.fact_key)) {
                Some(p) => payloads[ji] = Some(p),
                None => return,
            }
        }
        matched += 1;
        key_buf.clear();
        for gk in &spec.group_by {
            key_buf.push(match gk {
                GroupKey::FactU32(col) => GroupVal::U32(row.u32(*col)),
                GroupKey::DimU32(ji, pi) | GroupKey::DimStr(ji, pi) => {
                    payloads[*ji].expect("probed above")[*pi].clone()
                }
            });
        }
        let delta = match spec.agg {
            AggExpr::SumMoney(col) => row.money(col).cents(),
            AggExpr::SumMoneyTimesPct(mcol, pcol) => {
                row.money(mcol).pct(row.u32(pcol) as i64).cents()
            }
            AggExpr::SumMoneyDiff(a, b) => (row.money(a) - row.money(b)).cents(),
            AggExpr::CountRows => 1,
        };
        match groups.get_mut(key_buf.as_slice()) {
            Some((agg, rows)) => {
                *agg += delta;
                *rows += 1;
            }
            None => {
                groups.insert(key_buf.clone(), (delta, 1));
            }
        }
    });

    // Global aggregates produce one row even over zero matches, matching
    // SQL `SUM` over an empty input (we report 0 rather than NULL).
    if groups.is_empty() && spec.group_by.is_empty() {
        groups.insert(Vec::new(), (0, 0));
    }

    let mut out: Vec<OutputRow> = groups
        .into_iter()
        .map(|(key, (agg, rows))| OutputRow { key, agg, rows })
        .collect();
    out.sort_by(|a, b| a.key.cmp(&b.key));

    QueryOutput { groups: out, matched_rows: matched, freshness: view.freshness_vector() }
}

/// Extracts a payload value with the right [`GroupVal`] variant based on
/// the column's declared type.
fn payload_val(row: &RowRef<'_>, table: hat_common::TableId, col: usize) -> GroupVal {
    use hat_common::value::{table_column_types, ColumnType};
    match table_column_types(table)[col] {
        ColumnType::U32 => GroupVal::U32(row.u32(col)),
        ColumnType::Str => GroupVal::Str(row.arc_str(col)),
        other => panic!("unsupported payload column type {other:?}"),
    }
}

/// Convenience: the sum a money aggregate would produce over `values`.
/// Used by tests to compute expected results.
pub fn sum_cents(values: impl IntoIterator<Item = Money>) -> i64 {
    values.into_iter().map(|m| m.cents()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColPredicate, Predicate};
    use crate::spec::{JoinSpec, QueryId};
    use hat_common::ids::{customer, history};
    use hat_common::value::row_from;
    use hat_common::{Money, Row, TableId, Value};
    use hat_storage::rowstore::RowDb;

    /// A miniature star: HISTORY as "fact" (orderkey, custkey, amount),
    /// CUSTOMER as dimension.
    fn tiny_db() -> RowDb {
        let db = RowDb::new();
        let c = db.store(TableId::Customer);
        for (ck, nation, region) in [
            (1u32, "CHINA", "ASIA"),
            (2, "FRANCE", "EUROPE"),
            (3, "JAPAN", "ASIA"),
        ] {
            c.install_insert(customer_row(ck, nation, region), 1);
        }
        let h = db.store(TableId::History);
        for (ok, ck, cents) in
            [(1u64, 1u32, 100i64), (2, 2, 200), (3, 3, 300), (4, 1, 400), (5, 9, 999)]
        {
            h.install_insert(history_row(ok, ck, cents), 1);
        }
        db
    }

    fn customer_row(ck: u32, nation: &str, region: &str) -> Row {
        row_from([
            Value::U32(ck),
            Value::from(format!("Customer#{ck:09}")),
            Value::from("addr"),
            Value::from("CITY0"),
            Value::from(nation),
            Value::from(region),
            Value::from("phone"),
            Value::from("AUTOMOBILE"),
            Value::U32(0),
        ])
    }

    fn history_row(ok: u64, ck: u32, cents: i64) -> Row {
        row_from([
            Value::U64(ok),
            Value::U32(ck),
            Value::Money(Money::from_cents(cents)),
        ])
    }

    fn base_spec() -> QuerySpec {
        QuerySpec {
            id: QueryId::Q1_1,
            fact: TableId::History,
            fact_filter: Predicate::all(),
            joins: vec![],
            group_by: vec![],
            agg: AggExpr::SumMoney(history::AMOUNT),
        }
    }

    #[test]
    fn global_sum_no_joins() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].agg, 100 + 200 + 300 + 400 + 999);
        assert_eq!(out.matched_rows, 5);
    }

    #[test]
    fn fact_filter_applies() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.fact_filter =
            Predicate::and(vec![ColPredicate::U32Between(history::CUSTKEY, 1, 2)]);
        let out = execute(&spec, &view);
        assert_eq!(out.groups[0].agg, 100 + 200 + 400);
    }

    #[test]
    fn join_filters_and_groups() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.joins = vec![JoinSpec {
            dim: TableId::Customer,
            fact_key: history::CUSTKEY,
            dim_key: customer::CUSTKEY,
            dim_filter: Predicate::and(vec![ColPredicate::StrEq(
                customer::REGION,
                "ASIA".into(),
            )]),
            payload: vec![customer::NATION],
        }];
        spec.group_by = vec![GroupKey::DimStr(0, 0)];
        let out = execute(&spec, &view);
        // ASIA customers: 1 (CHINA: 100+400) and 3 (JAPAN: 300). Customer 9
        // doesn't exist -> join miss. Customer 2 is EUROPE -> filtered.
        assert_eq!(out.groups.len(), 2);
        let china = out.groups.iter().find(|g| g.key[0].to_string() == "CHINA").unwrap();
        assert_eq!(china.agg, 500);
        assert_eq!(china.rows, 2);
        let japan = out.groups.iter().find(|g| g.key[0].to_string() == "JAPAN").unwrap();
        assert_eq!(japan.agg, 300);
        assert_eq!(out.matched_rows, 3);
        // Sorted by key: CHINA < JAPAN.
        assert!(out.groups[0].key < out.groups[1].key);
    }

    #[test]
    fn group_by_fact_column() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.group_by = vec![GroupKey::FactU32(history::CUSTKEY)];
        spec.agg = AggExpr::CountRows;
        let out = execute(&spec, &view);
        let counts: Vec<(String, i64)> =
            out.groups.iter().map(|g| (g.key[0].to_string(), g.agg)).collect();
        assert_eq!(
            counts,
            vec![
                ("1".into(), 2),
                ("2".into(), 1),
                ("3".into(), 1),
                ("9".into(), 1)
            ]
        );
    }

    #[test]
    fn sum_diff_aggregate() {
        let db = RowDb::new();
        let h = db.store(TableId::History);
        // Reuse AMOUNT as both operands: a - a = 0.
        h.install_insert(history_row(1, 1, 500), 1);
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.agg = AggExpr::SumMoneyDiff(history::AMOUNT, history::AMOUNT);
        let out = execute(&spec, &view);
        assert_eq!(out.groups[0].agg, 0);
    }

    #[test]
    fn pct_aggregate() {
        let db = RowDb::new();
        let h = db.store(TableId::History);
        // custkey doubles as a "discount percent" of 7.
        h.install_insert(history_row(1, 7, 1000), 1);
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.agg = AggExpr::SumMoneyTimesPct(history::AMOUNT, history::CUSTKEY);
        let out = execute(&spec, &view);
        assert_eq!(out.groups[0].agg, 70, "7% of 1000 cents");
    }

    #[test]
    fn empty_input_global_agg_yields_zero_row() {
        let db = RowDb::new();
        let view = crate::view::MixedView::rows(&db, 10);
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].agg, 0);
        assert_eq!(out.matched_rows, 0);
        assert_eq!(out.total(), 0);
    }

    #[test]
    fn empty_input_grouped_agg_yields_no_rows() {
        let db = RowDb::new();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.group_by = vec![GroupKey::FactU32(history::CUSTKEY)];
        let out = execute(&spec, &view);
        assert!(out.groups.is_empty());
    }

    #[test]
    fn columnar_backend_matches_row_backend() {
        // Same data served row-format and column-format must aggregate
        // identically, including rows arriving through the delta.
        use hat_storage::colstore::ColumnTable;
        let db = tiny_db();
        let row_view = crate::view::MixedView::rows(&db, 10);

        let ct = ColumnTable::new(TableId::History);
        // Sealed segment: first three rows; delta: the last two.
        ct.load_segment(
            1,
            [
                history_row(1, 1, 100),
                history_row(2, 2, 200),
                history_row(3, 3, 300),
            ],
        );
        ct.append_delta(2, history_row(4, 1, 400));
        ct.append_delta(3, history_row(5, 9, 999));
        let empty_db = RowDb::new();
        // Customer dim stays row-format in this hybrid view.
        for (ck, nation, region) in [
            (1u32, "CHINA", "ASIA"),
            (2, "FRANCE", "EUROPE"),
            (3, "JAPAN", "ASIA"),
        ] {
            empty_db
                .store(TableId::Customer)
                .install_insert(customer_row(ck, nation, region), 1);
        }
        let col_view = crate::view::MixedView::rows(&empty_db, 10)
            .with_columnar(TableId::History, ct.snapshot(10));

        let mut spec = base_spec();
        spec.joins = vec![JoinSpec {
            dim: TableId::Customer,
            fact_key: history::CUSTKEY,
            dim_key: customer::CUSTKEY,
            dim_filter: Predicate::all(),
            payload: vec![customer::NATION],
        }];
        spec.group_by = vec![GroupKey::DimStr(0, 0)];
        let via_rows = execute(&spec, &row_view);
        let via_cols = execute(&spec, &col_view);
        assert_eq!(via_rows.groups, via_cols.groups);
        assert_eq!(via_rows.matched_rows, via_cols.matched_rows);
    }

    #[test]
    fn dim_u32_group_key_from_payload() {
        let db = tiny_db();
        let view = crate::view::MixedView::rows(&db, 10);
        let mut spec = base_spec();
        spec.joins = vec![JoinSpec {
            dim: TableId::Customer,
            fact_key: history::CUSTKEY,
            dim_key: customer::CUSTKEY,
            dim_filter: Predicate::all(),
            payload: vec![customer::PAYMENTCNT], // u32 payload column
        }];
        spec.group_by = vec![GroupKey::DimU32(0, 0)];
        let out = execute(&spec, &view);
        // All customers have paymentcnt 0 -> a single group.
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].key[0].to_string(), "0");
    }

    #[test]
    fn snapshot_ts_filters_columnar_delta() {
        use hat_storage::colstore::ColumnTable;
        let db = RowDb::new();
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(1, [history_row(1, 1, 100)]);
        ct.append_delta(5, history_row(2, 1, 200));
        // Snapshot before the delta row: only the sealed row counts.
        let view = crate::view::MixedView::rows(&db, 4)
            .with_columnar(TableId::History, ct.snapshot(4));
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups[0].agg, 100);
        // Snapshot after: both.
        let view = crate::view::MixedView::rows(&db, 5)
            .with_columnar(TableId::History, ct.snapshot(5));
        let out = execute(&base_spec(), &view);
        assert_eq!(out.groups[0].agg, 300);
    }

    #[test]
    fn freshness_vector_attached() {
        let db = tiny_db();
        db.store(TableId::Freshness)
            .install_insert(row_from([Value::U32(0), Value::U64(41)]), 1);
        let view = crate::view::MixedView::rows(&db, 10);
        let out = execute(&base_spec(), &view);
        assert_eq!(out.freshness, vec![(0, 41)]);
    }
}
