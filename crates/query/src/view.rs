//! Snapshot views: the abstraction that lets one query executor run against
//! both row-format and column-format backends.
//!
//! Every engine hands the executor a [`MixedView`]: a snapshot timestamp, a
//! row database, and (for hybrid engines) a set of tables served from
//! columnar snapshots instead. Scans dispatch per table — the row path pays
//! MVCC version-chain traversal, the columnar path reads compressed
//! vectors — which is precisely the storage-format asymmetry the paper's
//! engines differ on.

use std::collections::HashMap;
use std::sync::Arc;

use hat_common::ids::freshness;
use hat_common::{ColId, Money, Row, TableId};
use hat_storage::colstore::{materialize_row, ColumnSnapshot, DimSnapshot, Segment};
use hat_storage::rowstore::RowDb;
use hat_txn::Ts;

use crate::batch::ScanBatch;
use crate::hint::ScanPruner;

/// A borrowed reference to one logical row in either format.
pub enum RowRef<'a> {
    /// A row-format (MVCC) row.
    Row(&'a Row),
    /// Row `idx` of a sealed columnar segment.
    Col { seg: &'a Segment, idx: usize },
}

impl RowRef<'_> {
    /// `u64` column accessor.
    #[inline]
    pub fn u64(&self, col: ColId) -> u64 {
        match self {
            RowRef::Row(r) => r[col].as_u64().expect("typed row"),
            RowRef::Col { seg, idx } => seg.col(col).u64_at(*idx),
        }
    }

    /// `u32` column accessor.
    #[inline]
    pub fn u32(&self, col: ColId) -> u32 {
        match self {
            RowRef::Row(r) => r[col].as_u32().expect("typed row"),
            RowRef::Col { seg, idx } => seg.col(col).u32_at(*idx),
        }
    }

    /// Money column accessor.
    #[inline]
    pub fn money(&self, col: ColId) -> Money {
        match self {
            RowRef::Row(r) => r[col].as_money().expect("typed row"),
            RowRef::Col { seg, idx } => seg.col(col).money_at(*idx),
        }
    }

    /// String column accessor.
    #[inline]
    pub fn str(&self, col: ColId) -> &str {
        match self {
            RowRef::Row(r) => r[col].as_str().expect("typed row"),
            RowRef::Col { seg, idx } => seg.col(col).str_at(*idx),
        }
    }

    /// Cheap shared-string accessor (group keys).
    #[inline]
    pub fn arc_str(&self, col: ColId) -> Arc<str> {
        match self {
            RowRef::Row(r) => match &r[col] {
                hat_common::Value::Str(s) => Arc::clone(s),
                other => panic!("expected str, got {}", other.type_name()),
            },
            RowRef::Col { seg, idx } => Arc::clone(seg.col(col).arc_str_at(*idx)),
        }
    }
}

/// Target number of rows per morsel. Small enough that SF ≥ 1 fact tables
/// split into thousands of work units (good load balance), large enough
/// that per-morsel dispatch overhead is noise next to the scan itself.
pub const MORSEL_ROWS: usize = 4096;

/// Where a [`Morsel`]'s rows live. All variants are interpreted relative to
/// the view that produced the morsel, at that view's snapshot timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorselSource {
    /// The entire table, through the view's [`SnapshotView::scan`]. The
    /// default for views that don't split their scans.
    Whole,
    /// Row-store slots `[lo, hi)`.
    RowRange { lo: u64, hi: u64 },
    /// Rows `[lo, hi)` of the sealed columnar segment at index `segment`
    /// in the view's snapshot.
    SegmentRows { segment: usize, lo: usize, hi: usize },
    /// Rows `[lo, hi)` of the view's row-format tail for the table — the
    /// columnar delta, or a prefiltered row list.
    RowSlice { lo: usize, hi: usize },
}

/// One contiguous unit of scan work: the scheduling quantum of the
/// morsel-driven probe phase. Views *describe* morsels; the executor
/// decides which to scan (pruning) and on which worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Morsel {
    /// The row range this morsel covers.
    pub source: MorselSource,
    /// Per-column zone maps over the morsel's backing rows: `(column,
    /// min, max)` for each pruner column the storage tracks. A column
    /// absent here is "unknown" and exempts the morsel from that check.
    pub zones: Vec<(ColId, u32, u32)>,
}

impl Morsel {
    /// The whole-table morsel: correct for any view, no intra-table
    /// parallelism.
    pub fn whole() -> Self {
        Morsel { source: MorselSource::Whole, zones: Vec::new() }
    }

    /// Whether the morsel could contain a row passing every one of
    /// `pruner`'s zone checks. Checks whose column has no zone here never
    /// prune.
    pub fn may_overlap(&self, pruner: &ScanPruner) -> bool {
        pruner.checks.iter().all(|(col, check)| {
            match self.zones.iter().find(|(c, _, _)| c == col) {
                Some(&(_, min, max)) => check.may_overlap(min, max),
                None => true,
            }
        })
    }

    /// Number of backing rows, when the source states one (pruned-row
    /// accounting). `Whole` morsels never carry zones, so they are never
    /// pruned and never need a count.
    pub fn rows(&self) -> Option<u64> {
        match self.source {
            MorselSource::Whole => None,
            MorselSource::RowRange { lo, hi } => Some(hi - lo),
            MorselSource::SegmentRows { lo, hi, .. } => Some((hi - lo) as u64),
            MorselSource::RowSlice { lo, hi } => Some((hi - lo) as u64),
        }
    }
}

/// The executor's window onto an engine at one snapshot timestamp.
///
/// `Sync` is a supertrait so `&dyn SnapshotView` can be shared across the
/// probe phase's scoped worker threads; views are read-only snapshots, so
/// every implementation is naturally `Sync`.
pub trait SnapshotView: Sync {
    /// The snapshot timestamp all scans observe.
    fn ts(&self) -> Ts;

    /// Scans every visible row of `table`, invoking `visit` per row.
    fn scan(&self, table: TableId, visit: &mut dyn FnMut(&RowRef<'_>));

    /// Splits `table`'s visible rows into contiguous morsels for the
    /// parallel probe phase. `pruner` names the query's zone checks; views
    /// that track per-morsel column bounds attach matching zones so the
    /// executor can prune morsels that cannot pass. Scanning every
    /// returned morsel with [`SnapshotView::scan_morsel`] must visit
    /// exactly the rows [`SnapshotView::scan`] would, in some order.
    fn morsels(&self, _table: TableId, _pruner: &ScanPruner) -> Vec<Morsel> {
        vec![Morsel::whole()]
    }

    /// Scans one morsel previously returned by [`SnapshotView::morsels`]
    /// for `table`. The default handles only [`MorselSource::Whole`]; a
    /// view that returns range morsels must override this too.
    fn scan_morsel(
        &self,
        table: TableId,
        morsel: &Morsel,
        visit: &mut dyn FnMut(&RowRef<'_>),
    ) {
        match morsel.source {
            MorselSource::Whole => self.scan(table, visit),
            ref other => panic!("view produced {other:?} but does not implement scan_morsel"),
        }
    }

    /// Emits one morsel's rows as [`ScanBatch`]es of at most
    /// [`MORSEL_ROWS`] rows each. This is the executor's primary scan
    /// entry point: columnar views emit encoded [`ScanBatch::Cols`]
    /// chunks zero-copy; everything else goes through the scalar fallback
    /// adapter, which buffers [`SnapshotView::scan_morsel`]'s rows into
    /// row-format batches. Either way the executor sees one API.
    fn scan_batches(
        &self,
        table: TableId,
        morsel: &Morsel,
        emit: &mut dyn FnMut(&ScanBatch<'_>),
    ) {
        scalar_batch_adapter(self, table, morsel, emit);
    }

    /// The HATtrick freshness side-read (§4.2): the highest transaction
    /// number from each transactional client visible in this snapshot,
    /// returned as `(client, txnnum)` pairs. Equivalent to UNIONing the
    /// `FRESHNESS_j` tables into the query.
    fn freshness_vector(&self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        self.scan(TableId::Freshness, &mut |row| {
            out.push((row.u32(freshness::CLIENT), row.u64(freshness::TXNNUM)));
        });
        out.sort_unstable_by_key(|(c, _)| *c);
        out
    }
}

/// The scalar fallback batch adapter: buffers a morsel's row-at-a-time
/// visitation into row-format [`ScanBatch`]es. Columnar rows are
/// materialized (they have no resident row form); row-format rows are
/// cheap `Arc` clones. Correct for any view, which is what keeps all five
/// engines behind the one batch API.
pub fn scalar_batch_adapter<V: SnapshotView + ?Sized>(
    view: &V,
    table: TableId,
    morsel: &Morsel,
    emit: &mut dyn FnMut(&ScanBatch<'_>),
) {
    let mut buf: Vec<Row> = Vec::with_capacity(MORSEL_ROWS);
    view.scan_morsel(table, morsel, &mut |r| {
        buf.push(match r {
            RowRef::Row(row) => Arc::clone(row),
            RowRef::Col { seg, idx } => materialize_row(table, seg, *idx),
        });
        if buf.len() == MORSEL_ROWS {
            emit(&ScanBatch::Rows(&buf));
            buf.clear();
        }
    });
    if !buf.is_empty() {
        emit(&ScanBatch::Rows(&buf));
    }
}

/// A snapshot view over a [`RowDb`], optionally overriding some tables with
/// columnar snapshots. This single type serves every engine:
///
/// * shared engine — row db only;
/// * isolated engine — the *replica's* row db;
/// * hybrid engines — columnar snapshots for the fact (and dimension)
///   tables, row db for the freshness side-read.
pub struct MixedView<'a> {
    ts: Ts,
    row_db: &'a RowDb,
    columnar: HashMap<TableId, ColumnSnapshot>,
    dims: HashMap<TableId, DimSnapshot>,
}

impl<'a> MixedView<'a> {
    /// A pure row-store view at `ts`.
    pub fn rows(row_db: &'a RowDb, ts: Ts) -> Self {
        MixedView { ts, row_db, columnar: HashMap::new(), dims: HashMap::new() }
    }

    /// Routes scans of `table` to a columnar snapshot.
    pub fn with_columnar(mut self, table: TableId, snap: ColumnSnapshot) -> Self {
        self.columnar.insert(table, snap);
        self
    }

    /// Routes scans of `table` to a dimension snapshot (sealed segment +
    /// update overlay).
    pub fn with_dim(mut self, table: TableId, snap: DimSnapshot) -> Self {
        self.dims.insert(table, snap);
        self
    }

    /// Which tables are served columnar (diagnostics).
    pub fn columnar_tables(&self) -> Vec<TableId> {
        let mut v: Vec<TableId> =
            self.columnar.keys().chain(self.dims.keys()).copied().collect();
        v.sort_unstable();
        v
    }
}

impl SnapshotView for MixedView<'_> {
    fn ts(&self) -> Ts {
        self.ts
    }

    fn scan(&self, table: TableId, visit: &mut dyn FnMut(&RowRef<'_>)) {
        if let Some(snap) = self.dims.get(&table) {
            // Dimension path: sealed columns with the update overlay
            // (merge-on-read for updates).
            if let Some(seg) = snap.segment() {
                let overlay = snap.overlay();
                for idx in 0..seg.row_count() {
                    match overlay.get(&(idx as u64)) {
                        Some(row) => visit(&RowRef::Row(row)),
                        None => visit(&RowRef::Col { seg, idx }),
                    }
                }
            }
            return;
        }
        if let Some(snap) = self.columnar.get(&table) {
            for seg in snap.segments() {
                let visible = seg.visible_prefix(self.ts);
                for idx in 0..visible {
                    visit(&RowRef::Col { seg, idx });
                }
            }
            for (_, row) in snap.delta() {
                visit(&RowRef::Row(row));
            }
        } else {
            self.row_db.store(table).scan(self.ts, |_, row| visit(&RowRef::Row(row)));
        }
    }

    fn morsels(&self, table: TableId, pruner: &ScanPruner) -> Vec<Morsel> {
        if self.dims.contains_key(&table) {
            // Dimension overlays are tiny; not worth splitting.
            return vec![Morsel::whole()];
        }
        let mut out = Vec::new();
        if let Some(snap) = self.columnar.get(&table) {
            // Attach a zone per pruner column the segment tracks — any
            // u32 column, any table. The segment zone map covers all
            // rows, a superset of the visible prefix, so pruning on it is
            // always safe.
            for (si, seg) in snap.segments().iter().enumerate() {
                let visible = seg.visible_prefix(self.ts);
                let zones: Vec<(ColId, u32, u32)> = pruner
                    .cols()
                    .filter_map(|col| seg.u32_minmax(col).map(|(mn, mx)| (col, mn, mx)))
                    .collect();
                let mut lo = 0;
                while lo < visible {
                    let hi = (lo + MORSEL_ROWS).min(visible);
                    out.push(Morsel {
                        source: MorselSource::SegmentRows { segment: si, lo, hi },
                        zones: zones.clone(),
                    });
                    lo = hi;
                }
            }
            let delta = snap.delta().len();
            let mut lo = 0;
            while lo < delta {
                let hi = (lo + MORSEL_ROWS).min(delta);
                out.push(Morsel {
                    source: MorselSource::RowSlice { lo, hi },
                    zones: Vec::new(),
                });
                lo = hi;
            }
        } else {
            let slots = self.row_db.store(table).slot_count();
            let mut lo = 0u64;
            while lo < slots {
                let hi = (lo + MORSEL_ROWS as u64).min(slots);
                out.push(Morsel {
                    source: MorselSource::RowRange { lo, hi },
                    zones: Vec::new(),
                });
                lo = hi;
            }
        }
        out
    }

    fn scan_morsel(
        &self,
        table: TableId,
        morsel: &Morsel,
        visit: &mut dyn FnMut(&RowRef<'_>),
    ) {
        match morsel.source {
            MorselSource::Whole => self.scan(table, visit),
            MorselSource::RowRange { lo, hi } => {
                self.row_db
                    .store(table)
                    .scan_range(self.ts, lo, hi, |_, row| visit(&RowRef::Row(row)));
            }
            MorselSource::SegmentRows { segment, lo, hi } => {
                let snap =
                    self.columnar.get(&table).expect("segment morsel on non-columnar table");
                let seg = &snap.segments()[segment];
                for idx in lo..hi {
                    visit(&RowRef::Col { seg, idx });
                }
            }
            MorselSource::RowSlice { lo, hi } => {
                let snap =
                    self.columnar.get(&table).expect("delta morsel on non-columnar table");
                for (_, row) in &snap.delta()[lo..hi] {
                    visit(&RowRef::Row(row));
                }
            }
        }
    }

    fn scan_batches(
        &self,
        table: TableId,
        morsel: &Morsel,
        emit: &mut dyn FnMut(&ScanBatch<'_>),
    ) {
        match morsel.source {
            // The vectorized fast path: hand the executor the encoded
            // segment chunk directly, zero-copy.
            MorselSource::SegmentRows { segment, lo, hi } => {
                let snap =
                    self.columnar.get(&table).expect("segment morsel on non-columnar table");
                let seg = &snap.segments()[segment];
                emit(&ScanBatch::Cols { seg, lo, len: hi - lo });
            }
            // Delta rows are already row-format: batch their `Arc`s.
            MorselSource::RowSlice { lo, hi } => {
                let snap =
                    self.columnar.get(&table).expect("delta morsel on non-columnar table");
                let buf: Vec<Row> =
                    snap.delta()[lo..hi].iter().map(|(_, r)| Arc::clone(r)).collect();
                emit(&ScanBatch::Rows(&buf));
            }
            // Row store and whole-table morsels: scalar fallback adapter.
            MorselSource::Whole | MorselSource::RowRange { .. } => {
                scalar_batch_adapter(self, table, morsel, emit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;
    use hat_storage::colstore::ColumnTable;

    fn history_row(ok: u64, ck: u32, cents: i64) -> Row {
        row_from([
            Value::U64(ok),
            Value::U32(ck),
            Value::Money(Money::from_cents(cents)),
        ])
    }

    fn freshness_row(client: u32, txn: u64) -> Row {
        row_from([Value::U32(client), Value::U64(txn)])
    }

    #[test]
    fn row_view_scan_respects_snapshot() {
        let db = RowDb::new();
        let store = db.store(TableId::History);
        store.install_insert(history_row(1, 1, 10), 2);
        store.install_insert(history_row(2, 2, 20), 5);
        let view = MixedView::rows(&db, 3);
        let mut seen = Vec::new();
        view.scan(TableId::History, &mut |r| seen.push(r.u64(0)));
        assert_eq!(seen, vec![1]);
        assert_eq!(view.ts(), 3);
        assert!(view.columnar_tables().is_empty());
    }

    #[test]
    fn columnar_override_dispatches() {
        let db = RowDb::new();
        // Row store holds one row the columnar copy does NOT, to prove the
        // dispatch goes columnar.
        db.store(TableId::History).install_insert(history_row(99, 9, 0), 2);
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(2, (0..5).map(|i| history_row(i, 0, 0)));
        ct.append_delta(4, history_row(5, 0, 0));
        ct.append_delta(7, history_row(6, 0, 0));
        let view = MixedView::rows(&db, 5).with_columnar(TableId::History, ct.snapshot(5));
        let mut seen = Vec::new();
        view.scan(TableId::History, &mut |r| seen.push(r.u64(0)));
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5], "segment prefix + visible delta");
        assert_eq!(view.columnar_tables(), vec![TableId::History]);
    }

    #[test]
    fn rowref_accessors_match_across_formats() {
        let row = history_row(3, 4, 55);
        let r = RowRef::Row(&row);
        assert_eq!(r.u64(0), 3);
        assert_eq!(r.u32(1), 4);
        assert_eq!(r.money(2).cents(), 55);

        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(2, [history_row(3, 4, 55)]);
        let snap = ct.snapshot(2);
        let seg = &snap.segments()[0];
        let c = RowRef::Col { seg, idx: 0 };
        assert_eq!(c.u64(0), 3);
        assert_eq!(c.u32(1), 4);
        assert_eq!(c.money(2).cents(), 55);
    }

    #[test]
    fn dim_overlay_dispatch_substitutes_updated_rows() {
        use hat_storage::colstore::DimColumnCopy;
        let db = RowDb::new();
        let dim = DimColumnCopy::new(TableId::History);
        dim.load(2, (0..4).map(|i| history_row(i, 10, 0)));
        dim.append_update(5, 2, history_row(2, 99, 0));
        let view = MixedView::rows(&db, 5).with_dim(TableId::History, dim.snapshot(5));
        let mut custkeys = Vec::new();
        view.scan(TableId::History, &mut |r| custkeys.push(r.u32(1)));
        assert_eq!(custkeys, vec![10, 10, 99, 10]);
        // Before the update's ts: the original value.
        let view = MixedView::rows(&db, 4).with_dim(TableId::History, dim.snapshot(4));
        let mut custkeys = Vec::new();
        view.scan(TableId::History, &mut |r| custkeys.push(r.u32(1)));
        assert_eq!(custkeys, vec![10, 10, 10, 10]);
        assert_eq!(view.columnar_tables(), vec![TableId::History]);
    }

    fn lineorder_row(orderdate: u32) -> Row {
        row_from([
            Value::U64(1),
            Value::U32(1),
            Value::U32(1),
            Value::U32(1),
            Value::U32(1),
            Value::U32(orderdate),
            Value::Str(Arc::from("p")),
            Value::Str(Arc::from("s")),
            Value::U32(1),
            Value::Money(Money::from_cents(100)),
            Value::Money(Money::from_cents(100)),
            Value::U32(0),
            Value::Money(Money::from_cents(100)),
            Value::Money(Money::from_cents(50)),
            Value::U32(0),
            Value::U32(orderdate),
            Value::Str(Arc::from("RAIL")),
        ])
    }

    /// Concatenating a view's morsel scans must equal its full scan, and
    /// its batch emissions must cover the same rows.
    fn assert_morsels_cover(view: &MixedView<'_>, table: TableId) -> usize {
        let mut full = Vec::new();
        view.scan(table, &mut |r| full.push(r.u64(0)));
        let morsels = view.morsels(table, &ScanPruner::none());
        let mut pieces = Vec::new();
        let mut batched = Vec::new();
        for m in &morsels {
            view.scan_morsel(table, m, &mut |r| pieces.push(r.u64(0)));
            view.scan_batches(table, m, &mut |b| {
                for i in 0..b.len() {
                    batched.push(b.row_ref(i).u64(0));
                }
            });
        }
        assert_eq!(batched, pieces, "batches emit morsel rows in order");
        pieces.sort_unstable();
        let mut sorted_full = full.clone();
        sorted_full.sort_unstable();
        assert_eq!(pieces, sorted_full);
        morsels.len()
    }

    #[test]
    fn morsel_overlap_semantics() {
        use crate::hint::ZoneCheck;
        let m = |zones| Morsel { source: MorselSource::Whole, zones };
        let pruner = |lo, hi| ScanPruner { checks: vec![(1, ZoneCheck::Range(lo, hi))] };
        assert!(m(vec![]).may_overlap(&pruner(10, 20)), "unknown bounds never prune");
        assert!(m(vec![(1, 1, 5)]).may_overlap(&ScanPruner::none()), "no checks never prune");
        assert!(m(vec![(1, 15, 30)]).may_overlap(&pruner(10, 20)));
        assert!(m(vec![(1, 20, 30)]).may_overlap(&pruner(10, 20)), "inclusive edge");
        assert!(!m(vec![(1, 21, 30)]).may_overlap(&pruner(10, 20)));
        assert!(!m(vec![(1, 1, 9)]).may_overlap(&pruner(10, 20)));
        // A zone for a different column does not satisfy the check.
        assert!(m(vec![(2, 50, 60)]).may_overlap(&pruner(10, 20)));
        // Multiple checks: all must overlap.
        let both = ScanPruner {
            checks: vec![(1, ZoneCheck::Range(10, 20)), (2, ZoneCheck::In(vec![7]))],
        };
        assert!(m(vec![(1, 15, 16), (2, 5, 9)]).may_overlap(&both));
        assert!(!m(vec![(1, 15, 16), (2, 8, 9)]).may_overlap(&both));
    }

    #[test]
    fn morsel_row_counts() {
        assert_eq!(Morsel::whole().rows(), None);
        let m = |source| Morsel { source, zones: Vec::new() };
        assert_eq!(m(MorselSource::RowRange { lo: 5, hi: 25 }).rows(), Some(20));
        assert_eq!(
            m(MorselSource::SegmentRows { segment: 0, lo: 0, hi: 4096 }).rows(),
            Some(4096)
        );
        assert_eq!(m(MorselSource::RowSlice { lo: 3, hi: 10 }).rows(), Some(7));
    }

    #[test]
    fn row_store_morsels_chunk_and_cover() {
        let db = RowDb::new();
        let store = db.store(TableId::History);
        let n = MORSEL_ROWS as u64 + 100;
        for i in 0..n {
            store.install_insert(history_row(i, 0, 0), 2);
        }
        let view = MixedView::rows(&db, 5);
        assert_eq!(assert_morsels_cover(&view, TableId::History), 2);
        // Empty table: no morsels, nothing to scan.
        assert!(view.morsels(TableId::Customer, &ScanPruner::none()).is_empty());
    }

    #[test]
    fn columnar_morsels_split_segments_and_delta() {
        let db = RowDb::new();
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(2, (0..10).map(|i| history_row(i, 0, 0)));
        ct.append_delta(4, history_row(10, 0, 0));
        ct.append_delta(7, history_row(11, 0, 0));
        let view = MixedView::rows(&db, 5).with_columnar(TableId::History, ct.snapshot(5));
        let morsels = view.morsels(TableId::History, &ScanPruner::none());
        assert_eq!(morsels.len(), 2, "one segment chunk + one visible-delta chunk");
        assert!(matches!(morsels[0].source, MorselSource::SegmentRows { .. }));
        assert!(matches!(morsels[1].source, MorselSource::RowSlice { .. }));
        assert_morsels_cover(&view, TableId::History);
    }

    #[test]
    fn dim_tables_stay_whole_morsels() {
        use hat_storage::colstore::DimColumnCopy;
        let db = RowDb::new();
        let dim = DimColumnCopy::new(TableId::History);
        dim.load(2, (0..4).map(|i| history_row(i, 10, 0)));
        let view = MixedView::rows(&db, 5).with_dim(TableId::History, dim.snapshot(5));
        assert_eq!(view.morsels(TableId::History, &ScanPruner::none()), vec![Morsel::whole()]);
        assert_morsels_cover(&view, TableId::History);
    }

    #[test]
    fn lineorder_zone_maps_flow_into_morsels() {
        use crate::hint::ZoneCheck;
        use hat_common::ids::lineorder;
        let db = RowDb::new();
        let ct = ColumnTable::new(TableId::Lineorder);
        ct.load_segment(2, (0..20).map(|i| lineorder_row(19930101 + i)));
        ct.load_segment(2, (0..20).map(|i| lineorder_row(19940101 + i)));
        let view =
            MixedView::rows(&db, 5).with_columnar(TableId::Lineorder, ct.snapshot(5));
        let pruner = ScanPruner {
            checks: vec![(lineorder::ORDERDATE, ZoneCheck::Range(19940101, 19941231))],
        };
        let morsels = view.morsels(TableId::Lineorder, &pruner);
        assert_eq!(morsels.len(), 2);
        assert_eq!(morsels[0].zones, vec![(lineorder::ORDERDATE, 19930101, 19930120)]);
        assert_eq!(morsels[1].zones, vec![(lineorder::ORDERDATE, 19940101, 19940120)]);
        assert!(!morsels[0].may_overlap(&pruner), "1993 segment prunes");
        assert!(morsels[1].may_overlap(&pruner));
        // Without checks the view skips zone-map lookup entirely.
        let unchecked = view.morsels(TableId::Lineorder, &ScanPruner::none());
        assert!(unchecked.iter().all(|m| m.zones.is_empty()));
    }

    #[test]
    fn non_date_u32_zone_maps_flow_into_morsels() {
        // The generalized pruner: a custkey check (not the date column)
        // picks up segment zone maps just the same.
        use crate::hint::ZoneCheck;
        let db = RowDb::new();
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(2, (0..20).map(|i| history_row(i, 100 + i as u32, 0)));
        ct.load_segment(2, (0..20).map(|i| history_row(i, 500 + i as u32, 0)));
        let view = MixedView::rows(&db, 5).with_columnar(TableId::History, ct.snapshot(5));
        let pruner = ScanPruner { checks: vec![(1, ZoneCheck::Range(505, 510))] };
        let morsels = view.morsels(TableId::History, &pruner);
        assert_eq!(morsels.len(), 2);
        assert!(!morsels[0].may_overlap(&pruner), "custkeys 100..119 prune");
        assert!(morsels[1].may_overlap(&pruner));
    }

    #[test]
    fn columnar_batches_are_zero_copy_cols() {
        let db = RowDb::new();
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(2, (0..10).map(|i| history_row(i, 0, 0)));
        ct.append_delta(4, history_row(10, 0, 0));
        let view = MixedView::rows(&db, 5).with_columnar(TableId::History, ct.snapshot(5));
        let morsels = view.morsels(TableId::History, &ScanPruner::none());
        let mut kinds = Vec::new();
        for m in &morsels {
            view.scan_batches(TableId::History, m, &mut |b| {
                kinds.push(matches!(b, ScanBatch::Cols { .. }));
            });
        }
        assert_eq!(kinds, vec![true, false], "segment -> Cols, delta -> Rows");
    }

    #[test]
    fn freshness_vector_reads_snapshot() {
        let db = RowDb::new();
        let store = db.store(TableId::Freshness);
        let r0 = store.install_insert(freshness_row(0, 0), 2);
        let r1 = store.install_insert(freshness_row(1, 0), 2);
        store.install_update(r0, freshness_row(0, 5), 4).unwrap();
        store.install_update(r1, freshness_row(1, 3), 6).unwrap();
        // Snapshot at 5 sees client 0 at txn 5, client 1 still at 0.
        let view = MixedView::rows(&db, 5);
        assert_eq!(view.freshness_vector(), vec![(0, 5), (1, 0)]);
        let view = MixedView::rows(&db, 6);
        assert_eq!(view.freshness_vector(), vec![(0, 5), (1, 3)]);
    }
}
