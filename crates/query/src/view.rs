//! Snapshot views: the abstraction that lets one query executor run against
//! both row-format and column-format backends.
//!
//! Every engine hands the executor a [`MixedView`]: a snapshot timestamp, a
//! row database, and (for hybrid engines) a set of tables served from
//! columnar snapshots instead. Scans dispatch per table — the row path pays
//! MVCC version-chain traversal, the columnar path reads compressed
//! vectors — which is precisely the storage-format asymmetry the paper's
//! engines differ on.

use std::collections::HashMap;
use std::sync::Arc;

use hat_common::ids::freshness;
use hat_common::{ColId, Money, Row, TableId};
use hat_storage::colstore::{ColumnSnapshot, DimSnapshot, Segment};
use hat_storage::rowstore::RowDb;
use hat_txn::Ts;

/// A borrowed reference to one logical row in either format.
pub enum RowRef<'a> {
    /// A row-format (MVCC) row.
    Row(&'a Row),
    /// Row `idx` of a sealed columnar segment.
    Col { seg: &'a Segment, idx: usize },
}

impl RowRef<'_> {
    /// `u64` column accessor.
    #[inline]
    pub fn u64(&self, col: ColId) -> u64 {
        match self {
            RowRef::Row(r) => r[col].as_u64().expect("typed row"),
            RowRef::Col { seg, idx } => seg.col(col).u64_at(*idx),
        }
    }

    /// `u32` column accessor.
    #[inline]
    pub fn u32(&self, col: ColId) -> u32 {
        match self {
            RowRef::Row(r) => r[col].as_u32().expect("typed row"),
            RowRef::Col { seg, idx } => seg.col(col).u32_at(*idx),
        }
    }

    /// Money column accessor.
    #[inline]
    pub fn money(&self, col: ColId) -> Money {
        match self {
            RowRef::Row(r) => r[col].as_money().expect("typed row"),
            RowRef::Col { seg, idx } => seg.col(col).money_at(*idx),
        }
    }

    /// String column accessor.
    #[inline]
    pub fn str(&self, col: ColId) -> &str {
        match self {
            RowRef::Row(r) => r[col].as_str().expect("typed row"),
            RowRef::Col { seg, idx } => seg.col(col).str_at(*idx),
        }
    }

    /// Cheap shared-string accessor (group keys).
    #[inline]
    pub fn arc_str(&self, col: ColId) -> Arc<str> {
        match self {
            RowRef::Row(r) => match &r[col] {
                hat_common::Value::Str(s) => Arc::clone(s),
                other => panic!("expected str, got {}", other.type_name()),
            },
            RowRef::Col { seg, idx } => Arc::clone(seg.col(col).arc_str_at(*idx)),
        }
    }
}

/// The executor's window onto an engine at one snapshot timestamp.
pub trait SnapshotView {
    /// The snapshot timestamp all scans observe.
    fn ts(&self) -> Ts;

    /// Scans every visible row of `table`, invoking `visit` per row.
    fn scan(&self, table: TableId, visit: &mut dyn FnMut(&RowRef<'_>));

    /// The HATtrick freshness side-read (§4.2): the highest transaction
    /// number from each transactional client visible in this snapshot,
    /// returned as `(client, txnnum)` pairs. Equivalent to UNIONing the
    /// `FRESHNESS_j` tables into the query.
    fn freshness_vector(&self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        self.scan(TableId::Freshness, &mut |row| {
            out.push((row.u32(freshness::CLIENT), row.u64(freshness::TXNNUM)));
        });
        out.sort_unstable_by_key(|(c, _)| *c);
        out
    }
}

/// A snapshot view over a [`RowDb`], optionally overriding some tables with
/// columnar snapshots. This single type serves every engine:
///
/// * shared engine — row db only;
/// * isolated engine — the *replica's* row db;
/// * hybrid engines — columnar snapshots for the fact (and dimension)
///   tables, row db for the freshness side-read.
pub struct MixedView<'a> {
    ts: Ts,
    row_db: &'a RowDb,
    columnar: HashMap<TableId, ColumnSnapshot>,
    dims: HashMap<TableId, DimSnapshot>,
}

impl<'a> MixedView<'a> {
    /// A pure row-store view at `ts`.
    pub fn rows(row_db: &'a RowDb, ts: Ts) -> Self {
        MixedView { ts, row_db, columnar: HashMap::new(), dims: HashMap::new() }
    }

    /// Routes scans of `table` to a columnar snapshot.
    pub fn with_columnar(mut self, table: TableId, snap: ColumnSnapshot) -> Self {
        self.columnar.insert(table, snap);
        self
    }

    /// Routes scans of `table` to a dimension snapshot (sealed segment +
    /// update overlay).
    pub fn with_dim(mut self, table: TableId, snap: DimSnapshot) -> Self {
        self.dims.insert(table, snap);
        self
    }

    /// Which tables are served columnar (diagnostics).
    pub fn columnar_tables(&self) -> Vec<TableId> {
        let mut v: Vec<TableId> =
            self.columnar.keys().chain(self.dims.keys()).copied().collect();
        v.sort_unstable();
        v
    }
}

impl SnapshotView for MixedView<'_> {
    fn ts(&self) -> Ts {
        self.ts
    }

    fn scan(&self, table: TableId, visit: &mut dyn FnMut(&RowRef<'_>)) {
        if let Some(snap) = self.dims.get(&table) {
            // Dimension path: sealed columns with the update overlay
            // (merge-on-read for updates).
            if let Some(seg) = snap.segment() {
                let overlay = snap.overlay();
                for idx in 0..seg.row_count() {
                    match overlay.get(&(idx as u64)) {
                        Some(row) => visit(&RowRef::Row(row)),
                        None => visit(&RowRef::Col { seg, idx }),
                    }
                }
            }
            return;
        }
        if let Some(snap) = self.columnar.get(&table) {
            for seg in snap.segments() {
                let visible = seg.visible_prefix(self.ts);
                for idx in 0..visible {
                    visit(&RowRef::Col { seg, idx });
                }
            }
            for (_, row) in snap.delta() {
                visit(&RowRef::Row(row));
            }
        } else {
            self.row_db.store(table).scan(self.ts, |_, row| visit(&RowRef::Row(row)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;
    use hat_storage::colstore::ColumnTable;

    fn history_row(ok: u64, ck: u32, cents: i64) -> Row {
        row_from([
            Value::U64(ok),
            Value::U32(ck),
            Value::Money(Money::from_cents(cents)),
        ])
    }

    fn freshness_row(client: u32, txn: u64) -> Row {
        row_from([Value::U32(client), Value::U64(txn)])
    }

    #[test]
    fn row_view_scan_respects_snapshot() {
        let db = RowDb::new();
        let store = db.store(TableId::History);
        store.install_insert(history_row(1, 1, 10), 2);
        store.install_insert(history_row(2, 2, 20), 5);
        let view = MixedView::rows(&db, 3);
        let mut seen = Vec::new();
        view.scan(TableId::History, &mut |r| seen.push(r.u64(0)));
        assert_eq!(seen, vec![1]);
        assert_eq!(view.ts(), 3);
        assert!(view.columnar_tables().is_empty());
    }

    #[test]
    fn columnar_override_dispatches() {
        let db = RowDb::new();
        // Row store holds one row the columnar copy does NOT, to prove the
        // dispatch goes columnar.
        db.store(TableId::History).install_insert(history_row(99, 9, 0), 2);
        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(2, (0..5).map(|i| history_row(i, 0, 0)));
        ct.append_delta(4, history_row(5, 0, 0));
        ct.append_delta(7, history_row(6, 0, 0));
        let view = MixedView::rows(&db, 5).with_columnar(TableId::History, ct.snapshot(5));
        let mut seen = Vec::new();
        view.scan(TableId::History, &mut |r| seen.push(r.u64(0)));
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5], "segment prefix + visible delta");
        assert_eq!(view.columnar_tables(), vec![TableId::History]);
    }

    #[test]
    fn rowref_accessors_match_across_formats() {
        let row = history_row(3, 4, 55);
        let r = RowRef::Row(&row);
        assert_eq!(r.u64(0), 3);
        assert_eq!(r.u32(1), 4);
        assert_eq!(r.money(2).cents(), 55);

        let ct = ColumnTable::new(TableId::History);
        ct.load_segment(2, [history_row(3, 4, 55)]);
        let snap = ct.snapshot(2);
        let seg = &snap.segments()[0];
        let c = RowRef::Col { seg, idx: 0 };
        assert_eq!(c.u64(0), 3);
        assert_eq!(c.u32(1), 4);
        assert_eq!(c.money(2).cents(), 55);
    }

    #[test]
    fn dim_overlay_dispatch_substitutes_updated_rows() {
        use hat_storage::colstore::DimColumnCopy;
        let db = RowDb::new();
        let dim = DimColumnCopy::new(TableId::History);
        dim.load(2, (0..4).map(|i| history_row(i, 10, 0)));
        dim.append_update(5, 2, history_row(2, 99, 0));
        let view = MixedView::rows(&db, 5).with_dim(TableId::History, dim.snapshot(5));
        let mut custkeys = Vec::new();
        view.scan(TableId::History, &mut |r| custkeys.push(r.u32(1)));
        assert_eq!(custkeys, vec![10, 10, 99, 10]);
        // Before the update's ts: the original value.
        let view = MixedView::rows(&db, 4).with_dim(TableId::History, dim.snapshot(4));
        let mut custkeys = Vec::new();
        view.scan(TableId::History, &mut |r| custkeys.push(r.u32(1)));
        assert_eq!(custkeys, vec![10, 10, 10, 10]);
        assert_eq!(view.columnar_tables(), vec![TableId::History]);
    }

    #[test]
    fn freshness_vector_reads_snapshot() {
        let db = RowDb::new();
        let store = db.store(TableId::Freshness);
        let r0 = store.install_insert(freshness_row(0, 0), 2);
        let r1 = store.install_insert(freshness_row(1, 0), 2);
        store.install_update(r0, freshness_row(0, 5), 4).unwrap();
        store.install_update(r1, freshness_row(1, 3), 6).unwrap();
        // Snapshot at 5 sees client 0 at txn 5, client 1 still at 0.
        let view = MixedView::rows(&db, 5);
        assert_eq!(view.freshness_vector(), vec![(0, 5), (1, 0)]);
        let view = MixedView::rows(&db, 6);
        assert_eq!(view.freshness_vector(), vec![(0, 5), (1, 3)]);
    }
}
