//! `hat-query` — the analytical query layer.
//!
//! Queries are described by data ([`spec::QuerySpec`]) and interpreted by a
//! vector-at-a-time executor ([`exec`]) against any backend that implements
//! [`view::SnapshotView`] — the MVCC row store (shared/isolated engines) and
//! the columnar store (hybrid engines) both do.
//!
//! [`ssb`] defines the 13 Star-Schema-Benchmark queries (Q1.1–Q4.3) in
//! `QuerySpec` form, extended per HATtrick §4.2 with the freshness-vector
//! side read.
//!
//! ```
//! use hat_common::ids::{history, TableId};
//! use hat_common::value::row_from;
//! use hat_common::{Money, Value};
//! use hat_query::predicate::Predicate;
//! use hat_query::spec::{AggExpr, QueryId, QuerySpec};
//! use hat_query::view::MixedView;
//! use hat_storage::rowstore::RowDb;
//!
//! let db = RowDb::new();
//! for i in 0..10u64 {
//!     db.store(TableId::History).install_insert(
//!         row_from([
//!             Value::U64(i),
//!             Value::U32(1),
//!             Value::Money(Money::from_cents(100)),
//!         ]),
//!         1,
//!     );
//! }
//! let spec = QuerySpec {
//!     id: QueryId::Q1_1,
//!     fact: TableId::History,
//!     fact_filter: Predicate::all(),
//!     joins: vec![],
//!     group_by: vec![],
//!     agg: AggExpr::SumMoney(history::AMOUNT),
//! };
//! let out = hat_query::exec::execute(&spec, &MixedView::rows(&db, 1));
//! assert_eq!(out.groups[0].agg, 1000);
//! ```

pub mod batch;
pub mod exec;
pub mod hint;
pub mod predicate;
pub mod spec;
pub mod ssb;
pub mod view;

pub use batch::{filter_batch, BatchReader, KernelCache, ScanBatch};
pub use exec::{execute, ExecContext, ExecStats, QueryOpts, QueryOutput, ScanMode};
pub use hint::{date_range_hint, ScanPruner, ZoneCheck};
pub use predicate::{ColPredicate, Predicate};
pub use spec::{AggExpr, GroupKey, GroupVal, JoinSpec, QueryId, QuerySpec};
pub use view::{MixedView, Morsel, MorselSource, RowRef, SnapshotView};
