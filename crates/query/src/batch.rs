//! Batch scan units and vectorized predicate kernels.
//!
//! The batch API replaces row-at-a-time visitation for the probe phase:
//! views emit [`ScanBatch`]es (at most [`MORSEL_ROWS`](crate::view::MORSEL_ROWS)
//! rows each), the executor evaluates the fact filter as vectorized
//! kernels that tighten a *selection vector* of batch-relative row
//! indices, and only surviving rows are materialized for join probing and
//! aggregation (late materialization).
//!
//! Kernels work on the encoded domain wherever the storage allows:
//!
//! * string predicates against dictionary columns are translated **once
//!   per segment** into a per-code pass table, then each row is a single
//!   `u32` table lookup — no string decode, no string compare;
//! * RLE columns filter run-at-a-time through [`RleU32::runs_in`] — one
//!   predicate evaluation per run, one ordered merge against the
//!   selection vector — instead of a binary search per row;
//! * bit-packed and plain `u32` columns evaluate per index without
//!   constructing a `RowRef`.
//!
//! Anything else (row-format batches, predicate/column combinations with
//! no specialized kernel) falls back to scalar [`RowRef`] evaluation, so
//! the vectorized path is result-identical to the scalar path by
//! construction for the supported kernels and by shared code for the
//! rest.

use std::collections::HashMap;
use std::sync::Arc;

use hat_common::{ColId, Money, Row};
use hat_storage::colstore::{ColumnData, RleCursor, Segment};

use crate::predicate::{ColPredicate, Predicate};
use crate::view::RowRef;

/// One unit of batch scan work: a fixed-width chunk of rows in either
/// storage format, borrowed from the view that emitted it.
pub enum ScanBatch<'a> {
    /// Rows `[lo, lo + len)` of a sealed columnar segment, still encoded.
    Cols {
        seg: &'a Segment,
        lo: usize,
        len: usize,
    },
    /// Row-format rows: delta tails, row stores, dimension overlays, and
    /// the scalar fallback adapter.
    Rows(&'a [Row]),
}

impl ScanBatch<'_> {
    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        match self {
            ScanBatch::Cols { len, .. } => *len,
            ScanBatch::Rows(rows) => rows.len(),
        }
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A scalar row reference to batch-relative row `i`.
    #[inline]
    pub fn row_ref(&self, i: usize) -> RowRef<'_> {
        match self {
            ScanBatch::Cols { seg, lo, .. } => RowRef::Col { seg, idx: lo + i },
            ScanBatch::Rows(rows) => RowRef::Row(&rows[i]),
        }
    }
}

/// Per-worker scratch state for the filter kernels.
///
/// Holds the dictionary-predicate translations — keyed by segment address
/// and conjunct index, computed once per (segment, predicate) and reused
/// by every batch of that segment the worker scans — plus a reusable
/// selection-vector scratch buffer.
#[derive(Default)]
pub struct KernelCache {
    /// `(segment address, conjunct index) -> ` per-dictionary-code pass
    /// table. Segment addresses are stable for the life of a query: the
    /// view holds its snapshot's `Arc<Segment>`s alive.
    dict_pass: HashMap<(usize, usize), Vec<bool>>,
    /// Swap buffer for the run-at-a-time merge.
    scratch: Vec<u32>,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> Self {
        KernelCache::default()
    }
}

/// Evaluates `pred` over `batch`, leaving in `sel` the batch-relative
/// indices of the rows that pass (ascending). `sel` is reset first, so
/// callers just reuse one vector across batches.
pub fn filter_batch(
    pred: &Predicate,
    batch: &ScanBatch<'_>,
    sel: &mut Vec<u32>,
    cache: &mut KernelCache,
) {
    sel.clear();
    sel.extend(0..batch.len() as u32);
    if pred.is_trivial() {
        return;
    }
    match batch {
        ScanBatch::Rows(rows) => {
            // Scalar fallback: row-format batches evaluate exactly as the
            // row-at-a-time path would.
            sel.retain(|&i| pred.eval(&RowRef::Row(&rows[i as usize])));
        }
        ScanBatch::Cols { seg, lo, .. } => {
            for (ci, conjunct) in pred.conjuncts.iter().enumerate() {
                if sel.is_empty() {
                    return;
                }
                filter_conjunct_cols(conjunct, ci, seg, *lo, sel, cache);
            }
        }
    }
}

/// Tightens `sel` by one conjunct over an encoded columnar batch.
fn filter_conjunct_cols(
    conjunct: &ColPredicate,
    conjunct_idx: usize,
    seg: &Segment,
    lo: usize,
    sel: &mut Vec<u32>,
    cache: &mut KernelCache,
) {
    let col = seg.col(conjunct.col());
    match (conjunct, col) {
        // u32 predicates over plain vectors: direct slice indexing.
        (_, ColumnData::U32(v)) if u32_test(conjunct, 0).is_some() => {
            sel.retain(|&i| u32_test(conjunct, v[lo + i as usize]).unwrap());
        }
        // u32 predicates over bit-packed vectors: decode per index (a
        // shift+mask), no RowRef construction.
        (_, ColumnData::U32Packed(p)) if u32_test(conjunct, 0).is_some() => {
            sel.retain(|&i| u32_test(conjunct, p.get(lo + i as usize)).unwrap());
        }
        // u32 predicates over RLE: one predicate evaluation per run, then
        // an ordered merge of the passing runs against the selection
        // vector. Never touches per-row storage.
        (_, ColumnData::U32Rle(r)) if u32_test(conjunct, 0).is_some() => {
            let hi = lo + sel.last().map_or(0, |&i| i as usize + 1);
            let mut passing = r
                .runs_in(lo, hi)
                .filter(|&(v, _, _)| u32_test(conjunct, v).unwrap());
            let mut cur = passing.next();
            let out = &mut cache.scratch;
            out.clear();
            for &i in sel.iter() {
                let abs = lo + i as usize;
                while let Some((_, _, end)) = cur {
                    if abs >= end {
                        cur = passing.next();
                    } else {
                        break;
                    }
                }
                match cur {
                    Some((_, start, _)) if abs >= start => out.push(i),
                    Some(_) => {}
                    None => break,
                }
            }
            std::mem::swap(sel, out);
        }
        // String predicates over dictionary columns: translate the
        // predicate to a per-code pass table once per segment, then each
        // row is one code lookup.
        (
            ColPredicate::StrEq(..) | ColPredicate::StrIn(..) | ColPredicate::StrBetween(..),
            ColumnData::Str(dict),
        ) => {
            let key = (seg as *const Segment as usize, conjunct_idx);
            let pass = cache.dict_pass.entry(key).or_insert_with(|| {
                dict.entries().iter().map(|s| str_test(conjunct, s)).collect()
            });
            let codes = dict.codes();
            sel.retain(|&i| pass[codes[lo + i as usize] as usize]);
        }
        // No specialized kernel (or a type mismatch): scalar fallback,
        // which preserves the scalar path's behavior — including its
        // panics on mistyped predicates.
        _ => {
            sel.retain(|&i| conjunct.eval(&RowRef::Col { seg, idx: lo + i as usize }));
        }
    }
}

/// Evaluates a u32 predicate against one value; `None` when the predicate
/// is not a u32 predicate (kernel dispatch guard).
#[inline]
fn u32_test(conjunct: &ColPredicate, v: u32) -> Option<bool> {
    match conjunct {
        ColPredicate::U32Eq(_, x) => Some(v == *x),
        ColPredicate::U32Between(_, lo, hi) => Some(*lo <= v && v <= *hi),
        ColPredicate::U32In(_, xs) => Some(xs.contains(&v)),
        _ => None,
    }
}

/// Evaluates a string predicate against one dictionary entry.
fn str_test(conjunct: &ColPredicate, s: &str) -> bool {
    match conjunct {
        ColPredicate::StrEq(_, x) => s == x.as_str(),
        ColPredicate::StrIn(_, xs) => xs.iter().any(|x| x == s),
        ColPredicate::StrBetween(_, lo, hi) => lo.as_str() <= s && s <= hi.as_str(),
        _ => unreachable!("str_test on non-string predicate"),
    }
}

/// Late-materialization accessor for the surviving rows of one batch.
///
/// The aggregation fold walks the selection vector in ascending order;
/// for RLE columns the reader threads a [`RleCursor`] per column so each
/// access is amortized O(1) instead of a binary search ([`RleU32::get`]'s
/// pathology). Other encodings read directly.
pub struct BatchReader<'a> {
    batch: &'a ScanBatch<'a>,
    /// Per-column RLE cursors, grown on first touch.
    cursors: Vec<RleCursor>,
}

impl<'a> BatchReader<'a> {
    /// A reader over `batch`.
    pub fn new(batch: &'a ScanBatch<'a>) -> Self {
        BatchReader { batch, cursors: Vec::new() }
    }

    #[inline]
    fn cursor(&mut self, col: ColId) -> &mut RleCursor {
        if col >= self.cursors.len() {
            self.cursors.resize_with(col + 1, RleCursor::default);
        }
        &mut self.cursors[col]
    }

    /// `u32` accessor for batch-relative row `i`.
    #[inline]
    pub fn u32(&mut self, col: ColId, i: usize) -> u32 {
        match self.batch {
            ScanBatch::Rows(rows) => rows[i][col].as_u32().expect("typed row"),
            ScanBatch::Cols { seg, lo, .. } => match seg.col(col) {
                ColumnData::U32Rle(r) => {
                    let idx = lo + i;
                    self.cursor(col).value_at(r, idx)
                }
                other => other.u32_at(lo + i),
            },
        }
    }

    /// Money accessor.
    #[inline]
    pub fn money(&mut self, col: ColId, i: usize) -> Money {
        match self.batch {
            ScanBatch::Rows(rows) => rows[i][col].as_money().expect("typed row"),
            ScanBatch::Cols { seg, lo, .. } => seg.col(col).money_at(lo + i),
        }
    }

    /// Cheap shared-string accessor (group keys).
    #[inline]
    pub fn arc_str(&mut self, col: ColId, i: usize) -> Arc<str> {
        match self.batch {
            ScanBatch::Rows(rows) => match &rows[i][col] {
                hat_common::Value::Str(s) => Arc::clone(s),
                other => panic!("expected str, got {}", other.type_name()),
            },
            ScanBatch::Cols { seg, lo, .. } => Arc::clone(seg.col(col).arc_str_at(lo + i)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::{TableId, Value};
    use hat_storage::colstore::SegmentBuilder;

    /// History rows: (orderkey u64, custkey u32, amount money).
    fn history_row(ok: u64, ck: u32, cents: i64) -> Row {
        row_from([
            Value::U64(ok),
            Value::U32(ck),
            Value::Money(Money::from_cents(cents)),
        ])
    }

    fn supplier_row(sk: u32, region: &str) -> Row {
        row_from([
            Value::U32(sk),
            Value::from(format!("Supplier#{sk:09}")),
            Value::from("addr"),
            Value::from("CITY0"),
            Value::from("CHINA"),
            Value::from(region),
            Value::from("phone"),
            Value::Money(Money::from_cents(0)),
        ])
    }

    fn seg_of(rows: impl IntoIterator<Item = Row>, table: TableId) -> Segment {
        let mut b = SegmentBuilder::new(table);
        for r in rows {
            b.push(1, r);
        }
        b.build()
    }

    fn selected(pred: &Predicate, batch: &ScanBatch<'_>) -> Vec<u32> {
        let mut sel = Vec::new();
        filter_batch(pred, batch, &mut sel, &mut KernelCache::new());
        sel
    }

    /// The kernels must agree with scalar RowRef evaluation on every
    /// encoding the segment builder can choose.
    fn assert_matches_scalar(pred: &Predicate, batch: &ScanBatch<'_>) {
        let scalar: Vec<u32> = (0..batch.len() as u32)
            .filter(|&i| pred.eval(&batch.row_ref(i as usize)))
            .collect();
        assert_eq!(selected(pred, batch), scalar);
    }

    #[test]
    fn u32_kernels_match_scalar_across_encodings() {
        // Three segments, three encodings of the custkey column: long runs
        // (RLE), narrow high-cardinality (packed), and an uncompressed one.
        let rle = seg_of((0..200).map(|i| history_row(i, (i / 60) as u32, 0)), TableId::History);
        assert!(matches!(rle.col(1), ColumnData::U32Rle(_)));
        let packed =
            seg_of((0..200).map(|i| history_row(i, (i % 97) as u32, 0)), TableId::History);
        assert!(matches!(packed.col(1), ColumnData::U32Packed(_)));
        let mut b = SegmentBuilder::new(TableId::History).without_compression();
        for i in 0..200u64 {
            b.push(1, history_row(i, (i % 97) as u32, 0));
        }
        let plain = b.build();
        assert!(matches!(plain.col(1), ColumnData::U32(_)));

        let preds = [
            Predicate::and(vec![ColPredicate::U32Eq(1, 2)]),
            Predicate::and(vec![ColPredicate::U32Between(1, 1, 2)]),
            Predicate::and(vec![ColPredicate::U32In(1, vec![0, 3, 96])]),
            Predicate::and(vec![ColPredicate::U32Eq(1, 9999)]), // nothing passes
            Predicate::all(),
        ];
        for seg in [&rle, &packed, &plain] {
            for pred in &preds {
                // Whole-segment batch and an offset batch.
                assert_matches_scalar(pred, &ScanBatch::Cols { seg, lo: 0, len: 200 });
                assert_matches_scalar(pred, &ScanBatch::Cols { seg, lo: 57, len: 100 });
            }
        }
    }

    #[test]
    fn dict_kernels_translate_once_and_match_scalar() {
        let regions = ["ASIA", "EUROPE", "AMERICA"];
        let seg = seg_of(
            (0..120u32).map(|i| supplier_row(i, regions[(i % 3) as usize])),
            TableId::Supplier,
        );
        assert!(matches!(seg.col(5), ColumnData::Str(_)));
        let preds = [
            Predicate::and(vec![ColPredicate::StrEq(5, "ASIA".into())]),
            Predicate::and(vec![ColPredicate::StrIn(5, vec!["ASIA".into(), "AMERICA".into()])]),
            Predicate::and(vec![ColPredicate::StrBetween(5, "AMERICA".into(), "ASIA".into())]),
            Predicate::and(vec![ColPredicate::StrEq(5, "ANTARCTICA".into())]),
        ];
        for pred in &preds {
            assert_matches_scalar(pred, &ScanBatch::Cols { seg: &seg, lo: 0, len: 120 });
            assert_matches_scalar(pred, &ScanBatch::Cols { seg: &seg, lo: 40, len: 41 });
        }
        // The translation is cached per (segment, conjunct): a second
        // batch over the same segment reuses it.
        let mut cache = KernelCache::new();
        let mut sel = Vec::new();
        let pred = &preds[0];
        filter_batch(pred, &ScanBatch::Cols { seg: &seg, lo: 0, len: 60 }, &mut sel, &mut cache);
        assert_eq!(cache.dict_pass.len(), 1);
        filter_batch(pred, &ScanBatch::Cols { seg: &seg, lo: 60, len: 60 }, &mut sel, &mut cache);
        assert_eq!(cache.dict_pass.len(), 1, "second batch hits the cache");
    }

    #[test]
    fn conjunction_tightens_selection_in_order() {
        let seg = seg_of(
            (0..100).map(|i| history_row(i, (i % 10) as u32, i as i64)),
            TableId::History,
        );
        let pred = Predicate::and(vec![
            ColPredicate::U32Between(1, 2, 5),
            ColPredicate::U32In(1, vec![3, 7]),
        ]);
        let batch = ScanBatch::Cols { seg: &seg, lo: 0, len: 100 };
        let sel = selected(&pred, &batch);
        assert_eq!(sel.len(), 10, "only custkey 3 survives both conjuncts");
        assert!(sel.windows(2).all(|w| w[0] < w[1]), "ascending selection");
        assert_matches_scalar(&pred, &batch);
    }

    #[test]
    fn rows_batch_falls_back_to_scalar() {
        let rows: Vec<Row> = (0..50).map(|i| history_row(i, (i % 5) as u32, 0)).collect();
        let pred = Predicate::and(vec![ColPredicate::U32Eq(1, 3)]);
        let batch = ScanBatch::Rows(&rows);
        assert_eq!(batch.len(), 50);
        assert_matches_scalar(&pred, &batch);
    }

    #[test]
    fn batch_reader_matches_rowref_accessors() {
        let seg = seg_of(
            (0..150).map(|i| history_row(i, (i / 40) as u32, i as i64 * 3)),
            TableId::History,
        );
        let batch = ScanBatch::Cols { seg: &seg, lo: 10, len: 120 };
        let mut reader = BatchReader::new(&batch);
        // Ascending walk (the aggregation pattern) plus a backward jump.
        for i in [0usize, 1, 5, 60, 61, 119, 3, 80] {
            let r = batch.row_ref(i);
            assert_eq!(reader.u32(1, i), r.u32(1), "row {i}");
            assert_eq!(reader.money(2, i), r.money(2), "row {i}");
        }
        let rows: Vec<Row> = (0..5).map(|i| history_row(i, i as u32, 7)).collect();
        let batch = ScanBatch::Rows(&rows);
        let mut reader = BatchReader::new(&batch);
        assert_eq!(reader.u32(1, 4), 4);
        assert_eq!(reader.money(2, 0).cents(), 7);
    }
}
