//! The measurement harness: client drivers and per-operating-point runs.
//!
//! A *point* is one `(τ, α)` client configuration (§3.1). The harness
//! spawns τ transactional clients and α analytical clients, runs a warm-up
//! phase followed by a measurement phase (§6.1), and reports hybrid
//! throughput `(tps, qps)` plus the freshness samples collected during
//! measurement. Each client issues one request at a time and waits for the
//! result before the next (§5.3); T and A clients are independent threads,
//! so the engine is free to schedule them as it pleases.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hat_common::clock::BenchClock;
use hat_common::rng::HatRng;
use hat_engine::{HtapEngine, QueryOpts};
use hat_query::ssb;
use parking_lot::Mutex;

use crate::freshness::{score_query, CommitRegistry, FreshnessSample};
use crate::gen::{DataProfile, MAX_TXN_CLIENTS};
use crate::workload::{query_batch, run_transaction, TxnMix, WorkloadState};

/// Phases of a benchmark run.
const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// How a client reacts to retryable failures: capped exponential backoff
/// with full jitter, and a bound on attempts per logical operation.
///
/// The previous driver retried in a hot loop — correct for the pure
/// conflict-abort case the paper measures, but under injected faults
/// (partitions, crashed replicas) it spins at full CPU against a dead
/// service and floods it the instant it heals. Backoff-with-jitter spreads
/// the retry storm; the attempt cap turns an extended outage into an
/// accounted `gave_up` instead of an unbounded stall.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Backoff ceiling for the first retry.
    pub initial_backoff: Duration,
    /// Cap on the exponentially growing ceiling.
    pub max_backoff: Duration,
    /// Attempts per logical operation (1 = no retries).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            max_attempts: 10,
        }
    }
}

impl RetryPolicy {
    /// Full-jitter backoff before retry number `attempt` (1-based):
    /// uniform in `[0, min(max_backoff, initial_backoff * 2^(attempt-1))]`.
    /// Jitter is essential here — synchronized clients that all failed on
    /// the same partition would otherwise retry in lockstep.
    pub fn backoff(&self, attempt: u32, rng: &mut HatRng) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let ceiling = self
            .initial_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.range_u64(0, nanos))
    }
}

/// Harness configuration (§6.1 uses per-SF warm-up/measurement periods;
/// scale these down along with the scale factor).
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    pub warmup: Duration,
    pub measure: Duration,
    /// Base RNG seed; client streams derive from it.
    pub seed: u64,
    /// Reset the database to its initial state before each point (§6.1:
    /// "before each benchmark run we reset the data to their initial
    /// state").
    pub reset_between_points: bool,
    /// Client reaction to retryable failures.
    pub retry: RetryPolicy,
    /// Execution options every analytical client passes to
    /// [`HtapEngine::run_query_opts`] — notably the intra-query morsel
    /// parallelism (`hatcli --a-threads`).
    pub query_opts: QueryOpts,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(400),
            seed: 0x4A77,
            reset_between_points: true,
            retry: RetryPolicy::default(),
            query_opts: QueryOpts::default(),
        }
    }
}

/// Latency summary for one operation label (a transaction type or query).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    pub count: u64,
    pub mean_ms: f64,
    pub p95_ms: f64,
    pub max_ms: f64,
}

impl LatencyStats {
    fn from_nanos(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyStats { count: 0, mean_ms: 0.0, p95_ms: 0.0, max_ms: 0.0 };
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let mean = samples.iter().sum::<u64>() as f64 / count as f64;
        let p95 = samples[((samples.len() - 1) as f64 * 0.95).round() as usize];
        LatencyStats {
            count,
            mean_ms: mean / 1e6,
            p95_ms: p95 as f64 / 1e6,
            max_ms: *samples.last().expect("non-empty") as f64 / 1e6,
        }
    }
}

/// Shared per-label latency collector.
#[derive(Default)]
struct LatencyLog {
    samples: Mutex<HashMap<&'static str, Vec<u64>>>,
}

impl LatencyLog {
    fn record(&self, label: &'static str, nanos: u64) {
        self.samples.lock().entry(label).or_default().push(nanos);
    }

    fn summarize(self) -> Vec<(String, LatencyStats)> {
        let mut out: Vec<(String, LatencyStats)> = self
            .samples
            .into_inner()
            .into_iter()
            .map(|(label, samples)| (label.to_string(), LatencyStats::from_nanos(samples)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// The measured outcome of one `(τ, α)` point.
#[derive(Debug, Clone)]
pub struct PointMeasurement {
    pub t_clients: u32,
    pub a_clients: u32,
    /// Successful transactions per second during the measurement phase.
    pub tps: f64,
    /// Finished analytical queries per second during measurement.
    pub qps: f64,
    pub committed: u64,
    pub queries: u64,
    pub aborts: u64,
    /// Retry attempts issued by transactional clients after retryable
    /// aborts (each is also counted in `aborts`).
    pub retries: u64,
    /// Commits that returned committed-in-doubt (replication timeout): the
    /// work is durable on the primary but the acknowledgment bound was
    /// missed. Not counted in `committed` or `tps`.
    pub timeouts: u64,
    /// Logical transactions abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Analytical query attempts that failed retryably (replica
    /// unavailable / read-index timeout) and were retried or abandoned.
    pub query_retries: u64,
    /// High-water mark of the engine's replication backlog sampled during
    /// the measurement phase (records shipped but not yet applied).
    pub backlog_hwm: u64,
    /// Durability flushes since engine start (real fsyncs in `Fsync`
    /// mode, simulated group-commit flushes in `Sleep` mode).
    pub fsyncs: u64,
    /// Median group-commit batch size (commits per flush).
    pub group_commit_p50: f64,
    /// 99th-percentile group-commit batch size.
    pub group_commit_p99: f64,
    /// Morsels the analytical executor scanned since engine start.
    pub morsels_scanned: u64,
    /// Morsels skipped by zone-map pruning since engine start.
    pub morsels_pruned: u64,
    /// Wall-clock nanoseconds spent in parallel probe phases.
    pub probe_nanos: u64,
    /// Largest worker pool any single query used.
    pub probe_workers: u32,
    /// Aggregate folds clamped at the i64 range instead of wrapping.
    pub agg_saturations: u64,
    /// WAL records replayed at engine start (crash recovery).
    pub recovery_replayed_records: u64,
    /// Torn trailing records truncated at engine start.
    pub torn_tail_truncations: u64,
    /// Freshness scores (seconds) of the queries finished during
    /// measurement.
    pub freshness: Vec<FreshnessSample>,
    /// Actual measurement-phase length.
    pub measured_secs: f64,
    /// Per-transaction-type latency during measurement (§6.1: the
    /// benchmark "extracts also the average response time of each
    /// transaction type and analytical query").
    pub txn_latency: Vec<(String, LatencyStats)>,
    /// Per-query latency during measurement.
    pub query_latency: Vec<(String, LatencyStats)>,
}

impl PointMeasurement {
    /// Averages repeated measurements of the same point (§6.1: "we repeat
    /// the execution of the benchmark three times and report the average
    /// results"). Throughputs are averaged; counters summed; freshness
    /// samples concatenated; latency stats taken from the longest run.
    pub fn average(runs: Vec<PointMeasurement>) -> PointMeasurement {
        assert!(!runs.is_empty(), "need at least one run");
        let n = runs.len() as f64;
        let t_clients = runs[0].t_clients;
        let a_clients = runs[0].a_clients;
        let tps = runs.iter().map(|m| m.tps).sum::<f64>() / n;
        let qps = runs.iter().map(|m| m.qps).sum::<f64>() / n;
        let committed = runs.iter().map(|m| m.committed).sum();
        let queries = runs.iter().map(|m| m.queries).sum();
        let aborts = runs.iter().map(|m| m.aborts).sum();
        let retries = runs.iter().map(|m| m.retries).sum();
        let timeouts = runs.iter().map(|m| m.timeouts).sum();
        let gave_up = runs.iter().map(|m| m.gave_up).sum();
        let query_retries = runs.iter().map(|m| m.query_retries).sum();
        let backlog_hwm = runs.iter().map(|m| m.backlog_hwm).max().unwrap_or(0);
        let fsyncs = runs.iter().map(|m| m.fsyncs).max().unwrap_or(0);
        // Scan counters are cumulative since engine start, like `fsyncs`:
        // the last (largest) snapshot covers all runs.
        let morsels_scanned = runs.iter().map(|m| m.morsels_scanned).max().unwrap_or(0);
        let morsels_pruned = runs.iter().map(|m| m.morsels_pruned).max().unwrap_or(0);
        let probe_nanos = runs.iter().map(|m| m.probe_nanos).max().unwrap_or(0);
        let probe_workers = runs.iter().map(|m| m.probe_workers).max().unwrap_or(0);
        let agg_saturations = runs.iter().map(|m| m.agg_saturations).max().unwrap_or(0);
        let recovery_replayed_records =
            runs.iter().map(|m| m.recovery_replayed_records).max().unwrap_or(0);
        let torn_tail_truncations =
            runs.iter().map(|m| m.torn_tail_truncations).max().unwrap_or(0);
        let measured_secs = runs.iter().map(|m| m.measured_secs).sum();
        let mut freshness = Vec::new();
        let mut best: Option<PointMeasurement> = None;
        for m in runs {
            freshness.extend_from_slice(&m.freshness);
            let better = best
                .as_ref()
                .is_none_or(|b| m.committed + m.queries > b.committed + b.queries);
            if better {
                best = Some(m);
            }
        }
        let best = best.expect("non-empty");
        PointMeasurement {
            t_clients,
            a_clients,
            tps,
            qps,
            committed,
            queries,
            aborts,
            retries,
            timeouts,
            gave_up,
            query_retries,
            backlog_hwm,
            fsyncs,
            group_commit_p50: best.group_commit_p50,
            group_commit_p99: best.group_commit_p99,
            morsels_scanned,
            morsels_pruned,
            probe_nanos,
            probe_workers,
            agg_saturations,
            recovery_replayed_records,
            torn_tail_truncations,
            freshness,
            measured_secs,
            txn_latency: best.txn_latency,
            query_latency: best.query_latency,
        }
    }

    /// An all-zero point (used for the τ=0, α=0 origin).
    pub fn zero(t_clients: u32, a_clients: u32) -> Self {
        PointMeasurement {
            t_clients,
            a_clients,
            tps: 0.0,
            qps: 0.0,
            committed: 0,
            queries: 0,
            aborts: 0,
            retries: 0,
            timeouts: 0,
            gave_up: 0,
            query_retries: 0,
            backlog_hwm: 0,
            fsyncs: 0,
            group_commit_p50: 0.0,
            group_commit_p99: 0.0,
            morsels_scanned: 0,
            morsels_pruned: 0,
            probe_nanos: 0,
            probe_workers: 0,
            agg_saturations: 0,
            recovery_replayed_records: 0,
            torn_tail_truncations: 0,
            freshness: Vec::new(),
            measured_secs: 0.0,
            txn_latency: Vec::new(),
            query_latency: Vec::new(),
        }
    }
}

/// Drives one engine + generated dataset through benchmark points.
pub struct Harness {
    engine: Arc<dyn HtapEngine>,
    profile: DataProfile,
    state: WorkloadState,
    mix: TxnMix,
    config: BenchmarkConfig,
    /// Persistent per-client transaction sequence numbers (survive
    /// non-resetting points; zeroed by reset).
    txnnums: Vec<AtomicU64>,
    points_run: AtomicU64,
}

impl Harness {
    /// Builds a harness over a loaded engine.
    pub fn new(
        engine: Arc<dyn HtapEngine>,
        profile: DataProfile,
        config: BenchmarkConfig,
    ) -> Self {
        let state = WorkloadState::new(&profile);
        Harness {
            engine,
            profile,
            state,
            mix: TxnMix::default(),
            config,
            txnnums: (0..MAX_TXN_CLIENTS).map(|_| AtomicU64::new(0)).collect(),
            points_run: AtomicU64::new(0),
        }
    }

    /// Overrides the transaction mix.
    pub fn with_mix(mut self, mix: TxnMix) -> Self {
        self.mix = mix;
        self
    }

    /// The engine under test.
    pub fn engine(&self) -> &Arc<dyn HtapEngine> {
        &self.engine
    }

    /// The data profile in use.
    pub fn profile(&self) -> &DataProfile {
        &self.profile
    }

    /// The harness configuration.
    pub fn config(&self) -> &BenchmarkConfig {
        &self.config
    }

    fn reset(&self) -> hat_common::Result<()> {
        self.engine.reset()?;
        self.state.reset();
        for n in &self.txnnums {
            n.store(0, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Measures one `(τ, α)` point `repeats` times and averages, as the
    /// paper does (three repetitions per configuration, §6.1).
    pub fn run_point_avg(
        &self,
        t_clients: u32,
        a_clients: u32,
        repeats: u32,
    ) -> PointMeasurement {
        let runs: Vec<PointMeasurement> = (0..repeats.max(1))
            .map(|_| self.run_point(t_clients, a_clients))
            .collect();
        PointMeasurement::average(runs)
    }

    /// Measures one `(τ, α)` point.
    ///
    /// Panics if `t_clients` exceeds [`MAX_TXN_CLIENTS`] (the FRESHNESS
    /// table is pre-sized).
    pub fn run_point(&self, t_clients: u32, a_clients: u32) -> PointMeasurement {
        assert!(
            t_clients <= MAX_TXN_CLIENTS,
            "at most {MAX_TXN_CLIENTS} transactional clients"
        );
        if t_clients == 0 && a_clients == 0 {
            return PointMeasurement::zero(0, 0);
        }
        if self.config.reset_between_points {
            self.reset().expect("engine reset failed");
        }
        let point_idx = self.points_run.fetch_add(1, Ordering::Relaxed);

        let clock = BenchClock::global();
        let phase = AtomicU8::new(PHASE_WARMUP);
        let stop = AtomicBool::new(false);
        let committed = AtomicU64::new(0);
        let queries = AtomicU64::new(0);
        let aborts = AtomicU64::new(0);
        let retries = AtomicU64::new(0);
        let timeouts = AtomicU64::new(0);
        let gave_up = AtomicU64::new(0);
        let query_retries = AtomicU64::new(0);
        let freshness: Mutex<Vec<FreshnessSample>> = Mutex::new(Vec::new());
        let txn_latency = LatencyLog::default();
        let query_latency = LatencyLog::default();
        let bases: Vec<u64> = self
            .txnnums
            .iter()
            .map(|n| n.load(Ordering::Relaxed) + 1)
            .collect();
        let registry = CommitRegistry::new(&bases);

        let backlog_hwm = std::thread::scope(|scope| {
            // Transactional clients.
            for client in 0..t_clients {
                let engine = &*self.engine;
                let profile = &self.profile;
                let state = &self.state;
                let mix = self.mix;
                let seed = self.config.seed;
                let phase = &phase;
                let stop = &stop;
                let committed = &committed;
                let aborts = &aborts;
                let retries = &retries;
                let timeouts = &timeouts;
                let gave_up = &gave_up;
                let retry = &self.config.retry;
                let registry = &registry;
                let txn_latency = &txn_latency;
                let txnnum_slot = &self.txnnums[client as usize];
                scope.spawn(move || {
                    let mut rng =
                        HatRng::derive(seed, (point_idx << 16) | client as u64 | 0x7000);
                    // The current logical transaction: retries keep the
                    // same kind (parameters are re-drawn, as the paper's
                    // driver does) and the same freshness sequence number.
                    let mut kind = mix.draw(&mut rng);
                    let mut attempt: u32 = 1;
                    while !stop.load(Ordering::Relaxed) {
                        let txnnum = txnnum_slot.load(Ordering::Relaxed) + 1;
                        let begin = clock.now();
                        let measuring =
                            || phase.load(Ordering::Relaxed) == PHASE_MEASURE;
                        match run_transaction(
                            engine, profile, state, &mut rng, kind, client, txnnum,
                        ) {
                            Ok(_ts) => {
                                // Client-side commit time (§4.2: "the time
                                // when the transaction result is returned
                                // to a client").
                                let done = clock.now();
                                registry.record(client, txnnum, done);
                                txnnum_slot.store(txnnum, Ordering::Relaxed);
                                if measuring() {
                                    committed.fetch_add(1, Ordering::Relaxed);
                                    txn_latency.record(kind.label(), done - begin);
                                }
                                kind = mix.draw(&mut rng);
                                attempt = 1;
                            }
                            Err(e) if e.is_commit_in_doubt() => {
                                // The commit installed durably on the
                                // primary; only the replication ack timed
                                // out. Record it for freshness density
                                // (the sequence number is consumed) but
                                // keep it out of `committed`/tps, and
                                // never re-execute it.
                                let done = clock.now();
                                registry.record(client, txnnum, done);
                                txnnum_slot.store(txnnum, Ordering::Relaxed);
                                if measuring() {
                                    timeouts.fetch_add(1, Ordering::Relaxed);
                                }
                                kind = mix.draw(&mut rng);
                                attempt = 1;
                            }
                            Err(e) if e.is_retryable() => {
                                if measuring() {
                                    aborts.fetch_add(1, Ordering::Relaxed);
                                }
                                if attempt >= retry.max_attempts {
                                    if measuring() {
                                        gave_up.fetch_add(1, Ordering::Relaxed);
                                    }
                                    kind = mix.draw(&mut rng);
                                    attempt = 1;
                                } else {
                                    if measuring() {
                                        retries.fetch_add(1, Ordering::Relaxed);
                                    }
                                    let pause = retry.backoff(attempt, &mut rng);
                                    attempt += 1;
                                    std::thread::sleep(pause);
                                }
                            }
                            Err(e) => panic!("transactional client {client}: {e}"),
                        }
                    }
                });
            }

            // Analytical clients.
            for client in 0..a_clients {
                let engine = &*self.engine;
                let seed = self.config.seed;
                let phase = &phase;
                let stop = &stop;
                let queries = &queries;
                let query_retries = &query_retries;
                let retry = &self.config.retry;
                let query_opts = &self.config.query_opts;
                let freshness = &freshness;
                let registry = &registry;
                let query_latency = &query_latency;
                scope.spawn(move || {
                    let mut rng =
                        HatRng::derive(seed, (point_idx << 16) | client as u64 | 0xA000);
                    'outer: loop {
                        // §5.3: batches of all 13 queries, randomly
                        // permuted, back to back.
                        for qid in query_batch(&mut rng) {
                            if stop.load(Ordering::Relaxed) {
                                break 'outer;
                            }
                            let spec = ssb::query(qid);
                            let mut attempt: u32 = 1;
                            loop {
                                let start = clock.now();
                                match engine.run_query_opts(&spec, query_opts) {
                                    Ok(out) => {
                                        let done = clock.now();
                                        let score =
                                            score_query(start, &out.freshness, registry);
                                        if phase.load(Ordering::Relaxed) == PHASE_MEASURE
                                        {
                                            queries.fetch_add(1, Ordering::Relaxed);
                                            freshness.lock().push(score);
                                            query_latency
                                                .record(qid.label(), done - start);
                                        }
                                        break;
                                    }
                                    // The replica/learner serving this
                                    // query is down or its read-index wait
                                    // timed out: back off and retry, then
                                    // move on to the next query in the
                                    // batch once the budget is spent.
                                    Err(e) if e.is_retryable() => {
                                        if phase.load(Ordering::Relaxed) == PHASE_MEASURE
                                        {
                                            query_retries.fetch_add(1, Ordering::Relaxed);
                                        }
                                        if attempt >= retry.max_attempts
                                            || stop.load(Ordering::Relaxed)
                                        {
                                            break;
                                        }
                                        let pause = retry.backoff(attempt, &mut rng);
                                        attempt += 1;
                                        std::thread::sleep(pause);
                                    }
                                    Err(e) => panic!("analytical client {client}: {e}"),
                                }
                            }
                        }
                    }
                });
            }

            // Coordinator: warm up, then sample the replication backlog
            // while the measurement phase elapses, then stop.
            std::thread::sleep(self.config.warmup);
            phase.store(PHASE_MEASURE, Ordering::Relaxed);
            let deadline = Instant::now() + self.config.measure;
            let mut hwm = self.engine.stats().replication_backlog;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
                hwm = hwm.max(self.engine.stats().replication_backlog);
            }
            phase.store(PHASE_DONE, Ordering::Relaxed);
            stop.store(true, Ordering::Relaxed);
            // Scope joins all clients here.
            hwm
        });

        let elapsed = self.config.measure.as_secs_f64();
        let committed = committed.load(Ordering::Relaxed);
        let queries = queries.load(Ordering::Relaxed);
        // Durability counters are cumulative since engine start; report
        // the post-measurement snapshot.
        let dstats = self.engine.stats();
        PointMeasurement {
            t_clients,
            a_clients,
            tps: committed as f64 / elapsed,
            qps: queries as f64 / elapsed,
            committed,
            queries,
            aborts: aborts.load(Ordering::Relaxed),
            retries: retries.load(Ordering::Relaxed),
            timeouts: timeouts.load(Ordering::Relaxed),
            gave_up: gave_up.load(Ordering::Relaxed),
            query_retries: query_retries.load(Ordering::Relaxed),
            backlog_hwm,
            fsyncs: dstats.fsyncs,
            group_commit_p50: dstats.group_commit_p50,
            group_commit_p99: dstats.group_commit_p99,
            morsels_scanned: dstats.morsels_scanned,
            morsels_pruned: dstats.morsels_pruned,
            probe_nanos: dstats.probe_nanos,
            probe_workers: dstats.probe_workers_max,
            agg_saturations: dstats.agg_saturations,
            recovery_replayed_records: dstats.recovery_replayed_records,
            torn_tail_truncations: dstats.torn_tail_truncations,
            freshness: freshness.into_inner(),
            measured_secs: elapsed,
            txn_latency: txn_latency.summarize(),
            query_latency: query_latency.summarize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, ScaleFactor};
    use hat_engine::{EngineConfig, ShdEngine};

    fn tiny_harness() -> Harness {
        let data = generate(ScaleFactor(0.0008), 21);
        let engine = ShdEngine::new(EngineConfig::default());
        data.load_into(&engine).unwrap();
        Harness::new(
            Arc::new(engine),
            data.profile.clone(),
            BenchmarkConfig {
                warmup: Duration::from_millis(30),
                measure: Duration::from_millis(120),
                seed: 99,
                reset_between_points: true,
                ..BenchmarkConfig::default()
            },
        )
    }

    #[test]
    fn pure_txn_point_produces_throughput() {
        let h = tiny_harness();
        let m = h.run_point(2, 0);
        assert!(m.tps > 0.0, "committed {} in {}s", m.committed, m.measured_secs);
        assert_eq!(m.qps, 0.0);
        assert_eq!(m.t_clients, 2);
        assert!(m.freshness.is_empty());
    }

    #[test]
    fn pure_analytic_point_produces_queries() {
        let h = tiny_harness();
        let m = h.run_point(0, 2);
        assert!(m.qps > 0.0, "{} queries", m.queries);
        assert_eq!(m.tps, 0.0);
    }

    #[test]
    fn mixed_point_measures_both_and_scores_freshness() {
        let h = tiny_harness();
        let m = h.run_point(2, 1);
        assert!(m.tps > 0.0);
        assert!(m.qps > 0.0);
        assert_eq!(m.freshness.len() as u64, m.queries);
        // Shared engine: freshness must be (essentially) zero.
        let agg = crate::freshness::FreshnessAgg::from_samples(&m.freshness);
        assert!(agg.p99 < 0.005, "shared design is fresh, saw p99={}", agg.p99);
    }

    #[test]
    fn latency_stats_collected_per_label() {
        let h = tiny_harness();
        let m = h.run_point(2, 1);
        assert!(!m.txn_latency.is_empty(), "txn latencies recorded");
        assert!(!m.query_latency.is_empty(), "query latencies recorded");
        let total: u64 = m.txn_latency.iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, m.committed);
        let qtotal: u64 = m.query_latency.iter().map(|(_, s)| s.count).sum();
        assert_eq!(qtotal, m.queries);
        for (label, stats) in m.txn_latency.iter().chain(&m.query_latency) {
            assert!(stats.mean_ms > 0.0, "{label}");
            assert!(stats.p95_ms >= stats.mean_ms * 0.1, "{label}");
            assert!(stats.max_ms >= stats.p95_ms, "{label}");
        }
    }

    #[test]
    fn averaging_repeated_points() {
        let h = tiny_harness();
        let avg = h.run_point_avg(1, 1, 2);
        assert!(avg.tps > 0.0);
        assert_eq!(avg.freshness.len() as u64, avg.queries, "samples concatenated");
        // Synthetic check of the math.
        let mut a = PointMeasurement::zero(1, 0);
        a.tps = 10.0;
        a.committed = 10;
        let mut b = PointMeasurement::zero(1, 0);
        b.tps = 20.0;
        b.committed = 20;
        let m = PointMeasurement::average(vec![a, b]);
        assert_eq!(m.tps, 15.0);
        assert_eq!(m.committed, 30);
    }

    #[test]
    fn origin_point_is_zero() {
        let h = tiny_harness();
        let m = h.run_point(0, 0);
        assert_eq!(m.tps, 0.0);
        assert_eq!(m.qps, 0.0);
    }

    #[test]
    fn reset_between_points_keeps_results_stable() {
        let h = tiny_harness();
        let a = h.run_point(1, 0);
        let b = h.run_point(1, 0);
        assert!(a.tps > 0.0 && b.tps > 0.0);
        // Same initial state both times: throughputs within 5x of each
        // other (loose CI-safe check; the point is no systematic collapse
        // from unreset growth).
        let ratio = a.tps.max(b.tps) / a.tps.min(b.tps);
        assert!(ratio < 5.0, "tps {} vs {}", a.tps, b.tps);
    }
}
