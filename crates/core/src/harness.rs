//! The measurement harness: client drivers and per-operating-point runs.
//!
//! A *point* is one `(τ, α)` client configuration (§3.1). The harness
//! spawns τ transactional clients and α analytical clients, runs a warm-up
//! phase followed by a measurement phase (§6.1), and reports hybrid
//! throughput `(tps, qps)` plus the freshness samples collected during
//! measurement. Each client issues one request at a time and waits for the
//! result before the next (§5.3); T and A clients are independent threads,
//! so the engine is free to schedule them as it pleases.
//!
//! Telemetry: the coordinator samples [`HtapEngine::metrics`] on a fixed
//! cadence through both phases, producing a per-run time series
//! ([`TimeSeriesSample`]) alongside the end-of-run snapshots. A
//! [`PointMeasurement`] carries two [`MetricsSnapshot`]s — the
//! measurement-window diff plus the cumulative post-run state — and every
//! counter the old struct exposed as a field is now a derived accessor
//! over those snapshots.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hat_common::clock::BenchClock;
use hat_common::rng::HatRng;
use hat_common::telemetry::{names, Histogram, HistogramSnapshot, MetricsSnapshot};
use hat_engine::{CoreBudget, HtapEngine, QueryOpts};
use hat_query::spec::QueryId;
use hat_query::ssb;
use parking_lot::{Condvar, Mutex};

use crate::freshness::{score_query, CommitRegistry, FreshnessSample};
use crate::gen::{DataProfile, MAX_TXN_CLIENTS};
use crate::openloop::{arrival_schedule, OpenLoopConfig, OpenLoopTick};
use crate::sched::{split_changes, ElasticController, SchedDecision, SchedPolicy, SchedSignal};
use crate::workload::{query_batch, run_transaction, TxnKind, TxnMix, WorkloadState};

/// Phases of a benchmark run.
const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// How a client reacts to retryable failures: capped exponential backoff
/// with full jitter, and a bound on attempts per logical operation.
///
/// The previous driver retried in a hot loop — correct for the pure
/// conflict-abort case the paper measures, but under injected faults
/// (partitions, crashed replicas) it spins at full CPU against a dead
/// service and floods it the instant it heals. Backoff-with-jitter spreads
/// the retry storm; the attempt cap turns an extended outage into an
/// accounted `gave_up` instead of an unbounded stall.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Backoff ceiling for the first retry.
    pub initial_backoff: Duration,
    /// Cap on the exponentially growing ceiling.
    pub max_backoff: Duration,
    /// Attempts per logical operation (1 = no retries).
    pub max_attempts: u32,
    /// Optional *shared* retry budget across every client of a run.
    /// Backoff and the attempt cap bound each client individually, but
    /// under overload every client fails at once and the aggregate retry
    /// stream alone can exceed capacity — the metastable failure mode,
    /// where the system stays collapsed after the original burst ends
    /// because its own retries sustain the overload. The budget bounds
    /// the aggregate: retries spend tokens, only in-deadline successes
    /// earn them back, so a failing system converges to give-ups instead
    /// of a self-sustaining retry storm. `None` (default) keeps the
    /// pre-existing unbudgeted behavior.
    pub budget: Option<RetryBudgetConfig>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            max_attempts: 10,
            budget: None,
        }
    }
}

/// Parameters of the shared [`RetryBudget`] token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Bucket capacity in whole retry tokens (also the initial fill) —
    /// the burst of retries the run may spend before earning more.
    pub cap: u32,
    /// Tokens refunded per successful in-deadline operation. `0.1` means
    /// sustained retries may be at most ~10% of sustained goodput — a
    /// healthy system never notices the budget, a collapsed one runs dry
    /// almost immediately.
    pub refill_per_success: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig { cap: 100, refill_per_success: 0.1 }
    }
}

/// Shared token bucket bounding a run's aggregate retries (lock-free;
/// tokens kept in milli-token fixed point so fractional refill ratios
/// accumulate exactly).
#[derive(Debug)]
pub struct RetryBudget {
    millitokens: AtomicU64,
    cap_milli: u64,
    refill_milli: u64,
}

impl RetryBudget {
    const MILLI: u64 = 1000;

    pub fn new(config: RetryBudgetConfig) -> Self {
        let cap_milli = u64::from(config.cap) * Self::MILLI;
        RetryBudget {
            millitokens: AtomicU64::new(cap_milli),
            cap_milli,
            refill_milli: (config.refill_per_success.max(0.0) * Self::MILLI as f64) as u64,
        }
    }

    /// Spends one retry token; `false` means the budget is exhausted and
    /// the caller must give up instead of retrying.
    pub fn try_spend(&self) -> bool {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            if cur < Self::MILLI {
                return false;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                cur - Self::MILLI,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Refunds the per-success ratio, saturating at the cap.
    pub fn on_success(&self) {
        if self.refill_milli == 0 {
            return;
        }
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            let next = (cur + self.refill_milli).min(self.cap_milli);
            if next == cur {
                return;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u64 {
        self.millitokens.load(Ordering::Relaxed) / Self::MILLI
    }
}

impl RetryPolicy {
    /// Full-jitter backoff before retry number `attempt` (1-based):
    /// uniform in `[0, min(max_backoff, initial_backoff * 2^(attempt-1))]`.
    /// Jitter is essential here — synchronized clients that all failed on
    /// the same partition would otherwise retry in lockstep.
    pub fn backoff(&self, attempt: u32, rng: &mut HatRng) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let ceiling = self
            .initial_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.range_u64(0, nanos))
    }
}

/// Harness configuration (§6.1 uses per-SF warm-up/measurement periods;
/// scale these down along with the scale factor).
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    pub warmup: Duration,
    pub measure: Duration,
    /// Base RNG seed; client streams derive from it.
    pub seed: u64,
    /// Reset the database to its initial state before each point (§6.1:
    /// "before each benchmark run we reset the data to their initial
    /// state").
    pub reset_between_points: bool,
    /// Client reaction to retryable failures.
    pub retry: RetryPolicy,
    /// Execution options every analytical client passes to
    /// [`HtapEngine::query`] — notably the intra-query morsel
    /// parallelism (`hatcli --a-threads`).
    pub query_opts: QueryOpts,
    /// Cadence of the coordinator's engine-metrics samples (the time
    /// series in every [`PointMeasurement`]). Clamped so the measurement
    /// phase always yields at least five samples.
    pub sample_every: Duration,
    /// Commit-shard count of the engine under test (`hatcli --shards`).
    /// Shard layout is fixed at engine construction, so this is the
    /// harness's record of the knob — it annotates run artifacts and the
    /// shard-sweep report rather than re-sharding the engine.
    pub shards: u32,
    /// Core-assignment policy (`hatcli --sched`). `Static` reproduces
    /// the paper's fixed-split measurement; `Elastic` engages the
    /// tick-granular controller of [`crate::sched`], which resizes the
    /// analytical worker cap and the engine's transactional admission
    /// bounds (and, in open-loop runs, parks/unparks T workers).
    pub sched: SchedPolicy,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(400),
            seed: 0x4A77,
            reset_between_points: true,
            retry: RetryPolicy::default(),
            query_opts: QueryOpts::default(),
            sample_every: Duration::from_millis(5),
            shards: 1,
            sched: SchedPolicy::Static,
        }
    }
}

/// Latency summary for one operation label (a transaction type or query).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    pub count: u64,
    pub mean_ms: f64,
    pub p95_ms: f64,
    pub max_ms: f64,
}

impl LatencyStats {
    /// Summarizes a latency histogram (nanosecond values) into
    /// milliseconds. The p95 is the bucket upper bound, clamped to the
    /// observed maximum — at most one log-linear bucket width (6.25%)
    /// above the true quantile.
    pub fn from_hist(h: &HistogramSnapshot) -> Self {
        if h.is_empty() {
            return LatencyStats { count: 0, mean_ms: 0.0, p95_ms: 0.0, max_ms: 0.0 };
        }
        LatencyStats {
            count: h.count,
            mean_ms: h.mean() / 1e6,
            p95_ms: h.quantile(0.95) as f64 / 1e6,
            max_ms: h.max as f64 / 1e6,
        }
    }
}

/// Pre-registered per-label latency histograms.
///
/// `record` is a linear scan over a handful of static labels plus an
/// atomic bucket increment — no lock, no allocation — so it sits directly
/// on the client loops without perturbing the latencies it measures.
struct LatencyHists {
    entries: Vec<(&'static str, Histogram)>,
}

impl LatencyHists {
    fn new(labels: impl IntoIterator<Item = &'static str>) -> Self {
        LatencyHists {
            entries: labels.into_iter().map(|l| (l, Histogram::new())).collect(),
        }
    }

    fn record(&self, label: &str, nanos: u64) {
        if let Some((_, h)) = self.entries.iter().find(|(l, _)| *l == label) {
            h.record(nanos);
        }
    }

    /// Installs the non-empty label histograms into `snap` under `prefix`.
    fn install(&self, snap: &mut MetricsSnapshot, prefix: &str) {
        for (label, h) in &self.entries {
            let s = h.snapshot();
            if !s.is_empty() {
                snap.set_histogram(&format!("{prefix}{label}"), s);
            }
        }
    }
}

/// Phase a time-series sample was taken in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplePhase {
    Warmup,
    Measure,
}

impl SamplePhase {
    pub fn label(self) -> &'static str {
        match self {
            SamplePhase::Warmup => "warmup",
            SamplePhase::Measure => "measure",
        }
    }

    pub fn from_label(s: &str) -> Option<SamplePhase> {
        match s {
            "warmup" => Some(SamplePhase::Warmup),
            "measure" => Some(SamplePhase::Measure),
            _ => None,
        }
    }
}

/// One fixed-cadence sample of engine state during a run. The paper's
/// §6.2 figures plot throughput and freshness *over time*; this is the
/// raw series behind such plots, taken through warmup and measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSample {
    /// Seconds since this run's clients started (warmup included).
    pub t_secs: f64,
    pub phase: SamplePhase,
    /// Which repetition of the point the sample came from (0-based; set
    /// by [`PointMeasurement::average`]).
    pub run: u32,
    /// Engine-side commit rate over the sampling interval. Includes
    /// warmup and in-doubt commits, unlike the harness-side `tps` which
    /// counts only acknowledged measurement-phase commits.
    pub tps: f64,
    /// Engine-side query completion rate over the sampling interval.
    pub qps: f64,
    /// Replication backlog gauge at sample time (records shipped but not
    /// yet applied).
    pub backlog: u64,
    /// Columnar delta rows awaiting merge at sample time.
    pub delta_rows: u64,
    /// MVCC versions alive across the engine's row stores at sample
    /// time. A healthy vacuum makes this plateau under a write-heavy
    /// mix; without it the series grows without bound.
    pub live_versions: u64,
    /// Mean freshness score (seconds) of the queries that finished in
    /// this interval; `0.0` when none finished.
    pub freshness_lag: f64,
    /// Storage-health gauge at sample time: 0 Healthy, 1 Degraded,
    /// 2 Recovering. A chaos run shows this step up and back down as the
    /// scrubber re-admits the device.
    pub health: u64,
    /// Commits shed for *storage* reasons during the sampling interval:
    /// a degraded/quarantined WAL, a full group-commit backlog, or the
    /// admission circuit breaker tripping on off-Healthy health.
    pub shed: u64,
    /// Requests shed for *overload* reasons during the interval: queue
    /// sojourn over the deadline budget, bounded-queue overflow, or the
    /// engine's admission gate. Disjoint from `shed` by construction, so
    /// "disk unhappy" and "traffic too high" chart separately.
    pub shed_overload: u64,
    /// Offered load during the interval: requests that reached an
    /// admission gate (closed-loop runs) or that the arrival schedule
    /// generated (open-loop runs). In a closed-loop run this tracks the
    /// completion rate; in an open-loop run it is the independent
    /// variable and may exceed it arbitrarily.
    pub offered: u64,
    /// Transactional cores held at the sample under the elastic
    /// scheduler (the artifact's per-tick allocation trace, schema v6).
    /// Zero in static runs — the split is whatever the client counts
    /// say, and no controller is in the loop.
    pub t_cores: u32,
    /// Analytical cores held at the sample under the elastic scheduler;
    /// zero in static runs.
    pub a_cores: u32,
}

/// The measured outcome of one `(τ, α)` point.
///
/// Counters live in two [`MetricsSnapshot`]s rather than hand-copied
/// fields: `metrics` is the measurement window (engine deltas + harness
/// client counters + latency histograms), `metrics_end` the cumulative
/// engine state after the run. The old struct fields survive as derived
/// accessors ([`PointMeasurement::committed`] etc.), so consumers read
/// the same numbers through one schema that also serializes into the run
/// artifact.
#[derive(Debug, Clone)]
pub struct PointMeasurement {
    pub t_clients: u32,
    pub a_clients: u32,
    /// Successful transactions per second during the measurement phase.
    pub tps: f64,
    /// Finished analytical queries per second during measurement.
    pub qps: f64,
    /// Measurement-window metrics: engine-counter diffs across the
    /// measurement phase, `harness.*` client counters, and
    /// `latency.txn.*` / `latency.query.*` histograms.
    pub metrics: MetricsSnapshot,
    /// Cumulative engine snapshot taken after the run — for counters
    /// meaningful since engine start (WAL recovery, fsyncs, scans).
    pub metrics_end: MetricsSnapshot,
    /// Fixed-cadence engine samples through warmup and measurement.
    pub timeseries: Vec<TimeSeriesSample>,
    /// Freshness scores (seconds) of the queries finished during
    /// measurement.
    pub freshness: Vec<FreshnessSample>,
    /// Actual measurement-phase length (summed across averaged runs).
    pub measured_secs: f64,
}

impl PointMeasurement {
    /// Acknowledged commits during measurement.
    pub fn committed(&self) -> u64 {
        self.metrics.counter(names::HARNESS_COMMITTED)
    }

    /// Analytical queries finished during measurement.
    pub fn queries(&self) -> u64 {
        self.metrics.counter(names::HARNESS_QUERIES)
    }

    /// Retryable aborts observed during measurement.
    pub fn aborts(&self) -> u64 {
        self.metrics.counter(names::HARNESS_ABORTS)
    }

    /// Retry attempts issued by transactional clients after retryable
    /// aborts (each is also counted in [`Self::aborts`]).
    pub fn retries(&self) -> u64 {
        self.metrics.counter(names::HARNESS_RETRIES)
    }

    /// Commits that returned committed-in-doubt (replication timeout):
    /// durable on the primary but the acknowledgment bound was missed.
    /// Not counted in [`Self::committed`] or `tps`.
    pub fn timeouts(&self) -> u64 {
        self.metrics.counter(names::HARNESS_TIMEOUTS)
    }

    /// Logical transactions abandoned after exhausting the retry budget.
    pub fn gave_up(&self) -> u64 {
        self.metrics.counter(names::HARNESS_GAVE_UP)
    }

    /// Analytical query attempts that failed retryably (replica
    /// unavailable / read-index timeout).
    pub fn query_retries(&self) -> u64 {
        self.metrics.counter(names::HARNESS_QUERY_RETRIES)
    }

    /// High-water mark of the replication backlog sampled during the run.
    pub fn backlog_hwm(&self) -> u64 {
        self.metrics.gauge(names::HARNESS_BACKLOG_HWM)
    }

    /// Durability flushes since engine start (real fsyncs in `Fsync`
    /// mode, simulated group-commit flushes in `Sleep` mode).
    pub fn fsyncs(&self) -> u64 {
        self.metrics_end.counter(names::WAL_FSYNCS)
    }

    /// Median group-commit batch size (commits per flush).
    pub fn group_commit_p50(&self) -> f64 {
        self.metrics_end
            .histogram(names::WAL_GROUP_COMMIT_BATCH)
            .map_or(0.0, |h| h.quantile(0.50) as f64)
    }

    /// 99th-percentile group-commit batch size.
    pub fn group_commit_p99(&self) -> f64 {
        self.metrics_end
            .histogram(names::WAL_GROUP_COMMIT_BATCH)
            .map_or(0.0, |h| h.quantile(0.99) as f64)
    }

    /// Morsels the analytical executor scanned since engine start.
    pub fn morsels_scanned(&self) -> u64 {
        self.metrics_end.counter(names::MORSELS_SCANNED)
    }

    /// Morsels skipped by zone-map pruning since engine start.
    pub fn morsels_pruned(&self) -> u64 {
        self.metrics_end.counter(names::MORSELS_PRUNED)
    }

    /// Wall-clock nanoseconds spent in parallel probe phases.
    pub fn probe_nanos(&self) -> u64 {
        self.metrics_end.counter(names::PROBE_NANOS)
    }

    /// Largest worker pool any single query used.
    pub fn probe_workers(&self) -> u32 {
        self.metrics_end.gauge(names::PROBE_WORKERS_MAX) as u32
    }

    /// Aggregate folds clamped at the i64 range instead of wrapping.
    pub fn agg_saturations(&self) -> u64 {
        self.metrics_end.counter(names::AGG_SATURATIONS)
    }

    /// WAL records replayed at engine start (crash recovery).
    pub fn recovery_replayed_records(&self) -> u64 {
        self.metrics_end.counter(names::WAL_RECOVERY_REPLAYED)
    }

    /// Background MVCC vacuum passes since engine start.
    pub fn vacuum_passes(&self) -> u64 {
        self.metrics_end.counter(names::VACUUM_PASSES)
    }

    /// Superseded row versions reclaimed by vacuum since engine start.
    pub fn versions_pruned(&self) -> u64 {
        self.metrics_end.counter(names::VACUUM_VERSIONS_PRUNED)
    }

    /// MVCC versions alive at the end of the run.
    pub fn live_versions(&self) -> u64 {
        self.metrics_end.gauge(names::LIVE_VERSIONS)
    }

    /// Torn trailing records truncated at engine start.
    pub fn torn_tail_truncations(&self) -> u64 {
        self.metrics_end.counter(names::WAL_TORN_TAILS)
    }

    /// Per-transaction-type latency during measurement (§6.1: the
    /// benchmark "extracts also the average response time of each
    /// transaction type and analytical query").
    pub fn txn_latency(&self) -> Vec<(String, LatencyStats)> {
        self.latency_with_prefix(names::LATENCY_TXN_PREFIX)
    }

    /// Per-query latency during measurement.
    pub fn query_latency(&self) -> Vec<(String, LatencyStats)> {
        self.latency_with_prefix(names::LATENCY_QUERY_PREFIX)
    }

    fn latency_with_prefix(&self, prefix: &str) -> Vec<(String, LatencyStats)> {
        self.metrics
            .histograms_with_prefix(prefix)
            .map(|(label, h)| (label.to_string(), LatencyStats::from_hist(h)))
            .collect()
    }

    /// Averages repeated measurements of the same point (§6.1: "we repeat
    /// the execution of the benchmark three times and report the average
    /// results"). Throughputs are averaged; window counters and latency
    /// histograms merge exactly (bucket-wise addition), so the reported
    /// latency distribution covers *every* run — the old code took the
    /// stats of the single busiest run. Freshness samples and time series
    /// are concatenated (samples tagged with their run index); the
    /// cumulative end snapshot of the final run covers all runs.
    pub fn average(runs: Vec<PointMeasurement>) -> PointMeasurement {
        assert!(!runs.is_empty(), "need at least one run");
        let n = runs.len() as f64;
        let t_clients = runs[0].t_clients;
        let a_clients = runs[0].a_clients;
        let tps = runs.iter().map(|m| m.tps).sum::<f64>() / n;
        let qps = runs.iter().map(|m| m.qps).sum::<f64>() / n;
        let measured_secs = runs.iter().map(|m| m.measured_secs).sum();
        let mut metrics = runs[0].metrics.clone();
        for m in &runs[1..] {
            metrics = metrics.merge(&m.metrics);
        }
        let metrics_end = runs.last().expect("non-empty").metrics_end.clone();
        let mut freshness = Vec::new();
        let mut timeseries = Vec::new();
        for (run, m) in runs.into_iter().enumerate() {
            freshness.extend_from_slice(&m.freshness);
            timeseries.extend(m.timeseries.into_iter().map(|mut s| {
                s.run = run as u32;
                s
            }));
        }
        PointMeasurement {
            t_clients,
            a_clients,
            tps,
            qps,
            metrics,
            metrics_end,
            timeseries,
            freshness,
            measured_secs,
        }
    }

    /// An all-zero point (used for the τ=0, α=0 origin).
    pub fn zero(t_clients: u32, a_clients: u32) -> Self {
        PointMeasurement {
            t_clients,
            a_clients,
            tps: 0.0,
            qps: 0.0,
            metrics: MetricsSnapshot::new(),
            metrics_end: MetricsSnapshot::new(),
            timeseries: Vec::new(),
            freshness: Vec::new(),
            measured_secs: 0.0,
        }
    }
}

/// The measured outcome of one open-loop overload run.
///
/// `point` reuses the closed-loop [`PointMeasurement`] schema — its
/// window metrics carry the `openloop.*` counters and the sojourn
/// histogram, its time series has one sample per tick — so artifacts,
/// reports, and plots consume open-loop runs through the exact same
/// pipeline. `ticks` is the raw per-tick outcome series behind that, and
/// `sojourn` the enqueue-to-completion distribution of every request
/// that actually executed.
#[derive(Debug, Clone)]
pub struct OpenLoopMeasurement {
    pub point: PointMeasurement,
    pub ticks: Vec<OpenLoopTick>,
    /// Enqueue-to-completion nanoseconds of executed requests.
    pub sojourn: HistogramSnapshot,
    /// The elastic controller's per-tick allocation trace (one decision
    /// per tick, `decisions[k].tick == k`). Empty for static runs.
    pub decisions: Vec<SchedDecision>,
}

impl OpenLoopMeasurement {
    fn total(&self, f: impl Fn(&OpenLoopTick) -> u64) -> u64 {
        self.ticks.iter().map(f).sum()
    }

    /// Arrivals the schedule generated (the independent variable).
    pub fn offered(&self) -> u64 {
        self.total(|t| t.offered)
    }

    /// Requests that finished executing (in or out of deadline).
    pub fn completed(&self) -> u64 {
        self.total(|t| t.completed)
    }

    /// Completions within deadline — the number that matters under
    /// overload.
    pub fn goodput(&self) -> u64 {
        self.total(|t| t.goodput)
    }

    /// Completions past their deadline (work done, client gone).
    pub fn deadline_missed(&self) -> u64 {
        self.total(|t| t.deadline_missed)
    }

    /// Sheds for traffic reasons: queue overflow, stale sojourn, or the
    /// engine's admission gate.
    pub fn shed_overload(&self) -> u64 {
        self.total(|t| t.shed_overload())
    }

    /// Sheds attributed to storage degradation.
    pub fn shed_degraded(&self) -> u64 {
        self.total(|t| t.shed_degraded)
    }

    /// Retry attempts re-enqueued.
    pub fn retries(&self) -> u64 {
        self.total(|t| t.retries)
    }

    /// Retries denied by the shared retry budget.
    pub fn retry_denied(&self) -> u64 {
        self.total(|t| t.retry_denied)
    }

    /// Logical requests abandoned.
    pub fn gave_up(&self) -> u64 {
        self.total(|t| t.gave_up)
    }

    /// Fraction of offered load that became goodput.
    pub fn goodput_ratio(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 0.0;
        }
        self.goodput() as f64 / offered as f64
    }

    /// Analytical queries the elastic A-side driver completed (0 in
    /// static runs, which have no A side).
    pub fn a_queries(&self) -> u64 {
        self.point.metrics.counter(names::SCHED_A_QUERIES)
    }

    /// Split changes the elastic controller made across the run.
    pub fn reassignments(&self) -> u64 {
        self.point.metrics.counter(names::SCHED_REASSIGNMENTS)
    }
}

/// One queued open-loop request. `enq` is re-stamped on retry — the
/// virtual client that retries is issuing a *new* request with a fresh
/// deadline budget; `attempt` is what persists across the logical
/// operation.
#[derive(Clone, Copy)]
struct OpenRequest {
    enq: Instant,
    attempt: u32,
    kind: TxnKind,
}

/// Per-tick atomic outcome counters (workers race on them freely; the
/// relaxed ordering is fine because the scope join is the only reader
/// barrier that matters).
#[derive(Default)]
struct TickCells {
    offered: AtomicU64,
    enqueued: AtomicU64,
    shed_queue: AtomicU64,
    shed_stale: AtomicU64,
    shed_engine: AtomicU64,
    shed_degraded: AtomicU64,
    completed: AtomicU64,
    goodput: AtomicU64,
    deadline_missed: AtomicU64,
    retries: AtomicU64,
    retry_denied: AtomicU64,
    gave_up: AtomicU64,
    aborts: AtomicU64,
}

/// Drives one engine + generated dataset through benchmark points.
pub struct Harness {
    engine: Arc<dyn HtapEngine>,
    profile: DataProfile,
    state: WorkloadState,
    mix: TxnMix,
    config: BenchmarkConfig,
    /// Persistent per-client transaction sequence numbers (survive
    /// non-resetting points; zeroed by reset).
    txnnums: Vec<AtomicU64>,
    points_run: AtomicU64,
}

impl Harness {
    /// Builds a harness over a loaded engine.
    pub fn new(
        engine: Arc<dyn HtapEngine>,
        profile: DataProfile,
        config: BenchmarkConfig,
    ) -> Self {
        let state = WorkloadState::new(&profile);
        Harness {
            engine,
            profile,
            state,
            mix: TxnMix::default(),
            config,
            txnnums: (0..MAX_TXN_CLIENTS).map(|_| AtomicU64::new(0)).collect(),
            points_run: AtomicU64::new(0),
        }
    }

    /// Overrides the transaction mix.
    pub fn with_mix(mut self, mix: TxnMix) -> Self {
        self.mix = mix;
        self
    }

    /// The engine under test.
    pub fn engine(&self) -> &Arc<dyn HtapEngine> {
        &self.engine
    }

    /// The data profile in use.
    pub fn profile(&self) -> &DataProfile {
        &self.profile
    }

    /// The harness configuration.
    pub fn config(&self) -> &BenchmarkConfig {
        &self.config
    }

    fn reset(&self) -> hat_common::Result<()> {
        self.engine.reset()?;
        self.state.reset();
        for n in &self.txnnums {
            n.store(0, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Measures one `(τ, α)` point `repeats` times and averages, as the
    /// paper does (three repetitions per configuration, §6.1).
    pub fn run_point_avg(
        &self,
        t_clients: u32,
        a_clients: u32,
        repeats: u32,
    ) -> hat_common::Result<PointMeasurement> {
        let runs: Vec<PointMeasurement> = (0..repeats.max(1))
            .map(|_| self.run_point(t_clients, a_clients))
            .collect::<hat_common::Result<_>>()?;
        Ok(PointMeasurement::average(runs))
    }

    /// Measures one `(τ, α)` point.
    ///
    /// Returns [`HatError::InvalidConfig`](hat_common::HatError) when
    /// `t_clients` exceeds [`MAX_TXN_CLIENTS`] (the FRESHNESS table is
    /// pre-sized) — a diagnosable configuration error, not a panic.
    pub fn run_point(
        &self,
        t_clients: u32,
        a_clients: u32,
    ) -> hat_common::Result<PointMeasurement> {
        if t_clients > MAX_TXN_CLIENTS {
            return Err(hat_common::HatError::InvalidConfig(format!(
                "{t_clients} transactional clients requested, but the FRESHNESS \
                 table is pre-sized for at most {MAX_TXN_CLIENTS}"
            )));
        }
        if t_clients == 0 && a_clients == 0 {
            return Ok(PointMeasurement::zero(0, 0));
        }
        if self.config.reset_between_points {
            self.reset()?;
        }
        let point_idx = self.points_run.fetch_add(1, Ordering::Relaxed);

        let clock = BenchClock::global();
        let phase = AtomicU8::new(PHASE_WARMUP);
        let stop = AtomicBool::new(false);
        let committed = AtomicU64::new(0);
        let queries = AtomicU64::new(0);
        let aborts = AtomicU64::new(0);
        let retries = AtomicU64::new(0);
        let timeouts = AtomicU64::new(0);
        let gave_up = AtomicU64::new(0);
        let query_retries = AtomicU64::new(0);
        let freshness: Mutex<Vec<FreshnessSample>> = Mutex::new(Vec::new());
        let txn_latency = LatencyHists::new(
            [TxnKind::NewOrder, TxnKind::Payment, TxnKind::CountOrders].map(TxnKind::label),
        );
        let query_latency = LatencyHists::new(QueryId::ALL.map(|q| q.label()));
        let bases: Vec<u64> = self
            .txnnums
            .iter()
            .map(|n| n.load(Ordering::Relaxed) + 1)
            .collect();
        let registry = CommitRegistry::new(&bases);
        // One budget shared by every client: the aggregate retry stream
        // is what must stay bounded, not any single client's.
        let budget = self.config.retry.budget.map(RetryBudget::new);

        // Elastic closed-loop plumbing: the coordinator's sampling tick
        // doubles as the controller's tick. The analytical lever is the
        // shared worker cap inside the clients' QueryOpts; the
        // transactional lever is the engine's admission bound (closed
        // loop has no arrival queue to park workers against).
        let (core_budget, mut controller) = match self.config.sched.target() {
            Some(t) => {
                let target = t.normalized();
                let b = CoreBudget::new(target.budget);
                let ctl = ElasticController::new(target, self.config.seed);
                b.apply(&*self.engine, ctl.split().0);
                (Some(b), Some(ctl))
            }
            None => (None, None),
        };
        let query_opts_val = match &core_budget {
            Some(b) => {
                // The cap must be able to bind: lift parallelism to the
                // budget so a_cores is the effective probe width.
                let mut opts =
                    self.config.query_opts.clone().with_cap(b.worker_cap().clone());
                opts.parallelism = opts.parallelism.max(b.total() as usize);
                opts
            }
            None => self.config.query_opts.clone(),
        };

        let (timeseries, backlog_hwm, measure_begin, sched_steps, sched_changes) =
            std::thread::scope(|scope| {
            // Transactional clients.
            for client in 0..t_clients {
                let engine = &*self.engine;
                let profile = &self.profile;
                let state = &self.state;
                let mix = self.mix;
                let seed = self.config.seed;
                let phase = &phase;
                let stop = &stop;
                let committed = &committed;
                let aborts = &aborts;
                let retries = &retries;
                let timeouts = &timeouts;
                let gave_up = &gave_up;
                let retry = &self.config.retry;
                let budget = budget.as_ref();
                let registry = &registry;
                let txn_latency = &txn_latency;
                let txnnum_slot = &self.txnnums[client as usize];
                scope.spawn(move || {
                    let mut rng =
                        HatRng::derive(seed, (point_idx << 16) | client as u64 | 0x7000);
                    // The current logical transaction: retries keep the
                    // same kind (parameters are re-drawn, as the paper's
                    // driver does) and the same freshness sequence number.
                    let mut kind = mix.draw(&mut rng);
                    let mut attempt: u32 = 1;
                    while !stop.load(Ordering::Relaxed) {
                        let txnnum = txnnum_slot.load(Ordering::Relaxed) + 1;
                        let begin = clock.now();
                        let measuring =
                            || phase.load(Ordering::Relaxed) == PHASE_MEASURE;
                        match run_transaction(
                            engine, profile, state, &mut rng, kind, client, txnnum,
                        ) {
                            Ok(receipt) if receipt.is_acked() => {
                                // Client-side commit time (§4.2: "the time
                                // when the transaction result is returned
                                // to a client").
                                let done = clock.now();
                                registry.record(client, txnnum, done);
                                txnnum_slot.store(txnnum, Ordering::Relaxed);
                                if measuring() {
                                    committed.fetch_add(1, Ordering::Relaxed);
                                    txn_latency.record(kind.label(), done - begin);
                                }
                                if let Some(b) = budget {
                                    b.on_success();
                                }
                                kind = mix.draw(&mut rng);
                                attempt = 1;
                            }
                            Ok(_in_doubt) => {
                                // The commit installed durably on the
                                // primary; only the durability/replication
                                // ack is in doubt. Record it for freshness
                                // density (the sequence number is
                                // consumed) but keep it out of
                                // `committed`/tps, and never re-execute
                                // it.
                                let done = clock.now();
                                registry.record(client, txnnum, done);
                                txnnum_slot.store(txnnum, Ordering::Relaxed);
                                if measuring() {
                                    timeouts.fetch_add(1, Ordering::Relaxed);
                                }
                                kind = mix.draw(&mut rng);
                                attempt = 1;
                            }
                            Err(e) if e.is_retryable() => {
                                if measuring() {
                                    aborts.fetch_add(1, Ordering::Relaxed);
                                }
                                // A retry happens only while both the
                                // per-client attempt cap and the shared
                                // budget allow it (the cap is checked
                                // first so an already-doomed attempt
                                // never spends a token).
                                let out_of_budget = attempt >= retry.max_attempts
                                    || budget.is_some_and(|b| !b.try_spend());
                                if out_of_budget {
                                    if measuring() {
                                        gave_up.fetch_add(1, Ordering::Relaxed);
                                    }
                                    kind = mix.draw(&mut rng);
                                    attempt = 1;
                                } else {
                                    if measuring() {
                                        retries.fetch_add(1, Ordering::Relaxed);
                                    }
                                    let pause = retry.backoff(attempt, &mut rng);
                                    attempt += 1;
                                    std::thread::sleep(pause);
                                }
                            }
                            Err(e) => panic!("transactional client {client}: {e}"),
                        }
                    }
                });
            }

            // Analytical clients.
            for client in 0..a_clients {
                let engine = &*self.engine;
                let seed = self.config.seed;
                let phase = &phase;
                let stop = &stop;
                let queries = &queries;
                let query_retries = &query_retries;
                let retry = &self.config.retry;
                let query_opts = &query_opts_val;
                let freshness = &freshness;
                let registry = &registry;
                let query_latency = &query_latency;
                scope.spawn(move || {
                    let mut rng =
                        HatRng::derive(seed, (point_idx << 16) | client as u64 | 0xA000);
                    'outer: loop {
                        // §5.3: batches of all 13 queries, randomly
                        // permuted, back to back.
                        for qid in query_batch(&mut rng) {
                            if stop.load(Ordering::Relaxed) {
                                break 'outer;
                            }
                            let spec = ssb::query(qid);
                            let mut attempt: u32 = 1;
                            loop {
                                let start = clock.now();
                                match engine.query(&spec, query_opts) {
                                    Ok(out) => {
                                        let done = clock.now();
                                        let score =
                                            score_query(start, &out.freshness, registry);
                                        if phase.load(Ordering::Relaxed) == PHASE_MEASURE
                                        {
                                            queries.fetch_add(1, Ordering::Relaxed);
                                            freshness.lock().push(score);
                                            query_latency
                                                .record(qid.label(), done - start);
                                        }
                                        break;
                                    }
                                    // The replica/learner serving this
                                    // query is down or its read-index wait
                                    // timed out: back off and retry, then
                                    // move on to the next query in the
                                    // batch once the budget is spent.
                                    Err(e) if e.is_retryable() => {
                                        if phase.load(Ordering::Relaxed) == PHASE_MEASURE
                                        {
                                            query_retries.fetch_add(1, Ordering::Relaxed);
                                        }
                                        if attempt >= retry.max_attempts
                                            || stop.load(Ordering::Relaxed)
                                        {
                                            break;
                                        }
                                        let pause = retry.backoff(attempt, &mut rng);
                                        attempt += 1;
                                        std::thread::sleep(pause);
                                    }
                                    Err(e) => panic!("analytical client {client}: {e}"),
                                }
                            }
                        }
                    }
                });
            }

            // Coordinator: tick through warmup and measurement on a
            // fixed cadence, sampling engine metrics into the time
            // series, then stop. The tick is clamped so the measurement
            // phase yields at least five samples even when `measure` is
            // shorter than the configured cadence.
            let tick = self
                .config
                .sample_every
                .min(self.config.measure / 8)
                .max(Duration::from_micros(100));
            let t0 = Instant::now();
            let mut series: Vec<TimeSeriesSample> = Vec::new();
            let mut prev = self.engine.metrics();
            let mut prev_t = t0;
            let mut fresh_seen = 0usize;
            let mut hwm = prev.gauge(names::REPL_BACKLOG);
            let mut sched_steps = 0u64;
            let mut sched_changes = 0u64;
            let measure_begin;
            // Block scope: the sampler closure borrows `series`/`hwm`
            // mutably; its borrows must end before they are moved out.
            {
                let mut sample = |p: SamplePhase| {
                    let now = Instant::now();
                    let snap = self.engine.metrics();
                    let dt = (now - prev_t).as_secs_f64().max(1e-9);
                    let d_commits = snap
                        .counter(names::TXN_COMMITS)
                        .saturating_sub(prev.counter(names::TXN_COMMITS));
                    let d_queries = snap
                        .counter(names::QUERIES)
                        .saturating_sub(prev.counter(names::QUERIES));
                    let backlog = snap.gauge(names::REPL_BACKLOG);
                    hwm = hwm.max(backlog);
                    let freshness_lag = {
                        let all = freshness.lock();
                        let new = &all[fresh_seen.min(all.len())..];
                        let lag = if new.is_empty() {
                            0.0
                        } else {
                            new.iter().sum::<f64>() / new.len() as f64
                        };
                        fresh_seen = all.len();
                        lag
                    };
                    let shed_storage = (snap.counter(names::WAL_SHED_COMMITS)
                        + snap.counter(names::ADMIT_TXN_SHED_BREAKER))
                    .saturating_sub(
                        prev.counter(names::WAL_SHED_COMMITS)
                            + prev.counter(names::ADMIT_TXN_SHED_BREAKER),
                    );
                    let shed_overload = (snap.counter(names::ADMIT_TXN_SHED)
                        + snap.counter(names::ADMIT_QUERY_SHED))
                    .saturating_sub(
                        prev.counter(names::ADMIT_TXN_SHED)
                            + prev.counter(names::ADMIT_QUERY_SHED),
                    );
                    let offered = (snap.counter(names::ADMIT_TXN_OFFERED)
                        + snap.counter(names::ADMIT_QUERY_OFFERED))
                    .saturating_sub(
                        prev.counter(names::ADMIT_TXN_OFFERED)
                            + prev.counter(names::ADMIT_QUERY_OFFERED),
                    );
                    // The split in force during the sampled interval
                    // (recorded before the controller reacts to it).
                    let (t_cores, a_cores) =
                        core_budget.as_ref().map(|b| b.split()).unwrap_or((0, 0));
                    series.push(TimeSeriesSample {
                        t_secs: (now - t0).as_secs_f64(),
                        phase: p,
                        run: 0,
                        tps: d_commits as f64 / dt,
                        qps: d_queries as f64 / dt,
                        backlog,
                        delta_rows: snap.gauge(names::DELTA_ROWS),
                        live_versions: snap.gauge(names::LIVE_VERSIONS),
                        freshness_lag,
                        health: snap.gauge(names::HEALTH_STATE),
                        shed: shed_storage,
                        shed_overload,
                        offered,
                        t_cores,
                        a_cores,
                    });
                    // Elastic: this sample is the controller's tick.
                    // Closed-loop pressure is what the admission gates
                    // saw — overload sheds — since there is no arrival
                    // queue to measure a backlog against.
                    if let (Some(b), Some(ctl)) = (core_budget.as_ref(), controller.as_mut())
                    {
                        let decision = ctl.step(&SchedSignal {
                            offered,
                            goodput: d_commits,
                            shed: shed_overload,
                            backlog,
                            a_done: d_queries,
                        });
                        sched_steps += 1;
                        if (decision.t_cores, decision.a_cores) != (t_cores, a_cores) {
                            sched_changes += 1;
                            b.apply(&*self.engine, decision.t_cores);
                        }
                    }
                    prev = snap;
                    prev_t = now;
                };
                let warmup_deadline = t0 + self.config.warmup;
                loop {
                    let now = Instant::now();
                    if now >= warmup_deadline {
                        break;
                    }
                    std::thread::sleep((warmup_deadline - now).min(tick));
                    sample(SamplePhase::Warmup);
                }
                phase.store(PHASE_MEASURE, Ordering::Relaxed);
                measure_begin = self.engine.metrics();
                let deadline = Instant::now() + self.config.measure;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(tick));
                    sample(SamplePhase::Measure);
                }
            }
            phase.store(PHASE_DONE, Ordering::Relaxed);
            stop.store(true, Ordering::Relaxed);
            // Scope joins all clients here.
            (series, hwm, measure_begin, sched_steps, sched_changes)
        });

        let elapsed = self.config.measure.as_secs_f64();
        let committed = committed.load(Ordering::Relaxed);
        let queries = queries.load(Ordering::Relaxed);
        // The window diff captures what the engine did during measurement;
        // the cumulative snapshot keeps the since-start counters (WAL
        // recovery, fsyncs, scan totals).
        let metrics_end = self.engine.metrics();
        let mut metrics = metrics_end.diff(&measure_begin);
        metrics.set_counter(names::HARNESS_COMMITTED, committed);
        metrics.set_counter(names::HARNESS_QUERIES, queries);
        metrics.set_counter(names::HARNESS_ABORTS, aborts.load(Ordering::Relaxed));
        metrics.set_counter(names::HARNESS_RETRIES, retries.load(Ordering::Relaxed));
        metrics.set_counter(names::HARNESS_TIMEOUTS, timeouts.load(Ordering::Relaxed));
        metrics.set_counter(names::HARNESS_GAVE_UP, gave_up.load(Ordering::Relaxed));
        metrics.set_counter(
            names::HARNESS_QUERY_RETRIES,
            query_retries.load(Ordering::Relaxed),
        );
        metrics.set_gauge(names::HARNESS_BACKLOG_HWM, backlog_hwm);
        if let Some(b) = &core_budget {
            let (t_cores, a_cores) = b.split();
            metrics.set_counter(names::SCHED_DECISIONS, sched_steps);
            metrics.set_counter(names::SCHED_REASSIGNMENTS, sched_changes);
            metrics.set_gauge(names::SCHED_T_CORES, u64::from(t_cores));
            metrics.set_gauge(names::SCHED_A_CORES, u64::from(a_cores));
        }
        txn_latency.install(&mut metrics, names::LATENCY_TXN_PREFIX);
        query_latency.install(&mut metrics, names::LATENCY_QUERY_PREFIX);
        Ok(PointMeasurement {
            t_clients,
            a_clients,
            tps: committed as f64 / elapsed,
            qps: queries as f64 / elapsed,
            metrics,
            metrics_end,
            timeseries,
            freshness: freshness.into_inner(),
            measured_secs: elapsed,
        })
    }

    /// Runs one open-loop overload experiment.
    ///
    /// Where [`run_point`](Self::run_point) is closed-loop (τ clients
    /// each wait for their previous request, so offered load can never
    /// exceed sustained throughput), here offered load is an *input*: a
    /// seeded arrival schedule ([`arrival_schedule`]) enqueues requests
    /// onto a bounded queue — each stamped with its enqueue time and
    /// carrying the per-attempt deadline budget — and a fixed pool of
    /// `workers` threads drains it. When arrivals outpace the pool the
    /// queue absorbs the difference and the outcome (shed, missed
    /// deadlines, recovery or metastable collapse) is what the per-tick
    /// series records.
    ///
    /// Virtual-client behavior under failure mirrors real systems: a
    /// request whose sojourn passes its deadline is shed without
    /// executing (the client already gave up; executing it would be
    /// doomed work), and a request that *completes* past its deadline
    /// counts as `deadline_missed` — and, policy permitting, the client
    /// has already retried it, which is precisely the work amplification
    /// that sustains metastable failure. The shared
    /// [`RetryPolicy::budget`] is the mitigation under test.
    pub fn run_open_loop(
        &self,
        ol: &OpenLoopConfig,
    ) -> hat_common::Result<OpenLoopMeasurement> {
        self.run_open_loop_sched(ol, &SchedPolicy::Static)
    }

    /// [`run_open_loop`](Self::run_open_loop) under an explicit
    /// core-assignment policy.
    ///
    /// Under [`SchedPolicy::Static`] this is exactly the classic driver:
    /// `ol.workers` transactional workers, no analytical side. Under
    /// [`SchedPolicy::Elastic`] the run holds a fixed budget of
    /// `target.budget` cores split between the two populations at tick
    /// granularity:
    ///
    /// * `budget - 1` transactional workers are spawned but only the
    ///   first `t_cores` of them serve; the rest park (`ol.workers` is
    ///   ignored — the budget is the capacity knob).
    /// * one analytical driver loops SSB query batches with its probe
    ///   parallelism capped by the budget's live
    ///   [`WorkerCap`](hat_engine::WorkerCap) gauge at `a_cores`.
    /// * at every tick boundary the generator feeds the previous tick's
    ///   outcome (sheds, queue depth, goodput, queries) to the
    ///   [`ElasticController`] and applies its decision: the worker cap
    ///   and the engine's transactional admission bounds move via
    ///   [`CoreBudget::apply`], and T workers park or unpark.
    ///
    /// [`SchedPolicy::Pinned`] runs the same dual-population driver at a
    /// fixed split — the eligible static arm for elastic-vs-static
    /// comparisons.
    ///
    /// The per-tick decisions come back in
    /// [`OpenLoopMeasurement::decisions`] and as the
    /// `t_cores`/`a_cores` columns of the time series (artifact schema
    /// v6), so the elastic trajectory can be overlaid on the static
    /// frontier.
    pub fn run_open_loop_sched(
        &self,
        ol: &OpenLoopConfig,
        policy: &SchedPolicy,
    ) -> hat_common::Result<OpenLoopMeasurement> {
        ol.validate()?;
        let elastic_target = policy.target().map(|t| t.normalized());
        let pinned = policy.pinned_split();
        if let Some(budget) =
            elastic_target.map(|t| t.budget).or(pinned.map(|(t, a)| t + a))
        {
            if budget as usize > MAX_TXN_CLIENTS as usize {
                return Err(hat_common::HatError::InvalidConfig(format!(
                    "core budget {budget} exceeds the harness's {MAX_TXN_CLIENTS} \
                     worker slots"
                )));
            }
        }
        if self.config.reset_between_points {
            self.reset()?;
        }
        let point_idx = self.points_run.fetch_add(1, Ordering::Relaxed);
        let schedule = arrival_schedule(ol, self.config.seed);
        let nticks = ol.ticks as usize;
        let tick_nanos = ol.tick.as_nanos().max(1);
        let cap = ol.queue_cap as usize;
        let deadline = ol.deadline;

        // Elastic/pinned runtime: the controller (generator-thread-local,
        // elastic only), the budget (shared levers), and the park gauge
        // T workers poll.
        let mut controller =
            elastic_target.map(|t| ElasticController::new(t, self.config.seed));
        let initial_split = controller.as_ref().map(|ctl| ctl.split()).or(pinned);
        let core_budget = initial_split.map(|(t, a)| {
            let b = CoreBudget::new(t + a);
            b.apply(&*self.engine, t);
            b
        });
        let t_workers = match &core_budget {
            // T may hold at most budget-1 cores (A always keeps one).
            Some(b) => b.total() - 1,
            None => ol.workers,
        };
        let t_alloc = AtomicU32::new(match initial_split {
            Some((t, _)) => t,
            None => u32::MAX,
        });
        // Per-tick analytical completions (the open-loop qps series).
        let a_cells: Vec<AtomicU64> = (0..nticks).map(|_| AtomicU64::new(0)).collect();

        let cells: Vec<TickCells> = (0..nticks).map(|_| TickCells::default()).collect();
        let queue: Mutex<VecDeque<OpenRequest>> = Mutex::new(VecDeque::new());
        let arrived = Condvar::new();
        let stop = AtomicBool::new(false);
        let sojourn_hist = Histogram::new();
        let started = AtomicU64::new(0);
        let budget = self.config.retry.budget.map(RetryBudget::new);
        let retry = &self.config.retry;

        let measure_begin = self.engine.metrics();
        let t0 = Instant::now();
        // Attributes an event to the tick it happened in; events during
        // the post-schedule drain clamp to the final tick.
        let tick_of = move |now: Instant| -> usize {
            (((now - t0).as_nanos() / tick_nanos) as usize).min(nticks - 1)
        };
        // The virtual client's reaction to a failed or timed-out attempt.
        // Retries re-enter the arrival queue with a fresh enqueue stamp
        // (a retry is a new request with a new deadline); the attempt
        // count is what carries across, and the shared budget is spent
        // *before* the re-enqueue so a collapsed run converges to
        // give-ups instead of feeding itself.
        let maybe_retry = |req: OpenRequest| {
            let cell = &cells[tick_of(Instant::now())];
            if stop.load(Ordering::Relaxed) || req.attempt >= retry.max_attempts {
                cell.gave_up.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if let Some(b) = budget.as_ref() {
                if !b.try_spend() {
                    cell.retry_denied.fetch_add(1, Ordering::Relaxed);
                    cell.gave_up.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            let mut q = queue.lock();
            if q.len() >= cap {
                drop(q);
                cell.gave_up.fetch_add(1, Ordering::Relaxed);
                return;
            }
            q.push_back(OpenRequest {
                enq: Instant::now(),
                attempt: req.attempt + 1,
                kind: req.kind,
            });
            drop(q);
            arrived.notify_one();
            cell.retries.fetch_add(1, Ordering::Relaxed);
        };

        let (engine_samples, decisions) = std::thread::scope(|scope| {
            // Worker pool — the serving capacity. Static: a fixed pool of
            // `ol.workers`. Elastic: `budget - 1` workers of which only
            // the first `t_alloc` serve at any tick; the rest park.
            for client in 0..t_workers {
                let engine = &*self.engine;
                let profile = &self.profile;
                let state = &self.state;
                let seed = self.config.seed;
                let queue = &queue;
                let arrived = &arrived;
                let stop = &stop;
                let cells = &cells;
                let sojourn_hist = &sojourn_hist;
                let started = &started;
                let budget = budget.as_ref();
                let txnnum_slot = &self.txnnums[client as usize];
                let service_pad = ol.service_pad;
                let t_alloc = &t_alloc;
                scope.spawn(move || {
                    let mut rng =
                        HatRng::derive(seed, (point_idx << 16) | client as u64 | 0xB000);
                    loop {
                        // Elastic parking: a worker whose index is past
                        // the current T allocation contributes no serving
                        // capacity. It polls the gauge (well under a tick)
                        // rather than blocking so an unpark takes effect
                        // immediately; after stop it falls through to the
                        // drain so every queued request gets a fate.
                        while client >= t_alloc.load(Ordering::Relaxed)
                            && !stop.load(Ordering::Relaxed)
                        {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        // Pop or wait; after stop, drain what remains so
                        // every enqueued request gets an accounted fate.
                        let req = {
                            let mut q = queue.lock();
                            loop {
                                if let Some(r) = q.pop_front() {
                                    break Some(r);
                                }
                                if stop.load(Ordering::Relaxed) {
                                    break None;
                                }
                                arrived.wait_for(&mut q, Duration::from_millis(1));
                            }
                        };
                        let Some(req) = req else { break };
                        // CoDel-flavored staleness check at dequeue: if
                        // the queue alone already ate the deadline, the
                        // client is gone — never spend service time on it.
                        if req.enq.elapsed() > deadline {
                            cells[tick_of(Instant::now())]
                                .shed_stale
                                .fetch_add(1, Ordering::Relaxed);
                            maybe_retry(req);
                            continue;
                        }
                        started.fetch_add(1, Ordering::Relaxed);
                        if !service_pad.is_zero() {
                            std::thread::sleep(service_pad);
                        }
                        let txnnum = txnnum_slot.load(Ordering::Relaxed) + 1;
                        let outcome = run_transaction(
                            engine, profile, state, &mut rng, req.kind, client, txnnum,
                        );
                        let now = Instant::now();
                        let cell = &cells[tick_of(now)];
                        match outcome {
                            Ok(receipt) if receipt.is_acked() => {
                                txnnum_slot.store(txnnum, Ordering::Relaxed);
                                let sojourn = now - req.enq;
                                sojourn_hist.record(sojourn.as_nanos() as u64);
                                cell.completed.fetch_add(1, Ordering::Relaxed);
                                if sojourn <= deadline {
                                    cell.goodput.fetch_add(1, Ordering::Relaxed);
                                    if let Some(b) = budget {
                                        b.on_success();
                                    }
                                } else {
                                    // The engine committed the work, but
                                    // the client stopped waiting at the
                                    // deadline and (policy permitting)
                                    // retries — committed-but-retried is
                                    // the classic metastable amplifier.
                                    cell.deadline_missed.fetch_add(1, Ordering::Relaxed);
                                    maybe_retry(req);
                                }
                            }
                            Err(hat_common::HatError::Overloaded { .. }) => {
                                cell.shed_engine.fetch_add(1, Ordering::Relaxed);
                                maybe_retry(req);
                            }
                            Err(hat_common::HatError::Degraded) => {
                                cell.shed_degraded.fetch_add(1, Ordering::Relaxed);
                                maybe_retry(req);
                            }
                            Ok(_in_doubt) => {
                                // Durable on the primary: consume the
                                // sequence number, count the completion
                                // (but never as goodput), never
                                // re-execute.
                                txnnum_slot.store(txnnum, Ordering::Relaxed);
                                cell.completed.fetch_add(1, Ordering::Relaxed);
                                cell.deadline_missed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) if e.is_retryable() => {
                                cell.aborts.fetch_add(1, Ordering::Relaxed);
                                maybe_retry(req);
                            }
                            Err(e) => panic!("open-loop worker {client}: {e}"),
                        }
                    }
                });
            }

            // Elastic analytical side: one driver looping SSB batches,
            // its probe-worker pool clamped each query by the budget's
            // live cap gauge — narrowing a_cores narrows the *next*
            // query's parallelism without interrupting the current one.
            if let Some(b) = &core_budget {
                let engine = &*self.engine;
                let stop = &stop;
                let a_cells = &a_cells;
                let seed = self.config.seed;
                let mut a_opts =
                    self.config.query_opts.clone().with_cap(b.worker_cap().clone());
                a_opts.parallelism = a_opts.parallelism.max(b.total() as usize);
                scope.spawn(move || {
                    let mut rng =
                        HatRng::derive(seed, (point_idx << 16) | 0xAE00);
                    'outer: while !stop.load(Ordering::Relaxed) {
                        for qid in query_batch(&mut rng) {
                            if stop.load(Ordering::Relaxed) {
                                break 'outer;
                            }
                            match engine.query(&ssb::query(qid), &a_opts) {
                                Ok(_) => {
                                    a_cells[tick_of(Instant::now())]
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                // Replica down / read-index timeout: skip
                                // to the next query; the T side's retry
                                // machinery is not this driver's job.
                                Err(e) if e.is_retryable() => {
                                    std::thread::sleep(Duration::from_micros(500));
                                }
                                Err(e) => panic!("elastic analytical driver: {e}"),
                            }
                        }
                    }
                });
            }

            // Generator: the only writer to the arrival queue. Paces the
            // seeded schedule onto real time, sheds at enqueue only when
            // the bounded queue is full (the memory backstop), samples
            // engine gauges at each tick boundary — and, under the
            // elastic policy, runs the controller right there: the
            // closed tick's outcome is the signal, and the decision is
            // applied before the new tick's arrivals are enqueued.
            let mut gen_rng =
                HatRng::derive(self.config.seed, (point_idx << 16) | 0xC000);
            let mix = self.mix;
            let mut samples: Vec<MetricsSnapshot> = Vec::with_capacity(nticks);
            let mut decisions: Vec<SchedDecision> = Vec::new();
            if let Some(ctl) = controller.as_ref() {
                decisions.push(ctl.initial_decision());
            }
            for (t, &n) in schedule.iter().enumerate() {
                let boundary = t0 + ol.tick * t as u32;
                loop {
                    let now = Instant::now();
                    if now >= boundary {
                        break;
                    }
                    std::thread::sleep(boundary - now);
                }
                if t > 0 {
                    // Closes tick t-1.
                    samples.push(self.engine.metrics());
                    if let (Some(ctl), Some(b)) =
                        (controller.as_mut(), core_budget.as_ref())
                    {
                        let c = &cells[t - 1];
                        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
                        let decision = ctl.step(&SchedSignal {
                            offered: load(&c.offered),
                            goodput: load(&c.goodput),
                            shed: load(&c.shed_queue)
                                + load(&c.shed_stale)
                                + load(&c.shed_engine),
                            backlog: queue.lock().len() as u64,
                            a_done: a_cells[t - 1].load(Ordering::Relaxed),
                        });
                        if (decision.t_cores, decision.a_cores) != b.split() {
                            b.apply(&*self.engine, decision.t_cores);
                            t_alloc.store(decision.t_cores, Ordering::Relaxed);
                        }
                        decisions.push(decision);
                    }
                }
                let cell = &cells[t];
                cell.offered.fetch_add(n, Ordering::Relaxed);
                if n > 0 {
                    let mut q = queue.lock();
                    for _ in 0..n {
                        if q.len() >= cap {
                            cell.shed_queue.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        q.push_back(OpenRequest {
                            enq: Instant::now(),
                            attempt: 1,
                            kind: mix.draw(&mut gen_rng),
                        });
                        cell.enqueued.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(q);
                    arrived.notify_all();
                }
            }
            let end = t0 + ol.tick * ol.ticks;
            loop {
                let now = Instant::now();
                if now >= end {
                    break;
                }
                std::thread::sleep(end - now);
            }
            samples.push(self.engine.metrics());
            stop.store(true, Ordering::Relaxed);
            arrived.notify_all();
            // Scope joins the workers here (they drain the queue first).
            (samples, decisions)
        });

        // A pinned run has no controller trace; synthesize the constant
        // one so its artifact carries the same allocation columns.
        let decisions = match (decisions.is_empty(), pinned) {
            (true, Some((t, a))) => (0..nticks as u32)
                .map(|k| SchedDecision {
                    tick: k,
                    t_cores: t,
                    a_cores: a,
                    reason: if k == 0 {
                        crate::sched::SchedReason::Init
                    } else {
                        crate::sched::SchedReason::Hold
                    },
                })
                .collect(),
            _ => decisions,
        };

        let elapsed = (ol.tick * ol.ticks).as_secs_f64();
        let ticks: Vec<OpenLoopTick> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| OpenLoopTick {
                tick: i as u32,
                offered: c.offered.load(Ordering::Relaxed),
                enqueued: c.enqueued.load(Ordering::Relaxed),
                shed_queue: c.shed_queue.load(Ordering::Relaxed),
                shed_stale: c.shed_stale.load(Ordering::Relaxed),
                shed_engine: c.shed_engine.load(Ordering::Relaxed),
                shed_degraded: c.shed_degraded.load(Ordering::Relaxed),
                completed: c.completed.load(Ordering::Relaxed),
                goodput: c.goodput.load(Ordering::Relaxed),
                deadline_missed: c.deadline_missed.load(Ordering::Relaxed),
                retries: c.retries.load(Ordering::Relaxed),
                retry_denied: c.retry_denied.load(Ordering::Relaxed),
                gave_up: c.gave_up.load(Ordering::Relaxed),
                aborts: c.aborts.load(Ordering::Relaxed),
            })
            .collect();
        let sojourn = sojourn_hist.snapshot();

        let sum = |f: fn(&OpenLoopTick) -> u64| ticks.iter().map(f).sum::<u64>();
        let offered = sum(|t| t.offered);
        let completed = sum(|t| t.completed);
        let goodput = sum(|t| t.goodput);
        let metrics_end = self.engine.metrics();
        let mut metrics = metrics_end.diff(&measure_begin);
        metrics.set_counter(names::OPENLOOP_OFFERED, offered);
        metrics.set_counter(names::OPENLOOP_STARTED, started.load(Ordering::Relaxed));
        metrics.set_counter(names::OPENLOOP_COMPLETED, completed);
        metrics.set_counter(names::OPENLOOP_GOODPUT, goodput);
        metrics.set_counter(names::OPENLOOP_DEADLINE_MISSED, sum(|t| t.deadline_missed));
        metrics.set_counter(names::OPENLOOP_SHED_QUEUE, sum(|t| t.shed_queue));
        metrics.set_counter(names::OPENLOOP_SHED_STALE, sum(|t| t.shed_stale));
        metrics.set_counter(names::OPENLOOP_SHED_ENGINE, sum(|t| t.shed_engine));
        metrics.set_counter(names::OPENLOOP_SHED_DEGRADED, sum(|t| t.shed_degraded));
        metrics.set_counter(names::OPENLOOP_RETRIES, sum(|t| t.retries));
        metrics.set_counter(names::OPENLOOP_RETRY_DENIED, sum(|t| t.retry_denied));
        metrics.set_counter(names::OPENLOOP_GAVE_UP, sum(|t| t.gave_up));
        metrics.set_counter(names::HARNESS_COMMITTED, completed);
        metrics.set_counter(names::HARNESS_ABORTS, sum(|t| t.aborts));
        metrics.set_counter(names::HARNESS_RETRIES, sum(|t| t.retries));
        metrics.set_counter(names::HARNESS_GAVE_UP, sum(|t| t.gave_up));
        metrics.set_histogram(names::OPENLOOP_SOJOURN, sojourn.clone());
        let backlog_hwm = engine_samples
            .iter()
            .map(|s| s.gauge(names::REPL_BACKLOG))
            .max()
            .unwrap_or(0);
        metrics.set_gauge(names::HARNESS_BACKLOG_HWM, backlog_hwm);
        let a_total: u64 = a_cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        if let Some(b) = &core_budget {
            let (t_final, a_final) = b.split();
            metrics.set_counter(names::SCHED_DECISIONS, decisions.len() as u64);
            metrics
                .set_counter(names::SCHED_REASSIGNMENTS, split_changes(&decisions) as u64);
            metrics.set_counter(names::SCHED_A_QUERIES, a_total);
            metrics.set_gauge(names::SCHED_T_CORES, u64::from(t_final));
            metrics.set_gauge(names::SCHED_A_CORES, u64::from(a_final));
        }

        let tick_secs = ol.tick.as_secs_f64();
        let timeseries: Vec<TimeSeriesSample> = ticks
            .iter()
            .zip(engine_samples.iter())
            .map(|(t, snap)| {
                let (t_cores, a_cores) = decisions
                    .get(t.tick as usize)
                    .map(|d| (d.t_cores, d.a_cores))
                    .unwrap_or((0, 0));
                TimeSeriesSample {
                    t_secs: (t.tick as f64 + 1.0) * tick_secs,
                    phase: SamplePhase::Measure,
                    run: 0,
                    tps: t.goodput as f64 / tick_secs,
                    qps: a_cells[t.tick as usize].load(Ordering::Relaxed) as f64
                        / tick_secs,
                    backlog: snap.gauge(names::REPL_BACKLOG),
                    delta_rows: snap.gauge(names::DELTA_ROWS),
                    live_versions: snap.gauge(names::LIVE_VERSIONS),
                    freshness_lag: 0.0,
                    health: snap.gauge(names::HEALTH_STATE),
                    shed: t.shed_degraded,
                    shed_overload: t.shed_overload(),
                    offered: t.offered,
                    t_cores,
                    a_cores,
                }
            })
            .collect();

        let point = PointMeasurement {
            t_clients: t_workers,
            a_clients: u32::from(core_budget.is_some()),
            tps: goodput as f64 / elapsed,
            qps: a_total as f64 / elapsed,
            metrics,
            metrics_end,
            timeseries,
            freshness: Vec::new(),
            measured_secs: elapsed,
        };
        Ok(OpenLoopMeasurement { point, ticks, sojourn, decisions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, ScaleFactor};
    use hat_engine::{EngineConfig, ShdEngine};

    fn tiny_harness() -> Harness {
        let data = generate(ScaleFactor(0.0008), 21);
        let engine = ShdEngine::new(EngineConfig::default());
        data.load_into(&engine).unwrap();
        Harness::new(
            Arc::new(engine),
            data.profile.clone(),
            BenchmarkConfig {
                warmup: Duration::from_millis(30),
                measure: Duration::from_millis(120),
                seed: 99,
                reset_between_points: true,
                ..BenchmarkConfig::default()
            },
        )
    }

    #[test]
    fn retry_policy_backs_off_on_degraded() {
        use hat_common::HatError;
        // Shed commits surface as retryable `Degraded`: the client loop
        // (`Err(e) if e.is_retryable()`) takes the backoff path — not
        // give-up, not committed-in-doubt. Quarantine is terminal and is
        // never retried.
        assert!(HatError::Degraded.is_retryable());
        assert!(!HatError::Degraded.is_commit_in_doubt());
        assert!(!HatError::Quarantined { segment: 1 }.is_retryable());
        // A durability wait voided *after* install is committed-in-doubt:
        // the in-doubt arm precedes the retry arm in the client loop, so
        // it is recorded (sequence number consumed) and never
        // re-executed — exactly like `ReplicationTimeout`.
        assert!(HatError::DurabilityInDoubt.is_commit_in_doubt());
        assert!(HatError::DurabilityInDoubt.is_retryable());
        let policy = RetryPolicy::default();
        let mut rng = HatRng::seeded(7);
        for attempt in 1..=8u32 {
            let ceiling = policy
                .initial_backoff
                .saturating_mul(1u32 << (attempt - 1).min(20))
                .min(policy.max_backoff);
            for _ in 0..32 {
                let b = policy.backoff(attempt, &mut rng);
                assert!(b <= ceiling, "attempt {attempt}: {b:?} > {ceiling:?}");
            }
        }
        // The jittered ceiling actually grows with consecutive sheds, so
        // a degraded engine sees an ever-sparser retry stream.
        let max_at = |attempt: u32| {
            let mut rng = HatRng::seeded(11);
            (0..64).map(|_| policy.backoff(attempt, &mut rng)).max().unwrap()
        };
        assert!(max_at(5) > max_at(1), "backoff grows with attempts");
    }

    #[test]
    fn pure_txn_point_produces_throughput() {
        let h = tiny_harness();
        let m = h.run_point(2, 0).unwrap();
        assert!(m.tps > 0.0, "committed {} in {}s", m.committed(), m.measured_secs);
        assert_eq!(m.qps, 0.0);
        assert_eq!(m.t_clients, 2);
        assert!(m.freshness.is_empty());
    }

    #[test]
    fn pure_analytic_point_produces_queries() {
        let h = tiny_harness();
        let m = h.run_point(0, 2).unwrap();
        assert!(m.qps > 0.0, "{} queries", m.queries());
        assert_eq!(m.tps, 0.0);
    }

    #[test]
    fn mixed_point_measures_both_and_scores_freshness() {
        let h = tiny_harness();
        let m = h.run_point(2, 1).unwrap();
        assert!(m.tps > 0.0);
        assert!(m.qps > 0.0);
        assert_eq!(m.freshness.len() as u64, m.queries());
        // Shared engine: freshness must be (essentially) zero.
        let agg = crate::freshness::FreshnessAgg::from_samples(&m.freshness);
        assert!(agg.p99 < 0.005, "shared design is fresh, saw p99={}", agg.p99);
    }

    #[test]
    fn latency_stats_collected_per_label() {
        let h = tiny_harness();
        let m = h.run_point(2, 1).unwrap();
        let txn = m.txn_latency();
        let query = m.query_latency();
        assert!(!txn.is_empty(), "txn latencies recorded");
        assert!(!query.is_empty(), "query latencies recorded");
        let total: u64 = txn.iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, m.committed());
        let qtotal: u64 = query.iter().map(|(_, s)| s.count).sum();
        assert_eq!(qtotal, m.queries());
        for (label, stats) in txn.iter().chain(&query) {
            assert!(stats.mean_ms > 0.0, "{label}");
            assert!(stats.p95_ms >= stats.mean_ms * 0.1, "{label}");
            assert!(stats.max_ms >= stats.p95_ms, "{label}");
        }
    }

    #[test]
    fn timeseries_sampled_through_both_phases() {
        let h = tiny_harness();
        let m = h.run_point(2, 1).unwrap();
        let warm = m
            .timeseries
            .iter()
            .filter(|s| s.phase == SamplePhase::Warmup)
            .count();
        let meas = m
            .timeseries
            .iter()
            .filter(|s| s.phase == SamplePhase::Measure)
            .count();
        assert!(warm >= 1, "warmup sampled ({warm})");
        assert!(meas >= 5, "at least five measurement samples ({meas})");
        // Samples are time-ordered and the engine committed something
        // over the run, so some interval must show commits.
        let ordered = m.timeseries.windows(2).all(|w| w[0].t_secs <= w[1].t_secs);
        assert!(ordered, "time series is ordered");
        assert!(m.timeseries.iter().any(|s| s.tps > 0.0));
    }

    #[test]
    fn window_metrics_match_engine_deltas() {
        let h = tiny_harness();
        let m = h.run_point(2, 0).unwrap();
        // The engine committed at least as much as the harness
        // acknowledged during measurement (engine window also catches
        // commits straddling the phase flip).
        assert!(m.metrics.counter(names::TXN_COMMITS) > 0);
        assert!(m.metrics_end.counter(names::TXN_COMMITS) >= m.committed());
        // Commit spans were recorded in the window.
        let span = m.metrics.histogram(names::SPAN_COMMIT).expect("commit span");
        assert!(span.count > 0);
    }

    #[test]
    fn averaging_repeated_points() {
        let h = tiny_harness();
        let avg = h.run_point_avg(1, 1, 2).unwrap();
        assert!(avg.tps > 0.0);
        assert_eq!(avg.freshness.len() as u64, avg.queries(), "samples concatenated");
        assert!(avg.timeseries.iter().any(|s| s.run == 1), "series tagged per run");
        // Synthetic check of the math.
        let mut a = PointMeasurement::zero(1, 0);
        a.tps = 10.0;
        a.metrics.set_counter(names::HARNESS_COMMITTED, 10);
        a.metrics
            .set_histogram("latency.txn.payment", HistogramSnapshot::from_values(&[100]));
        let mut b = PointMeasurement::zero(1, 0);
        b.tps = 20.0;
        b.metrics.set_counter(names::HARNESS_COMMITTED, 20);
        b.metrics
            .set_histogram("latency.txn.payment", HistogramSnapshot::from_values(&[300]));
        let m = PointMeasurement::average(vec![a, b]);
        assert_eq!(m.tps, 15.0);
        assert_eq!(m.committed(), 30);
        // Latency histograms merged across runs, not taken from one run.
        let lat = m.txn_latency();
        assert_eq!(lat.len(), 1);
        assert_eq!(lat[0].1.count, 2);
    }

    #[test]
    fn origin_point_is_zero() {
        let h = tiny_harness();
        let m = h.run_point(0, 0).unwrap();
        assert_eq!(m.tps, 0.0);
        assert_eq!(m.qps, 0.0);
    }

    #[test]
    fn reset_between_points_keeps_results_stable() {
        let h = tiny_harness();
        let a = h.run_point(1, 0).unwrap();
        let b = h.run_point(1, 0).unwrap();
        assert!(a.tps > 0.0 && b.tps > 0.0);
        // Same initial state both times: throughputs within 5x of each
        // other (loose CI-safe check; the point is no systematic collapse
        // from unreset growth).
        let ratio = a.tps.max(b.tps) / a.tps.min(b.tps);
        assert!(ratio < 5.0, "tps {} vs {}", a.tps, b.tps);
    }
}
