//! The elastic T/A core scheduler: policy for tick-granular worker
//! reassignment.
//!
//! The paper's throughput frontier is *descriptive* — every point is
//! measured under a fixed split of cores between the transactional and
//! analytical side, so the bounding box reflects a static allocation
//! that is wrong for most of a bursty run. "Adaptive HTAP through
//! Elastic Resource Scheduling" (PAPERS.md) shows that moving cores
//! between engines at fine granularity dominates any static split. This
//! module is the *policy* half of that idea: a seeded, deterministic
//! controller that reads one [`SchedSignal`] per tick and emits one
//! [`SchedDecision`] per tick. The *mechanism* half —
//! [`CoreBudget`](hat_engine::CoreBudget) resizing the admission gates
//! and the analytical worker cap — lives in hat-engine, and the glue
//! that parks/unparks harness workers lives in
//! [`Harness::run_open_loop_sched`](crate::harness::Harness::run_open_loop_sched).
//!
//! # Control law
//!
//! The declarative target is "maximize analytical throughput subject to
//! the transactional side keeping up": T is *under pressure* when the
//! tick shed requests for overload reasons or the arrival queue exceeds
//! a high watermark; it is *calm* when nothing shed and the queue is
//! under a low watermark. Between the watermarks is a hysteresis band
//! where the controller holds.
//!
//! On the constrained (analytical) allocation the law is AIMD:
//!
//! * **Pressure ⇒ multiplicative decrease.** A's share halves
//!   (`a ← max(1, a/2)`) and the freed cores move to T at once — a
//!   burst must be answered in one or two ticks, not one core at a
//!   time.
//! * **Calm ⇒ additive increase, after a dwell.** Only after
//!   [`SchedTarget::dwell_ticks`] *consecutive* calm ticks does T give
//!   one core back (`a ← a + 1`), and the streak resets — so give-back
//!   is gradual and a single noisy tick restarts the wait. The dwell,
//!   together with the hysteresis band (which also resets the streak),
//!   is the anti-flap mechanism: under constant load the split changes
//!   a bounded number of times, then parks.
//!
//! Both sides always keep at least one core: an empty side cannot drain
//! its queue, so the controller could never observe it recover.
//!
//! # Determinism
//!
//! `step` is a pure function of the controller state and the signal —
//! no wall clock, no OS randomness, no map iteration. The seed's only
//! use is a one-time stagger of the *first* give-back dwell, so
//! co-scheduled controllers (e.g. a sweep of elastic runs) don't return
//! cores in lockstep with a periodic arrival schedule. Same seed + same
//! signal sequence ⇒ byte-identical decision trace, which is what the
//! determinism suite asserts.

use hat_common::rng::HatRng;

/// Per-tick signals the controller reads. In an open-loop run these
/// come from the previous tick's outcome cells and the arrival-queue
/// depth at the tick boundary; in a closed-loop run from engine metric
/// deltas between samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSignal {
    /// Arrivals offered in the tick.
    pub offered: u64,
    /// In-deadline transactional completions in the tick.
    pub goodput: u64,
    /// Overload-cause sheds in the tick (queue overflow, stale sojourn,
    /// admission gate). The strongest pressure signal: shedding means T
    /// is already failing its side of the target.
    pub shed: u64,
    /// Arrival-queue depth at the tick boundary (requests waiting for a
    /// T worker). The leading pressure signal: the queue grows before
    /// anything sheds.
    pub backlog: u64,
    /// Analytical queries finished in the tick.
    pub a_done: u64,
}

/// The declarative elastic target: a fixed core budget plus the
/// watermarks and dwell that define "T keeps up".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedTarget {
    /// Total cores split between T and A (`t + a = budget`, min 2).
    pub budget: u32,
    /// T never drops below this many cores (min 1).
    pub t_floor: u32,
    /// Queue backlog per T core above which T is under pressure.
    pub high_backlog_per_core: u64,
    /// Queue backlog per T core at or below which T is calm.
    pub low_backlog_per_core: u64,
    /// Consecutive calm ticks before one core is given back to A.
    pub dwell_ticks: u32,
}

impl Default for SchedTarget {
    fn default() -> Self {
        SchedTarget {
            budget: 4,
            t_floor: 1,
            high_backlog_per_core: 8,
            low_backlog_per_core: 2,
            dwell_ticks: 5,
        }
    }
}

impl SchedTarget {
    /// A target over `budget` cores with default watermarks.
    pub fn with_budget(budget: u32) -> Self {
        SchedTarget { budget: budget.max(2), ..SchedTarget::default() }
    }

    /// The target with fields forced into their valid ranges (budget
    /// ≥ 2, floor in `1..budget`, low ≤ high, dwell ≥ 1).
    pub fn normalized(&self) -> Self {
        let budget = self.budget.max(2);
        SchedTarget {
            budget,
            t_floor: self.t_floor.clamp(1, budget - 1),
            high_backlog_per_core: self.high_backlog_per_core.max(1),
            low_backlog_per_core: self
                .low_backlog_per_core
                .min(self.high_backlog_per_core.max(1)),
            dwell_ticks: self.dwell_ticks.max(1),
        }
    }
}

/// How a run assigns cores between the two populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Fixed split for the whole run — the paper's measurement mode.
    Static,
    /// Tick-granular elastic reassignment toward `target`.
    Elastic { target: SchedTarget },
    /// A fixed `(t_cores, budget - t_cores)` split running the *same*
    /// dual-population driver as `Elastic` — T workers parked past
    /// `t_cores`, one analytical driver capped at the remainder — but
    /// with the controller never stepping. The eligible static arm every
    /// elastic-vs-static comparison is judged against: it does real
    /// analytical work, so "elastic beats the best static split on
    /// goodput at equal-or-better freshness" is a like-for-like claim.
    Pinned { budget: u32, t_cores: u32 },
}

impl SchedPolicy {
    /// The elastic target, if any. `Pinned` is not elastic: it shares
    /// the driver but has no controller, so no target.
    pub fn target(&self) -> Option<SchedTarget> {
        match self {
            SchedPolicy::Static | SchedPolicy::Pinned { .. } => None,
            SchedPolicy::Elastic { target } => Some(*target),
        }
    }

    /// The fixed split of a `Pinned` policy, normalized so both sides
    /// keep at least one core of a budget of at least two.
    pub fn pinned_split(&self) -> Option<(u32, u32)> {
        match *self {
            SchedPolicy::Pinned { budget, t_cores } => {
                let budget = budget.max(2);
                let t = t_cores.clamp(1, budget - 1);
                Some((t, budget - t))
            }
            _ => None,
        }
    }
}

/// Why the controller chose a split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedReason {
    /// The initial split before any signal.
    Init,
    /// No change: in the hysteresis band, or calm but still dwelling.
    Hold,
    /// T under pressure: A halved, freed cores moved to T.
    Pressure,
    /// T under pressure but A already at one core — nothing to take.
    Saturated,
    /// Calm dwell expired: one core returned to A.
    GiveBack,
}

impl SchedReason {
    pub fn label(self) -> &'static str {
        match self {
            SchedReason::Init => "init",
            SchedReason::Hold => "hold",
            SchedReason::Pressure => "pressure",
            SchedReason::Saturated => "saturated",
            SchedReason::GiveBack => "giveback",
        }
    }

    pub fn from_label(s: &str) -> Option<SchedReason> {
        match s {
            "init" => Some(SchedReason::Init),
            "hold" => Some(SchedReason::Hold),
            "pressure" => Some(SchedReason::Pressure),
            "saturated" => Some(SchedReason::Saturated),
            "giveback" => Some(SchedReason::GiveBack),
            _ => None,
        }
    }
}

/// One per-tick allocation decision — the unit of the artifact's
/// allocation trace (schema v6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedDecision {
    /// The tick this split takes effect in.
    pub tick: u32,
    pub t_cores: u32,
    pub a_cores: u32,
    pub reason: SchedReason,
}

impl SchedDecision {
    /// Canonical one-line rendering; the determinism suite compares
    /// traces through this, byte for byte.
    pub fn line(&self) -> String {
        format!(
            "tick={} t={} a={} reason={}",
            self.tick,
            self.t_cores,
            self.a_cores,
            self.reason.label()
        )
    }
}

/// Renders a whole decision trace as one newline-joined string (the
/// byte-identity unit for determinism tests and failure artifacts).
pub fn trace_lines(decisions: &[SchedDecision]) -> String {
    let mut out = String::new();
    for d in decisions {
        out.push_str(&d.line());
        out.push('\n');
    }
    out
}

/// The AIMD + hysteresis + dwell controller. See the module docs for
/// the control law; see [`ElasticController::step`] for the per-tick
/// contract.
#[derive(Debug, Clone)]
pub struct ElasticController {
    target: SchedTarget,
    t_cores: u32,
    a_cores: u32,
    /// Consecutive calm ticks; reset by pressure, by the hysteresis
    /// band, and by every give-back.
    calm_streak: u32,
    /// Seeded one-time extension of the first dwell (anti-lockstep; see
    /// module docs). Consumed by the first give-back.
    first_dwell_bonus: u32,
    ticks_seen: u32,
}

impl ElasticController {
    /// A controller at its initial split: the budget divided as evenly
    /// as possible with the extra core on T (matching
    /// [`CoreBudget::new`](hat_engine::CoreBudget::new)).
    pub fn new(target: SchedTarget, seed: u64) -> Self {
        let target = target.normalized();
        let a = target.budget / 2;
        let t = target.budget - a;
        let mut rng = HatRng::derive(seed, 0x5CED);
        ElasticController {
            target,
            t_cores: t.max(target.t_floor),
            a_cores: target.budget - t.max(target.t_floor),
            calm_streak: 0,
            first_dwell_bonus: rng.range_u32(0, target.dwell_ticks - 1),
            ticks_seen: 0,
        }
    }

    /// The normalized target in force.
    pub fn target(&self) -> &SchedTarget {
        &self.target
    }

    /// The current `(t_cores, a_cores)` split.
    pub fn split(&self) -> (u32, u32) {
        (self.t_cores, self.a_cores)
    }

    /// The decision for tick 0 — the initial split, before any signal.
    pub fn initial_decision(&self) -> SchedDecision {
        SchedDecision {
            tick: 0,
            t_cores: self.t_cores,
            a_cores: self.a_cores,
            reason: SchedReason::Init,
        }
    }

    /// Consumes the signal of the just-finished tick and returns the
    /// split for the next one. Pure in (state, signal): no clock, no
    /// ambient randomness. `decision.tick` numbers the tick the split
    /// takes effect in (one past the signal's tick).
    pub fn step(&mut self, sig: &SchedSignal) -> SchedDecision {
        self.ticks_seen += 1;
        let tick = self.ticks_seen;
        let high = self.target.high_backlog_per_core * u64::from(self.t_cores);
        let low = self.target.low_backlog_per_core * u64::from(self.t_cores);
        let pressure = sig.shed > 0 || sig.backlog > high;
        let calm = sig.shed == 0 && sig.backlog <= low;
        let reason = if pressure {
            self.calm_streak = 0;
            if self.a_cores > 1 {
                let a = (self.a_cores / 2).max(1);
                self.a_cores = a;
                self.t_cores = self.target.budget - a;
                SchedReason::Pressure
            } else {
                SchedReason::Saturated
            }
        } else if calm {
            self.calm_streak += 1;
            let dwell = self.target.dwell_ticks + self.first_dwell_bonus;
            if self.calm_streak >= dwell && self.t_cores > self.target.t_floor {
                self.calm_streak = 0;
                self.first_dwell_bonus = 0;
                self.t_cores -= 1;
                self.a_cores += 1;
                SchedReason::GiveBack
            } else {
                SchedReason::Hold
            }
        } else {
            // Hysteresis band: neither shrinking nor growing, and the
            // calm streak restarts — a borderline tick must not count
            // toward a give-back.
            self.calm_streak = 0;
            SchedReason::Hold
        };
        SchedDecision { tick, t_cores: self.t_cores, a_cores: self.a_cores, reason }
    }

    /// Runs the controller over a whole signal sequence, returning the
    /// full decision trace (initial decision included). The simulation
    /// entry point for determinism and anti-flap tests.
    pub fn simulate(target: SchedTarget, seed: u64, signals: &[SchedSignal]) -> Vec<SchedDecision> {
        let mut ctl = ElasticController::new(target, seed);
        let mut out = Vec::with_capacity(signals.len() + 1);
        out.push(ctl.initial_decision());
        for sig in signals {
            out.push(ctl.step(sig));
        }
        out
    }
}

/// Number of split *changes* in a decision trace (ticks where the
/// allocation differs from the previous tick's).
pub fn split_changes(decisions: &[SchedDecision]) -> usize {
    decisions
        .windows(2)
        .filter(|w| (w[0].t_cores, w[0].a_cores) != (w[1].t_cores, w[1].a_cores))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm() -> SchedSignal {
        SchedSignal { offered: 10, goodput: 10, shed: 0, backlog: 0, a_done: 3 }
    }

    fn pressured() -> SchedSignal {
        SchedSignal { offered: 100, goodput: 20, shed: 30, backlog: 64, a_done: 0 }
    }

    #[test]
    fn pressure_halves_analytics_and_floors_at_one() {
        let mut ctl = ElasticController::new(SchedTarget::with_budget(8), 1);
        assert_eq!(ctl.split(), (4, 4));
        let d = ctl.step(&pressured());
        assert_eq!((d.t_cores, d.a_cores), (6, 2));
        assert_eq!(d.reason, SchedReason::Pressure);
        let d = ctl.step(&pressured());
        assert_eq!((d.t_cores, d.a_cores), (7, 1));
        // A is at its floor: further pressure has nothing to take.
        let d = ctl.step(&pressured());
        assert_eq!((d.t_cores, d.a_cores), (7, 1));
        assert_eq!(d.reason, SchedReason::Saturated);
    }

    #[test]
    fn giveback_is_additive_and_gated_by_dwell() {
        let target = SchedTarget { dwell_ticks: 3, ..SchedTarget::with_budget(4) };
        // Seed chosen so the first-dwell bonus is exercised but we only
        // assert structural properties below; the trace itself is pinned
        // by the determinism suite.
        let mut ctl = ElasticController::new(target, 7);
        let (t0, a0) = ctl.split();
        assert_eq!(t0 + a0, 4);
        let mut gave_back_at = Vec::new();
        for i in 0..20 {
            let d = ctl.step(&calm());
            if d.reason == SchedReason::GiveBack {
                gave_back_at.push(i);
            }
        }
        // t starts at 2 with floor 1: exactly one core to give back.
        assert_eq!(gave_back_at.len(), 1);
        assert_eq!(ctl.split(), (1, 3));
        // And it took at least the dwell to happen.
        assert!(gave_back_at[0] >= 2, "gave back before the dwell: {gave_back_at:?}");
    }

    #[test]
    fn hysteresis_band_holds_and_resets_the_streak() {
        let target = SchedTarget {
            dwell_ticks: 2,
            low_backlog_per_core: 1,
            high_backlog_per_core: 100,
            ..SchedTarget::with_budget(4)
        };
        let mut ctl = ElasticController::new(target, 3);
        // Backlog between low (t*1) and high (t*100): always Hold, and
        // interleaving band ticks with calm ticks never accumulates a
        // streak long enough to give back.
        let band = SchedSignal { backlog: 50, ..calm() };
        for _ in 0..30 {
            assert_eq!(ctl.step(&band).reason, SchedReason::Hold);
            assert_eq!(ctl.step(&calm()).reason, SchedReason::Hold);
        }
        assert_eq!(ctl.split(), (2, 2), "band ticks must not feed the dwell");
    }

    #[test]
    fn same_seed_same_signals_byte_identical_trace() {
        let signals: Vec<SchedSignal> = (0..200)
            .map(|i| {
                if (40..60).contains(&i) || (120..140).contains(&i) {
                    pressured()
                } else {
                    calm()
                }
            })
            .collect();
        let target = SchedTarget::with_budget(6);
        let a = trace_lines(&ElasticController::simulate(target, 42, &signals));
        let b = trace_lines(&ElasticController::simulate(target, 42, &signals));
        let c = trace_lines(&ElasticController::simulate(target, 42, &signals));
        assert_eq!(a, b);
        assert_eq!(b, c);
        // A different seed may stagger the first give-back differently,
        // but the law itself is seed-independent: same split totals.
        let d = ElasticController::simulate(target, 43, &signals);
        assert!(d.iter().all(|x| x.t_cores + x.a_cores == 6));
    }

    #[test]
    fn anti_flap_bounded_changes_under_constant_load() {
        let target = SchedTarget::with_budget(8);
        // Constant calm load: the split walks monotonically to the
        // floor then parks — at most budget-1 changes, ever.
        let calm_signals = vec![calm(); 100];
        let trace = ElasticController::simulate(target, 9, &calm_signals);
        assert!(
            split_changes(&trace) <= 7,
            "calm flaps: {}",
            split_changes(&trace)
        );
        // Constant overload: halves to the floor then parks — at most
        // log2(budget) changes.
        let hot_signals = vec![pressured(); 100];
        let trace = ElasticController::simulate(target, 9, &hot_signals);
        assert!(split_changes(&trace) <= 3, "hot flaps: {}", split_changes(&trace));
        // The tail of both traces is completely flat.
        let tail = &trace[60..];
        assert_eq!(split_changes(tail), 0, "split still moving under constant load");
    }

    #[test]
    fn normalization_and_labels_round_trip() {
        let t = SchedTarget {
            budget: 0,
            t_floor: 99,
            high_backlog_per_core: 0,
            low_backlog_per_core: 50,
            dwell_ticks: 0,
        }
        .normalized();
        assert_eq!(t.budget, 2);
        assert_eq!(t.t_floor, 1);
        assert!(t.low_backlog_per_core <= t.high_backlog_per_core);
        assert_eq!(t.dwell_ticks, 1);
        for r in [
            SchedReason::Init,
            SchedReason::Hold,
            SchedReason::Pressure,
            SchedReason::Saturated,
            SchedReason::GiveBack,
        ] {
            assert_eq!(SchedReason::from_label(r.label()), Some(r));
        }
        assert_eq!(SchedReason::from_label("bogus"), None);
        assert_eq!(SchedPolicy::Static.target(), None);
        assert!(SchedPolicy::Elastic { target: SchedTarget::default() }
            .target()
            .is_some());
    }
}
