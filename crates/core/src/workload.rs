//! The HATtrick workload (§5.2): three TPC-C-style transactions and
//! randomly permuted batches of the 13 SSB queries.
//!
//! Transactions are written once against the [`hat_engine::Session`] trait
//! and run unchanged on every engine. Each transaction additionally updates
//! its client's `FRESHNESS` row with the transaction's per-client sequence
//! number (§4.2) — the hook the freshness measurement hangs off.

use std::sync::atomic::{AtomicU64, Ordering};

use hat_common::dates;
use hat_common::ids::{customer, history, part, supplier, TableId};
use hat_common::rng::HatRng;
use hat_common::value::{row_from, row_with};
use hat_common::{HatError, Money, Result, Row, Value};
use hat_engine::{CommitReceipt, HtapEngine, NamedIndex};
use hat_query::spec::QueryId;

use crate::gen::{customer_name, random_date_key, supplier_name, DataProfile};

/// The three HATtrick transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    NewOrder,
    Payment,
    CountOrders,
}

impl TxnKind {
    /// Label used in per-transaction latency reports.
    pub fn label(self) -> &'static str {
        match self {
            TxnKind::NewOrder => "new-order",
            TxnKind::Payment => "payment",
            TxnKind::CountOrders => "count-orders",
        }
    }
}

/// The transaction mix. The paper fixes 48% New Order, 48% Payment, 4%
/// Count Orders (§5.3); custom mixes are supported for ablations.
#[derive(Debug, Clone, Copy)]
pub struct TxnMix {
    pub new_order: u32,
    pub payment: u32,
    pub count_orders: u32,
}

impl Default for TxnMix {
    fn default() -> Self {
        TxnMix { new_order: 48, payment: 48, count_orders: 4 }
    }
}

impl TxnMix {
    /// Draws a transaction type.
    pub fn draw(&self, rng: &mut HatRng) -> TxnKind {
        match rng.weighted(&[self.new_order, self.payment, self.count_orders]) {
            0 => TxnKind::NewOrder,
            1 => TxnKind::Payment,
            _ => TxnKind::CountOrders,
        }
    }
}

/// Shared mutable workload state: the order-key allocator.
///
/// Order keys must be globally unique across T-clients; aborted
/// transactions burn keys, which is harmless.
pub struct WorkloadState {
    next_orderkey: AtomicU64,
    initial: u64,
}

impl WorkloadState {
    /// Starts allocating after the loaded population's highest key.
    pub fn new(profile: &DataProfile) -> Self {
        WorkloadState {
            next_orderkey: AtomicU64::new(profile.max_orderkey + 1),
            initial: profile.max_orderkey + 1,
        }
    }

    /// Allocates the next order key.
    pub fn take_orderkey(&self) -> u64 {
        self.next_orderkey.fetch_add(1, Ordering::Relaxed)
    }

    /// Benchmark reset: restart after the loaded population (the engine's
    /// own reset truncated the appended orders away).
    pub fn reset(&self) {
        self.next_orderkey.store(self.initial, Ordering::Relaxed);
    }
}

/// Executes one transaction of `kind` for client `client` whose per-client
/// sequence number is `txnnum`. Returns the commit receipt (timestamp plus
/// durability verdict — an in-doubt outcome is a commit, not an error).
///
/// Retryable errors ([`HatError::is_retryable`]) mean the driver should run
/// a fresh transaction; other errors are bugs.
pub fn run_transaction(
    engine: &dyn HtapEngine,
    profile: &DataProfile,
    state: &WorkloadState,
    rng: &mut HatRng,
    kind: TxnKind,
    client: u32,
    txnnum: u64,
) -> Result<CommitReceipt> {
    match kind {
        TxnKind::NewOrder => new_order(engine, profile, state, rng, client, txnnum),
        TxnKind::Payment => payment(engine, profile, rng, client, txnnum),
        TxnKind::CountOrders => count_orders(engine, profile, rng, client, txnnum),
    }
}

/// Appends the freshness-table update all transactions carry (§4.2). The
/// FRESHNESS row id equals the client id (one pre-loaded row per client).
fn touch_freshness(
    session: &mut Box<dyn hat_engine::Session + '_>,
    client: u32,
    txnnum: u64,
) -> Result<()> {
    session.update(
        TableId::Freshness,
        client as u64,
        row_from([Value::U32(client), Value::U64(txnnum)]),
    )
}

/// §5.2.1 New Order: read CUSTOMER/PART/SUPPLIER/DATE, insert a complete
/// order of 1–7 lineorders with prices computed from `P_PRICE`.
fn new_order(
    engine: &dyn HtapEngine,
    profile: &DataProfile,
    state: &WorkloadState,
    rng: &mut HatRng,
    client: u32,
    txnnum: u64,
) -> Result<CommitReceipt> {
    let mut s = engine.begin();
    let cname = customer_name(rng.range_u32(1, profile.customers));
    let Some((_, cust_row)) = s.lookup_str(NamedIndex::CustomerName, &cname)? else {
        s.abort();
        return Err(HatError::NotFound { table: "customer" });
    };
    let custkey = cust_row[customer::CUSTKEY].as_u32()?;

    let orderdate = random_date_key(rng);
    let Some((_, _date_row)) = s.lookup_u32(NamedIndex::DatePk, orderdate)? else {
        s.abort();
        return Err(HatError::NotFound { table: "date" });
    };

    let n_lines = rng.range_u32(1, 7);
    // First pass: read parts and compute the order total.
    let mut lines = Vec::with_capacity(n_lines as usize);
    let mut total = Money::ZERO;
    for line_no in 1..=n_lines {
        let partkey = rng.range_u32(1, profile.parts);
        let Some((_, part_row)) = s.lookup_u32(NamedIndex::PartPk, partkey)? else {
            s.abort();
            return Err(HatError::NotFound { table: "part" });
        };
        let price = part_row[part::PRICE].as_money()?;
        let sname = supplier_name(rng.range_u32(1, profile.suppliers));
        let Some((_, supp_row)) = s.lookup_str(NamedIndex::SupplierName, &sname)? else {
            s.abort();
            return Err(HatError::NotFound { table: "supplier" });
        };
        let suppkey = supp_row[supplier::SUPPKEY].as_u32()?;
        let quantity = rng.range_u32(1, 50);
        let extended = price * quantity as i64;
        total += extended;
        lines.push((line_no, partkey, suppkey, quantity, extended));
    }

    let orderkey = state.take_orderkey();
    let priority = ORDER_PRIORITIES[rng.index(ORDER_PRIORITIES.len())];
    let ship_mode_pool = SHIP_MODES;
    for (line_no, partkey, suppkey, quantity, extended) in lines {
        let discount = rng.range_u32(0, 10);
        let tax = rng.range_u32(0, 8);
        let revenue = extended.pct(100 - discount as i64);
        let supplycost = extended.pct(60);
        let commitdate = dates::add_days(orderdate, rng.range_u32(30, 90));
        s.insert(
            TableId::Lineorder,
            row_from([
                Value::U64(orderkey),
                Value::U32(line_no),
                Value::U32(custkey),
                Value::U32(partkey),
                Value::U32(suppkey),
                Value::U32(orderdate),
                Value::from(priority),
                Value::from("0"),
                Value::U32(quantity),
                Value::Money(extended),
                Value::Money(total),
                Value::U32(discount),
                Value::Money(revenue),
                Value::Money(supplycost),
                Value::U32(tax),
                Value::U32(commitdate),
                Value::from(ship_mode_pool[rng.index(ship_mode_pool.len())]),
            ]),
        )?;
    }
    touch_freshness(&mut s, client, txnnum)?;
    s.commit()
}

const ORDER_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: [&str; 7] =
    ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];

/// §5.2.1 Payment: select the customer by name 60% of the time (key
/// otherwise), bump `C_PAYMENTCNT` and the supplier's `S_YTD`, insert the
/// payment into HISTORY.
fn payment(
    engine: &dyn HtapEngine,
    profile: &DataProfile,
    rng: &mut HatRng,
    client: u32,
    txnnum: u64,
) -> Result<CommitReceipt> {
    let mut s = engine.begin();
    let custkey = rng.range_u32(1, profile.customers);
    let lookup = if rng.chance(0.6) {
        s.lookup_str(NamedIndex::CustomerName, &customer_name(custkey))?
    } else {
        s.lookup_u32(NamedIndex::CustomerPk, custkey)?
    };
    let Some((crid, cust_row)) = lookup else {
        s.abort();
        return Err(HatError::NotFound { table: "customer" });
    };
    let paycnt = cust_row[customer::PAYMENTCNT].as_u32()?;
    s.update(
        TableId::Customer,
        crid,
        row_with(&cust_row, customer::PAYMENTCNT, Value::U32(paycnt + 1)),
    )?;

    // The order being paid for: a previously created order of this
    // customer, approximated by a uniformly random existing order key.
    let orderkey = rng.range_u64(1, profile.max_orderkey);
    let amount = Money::from_cents(rng.range_u64(100, 500_000) as i64);

    let suppkey = rng.range_u32(1, profile.suppliers);
    let Some((srid, supp_row)) = s.lookup_u32(NamedIndex::SupplierPk, suppkey)? else {
        s.abort();
        return Err(HatError::NotFound { table: "supplier" });
    };
    let ytd = supp_row[supplier::YTD].as_money()?;
    s.update(
        TableId::Supplier,
        srid,
        row_with(&supp_row, supplier::YTD, Value::Money(ytd + amount)),
    )?;

    s.insert(
        TableId::History,
        row_from([Value::U64(orderkey), Value::U32(custkey), Value::Money(amount)]),
    )?;
    touch_freshness(&mut s, client, txnnum)?;
    s.commit()
}

/// §5.2.1 Count Orders: report the number of orders of a customer selected
/// by name (secondary-index seek), counting in LINEORDER.
fn count_orders(
    engine: &dyn HtapEngine,
    profile: &DataProfile,
    rng: &mut HatRng,
    client: u32,
    txnnum: u64,
) -> Result<CommitReceipt> {
    let mut s = engine.begin();
    let cname = customer_name(rng.range_u32(1, profile.customers));
    let Some((_, cust_row)) = s.lookup_str(NamedIndex::CustomerName, &cname)? else {
        s.abort();
        return Err(HatError::NotFound { table: "customer" });
    };
    let custkey = cust_row[customer::CUSTKEY].as_u32()?;
    let _count = s.count_orders(custkey)?;
    touch_freshness(&mut s, client, txnnum)?;
    s.commit()
}

/// A randomly permuted batch of the 13 SSB queries (§5.3: "an A batch
/// contains all the 13 queries ordered randomly").
pub fn query_batch(rng: &mut HatRng) -> Vec<QueryId> {
    rng.permutation(13).into_iter().map(|i| QueryId::ALL[i]).collect()
}

/// Sanity accessor used by invariant tests: the sum of `H_AMOUNT` over
/// HISTORY rows a payment run inserted must equal the sum of `S_YTD`
/// deltas. (Helper for building expected values from rows.)
pub fn history_amount(row: &Row) -> Money {
    row[history::AMOUNT].as_money().expect("typed history row")
}

// Re-export for tests that need the fact column ids.
pub use hat_common::ids::lineorder as lineorder_cols;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, ScaleFactor};
    use hat_common::ids::lineorder;
    use hat_engine::{EngineConfig, ShdEngine};

    fn tiny_engine() -> (ShdEngine, DataProfile, WorkloadState) {
        let data = generate(ScaleFactor(0.0008), 11);
        let engine = ShdEngine::new(EngineConfig::default());
        data.load_into(&engine).unwrap();
        let state = WorkloadState::new(&data.profile);
        (engine, data.profile.clone(), state)
    }

    #[test]
    fn mix_draw_follows_weights() {
        let mix = TxnMix::default();
        let mut rng = HatRng::seeded(5);
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            match mix.draw(&mut rng) {
                TxnKind::NewOrder => counts[0] += 1,
                TxnKind::Payment => counts[1] += 1,
                TxnKind::CountOrders => counts[2] += 1,
            }
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.48).abs() < 0.02);
        assert!((counts[2] as f64 / 10_000.0 - 0.04).abs() < 0.01);
    }

    #[test]
    fn new_order_inserts_lines_and_bumps_freshness() {
        let (engine, profile, state) = tiny_engine();
        let mut rng = HatRng::seeded(1);
        let before = engine.kernel().db.store(TableId::Lineorder).slot_count();
        assert!(run_transaction(&engine, &profile, &state, &mut rng, TxnKind::NewOrder, 3, 1)
            .unwrap().is_acked());
        let after = engine.kernel().db.store(TableId::Lineorder).slot_count();
        assert!((1..=7).contains(&(after - before)), "1-7 lines inserted");
        // Freshness row for client 3 now carries txnnum 1.
        let ts = engine.kernel().oracle.read_ts();
        let row = engine.kernel().db.store(TableId::Freshness).read(3, ts).unwrap();
        assert_eq!(row[1].as_u64().unwrap(), 1);
        // Other clients' rows untouched.
        let row = engine.kernel().db.store(TableId::Freshness).read(4, ts).unwrap();
        assert_eq!(row[1].as_u64().unwrap(), 0);
    }

    #[test]
    fn payment_updates_customer_supplier_history() {
        let (engine, profile, state) = tiny_engine();
        let mut rng = HatRng::seeded(2);
        let h_before = engine.kernel().db.store(TableId::History).slot_count();
        assert!(run_transaction(&engine, &profile, &state, &mut rng, TxnKind::Payment, 0, 1)
            .unwrap().is_acked());
        let h_after = engine.kernel().db.store(TableId::History).slot_count();
        assert_eq!(h_after - h_before, 1);
        // Some customer has paymentcnt 1 and some supplier has ytd > 0.
        let ts = engine.kernel().oracle.read_ts();
        let mut pay_total = 0u32;
        engine.kernel().db.store(TableId::Customer).scan(ts, |_, row| {
            pay_total += row[customer::PAYMENTCNT].as_u32().unwrap();
        });
        assert_eq!(pay_total, 1);
        let mut ytd_total = Money::ZERO;
        engine.kernel().db.store(TableId::Supplier).scan(ts, |_, row| {
            ytd_total += row[supplier::YTD].as_money().unwrap();
        });
        assert!(ytd_total > Money::ZERO);
        // Conservation: supplier YTD total equals new HISTORY amounts.
        let mut hist_total = Money::ZERO;
        let mut seen = 0;
        engine.kernel().db.store(TableId::History).scan(ts, |rid, row| {
            if rid >= h_before {
                hist_total += history_amount(row);
                seen += 1;
            }
        });
        assert_eq!(seen, 1);
        assert_eq!(hist_total, ytd_total);
    }

    #[test]
    fn count_orders_commits_and_touches_freshness() {
        let (engine, profile, state) = tiny_engine();
        let mut rng = HatRng::seeded(3);
        assert!(run_transaction(&engine, &profile, &state, &mut rng, TxnKind::CountOrders, 5, 9)
            .unwrap().is_acked());
        let ts = engine.kernel().oracle.read_ts();
        let row = engine.kernel().db.store(TableId::Freshness).read(5, ts).unwrap();
        assert_eq!(row[1].as_u64().unwrap(), 9);
    }

    #[test]
    fn orderkeys_are_unique_across_clients() {
        let (engine, profile, state) = tiny_engine();
        let mut rng = HatRng::seeded(4);
        for i in 0..20 {
            assert!(run_transaction(&engine, &profile, &state, &mut rng, TxnKind::NewOrder, 0, i)
                .unwrap().is_acked());
        }
        let ts = engine.kernel().oracle.read_ts();
        let mut keys = Vec::new();
        engine.kernel().db.store(TableId::Lineorder).scan(ts, |_, row| {
            keys.push((
                row[lineorder::ORDERKEY].as_u64().unwrap(),
                row[lineorder::LINENUMBER].as_u32().unwrap(),
            ));
        });
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "(orderkey, linenumber) unique");
    }

    #[test]
    fn workload_state_reset_reuses_keyspace() {
        let data = generate(ScaleFactor(0.0008), 11);
        let state = WorkloadState::new(&data.profile);
        let first = state.take_orderkey();
        state.take_orderkey();
        state.reset();
        assert_eq!(state.take_orderkey(), first);
    }

    #[test]
    fn query_batches_are_permutations() {
        let mut rng = HatRng::seeded(6);
        let batch = query_batch(&mut rng);
        assert_eq!(batch.len(), 13);
        let mut sorted = batch.clone();
        sorted.sort();
        assert_eq!(sorted, QueryId::ALL.to_vec());
        let batch2 = query_batch(&mut rng);
        assert_ne!(batch, batch2, "permutations vary");
    }

    #[test]
    fn txn_labels() {
        assert_eq!(TxnKind::NewOrder.label(), "new-order");
        assert_eq!(TxnKind::Payment.label(), "payment");
        assert_eq!(TxnKind::CountOrders.label(), "count-orders");
    }
}
